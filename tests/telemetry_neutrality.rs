//! Telemetry neutrality proofs: turning observation on must never change
//! what is computed or stored.
//!
//! 1. **Checkpoint-fingerprint neutrality**: a search interrupted at the
//!    same injected point writes byte-identical checkpoint files with
//!    telemetry on and off, and both resume to the identical outcome.
//! 2. **Shard-byte neutrality**: a measurement campaign produces
//!    byte-identical dataset shards with telemetry on and off, sequential
//!    and parallel.
//! 3. **Merged-log integrity**: a killed-and-resumed run appending to one
//!    `events.jsonl` yields a log where every line parses and sequence
//!    numbers are strictly increasing across the kill point.

use fegen::bench::{
    campaign_fingerprint, run_campaign_with_telemetry, CampaignConfig, DatasetStore,
    ExperimentConfig, SamplingPolicy,
};
use fegen::core::ir::IrNode;
use fegen::core::search::TrainingExample;
use fegen::core::telemetry::report;
use fegen::core::{
    CancelToken, FaultInjector, FaultKind, FaultPlan, FaultTrigger, FeatureSearch, IslandTopology,
    SearchConfig, SearchError, Telemetry, WorkerLauncher,
};
use std::path::{Path, PathBuf};

/// Same synthetic task as the fault-tolerance suite: best factor is
/// determined by the `insn` count, so the search reliably improves.
fn synthetic_examples(n: usize) -> Vec<TrainingExample> {
    (0..n)
        .map(|i| {
            let insns = 1 + i % 5;
            let best = insns % 4;
            let ir = IrNode::build("loop", |l| {
                l.attr_num("decoy", (i * 7 % 3) as f64);
                for _ in 0..insns {
                    l.child("insn", |x| {
                        x.attr_enum("mode", "SI");
                    });
                }
                l.child("jump_insn", |_| {});
            });
            let cycles = (0..4)
                .map(|k| {
                    if k == best {
                        80.0
                    } else {
                        100.0 + (k as f64 - best as f64).abs()
                    }
                })
                .collect();
            TrainingExample { ir, cycles }
        })
        .collect()
}

fn small_config(threads: usize) -> SearchConfig {
    let mut config = SearchConfig::quick();
    config.seed = 41;
    config.max_features = 2;
    config.max_total_generations = 24;
    config.gp.population = 14;
    config.gp.max_generations = 6;
    config.gp.stagnation_limit = 6;
    config.gp.threads = threads;
    config
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fegen-tel-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The single checkpoint file inside a checkpoint directory.
fn checkpoint_bytes(path: &Path) -> Vec<u8> {
    std::fs::read(path).expect("checkpoint file readable")
}

/// Interrupted search (cancel injected on the `on_call`th evaluation) with
/// the given telemetry; returns the checkpoint path.
fn interrupted_run(
    search: &FeatureSearch,
    examples: &[TrainingExample],
    ckpt_dir: &Path,
    telemetry: Telemetry,
    on_call: u64,
) -> PathBuf {
    let injector = FaultInjector::new(vec![FaultPlan {
        trigger: FaultTrigger::OnCall(on_call),
        kind: FaultKind::Cancel,
    }]);
    let err = search
        .driver()
        .checkpoint(ckpt_dir, 2)
        .fault_injector(&injector)
        .telemetry(telemetry)
        .run(examples)
        .expect_err("injected cancellation must interrupt");
    match err {
        SearchError::Interrupted {
            checkpoint: Some(p),
            ..
        } => p,
        other => panic!("expected Interrupted with checkpoint, got {other}"),
    }
}

/// Neutrality proof #1 + #3: identical checkpoints with telemetry on/off,
/// identical resumed outcomes, and a well-formed merged JSONL across the
/// kill point — sequential and parallel fitness evaluation.
fn checkpoint_neutral(threads: usize, tag: &str) {
    let examples = synthetic_examples(40);
    let search = FeatureSearch::from_examples(&examples, small_config(threads));
    let reference = search.try_run(&examples).expect("reference run completes");
    assert!(!reference.features.is_empty(), "task must be solvable");

    let dir_off = temp_dir(&format!("off-{tag}"));
    let dir_on = temp_dir(&format!("on-{tag}"));
    let tel_dir = temp_dir(&format!("events-{tag}"));
    std::fs::create_dir_all(&tel_dir).expect("telemetry dir");

    let ckpt_off = interrupted_run(&search, &examples, &dir_off, Telemetry::disabled(), 25);
    let telemetry = Telemetry::to_dir(&tel_dir).expect("telemetry opens");
    let ckpt_on = interrupted_run(&search, &examples, &dir_on, telemetry, 25);

    // The checkpoint fingerprint (and every byte around it) must not see
    // telemetry.
    assert_eq!(
        checkpoint_bytes(&ckpt_off),
        checkpoint_bytes(&ckpt_on),
        "telemetry changed the checkpoint bytes"
    );

    // Both resume to the reference outcome; the telemetry-on resume appends
    // to the same event log, exercising the killed-and-resumed path.
    let resumed_off = search
        .driver()
        .resume(&ckpt_off, &examples)
        .expect("resume (off) completes");
    let telemetry = Telemetry::to_dir(&tel_dir).expect("telemetry reopens");
    let resumed_on = search
        .driver()
        .telemetry(telemetry)
        .resume(&ckpt_on, &examples)
        .expect("resume (on) completes");
    assert_eq!(resumed_off, reference);
    assert_eq!(resumed_on, reference, "telemetry changed the outcome");

    // Merged log: every line parses, seq strictly increasing across the
    // kill/resume boundary, and the reader can render it.
    let verdict = report::check_integrity(&tel_dir).expect("events readable");
    let events = verdict.unwrap_or_else(|e| panic!("merged log not well-formed: {e}"));
    assert!(events > 0, "telemetry-on run must emit events");
    let (parsed, skipped) = report::read_events(&tel_dir).expect("events readable");
    assert_eq!(skipped, 0);
    for kind in ["search_start", "gp_generation", "checkpoint", "search_done", "metric"] {
        assert!(
            parsed.iter().any(|e| e.kind == kind),
            "expected at least one `{kind}` event"
        );
    }
    let summary = report::summarize_dir(&tel_dir).expect("report renders");
    assert!(summary.contains("event(s)"), "summary renders: {summary}");

    for d in [&dir_off, &dir_on, &tel_dir] {
        let _ = std::fs::remove_dir_all(d);
    }
}

#[test]
fn search_checkpoints_are_telemetry_neutral_sequential() {
    checkpoint_neutral(1, "seq");
}

#[test]
fn search_checkpoints_are_telemetry_neutral_parallel() {
    checkpoint_neutral(4, "par");
}

/// Neutrality proof #1 for the *process-worker* supervisor: the same
/// interrupted-checkpoint byte identity and resumed-outcome identity, with
/// the islands stepped by supervised worker threads over the frame
/// transport. The cancel is keyed to a transport attempt (fitness runs
/// inside workers, out of the injector's reach), and the telemetry-on run
/// additionally proves the worker-resilience events land in the log.
#[test]
fn process_worker_checkpoints_are_telemetry_neutral() {
    let examples = synthetic_examples(40);
    let mut config = small_config(1);
    config.max_total_generations = 48;
    config.topology = IslandTopology {
        islands: 2,
        migration_every: 1,
        restart_limit: 3,
    };
    let search = FeatureSearch::from_examples(&examples, config);
    let reference = search.try_run(&examples).expect("reference run completes");
    assert!(!reference.features.is_empty(), "task must be solvable");

    let interrupted_proc = |ckpt_dir: &Path, telemetry: Telemetry| -> PathBuf {
        let injector = FaultInjector::new(vec![FaultPlan {
            trigger: FaultTrigger::OnKeyPrefix("worker:0:round2#a1".into()),
            kind: FaultKind::Cancel,
        }]);
        let err = search
            .driver()
            .process_workers(2, WorkerLauncher::Loopback)
            .checkpoint(ckpt_dir, 2)
            .fault_injector(&injector)
            .telemetry(telemetry)
            .run(&examples)
            .expect_err("injected cancellation must interrupt");
        match err {
            SearchError::Interrupted {
                checkpoint: Some(p),
                ..
            } => p,
            other => panic!("expected Interrupted with checkpoint, got {other}"),
        }
    };

    let dir_off = temp_dir("proc-off");
    let dir_on = temp_dir("proc-on");
    let tel_dir = temp_dir("proc-events");
    std::fs::create_dir_all(&tel_dir).expect("telemetry dir");

    let ckpt_off = interrupted_proc(&dir_off, Telemetry::disabled());
    let telemetry = Telemetry::to_dir(&tel_dir).expect("telemetry opens");
    let ckpt_on = interrupted_proc(&dir_on, telemetry);
    assert_eq!(
        checkpoint_bytes(&ckpt_off),
        checkpoint_bytes(&ckpt_on),
        "telemetry changed the process-worker checkpoint bytes"
    );

    // Both resume — in process mode — to the thread-mode reference.
    let resumed_off = search
        .driver()
        .process_workers(2, WorkerLauncher::Loopback)
        .resume(&ckpt_off, &examples)
        .expect("resume (off) completes");
    let telemetry = Telemetry::to_dir(&tel_dir).expect("telemetry reopens");
    let resumed_on = search
        .driver()
        .process_workers(2, WorkerLauncher::Loopback)
        .telemetry(telemetry)
        .resume(&ckpt_on, &examples)
        .expect("resume (on) completes");
    assert_eq!(resumed_off, reference);
    assert_eq!(resumed_on, reference, "telemetry changed the outcome");

    // The merged log is well-formed and carries the supervisor's events.
    let verdict = report::check_integrity(&tel_dir).expect("events readable");
    verdict.unwrap_or_else(|e| panic!("merged log not well-formed: {e}"));
    let (parsed, _) = report::read_events(&tel_dir).expect("events readable");
    for kind in ["workers_start", "island_migration", "metric"] {
        assert!(
            parsed.iter().any(|e| e.kind == kind),
            "expected at least one `{kind}` event"
        );
    }
    let summary = report::summarize_dir(&tel_dir).expect("report renders");
    assert!(
        summary.contains("worker processes:"),
        "the worker-resilience section must render: {summary}"
    );

    for d in [&dir_off, &dir_on, &tel_dir] {
        let _ = std::fs::remove_dir_all(d);
    }
}

fn tiny_experiment() -> ExperimentConfig {
    let mut config = ExperimentConfig::quick();
    config.suite = fegen::suite::SuiteConfig::tiny();
    config
}

fn tiny_campaign(jobs: usize) -> CampaignConfig {
    CampaignConfig {
        jobs,
        retry: 2,
        quarantine_after: 2,
        backoff: std::time::Duration::from_millis(1),
        site_deadline: std::time::Duration::from_secs(30),
        sampling: SamplingPolicy {
            base_runs: 8,
            max_runs: 16,
            target_log_iqr: 0.1,
            ..SamplingPolicy::default()
        },
        measure: fegen::bench::MeasureMode::default(),
    }
}

/// Neutrality proof #2: the campaign writes byte-identical shards with
/// telemetry on and off.
fn shards_neutral(jobs: usize, tag: &str) {
    let experiment = tiny_experiment();
    let campaign = tiny_campaign(jobs);
    let fp = campaign_fingerprint(&experiment, &campaign.sampling);
    let names: Vec<String> = fegen::suite::generate_suite(&experiment.suite)
        .iter()
        .map(|b| b.name.clone())
        .collect();

    let dir_off = temp_dir(&format!("shards-off-{tag}"));
    let store_off = DatasetStore::open(&dir_off, fp).expect("open store");
    run_campaign_with_telemetry(
        &experiment,
        &campaign,
        &store_off,
        None,
        &CancelToken::new(),
        &Telemetry::disabled(),
    )
    .expect("telemetry-off campaign completes");

    let dir_on = temp_dir(&format!("shards-on-{tag}"));
    let tel_dir = temp_dir(&format!("shards-events-{tag}"));
    std::fs::create_dir_all(&tel_dir).expect("telemetry dir");
    let telemetry = Telemetry::to_dir(&tel_dir).expect("telemetry opens");
    let store_on = DatasetStore::open(&dir_on, fp)
        .expect("open store")
        .with_telemetry(telemetry.clone());
    run_campaign_with_telemetry(
        &experiment,
        &campaign,
        &store_on,
        None,
        &CancelToken::new(),
        &telemetry,
    )
    .expect("telemetry-on campaign completes");

    for name in &names {
        let off = std::fs::read(store_off.shard_path(name)).expect("shard (off)");
        let on = std::fs::read(store_on.shard_path(name)).expect("shard (on)");
        assert_eq!(off, on, "telemetry changed shard bytes of {name}");
    }

    // The observed campaign emitted a parseable log covering the run.
    let verdict = report::check_integrity(&tel_dir).expect("events readable");
    verdict.unwrap_or_else(|e| panic!("campaign log not well-formed: {e}"));
    let (parsed, _) = report::read_events(&tel_dir).expect("events readable");
    for kind in ["campaign_start", "bench_done", "shard_write", "span"] {
        assert!(
            parsed.iter().any(|e| e.kind == kind),
            "expected at least one `{kind}` event"
        );
    }
    let done = parsed.iter().filter(|e| e.kind == "bench_done").count();
    assert_eq!(done, names.len(), "one bench_done per benchmark");

    for d in [&dir_off, &dir_on, &tel_dir] {
        let _ = std::fs::remove_dir_all(d);
    }
}

#[test]
fn campaign_shards_are_telemetry_neutral_sequential() {
    shards_neutral(1, "seq");
}

#[test]
fn campaign_shards_are_telemetry_neutral_parallel() {
    shards_neutral(3, "par");
}
