//! Property tests of the supervisor↔worker frame codec: every frame kind
//! round-trips exactly, and every corruption a real transport can produce
//! — truncation, over-length claims, version skew, bit flips — is rejected
//! with a *typed* [`TransportError`], never a panic and never silently
//! accepted bytes.

use fegen::core::gp::transport::{
    decode_frame, encode_frame, TransportError, FRAME_HEADER_LEN, FRAME_MAGIC, MAX_FRAME_LEN,
    PROTOCOL_VERSION,
};
use fegen::core::gp::engine::GpSnapshot;
use fegen::core::gp::worker_proc::{decode_msg, encode_msg, WireMsg, WorkerSpec};
use fegen::core::ir::IrNode;
use fegen::core::search::TrainingExample;
use fegen::core::{EvalEngine, Grammar, IslandTopology, SearchConfig};
use proptest::prelude::*;

// ---------------------------------------------------------------------------
// Fixtures: one concrete instance of every message kind.
// ---------------------------------------------------------------------------

fn tiny_examples() -> Vec<TrainingExample> {
    (0..4)
        .map(|i| {
            let ir = IrNode::build("loop", |l| {
                l.attr_num("num-iter", 4.0 + i as f64);
                for _ in 0..=i {
                    l.child("insn", |x| {
                        x.attr_enum("mode", "SI");
                    });
                }
            });
            TrainingExample {
                ir,
                // Deliberately awkward floats: the codec must round-trip
                // them bit-exactly, not just "close enough".
                cycles: vec![100.0, 90.0 + i as f64 / 3.0, 0.1 + 0.2],
            }
        })
        .collect()
}

fn tiny_spec() -> WorkerSpec {
    let examples = tiny_examples();
    let mut config = SearchConfig::quick();
    config.seed = 7;
    config.topology = IslandTopology {
        islands: 2,
        migration_every: 1,
        restart_limit: 1,
    };
    let grammar = Grammar::derive(examples.iter().map(|e| &e.ir));
    WorkerSpec::new(
        config,
        EvalEngine::Compiled,
        &grammar,
        &examples,
        vec!["count(//*)".to_owned()],
    )
}

/// One message of every wire kind, with a real (non-trivial) island
/// snapshot inside the `Step`/`StepDone` pair.
fn all_message_kinds() -> Vec<WireMsg> {
    let spec = tiny_spec();
    let island = fegen::core::gp::island::IslandSnapshot {
        id: 1,
        status: fegen::core::IslandStatus::Active,
        restarts: 2,
        gp: GpSnapshot {
            population: vec!["count(//*)".to_owned(), "sum(//*, @num-iter)".to_owned()],
            best: Some(("count(//*)".to_owned(), 1.25)),
            stagnant: 1,
            generations: 3,
            evaluations: 40,
            panics: 1,
            panic_generations: 1,
            degraded: false,
            memo: vec![
                ("count(//*)".to_owned(), Some(1.25)),
                ("sum(//*, @num-iter)".to_owned(), None),
            ],
            rng: [1, 2, 3, 4],
        },
    };
    vec![
        WireMsg::Hello { spec: spec.clone() },
        WireMsg::HelloAck {
            spec_digest: spec.digest(),
        },
        WireMsg::Step {
            island: island.clone(),
        },
        WireMsg::StepDone {
            island,
            converged: true,
        },
        WireMsg::WorkerError {
            detail: "grammar digest mismatch".to_owned(),
        },
        WireMsg::Shutdown,
    ]
}

/// Every message kind survives message-encode → frame-encode →
/// frame-decode → message-decode exactly, sequence number included.
#[test]
fn every_message_kind_round_trips_through_a_frame() {
    for (seq, msg) in all_message_kinds().into_iter().enumerate() {
        let payload = encode_msg(&msg).expect("message encodes");
        let frame = encode_frame(seq as u64, &payload).expect("frame encodes");
        let (got_seq, got_payload) = decode_frame(&frame).expect("frame decodes");
        assert_eq!(got_seq, seq as u64);
        assert_eq!(got_payload, payload);
        let got = decode_msg(&got_payload).expect("message decodes");
        assert_eq!(got, msg, "round-trip must be exact");
    }
}

/// The encode side of the over-length guard: a payload past
/// [`MAX_FRAME_LEN`] is refused before any bytes hit the wire.
#[test]
fn oversized_payloads_are_refused_at_encode_time() {
    let payload = vec![0u8; MAX_FRAME_LEN as usize + 1];
    match encode_frame(0, &payload) {
        Err(TransportError::OverLength { .. }) => {}
        other => panic!("expected OverLength, got {other:?}"),
    }
}

/// Garbage that passed the frame digest can still be hostile JSON; the
/// message decoder must reject it as `Malformed`, never panic.
#[test]
fn non_message_payloads_are_rejected_typed() {
    for payload in [
        &b""[..],
        b"{}",
        b"[1,2,3]",
        b"{\"NoSuchVariant\":{}}",
        b"\xff\xfe not utf-8",
    ] {
        match decode_msg(payload) {
            Err(TransportError::Malformed(_)) => {}
            other => panic!("payload {payload:?}: expected Malformed, got {other:?}"),
        }
    }
}

// ---------------------------------------------------------------------------
// Properties over arbitrary payload bytes and corruptions.
// ---------------------------------------------------------------------------

/// An arbitrary byte (the vendored proptest drives ranges, not `any`).
fn byte() -> impl Strategy<Value = u8> {
    (0u16..256).prop_map(|v| v as u8)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Any payload round-trips exactly under any sequence number.
    #[test]
    fn arbitrary_payloads_round_trip(
        seq in 0u64..u64::MAX,
        payload in prop::collection::vec(byte(), 0..512),
    ) {
        let frame = encode_frame(seq, &payload).expect("frame encodes");
        prop_assert_eq!(frame.len(), FRAME_HEADER_LEN + payload.len());
        let (got_seq, got_payload) = decode_frame(&frame).expect("frame decodes");
        prop_assert_eq!(got_seq, seq);
        prop_assert_eq!(got_payload, payload);
    }

    /// Every possible truncation — mid-header or mid-payload — is a typed
    /// `TornFrame` naming how many bytes were expected and seen.
    #[test]
    fn every_truncation_is_a_typed_torn_frame(
        seq in 0u64..u64::MAX,
        payload in prop::collection::vec(byte(), 0..256),
        cut in 0.0f64..1.0,
    ) {
        let frame = encode_frame(seq, &payload).expect("frame encodes");
        let keep = (frame.len() as f64 * cut) as usize; // always < len
        match decode_frame(&frame[..keep]) {
            Err(TransportError::TornFrame { expected, got }) => {
                prop_assert_eq!(got, keep);
                prop_assert!(expected > keep, "expected must exceed what arrived");
            }
            other => prop_assert!(false, "truncation to {keep} gave {other:?}"),
        }
    }

    /// Flipping any single bit anywhere in the frame is either caught with
    /// a typed error, or — only when the flip landed inside the sequence
    /// field, which carries no integrity of its own — yields the original
    /// payload under a different sequence number. No panic, no silent
    /// payload corruption.
    #[test]
    fn any_single_bit_flip_is_caught_or_harmless(
        seq in 0u64..u64::MAX,
        payload in prop::collection::vec(byte(), 0..256),
        pos_frac in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let mut frame = encode_frame(seq, &payload).expect("frame encodes");
        let pos = ((frame.len() as f64 * pos_frac) as usize).min(frame.len() - 1);
        frame[pos] ^= 1 << bit;
        match decode_frame(&frame) {
            Ok((got_seq, got_payload)) => {
                // The seq field occupies header bytes 8..16.
                prop_assert!((8..16).contains(&pos), "flip at {pos} slipped through");
                prop_assert_ne!(got_seq, seq);
                prop_assert_eq!(got_payload, payload);
            }
            Err(
                TransportError::BadMagic { .. }
                | TransportError::VersionSkew { .. }
                | TransportError::OverLength { .. }
                | TransportError::TornFrame { .. }
                | TransportError::DigestMismatch { .. },
            ) => {}
            Err(other) => prop_assert!(false, "unexpected error kind {other:?}"),
        }
    }

    /// Any protocol version other than ours is a typed `VersionSkew`
    /// reporting both sides' versions.
    #[test]
    fn every_foreign_version_is_a_typed_skew(
        version in prop_oneof![
            0u32..PROTOCOL_VERSION,
            PROTOCOL_VERSION + 1..u32::MAX,
        ],
        payload in prop::collection::vec(byte(), 0..64),
    ) {
        let mut frame = encode_frame(3, &payload).expect("frame encodes");
        frame[4..8].copy_from_slice(&version.to_le_bytes());
        match decode_frame(&frame) {
            Err(TransportError::VersionSkew { found, expected }) => {
                prop_assert_eq!(found, version);
                prop_assert_eq!(expected, PROTOCOL_VERSION);
            }
            other => prop_assert!(false, "version {version} gave {other:?}"),
        }
    }

    /// A length field past the cap is a typed `OverLength` even when the
    /// digest and magic are pristine — the bound is checked *before* the
    /// reader would try to allocate the claimed buffer.
    #[test]
    fn every_over_length_claim_is_typed(
        extra in 1u32..1_000_000,
        payload in prop::collection::vec(byte(), 0..64),
    ) {
        let mut frame = encode_frame(4, &payload).expect("frame encodes");
        let claimed = MAX_FRAME_LEN + extra;
        frame[16..20].copy_from_slice(&claimed.to_le_bytes());
        match decode_frame(&frame) {
            Err(TransportError::OverLength { len, max }) => {
                prop_assert_eq!(len, claimed);
                prop_assert_eq!(max, MAX_FRAME_LEN);
            }
            other => prop_assert!(false, "claimed {claimed} gave {other:?}"),
        }
    }

    /// Wrong magic is a typed `BadMagic` echoing the found bytes.
    #[test]
    fn every_foreign_magic_is_typed(
        raw in (0u16..256, 0u16..256, 0u16..256, 0u16..256),
        payload in prop::collection::vec(byte(), 0..64),
    ) {
        let magic = [raw.0 as u8, raw.1 as u8, raw.2 as u8, raw.3 as u8];
        if magic != FRAME_MAGIC {
            let mut frame = encode_frame(5, &payload).expect("frame encodes");
            frame[0..4].copy_from_slice(&magic);
            match decode_frame(&frame) {
                Err(TransportError::BadMagic { found }) => prop_assert_eq!(found, magic),
                other => prop_assert!(false, "magic {magic:?} gave {other:?}"),
            }
        }
    }
}
