//! Resilience integration tests for the supervised island-model search.
//!
//! These prove the signature invariant of the island runtime end to end:
//! for a fixed `(seed, topology)` the search produces **byte-identical
//! results** regardless of worker count, kill points, injected island
//! crashes or stalls, and resume order. Concretely:
//!
//! 1. **Worker count is invisible**: the same outcome at 1, 2 and 4
//!    workers, and the same checkpoint *bytes* when interrupted at the
//!    same (content-addressed) point.
//! 2. **Kill-and-resume is exact** with a multi-island topology.
//! 3. **Island faults cost retries, not results**: a transient worker
//!    crash is retried from the island's committed state and is invisible
//!    in the outcome; a persistent crash freezes the island, which still
//!    merges — the search completes on the surviving islands.
//! 4. **Wall-clock events are report-only**: stalls and slow heartbeats
//!    surface in telemetry but never change results.
//! 5. **Foreign or corrupted island checkpoints are rejected with typed
//!    errors and never partially loaded** (property-tested).

use fegen::core::gp::island::ledger_digest;
use fegen::core::ir::IrNode;
use fegen::core::search::TrainingExample;
use fegen::core::{
    CheckpointError, FaultInjector, FaultKind, FaultPlan, FaultTrigger, FeatureSearch,
    IslandTopology, SearchCheckpoint, SearchConfig, SearchError, SearchOutcome, Telemetry,
};
use std::path::PathBuf;
use std::sync::OnceLock;

/// Synthetic task: the best unroll factor is fully determined by the number
/// of `insn` children, so the search reliably finds improving features.
fn synthetic_examples(n: usize) -> Vec<TrainingExample> {
    (0..n)
        .map(|i| {
            let insns = 1 + i % 5;
            let best = insns % 4;
            let ir = IrNode::build("loop", |l| {
                l.attr_num("decoy", (i * 7 % 3) as f64);
                for _ in 0..insns {
                    l.child("insn", |x| {
                        x.attr_enum("mode", "SI");
                    });
                }
                l.child("jump_insn", |_| {});
            });
            let cycles = (0..4)
                .map(|k| {
                    if k == best {
                        80.0
                    } else {
                        100.0 + (k as f64 - best as f64).abs()
                    }
                })
                .collect();
            TrainingExample { ir, cycles }
        })
        .collect()
}

/// A small multi-island search configuration. The generation budget scales
/// with the island count because every island's generations bill against
/// the shared `max_total_generations`.
fn island_config(islands: usize) -> SearchConfig {
    let mut config = SearchConfig::quick();
    config.seed = 41;
    config.max_features = 2;
    config.max_total_generations = 24 * islands.max(1);
    config.gp.population = 14;
    config.gp.max_generations = 6;
    config.gp.stagnation_limit = 6;
    config.gp.threads = 1;
    config.topology = IslandTopology {
        islands,
        migration_every: 1,
        restart_limit: 3,
    };
    config
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fegen-isl-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn run_clean(config: &SearchConfig, workers: usize) -> SearchOutcome {
    let examples = synthetic_examples(40);
    let search = FeatureSearch::from_examples(&examples, config.clone());
    search
        .driver()
        .workers(workers)
        .run(&examples)
        .expect("clean island run completes")
}

#[test]
fn outcome_is_identical_across_worker_counts() {
    let config = island_config(4);
    let one = run_clean(&config, 1);
    assert!(
        !one.features.is_empty(),
        "the synthetic task must be solvable, or the test proves nothing"
    );
    let two = run_clean(&config, 2);
    let four = run_clean(&config, 4);
    assert_eq!(one, two, "2 workers must not change the outcome");
    assert_eq!(one, four, "4 workers must not change the outcome");
}

/// Interrupts an island search at a *content-addressed* point (the step
/// attempt keyed `island:0:g2#…`), so every worker count stops at the same
/// round boundary, then compares the checkpoint files byte for byte.
#[test]
fn interrupted_checkpoint_bytes_are_identical_across_worker_counts() {
    let examples = synthetic_examples(40);
    let config = island_config(2);

    let checkpoint_bytes = |workers: usize| {
        let search = FeatureSearch::from_examples(&examples, config.clone());
        let dir = temp_dir(&format!("bytes-w{workers}"));
        let injector = FaultInjector::new(vec![FaultPlan {
            trigger: FaultTrigger::OnKeyPrefix("island:0:g2#".into()),
            kind: FaultKind::Cancel,
        }]);
        let err = search
            .driver()
            .workers(workers)
            .checkpoint(&dir, 2)
            .fault_injector(&injector)
            .run(&examples)
            .expect_err("the keyed cancellation must interrupt the run");
        let SearchError::Interrupted {
            checkpoint: Some(path),
            ..
        } = err
        else {
            panic!("expected Interrupted with a checkpoint path, got {err}");
        };
        let ckpt = SearchCheckpoint::load(&path).expect("checkpoint loads");
        let islands = ckpt.islands.expect("interrupted mid-islands");
        assert!(islands.round >= 1, "at least one round must have committed");
        assert!(
            !islands.ledger.is_empty(),
            "migration_every=1 must have produced ledger entries"
        );
        let bytes = std::fs::read(&path).expect("checkpoint readable");
        let _ = std::fs::remove_dir_all(&dir);
        bytes
    };

    let one = checkpoint_bytes(1);
    let two = checkpoint_bytes(2);
    let four = checkpoint_bytes(4);
    assert_eq!(one, two, "checkpoint bytes must not depend on worker count");
    assert_eq!(one, four, "checkpoint bytes must not depend on worker count");
}

#[test]
fn kill_and_resume_with_islands_is_exact() {
    let examples = synthetic_examples(40);
    let config = island_config(2);
    let search = FeatureSearch::from_examples(&examples, config.clone());

    let reference = run_clean(&config, 2);

    let dir = temp_dir("resume");
    let injector = FaultInjector::new(vec![FaultPlan {
        trigger: FaultTrigger::OnCall(40),
        kind: FaultKind::Cancel,
    }]);
    let err = search
        .driver()
        .workers(2)
        .checkpoint(&dir, 2)
        .fault_injector(&injector)
        .run(&examples)
        .expect_err("the injected cancellation must interrupt the run");
    let SearchError::Interrupted {
        checkpoint: Some(checkpoint),
        ..
    } = err
    else {
        panic!("expected Interrupted with a checkpoint path, got {err}");
    };
    assert!(injector.injected() >= 1);

    // Resume at a *different* worker count: the trajectory may not fork.
    let resumed = search
        .driver()
        .workers(4)
        .resume(&checkpoint, &examples)
        .expect("resume completes");
    assert_eq!(resumed, reference, "resume must not fork the trajectory");
    assert!(
        !checkpoint.exists(),
        "a completed search must clean up its checkpoint"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn transient_island_crash_is_retried_and_invisible() {
    let examples = synthetic_examples(40);
    let config = island_config(2);
    let reference = run_clean(&config, 2);

    // Crash exactly one attempt of island 1's generation-2 step; the
    // retry (attempt 2) must reproduce the committed trajectory.
    let injector = FaultInjector::new(vec![FaultPlan {
        trigger: FaultTrigger::OnKeyPrefix("island:1:g2#a1".into()),
        kind: FaultKind::IslandKill,
    }]);
    let search = FeatureSearch::from_examples(&examples, config);
    let outcome = search
        .driver()
        .workers(2)
        .fault_injector(&injector)
        .run(&examples)
        .expect("a transient island crash must not abort the search");
    assert!(injector.injected() >= 1, "the kill must have fired");
    assert_eq!(
        outcome, reference,
        "a retried island step must be invisible in the outcome"
    );
}

#[test]
fn persistent_island_crash_freezes_the_island_but_the_search_completes() {
    let examples = synthetic_examples(40);
    let config = island_config(2);

    // Kill *every* attempt of *every* generation step of island 0: the
    // coordinator must exhaust the restart budget, freeze the island, and
    // finish on island 1 alone (the frozen island still merges).
    let injector = FaultInjector::new(vec![FaultPlan {
        trigger: FaultTrigger::OnKeyPrefix("island:0:g".into()),
        kind: FaultKind::IslandKill,
    }]);
    let telemetry = Telemetry::memory();
    let search = FeatureSearch::from_examples(&examples, config);
    let outcome = search
        .driver()
        .workers(2)
        .fault_injector(&injector)
        .telemetry(telemetry.clone())
        .run(&examples)
        .expect("a dead island must degrade the search, not abort it");
    assert!(
        !outcome.features.is_empty(),
        "the surviving island must still deliver features"
    );
    let lines = telemetry.drain_memory();
    assert!(
        lines.iter().any(|l| l.contains("\"kind\":\"island_frozen\"")),
        "freezing must be reported"
    );
    assert!(
        lines.iter().any(|l| l.contains("\"kind\":\"island_restart\"")),
        "the restart attempts must be reported"
    );
}

#[test]
fn stalls_and_slow_heartbeats_are_report_only() {
    let examples = synthetic_examples(40);
    let config = island_config(2);
    let reference = run_clean(&config, 2);

    let injector = FaultInjector::new(vec![
        FaultPlan {
            trigger: FaultTrigger::OnKeyPrefix("island:1:g1#a1".into()),
            kind: FaultKind::IslandStall(40),
        },
        FaultPlan {
            trigger: FaultTrigger::OnKeyPrefix("island:0:g2#a1".into()),
            kind: FaultKind::SlowHeartbeat(30),
        },
    ]);
    let telemetry = Telemetry::memory();
    let search = FeatureSearch::from_examples(&examples, config);
    let outcome = search
        .driver()
        .workers(2)
        .heartbeat_deadline_ms(8)
        .fault_injector(&injector)
        .telemetry(telemetry.clone())
        .run(&examples)
        .expect("stalls must never abort the search");
    assert!(injector.injected() >= 1, "the stall must have fired");
    assert_eq!(
        outcome, reference,
        "wall-clock faults must be invisible in the outcome"
    );
    let lines = telemetry.drain_memory();
    assert!(
        lines
            .iter()
            .any(|l| l.contains("\"kind\":\"island_heartbeat_missed\"")),
        "the 40ms stall against an 8ms deadline must be reported"
    );
}

// ---------------------------------------------------------------------------
// Property tests: corrupted island checkpoints are rejected, never loaded.
// ---------------------------------------------------------------------------

/// Shared fixture: one real interrupted island run, built once.
struct Fixture {
    examples: Vec<TrainingExample>,
    config: SearchConfig,
    checkpoint: SearchCheckpoint,
    reference: SearchOutcome,
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let examples = synthetic_examples(40);
        let config = island_config(2);
        let search = FeatureSearch::from_examples(&examples, config.clone());
        let reference = search.try_run(&examples).expect("reference run completes");

        let dir = temp_dir("fixture");
        let injector = FaultInjector::new(vec![FaultPlan {
            trigger: FaultTrigger::OnKeyPrefix("island:0:g2#".into()),
            kind: FaultKind::Cancel,
        }]);
        let err = search
            .driver()
            .checkpoint(&dir, 2)
            .fault_injector(&injector)
            .run(&examples)
            .expect_err("the keyed cancellation must interrupt the run");
        let SearchError::Interrupted {
            checkpoint: Some(path),
            ..
        } = err
        else {
            panic!("expected Interrupted with a checkpoint path, got {err}");
        };
        let checkpoint = SearchCheckpoint::load(&path).expect("checkpoint loads");
        let islands = checkpoint.islands.as_ref().expect("mid-islands checkpoint");
        assert!(!islands.ledger.is_empty(), "fixture needs a migration ledger");
        let _ = std::fs::remove_dir_all(&dir);
        Fixture {
            examples,
            config,
            checkpoint,
            reference,
        }
    })
}

/// The corruption cases the resume path must reject atomically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Corruption {
    /// One island missing: topology mismatch.
    DropIsland,
    /// One island too many: topology mismatch.
    DuplicateIsland,
    /// Checkpoint from a different configuration.
    ForeignFingerprint,
    /// Migration ledger truncated (digest no longer matches).
    TruncateLedger,
    /// Stored ledger digest flipped.
    FlipLedgerDigest,
    /// Island ids no longer contiguous with their slots.
    SwapIslandIds,
    /// Ledger record claims a round after the snapshot's (digest kept
    /// consistent, so only the range check can catch it).
    LedgerRoundOutOfRange,
    /// Both a single-population and an island snapshot present.
    BothGpAndIslands,
}

impl Corruption {
    const ALL: [Corruption; 8] = [
        Corruption::DropIsland,
        Corruption::DuplicateIsland,
        Corruption::ForeignFingerprint,
        Corruption::TruncateLedger,
        Corruption::FlipLedgerDigest,
        Corruption::SwapIslandIds,
        Corruption::LedgerRoundOutOfRange,
        Corruption::BothGpAndIslands,
    ];

    /// Applies the corruption to a pristine checkpoint.
    fn apply(self, ckpt: &mut SearchCheckpoint, salt: u64) {
        let islands = ckpt.islands.as_mut().expect("island checkpoint");
        match self {
            Corruption::DropIsland => {
                islands.islands.pop();
            }
            Corruption::DuplicateIsland => {
                let dup = islands.islands[0].clone();
                islands.islands.push(dup);
            }
            Corruption::ForeignFingerprint => {
                ckpt.config_fingerprint ^= 1 + salt;
            }
            Corruption::TruncateLedger => {
                let keep = salt as usize % islands.ledger.len();
                islands.ledger.truncate(keep);
            }
            Corruption::FlipLedgerDigest => {
                islands.ledger_digest ^= 1 + salt;
            }
            Corruption::SwapIslandIds => {
                islands.islands.swap(0, 1);
            }
            Corruption::LedgerRoundOutOfRange => {
                islands.ledger[0].round = islands.round + 1 + salt as usize % 7;
                // Keep the digest consistent so only the range check fires.
                islands.ledger_digest = ledger_digest(&islands.ledger);
            }
            Corruption::BothGpAndIslands => {
                ckpt.gp = Some(islands.islands[0].gp.clone());
            }
        }
    }

    /// Whether the rejection is an identity mismatch (`StateMismatch`) or
    /// integrity corruption (`Corrupt`).
    fn expects_mismatch(self) -> bool {
        matches!(
            self,
            Corruption::DropIsland | Corruption::DuplicateIsland | Corruption::ForeignFingerprint
        )
    }
}

mod corruption_props {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Every corruption of a real mid-islands checkpoint is rejected
        /// with the matching *typed* error — never a panic, never a
        /// partially-applied resume.
        #[test]
        fn corrupted_island_checkpoints_are_rejected(
            which in 0usize..Corruption::ALL.len(),
            salt in 0u64..1000,
        ) {
            let corruption = Corruption::ALL[which];
            let fx = fixture();
            let mut ckpt = fx.checkpoint.clone();
            corruption.apply(&mut ckpt, salt);

            let dir = temp_dir(&format!("prop-{which}-{salt}"));
            let path = ckpt.save(&dir).expect("mutated checkpoint saves");
            let search = FeatureSearch::from_examples(&fx.examples, fx.config.clone());
            let err = search
                .driver()
                .resume(&path, &fx.examples)
                .expect_err("a corrupted checkpoint must be rejected");
            let _ = std::fs::remove_dir_all(&dir);
            match err {
                SearchError::Checkpoint(CheckpointError::StateMismatch { .. }) => {
                    prop_assert!(
                        corruption.expects_mismatch(),
                        "{corruption:?} should be Corrupt, got StateMismatch"
                    );
                }
                SearchError::Checkpoint(CheckpointError::Corrupt { .. }) => {
                    prop_assert!(
                        !corruption.expects_mismatch(),
                        "{corruption:?} should be StateMismatch, got Corrupt"
                    );
                }
                other => prop_assert!(false, "expected a typed checkpoint error, got {other}"),
            }
        }
    }
}

/// The flip side of the rejection property: the *pristine* checkpoint the
/// corruptions were derived from resumes to exactly the reference outcome,
/// so rejection is all-or-nothing, not "load what validates".
#[test]
fn the_pristine_fixture_checkpoint_still_resumes_exactly() {
    let fx = fixture();
    let dir = temp_dir("pristine");
    let path = fx.checkpoint.save(&dir).expect("checkpoint saves");
    let search = FeatureSearch::from_examples(&fx.examples, fx.config.clone());
    let resumed = search
        .driver()
        .resume(&path, &fx.examples)
        .expect("the unmodified checkpoint must resume");
    assert_eq!(resumed, fx.reference, "resume must not fork the trajectory");
    let _ = std::fs::remove_dir_all(&dir);
}
