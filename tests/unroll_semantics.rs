//! Semantics preservation: unrolling any loop of any generated benchmark
//! by any factor must not change what the program computes.

use fegen::rtl::lower::lower_program;
use fegen::rtl::unroll::apply_factors;
use fegen::sim::{Arg, Machine, SimConfig, Value};
use fegen::suite::{generate_suite, ArgDesc, Benchmark, SuiteConfig};
use std::collections::HashMap;

fn to_sim_args(args: &[ArgDesc]) -> Vec<Arg> {
    args.iter()
        .map(|a| match a {
            ArgDesc::Int(v) => Arg::Int(*v),
            ArgDesc::Float(v) => Arg::Float(*v),
            ArgDesc::Array(n) => Arg::Array(n.clone()),
        })
        .collect()
}

/// Runs the benchmark's full workload and returns every kernel return
/// value plus a digest of all of memory.
fn observe(b: &Benchmark, program: &fegen::rtl::RtlProgram) -> (Vec<Option<Value>>, u64) {
    let mut m = Machine::new(program, SimConfig::default());
    let mut results = Vec::new();
    for call in b.init.iter().chain(&b.kernels) {
        results.push(
            m.call(&call.func, &to_sim_args(&call.args))
                .unwrap_or_else(|e| panic!("{}::{}: {e}", b.name, call.func)),
        );
    }
    // FNV-style digest of the memory image.
    let mut h = 0xcbf29ce484222325u64;
    for &cell in &m.memory {
        h ^= cell;
        h = h.wrapping_mul(0x100000001b3);
    }
    (results, h)
}

#[test]
fn unrolling_never_changes_observable_behaviour() {
    let suite = generate_suite(&SuiteConfig::tiny());
    for (bi, b) in suite.iter().enumerate() {
        let rtl = lower_program(&b.program).unwrap();
        let reference = observe(b, &rtl);
        // Several deterministic-but-arbitrary factor assignments.
        for variant in 0..3u64 {
            let mut unrolled = rtl.clone();
            for f in &mut unrolled.functions {
                if f.name == "init" {
                    continue;
                }
                let factors: HashMap<usize, usize> = f
                    .loops
                    .iter()
                    .map(|l| {
                        let mix = (l.id as u64)
                            .wrapping_mul(2654435761)
                            .wrapping_add(variant * 97 + bi as u64);
                        (l.id, (mix % 16) as usize)
                    })
                    .collect();
                *f = apply_factors(f, &factors)
                    .unwrap_or_else(|e| panic!("{}::{}: {e}", b.name, f.name));
            }
            let observed = observe(b, &unrolled);
            assert_eq!(
                reference, observed,
                "{} variant {variant}: unrolling changed results",
                b.name
            );
        }
    }
}

#[test]
fn gcc_default_factors_preserve_behaviour() {
    use fegen::rtl::heuristic::{gcc_default_factors, GccParams};
    let suite = generate_suite(&SuiteConfig::tiny());
    for b in &suite {
        let rtl = lower_program(&b.program).unwrap();
        let reference = observe(b, &rtl);
        let mut unrolled = rtl.clone();
        for f in &mut unrolled.functions {
            if f.name == "init" {
                continue;
            }
            let factors = gcc_default_factors(f, &GccParams::default());
            *f = apply_factors(f, &factors).unwrap();
        }
        assert_eq!(reference, observe(b, &unrolled), "{}", b.name);
    }
}
