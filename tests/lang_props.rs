//! Property tests of the Tiny-C front end over *random ASTs*: the pretty
//! printer and parser must round-trip any well-formed program, not just
//! the ones the suite generator happens to emit.

use fegen_lang::ast::*;
use fegen_lang::{parse_program, print_program};
use proptest::prelude::*;

fn ident() -> impl Strategy<Value = String> {
    // Small pool so expressions reference declared names.
    prop::sample::select(vec!["a", "b", "c", "x", "y"]).prop_map(str::to_owned)
}

fn literal() -> impl Strategy<Value = Expr> {
    prop_oneof![
        (-1000i64..1000).prop_map(Expr::IntLit),
        // Finite floats with short decimal forms (printer round-trip is
        // exact for these; `{}` prints shortest-roundtrip anyway).
        (-100i32..100).prop_map(|v| Expr::FloatLit(v as f64 / 4.0)),
    ]
}

fn arith_op() -> impl Strategy<Value = BinOp> {
    prop::sample::select(vec![
        BinOp::Add,
        BinOp::Sub,
        BinOp::Mul,
        BinOp::Div,
        BinOp::Lt,
        BinOp::Le,
        BinOp::Gt,
        BinOp::Ge,
        BinOp::Eq,
        BinOp::Ne,
        BinOp::And,
        BinOp::Or,
    ])
}

/// Integer-typed expressions (safe as array indices: the name pool's
/// scalars are all `int`).
fn int_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (-64i64..64).prop_map(Expr::IntLit),
        ident().prop_map(Expr::Var),
    ];
    leaf.prop_recursive(3, 12, 2, |inner| {
        prop_oneof![
            (
                prop::sample::select(vec![BinOp::Add, BinOp::Sub, BinOp::Mul]),
                inner.clone(),
                inner
            )
                .prop_map(|(op, a, b)| Expr::bin(op, a, b)),
        ]
    })
}

fn expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![literal(), ident().prop_map(Expr::Var)];
    leaf.prop_recursive(4, 24, 3, |inner| {
        prop_oneof![
            (arith_op(), inner.clone(), inner.clone())
                .prop_map(|(op, a, b)| Expr::bin(op, a, b)),
            inner.clone().prop_map(|e| e.neg()),
            inner.prop_map(|e| Expr::Unary {
                op: UnOp::Not,
                expr: Box::new(e)
            }),
            (ident(), int_expr()).prop_map(|(n, i)| Expr::Index {
                name: format!("arr_{n}"),
                indices: vec![i],
            }),
        ]
    })
}

fn stmt(depth: u32) -> BoxedStrategy<Stmt> {
    let assign = (ident(), expr()).prop_map(|(n, e)| Stmt::assign(n, e));
    let array_assign = (ident(), int_expr(), expr())
        .prop_map(|(n, i, e)| Stmt::assign_index(format!("arr_{n}"), i, e));
    if depth == 0 {
        prop_oneof![assign, array_assign].boxed()
    } else {
        let block = prop::collection::vec(stmt(depth - 1), 0..4).prop_map(Block::new);
        prop_oneof![
            3 => assign,
            2 => array_assign,
            2 => (expr(), block.clone(), prop::option::of(block.clone())).prop_map(
                |(cond, then_blk, else_blk)| Stmt::If {
                    cond,
                    then_blk,
                    else_blk,
                }
            ),
            1 => (ident(), expr(), block.clone()).prop_map(|(v, to, body)| Stmt::For {
                init: Some(Box::new(Stmt::assign(v.clone(), Expr::int(0)))),
                cond: Expr::var(v.clone()).lt(to),
                step: Some(Box::new(Stmt::assign(
                    v.clone(),
                    Expr::var(v).add(Expr::int(1))
                ))),
                body,
            }),
            1 => block.prop_map(Stmt::Block),
        ]
        .boxed()
    }
}

fn program() -> impl Strategy<Value = Program> {
    prop::collection::vec(stmt(3), 1..6).prop_map(|stmts| {
        let mut p = Program::new();
        // Declare the whole name pool so every reference resolves.
        for n in ["a", "b", "c", "x", "y"] {
            p.globals.push(VarDecl {
                name: n.to_owned(),
                ty: Type::Int,
            });
            p.globals.push(VarDecl {
                name: format!("arr_{n}"),
                ty: Type::int_array(64),
            });
        }
        p.functions.push(Function {
            name: "f".into(),
            ret: Type::Void,
            params: vec![],
            body: Block::new(stmts),
        });
        p
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Printing reaches a fixpoint after one parse: the parser may
    /// canonicalise (e.g. fold `-0` to `0`), but the canonical form must
    /// be stable — print(parse(print(p))) == print(p) up to that first
    /// canonicalisation.
    #[test]
    fn printer_parser_roundtrip(p in program()) {
        let printed = print_program(&p);
        let once = parse_program(&printed)
            .unwrap_or_else(|e| panic!("{e}\n---\n{printed}"));
        let printed_once = print_program(&once);
        let twice = parse_program(&printed_once)
            .unwrap_or_else(|e| panic!("{e}\n---\n{printed_once}"));
        prop_assert_eq!(&once, &twice, "canonical form unstable:\n{}", printed_once);
        prop_assert_eq!(print_program(&twice), printed_once);
    }

    /// Random programs also lower without errors (sema passed, so lowering
    /// must accept them).
    #[test]
    fn checked_programs_lower(p in program()) {
        let printed = print_program(&p);
        let reparsed = parse_program(&printed).expect("roundtrip");
        fegen_rtl::lower::lower_program(&reparsed)
            .unwrap_or_else(|e| panic!("{e}\n---\n{printed}"));
    }
}
