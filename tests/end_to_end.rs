//! End-to-end integration: suite generation → lowering → simulation →
//! feature search → deployment, across crate boundaries.

use fegen::core::{FeatureSearch, SearchConfig};
use fegen::rtl::export::export_loop;
use fegen::rtl::lower::lower_program;
use fegen::sim::oracle::{measure_workload, CallSpec, OracleConfig, Workload};
use fegen::sim::Arg;
use fegen::suite::{generate_suite, ArgDesc, SuiteConfig};

fn to_sim_args(args: &[ArgDesc]) -> Vec<Arg> {
    args.iter()
        .map(|a| match a {
            ArgDesc::Int(v) => Arg::Int(*v),
            ArgDesc::Float(v) => Arg::Float(*v),
            ArgDesc::Array(n) => Arg::Array(n.clone()),
        })
        .collect()
}

#[test]
fn suite_benchmarks_lower_simulate_and_measure() {
    let suite = generate_suite(&SuiteConfig::tiny());
    let mut total_loops = 0;
    for b in &suite {
        let rtl = lower_program(&b.program).unwrap_or_else(|e| panic!("{}: {e}", b.name));
        let workload = Workload {
            init: b
                .init
                .iter()
                .map(|c| CallSpec {
                    func: c.func.clone(),
                    args: to_sim_args(&c.args),
                })
                .collect(),
            kernels: b
                .kernels
                .iter()
                .map(|c| CallSpec {
                    func: c.func.clone(),
                    args: to_sim_args(&c.args),
                })
                .collect(),
        };
        let tables = measure_workload(&rtl, &workload, &OracleConfig::default())
            .unwrap_or_else(|e| panic!("{}: {e}", b.name));
        assert!(!tables.is_empty(), "{} measured no loops", b.name);
        for t in &tables {
            assert_eq!(t.cycles.len(), 16);
            assert!(t.cycles.iter().all(|&c| c.is_finite() && c > 0.0));
        }
        total_loops += tables.len();
    }
    assert!(total_loops >= 9, "tiny suite should have several loops");
}

#[test]
fn feature_search_improves_over_baseline_on_real_exports() {
    // Build training examples from real suite loops, run the search, and
    // check the found features actually evaluate on every loop.
    let suite = generate_suite(&SuiteConfig::tiny());
    let mut examples = Vec::new();
    for b in &suite {
        let rtl = lower_program(&b.program).unwrap();
        let workload = Workload {
            init: b
                .init
                .iter()
                .map(|c| CallSpec {
                    func: c.func.clone(),
                    args: to_sim_args(&c.args),
                })
                .collect(),
            kernels: b
                .kernels
                .iter()
                .map(|c| CallSpec {
                    func: c.func.clone(),
                    args: to_sim_args(&c.args),
                })
                .collect(),
        };
        for t in measure_workload(&rtl, &workload, &OracleConfig::default()).unwrap() {
            let f = rtl.function(&t.site.func).unwrap();
            let region = f.loops.iter().find(|l| l.id == t.site.loop_id).unwrap();
            examples.push(fegen::core::TrainingExample {
                ir: export_loop(f, region, &rtl.layout),
                cycles: t.cycles,
            });
        }
    }

    let mut config = SearchConfig::quick();
    config.max_features = 3;
    config.max_total_generations = 90;
    config.gp.population = 16;
    config.gp.max_generations = 10;
    let search = FeatureSearch::from_examples(&examples, config);
    let outcome = search.run(&examples);

    // The search may or may not find improving features at this tiny
    // budget, but whatever it reports must be consistent.
    let mut prev = outcome.baseline_speedup;
    for step in &outcome.steps {
        assert!(step.speedup > prev, "accepted a non-improving feature");
        assert!(
            step.speedup <= outcome.oracle_speedup + 1e-9,
            "speedup {} exceeds the oracle ceiling {}",
            step.speedup,
            outcome.oracle_speedup
        );
        prev = step.speedup;
    }
    for f in &outcome.features {
        for e in &examples {
            f.eval_default(&e.ir)
                .unwrap_or_else(|err| panic!("found feature fails on a training loop: {err}"));
        }
        // And every found feature must round-trip through its textual form.
        let printed = f.to_string();
        assert_eq!(fegen::core::parse_feature(&printed).unwrap(), *f);
    }
}

#[test]
fn mesa_example_pipeline() {
    let b = fegen::suite::mesa_example();
    let rtl = lower_program(&b.program).unwrap();
    let workload = Workload {
        init: vec![CallSpec {
            func: "init".into(),
            args: vec![],
        }],
        kernels: vec![CallSpec {
            func: "spot_exp".into(),
            args: vec![Arg::Int(511)],
        }],
    };
    let tables = measure_workload(&rtl, &workload, &OracleConfig::default()).unwrap();
    assert_eq!(tables.len(), 1);
    let t = &tables[0];
    // The forward-difference loop must benefit from some unrolling.
    assert!(t.best_factor() >= 2, "mesa loop best factor {}", t.best_factor());
    assert!(t.cycles[0] / t.cycles[t.best_factor()] > 1.01);
}
