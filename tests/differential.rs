//! Differential testing: an independent AST-level reference interpreter
//! executed against the RTL pipeline (lowering + the cycle-accounting
//! machine) on randomly generated programs. Any divergence is a bug in
//! lowering, unrolling or the simulator.

mod reference {
    //! A deliberately naive tree-walking interpreter for Tiny-C. It shares
    //! no code with `fegen-rtl`/`fegen-sim`; the only common ground is the
    //! AST.

    use fegen_lang::ast::*;
    use std::collections::HashMap;

    #[derive(Debug, Clone, Copy, PartialEq)]
    pub enum V {
        I(i64),
        F(f64),
    }

    impl V {
        pub fn as_i(self) -> i64 {
            match self {
                V::I(v) => v,
                V::F(v) => v as i64,
            }
        }
        pub fn as_f(self) -> f64 {
            match self {
                V::I(v) => v as f64,
                V::F(v) => v,
            }
        }
        fn truthy(self) -> bool {
            match self {
                V::I(v) => v != 0,
                V::F(v) => v != 0.0,
            }
        }
    }

    /// Arrays are stored by name in a global store; array parameters are
    /// name-aliases resolved per frame.
    pub struct Ref<'p> {
        program: &'p Program,
        pub arrays: HashMap<String, (Vec<V>, Vec<usize>)>,
        steps: u64,
    }

    enum Flow {
        Normal,
        Return(Option<V>),
    }

    struct Frame {
        scalars: HashMap<String, V>,
        aliases: HashMap<String, String>,
    }

    impl<'p> Ref<'p> {
        pub fn new(program: &'p Program) -> Self {
            let mut arrays = HashMap::new();
            for g in &program.globals {
                match &g.ty {
                    Type::Array { elem, dims } => {
                        let len: usize = dims.iter().product();
                        let zero = match elem {
                            Scalar::Int => V::I(0),
                            Scalar::Float => V::F(0.0),
                        };
                        arrays.insert(g.name.clone(), (vec![zero; len], dims.clone()));
                    }
                    Type::Int => {
                        arrays.insert(g.name.clone(), (vec![V::I(0)], vec![]));
                    }
                    Type::Float => {
                        arrays.insert(g.name.clone(), (vec![V::F(0.0)], vec![]));
                    }
                    Type::Void => {}
                }
            }
            Ref {
                program,
                arrays,
                steps: 0,
            }
        }

        pub fn call(&mut self, name: &str, args: Vec<V>, array_args: Vec<String>) -> Option<V> {
            let func = self.program.function(name).expect("function exists");
            let mut frame = Frame {
                scalars: HashMap::new(),
                aliases: HashMap::new(),
            };
            let mut scalars = args.into_iter();
            let mut arrays = array_args.into_iter();
            for p in &func.params {
                match &p.ty {
                    Type::Array { .. } => {
                        frame
                            .aliases
                            .insert(p.name.clone(), arrays.next().expect("array arg"));
                    }
                    Type::Int => {
                        frame
                            .scalars
                            .insert(p.name.clone(), V::I(scalars.next().expect("arg").as_i()));
                    }
                    Type::Float => {
                        frame
                            .scalars
                            .insert(p.name.clone(), V::F(scalars.next().expect("arg").as_f()));
                    }
                    Type::Void => {}
                }
            }
            match self.block(&func.body, &mut frame) {
                Flow::Return(v) => v.map(|v| match func.ret {
                    Type::Int => V::I(v.as_i()),
                    Type::Float => V::F(v.as_f()),
                    _ => v,
                }),
                Flow::Normal => None,
            }
        }

        fn resolve<'a>(&self, frame: &'a Frame, name: &'a str) -> String {
            let mut n = name;
            while let Some(next) = frame.aliases.get(n) {
                n = next;
            }
            // Local arrays live under "func::name" — but the reference
            // interpreter stores them by the same key used at decl time.
            n.to_owned()
        }

        fn block(&mut self, b: &Block, frame: &mut Frame) -> Flow {
            for s in &b.stmts {
                if let Flow::Return(v) = self.stmt(s, frame) {
                    return Flow::Return(v);
                }
            }
            Flow::Normal
        }

        fn stmt(&mut self, s: &Stmt, frame: &mut Frame) -> Flow {
            self.steps += 1;
            assert!(self.steps < 10_000_000, "reference interpreter runaway");
            match s {
                Stmt::Decl(d) => {
                    match &d.ty {
                        Type::Array { elem, dims } => {
                            let len: usize = dims.iter().product();
                            let zero = match elem {
                                Scalar::Int => V::I(0),
                                Scalar::Float => V::F(0.0),
                            };
                            // Register under the bare name; lookups resolve
                            // locals before globals via aliases.
                            frame.aliases.insert(d.name.clone(), format!("local${}", d.name));
                            self.arrays
                                .insert(format!("local${}", d.name), (vec![zero; len], dims.clone()));
                        }
                        Type::Int => {
                            frame.scalars.insert(d.name.clone(), V::I(0));
                        }
                        Type::Float => {
                            frame.scalars.insert(d.name.clone(), V::F(0.0));
                        }
                        Type::Void => {}
                    }
                    Flow::Normal
                }
                Stmt::Assign { target, value } => {
                    let v = self.expr(value, frame);
                    if target.indices.is_empty() && frame.scalars.contains_key(&target.name) {
                        let coerced = match frame.scalars[&target.name] {
                            V::I(_) => V::I(v.as_i()),
                            V::F(_) => V::F(v.as_f()),
                        };
                        frame.scalars.insert(target.name.clone(), coerced);
                    } else {
                        let idx: Vec<i64> = target
                            .indices
                            .iter()
                            .map(|e| self.expr(e, frame).as_i())
                            .collect();
                        let key = self.resolve(frame, &target.name);
                        let (cells, dims) = self.arrays.get_mut(&key).expect("array exists");
                        let flat = flatten(&idx, dims);
                        cells[flat] = match cells[flat] {
                            V::I(_) => V::I(v.as_i()),
                            V::F(_) => V::F(v.as_f()),
                        };
                        let coerced = cells[flat];
                        let _ = coerced;
                    }
                    Flow::Normal
                }
                Stmt::If {
                    cond,
                    then_blk,
                    else_blk,
                } => {
                    if self.expr(cond, frame).truthy() {
                        self.block(then_blk, frame)
                    } else if let Some(e) = else_blk {
                        self.block(e, frame)
                    } else {
                        Flow::Normal
                    }
                }
                Stmt::While { cond, body } => {
                    while self.expr(cond, frame).truthy() {
                        if let Flow::Return(v) = self.block(body, frame) {
                            return Flow::Return(v);
                        }
                    }
                    Flow::Normal
                }
                Stmt::For {
                    init,
                    cond,
                    step,
                    body,
                } => {
                    if let Some(i) = init {
                        if let Flow::Return(v) = self.stmt(i, frame) {
                            return Flow::Return(v);
                        }
                    }
                    while self.expr(cond, frame).truthy() {
                        if let Flow::Return(v) = self.block(body, frame) {
                            return Flow::Return(v);
                        }
                        if let Some(st) = step {
                            if let Flow::Return(v) = self.stmt(st, frame) {
                                return Flow::Return(v);
                            }
                        }
                    }
                    Flow::Normal
                }
                Stmt::Return(e) => {
                    let v = e.as_ref().map(|e| self.expr(e, frame));
                    Flow::Return(v)
                }
                Stmt::ExprStmt(e) => {
                    let _ = self.expr(e, frame);
                    Flow::Normal
                }
                Stmt::Block(b) => self.block(b, frame),
            }
        }

        fn expr(&mut self, e: &Expr, frame: &mut Frame) -> V {
            match e {
                Expr::IntLit(v) => V::I(*v),
                Expr::FloatLit(v) => V::F(*v),
                Expr::Var(name) => {
                    if let Some(v) = frame.scalars.get(name) {
                        *v
                    } else {
                        // Global scalar.
                        let key = self.resolve(frame, name);
                        self.arrays[&key].0[0]
                    }
                }
                Expr::Index { name, indices } => {
                    let idx: Vec<i64> = indices
                        .iter()
                        .map(|e| self.expr(e, frame).as_i())
                        .collect();
                    let key = self.resolve(frame, name);
                    let (cells, dims) = &self.arrays[&key];
                    cells[flatten(&idx, dims)]
                }
                Expr::Unary { op, expr } => {
                    let v = self.expr(expr, frame);
                    match op {
                        UnOp::Neg => match v {
                            V::I(x) => V::I(x.wrapping_neg()),
                            V::F(x) => V::F(-x),
                        },
                        UnOp::Not => V::I(i64::from(!v.truthy())),
                    }
                }
                Expr::Binary { op, lhs, rhs } => {
                    let a = self.expr(lhs, frame);
                    let b = self.expr(rhs, frame);
                    binop(*op, a, b)
                }
                Expr::Call { name, args } => {
                    let callee = self.program.function(name).expect("callee exists").clone();
                    let mut scalar_args = Vec::new();
                    let mut array_args = Vec::new();
                    for (p, a) in callee.params.iter().zip(args) {
                        match &p.ty {
                            Type::Array { .. } => {
                                let Expr::Var(n) = a else {
                                    panic!("array arg is a name")
                                };
                                array_args.push(self.resolve(frame, n));
                            }
                            _ => scalar_args.push(self.expr(a, frame)),
                        }
                    }
                    self.call(name, scalar_args, array_args).unwrap_or(V::I(0))
                }
            }
        }
    }

    fn flatten(idx: &[i64], dims: &[usize]) -> usize {
        match (idx.len(), dims.len()) {
            (0, _) => 0,
            (1, _) => idx[0] as usize,
            (2, 2) => idx[0] as usize * dims[1] + idx[1] as usize,
            _ => panic!("index arity"),
        }
    }

    fn binop(op: BinOp, a: V, b: V) -> V {
        use BinOp::*;
        let float = matches!(a, V::F(_)) || matches!(b, V::F(_));
        match op {
            Add | Sub | Mul | Div if float => {
                let (x, y) = (a.as_f(), b.as_f());
                V::F(match op {
                    Add => x + y,
                    Sub => x - y,
                    Mul => x * y,
                    Div => {
                        if y == 0.0 {
                            0.0
                        } else {
                            x / y
                        }
                    }
                    _ => unreachable!(),
                })
            }
            Add => V::I(a.as_i().wrapping_add(b.as_i())),
            Sub => V::I(a.as_i().wrapping_sub(b.as_i())),
            Mul => V::I(a.as_i().wrapping_mul(b.as_i())),
            Div => V::I(if b.as_i() == 0 { 0 } else { a.as_i().wrapping_div(b.as_i()) }),
            Rem => V::I(if b.as_i() == 0 { 0 } else { a.as_i().wrapping_rem(b.as_i()) }),
            Shl => V::I(a.as_i().wrapping_shl((b.as_i() & 63) as u32)),
            Shr => V::I(a.as_i().wrapping_shr((b.as_i() & 63) as u32)),
            BitAnd => V::I(a.as_i() & b.as_i()),
            BitOr => V::I(a.as_i() | b.as_i()),
            BitXor => V::I(a.as_i() ^ b.as_i()),
            Lt | Le | Gt | Ge | Eq | Ne => {
                let r = if float {
                    let (x, y) = (a.as_f(), b.as_f());
                    match op {
                        Lt => x < y,
                        Le => x <= y,
                        Gt => x > y,
                        Ge => x >= y,
                        Eq => x == y,
                        Ne => x != y,
                        _ => unreachable!(),
                    }
                } else {
                    let (x, y) = (a.as_i(), b.as_i());
                    match op {
                        Lt => x < y,
                        Le => x <= y,
                        Gt => x > y,
                        Ge => x >= y,
                        Eq => x == y,
                        Ne => x != y,
                        _ => unreachable!(),
                    }
                };
                V::I(i64::from(r))
            }
            And => V::I(i64::from(a.truthy() && b.truthy())),
            Or => V::I(i64::from(a.truthy() || b.truthy())),
        }
    }
}

use fegen::rtl::lower::lower_program;
use fegen::sim::{Arg, Machine, SimConfig, Value};
use fegen::suite::{generate_suite, ArgDesc, SuiteConfig};
use reference::{Ref, V};

fn approx_eq(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-9 * (1.0 + a.abs().max(b.abs()))
}

fn values_agree(rtl: Option<Value>, reference: Option<V>) -> bool {
    match (rtl, reference) {
        (None, None) => true,
        (Some(Value::I(a)), Some(v)) => a == v.as_i(),
        (Some(Value::F(a)), Some(v)) => approx_eq(a, v.as_f()),
        _ => false,
    }
}

#[test]
fn rtl_machine_matches_reference_interpreter_on_generated_suite() {
    // Note: local arrays in benchmarks use distinct names per kernel
    // (the generator allocates globals only), so the reference
    // interpreter's simple alias scheme is sufficient.
    let suite = generate_suite(&SuiteConfig::tiny());
    for b in &suite {
        let rtl = lower_program(&b.program).unwrap();
        let mut machine = Machine::new(&rtl, SimConfig::default());
        let mut reference = Ref::new(&b.program);

        for call in b.init.iter().chain(&b.kernels) {
            let sim_args: Vec<Arg> = call
                .args
                .iter()
                .map(|a| match a {
                    ArgDesc::Int(v) => Arg::Int(*v),
                    ArgDesc::Float(v) => Arg::Float(*v),
                    ArgDesc::Array(n) => Arg::Array(n.clone()),
                })
                .collect();
            let mut scalar_args = Vec::new();
            let mut array_args = Vec::new();
            for a in &call.args {
                match a {
                    ArgDesc::Int(v) => scalar_args.push(V::I(*v)),
                    ArgDesc::Float(v) => scalar_args.push(V::F(*v)),
                    ArgDesc::Array(n) => array_args.push(n.clone()),
                }
            }
            let rtl_result = machine
                .call(&call.func, &sim_args)
                .unwrap_or_else(|e| panic!("{}::{}: {e}", b.name, call.func));
            let ref_result = reference.call(&call.func, scalar_args, array_args);
            assert!(
                values_agree(rtl_result, ref_result),
                "{}::{} returned {rtl_result:?} vs reference {ref_result:?}",
                b.name,
                call.func
            );
        }

        // Compare every global array cell-by-cell.
        for g in &b.program.globals {
            let (cells, _) = &reference.arrays[&g.name];
            for (i, &expected) in cells.iter().enumerate() {
                let got = machine.read_array(&g.name, i).unwrap();
                assert!(
                    values_agree(Some(got), Some(expected)),
                    "{}: {}[{i}] = {got:?} vs reference {expected:?}",
                    b.name,
                    g.name
                );
            }
        }
    }
}

#[test]
fn differential_on_handwritten_corner_cases() {
    let cases: &[(&str, &str, Vec<Arg>, Vec<V>)] = &[
        (
            "negative division truncates toward zero",
            "int f(int a, int b) { return a / b + a % b; }",
            vec![Arg::Int(-7), Arg::Int(2)],
            vec![V::I(-7), V::I(2)],
        ),
        (
            "mixed int float arithmetic",
            "float f(int a) { return a * 0.5 + a / 2; }",
            vec![Arg::Int(7)],
            vec![V::I(7)],
        ),
        (
            "float to int truncation",
            "int f(float x) { return x * 3.7; }",
            vec![Arg::Float(2.5)],
            vec![V::F(2.5)],
        ),
        (
            "shift and mask",
            "int f(int x) { return ((x << 3) ^ (x >> 1)) & 1023; }",
            vec![Arg::Int(12345)],
            vec![V::I(12345)],
        ),
        (
            "short circuit equivalence without side effects",
            "int f(int a, int b) { return (a > 0 && b > 0) + (a > 0 || b > 0); }",
            vec![Arg::Int(3), Arg::Int(0)],
            vec![V::I(3), V::I(0)],
        ),
        (
            "nested loops with early return",
            "int f(int n) { int i; int j; int s; s = 0;\n\
             for (i = 0; i < n; i = i + 1) {\n\
               for (j = 0; j < i; j = j + 1) { s = s + j; if (s > 50) { return s; } }\n\
             } return s; }",
            vec![Arg::Int(20)],
            vec![V::I(20)],
        ),
    ];
    for (name, src, sim_args, ref_args) in cases {
        let ast = fegen::lang::parse_program(src).unwrap();
        let rtl = lower_program(&ast).unwrap();
        let mut machine = Machine::new(&rtl, SimConfig::default());
        let got = machine.call("f", sim_args).unwrap();
        let mut reference = Ref::new(&ast);
        let expected = reference.call("f", ref_args.clone(), vec![]);
        assert!(
            values_agree(got, expected),
            "{name}: rtl {got:?} vs reference {expected:?}"
        );
    }
}
