//! Resilience integration tests for the process-level island supervisor.
//!
//! These prove the tentpole invariant end to end: for a fixed `(seed,
//! topology)`, a search stepped by **worker processes** over the frame
//! transport produces results and checkpoints **byte-identical** to the
//! in-process thread coordinator — at any worker count, over any channel
//! (in-memory loopback, child stdio pipes, Unix socketpair), and under any
//! injected transport fault schedule. Concretely:
//!
//! 1. **Channel and worker count are invisible**: loopback, stdio and
//!    Unix-socket workers at 1, 2 and 4 workers all reproduce the
//!    thread-mode outcome.
//! 2. **Interrupted checkpoints are byte-identical** across channels and
//!    worker counts, and resume — in either mode — to the thread-mode
//!    reference outcome.
//! 3. **Transient transport faults are byte-invisible**: kills, torn
//!    frames, duplicated frames and stalls at arbitrary round boundaries
//!    cost respawns/reconnects (telemetry), never bytes.
//! 4. **Exhausting the reconnect window degrades, not aborts**: the dead
//!    worker's islands freeze, the survivors complete the search, and the
//!    frozen islands still join the merge.
//! 5. **The worker binary is crash-only**: malformed handshake bytes make
//!    `fegen island-worker` exit nonzero with a typed error — it never
//!    hangs and never panics.

use fegen::core::ir::IrNode;
use fegen::core::search::TrainingExample;
use fegen::core::{
    ChannelKind, FaultInjector, FaultKind, FaultPlan, FaultTrigger, FeatureSearch, IslandStatus,
    IslandTopology, SearchCheckpoint, SearchConfig, SearchError, SearchOutcome, Telemetry,
    WorkerLauncher,
};
use std::io::{Read, Write};
use std::path::PathBuf;
use std::process::{Command, Stdio};

/// Synthetic task: the best unroll factor is fully determined by the number
/// of `insn` children, so the search reliably finds improving features.
fn synthetic_examples(n: usize) -> Vec<TrainingExample> {
    (0..n)
        .map(|i| {
            let insns = 1 + i % 5;
            let best = insns % 4;
            let ir = IrNode::build("loop", |l| {
                l.attr_num("decoy", (i * 7 % 3) as f64);
                for _ in 0..insns {
                    l.child("insn", |x| {
                        x.attr_enum("mode", "SI");
                    });
                }
                l.child("jump_insn", |_| {});
            });
            let cycles = (0..4)
                .map(|k| {
                    if k == best {
                        80.0
                    } else {
                        100.0 + (k as f64 - best as f64).abs()
                    }
                })
                .collect();
            TrainingExample { ir, cycles }
        })
        .collect()
}

/// The same small multi-island configuration the thread-mode resilience
/// suite uses, so the two suites prove properties of the same trajectory.
fn island_config(islands: usize) -> SearchConfig {
    let mut config = SearchConfig::quick();
    config.seed = 41;
    config.max_features = 2;
    config.max_total_generations = 24 * islands.max(1);
    config.gp.population = 14;
    config.gp.max_generations = 6;
    config.gp.stagnation_limit = 6;
    config.gp.threads = 1;
    config.topology = IslandTopology {
        islands,
        migration_every: 1,
        restart_limit: 3,
    };
    config
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fegen-proc-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A launcher spawning this repository's real `fegen island-worker` binary.
fn command_launcher(channel: ChannelKind) -> WorkerLauncher {
    WorkerLauncher::Command {
        argv: vec![
            env!("CARGO_BIN_EXE_fegen").to_owned(),
            "island-worker".to_owned(),
        ],
        channel,
    }
}

/// Thread-coordinator reference run — the byte target everything else must
/// hit.
fn run_threads(config: &SearchConfig, workers: usize) -> SearchOutcome {
    let examples = synthetic_examples(40);
    let search = FeatureSearch::from_examples(&examples, config.clone());
    search
        .driver()
        .workers(workers)
        .run(&examples)
        .expect("thread-mode run completes")
}

fn run_proc(config: &SearchConfig, workers: usize, launcher: WorkerLauncher) -> SearchOutcome {
    let examples = synthetic_examples(40);
    let search = FeatureSearch::from_examples(&examples, config.clone());
    search
        .driver()
        .process_workers(workers, launcher)
        .run(&examples)
        .expect("process-mode run completes")
}

// ---------------------------------------------------------------------------
// 1. Channel and worker count are invisible.
// ---------------------------------------------------------------------------

#[test]
fn loopback_workers_reproduce_the_thread_outcome_at_any_count() {
    let config = island_config(4);
    let reference = run_threads(&config, 2);
    assert!(
        !reference.features.is_empty(),
        "the synthetic task must be solvable, or the test proves nothing"
    );
    for workers in [1, 2, 4] {
        let got = run_proc(&config, workers, WorkerLauncher::Loopback);
        assert_eq!(
            got, reference,
            "{workers} loopback worker(s) must not change the outcome"
        );
    }
}

#[test]
fn stdio_process_workers_reproduce_the_thread_outcome() {
    let config = island_config(4);
    let reference = run_threads(&config, 2);
    for workers in [1, 2] {
        let got = run_proc(&config, workers, command_launcher(ChannelKind::Stdio));
        assert_eq!(
            got, reference,
            "{workers} stdio worker process(es) must not change the outcome"
        );
    }
}

#[cfg(unix)]
#[test]
fn unix_socket_workers_reproduce_the_thread_outcome() {
    let config = island_config(4);
    let reference = run_threads(&config, 2);
    for workers in [2, 4] {
        let got = run_proc(&config, workers, command_launcher(ChannelKind::UnixSocket));
        assert_eq!(
            got, reference,
            "{workers} unix-socket worker process(es) must not change the outcome"
        );
    }
}

// ---------------------------------------------------------------------------
// 2. Interrupted checkpoints: byte-identical across channels and counts,
//    resumable in either mode.
// ---------------------------------------------------------------------------

/// Interrupts a process-mode run at a content-addressed transport point
/// (the first attempt of round 2 on worker 0 — every variant reaches it)
/// and returns the checkpoint's bytes and path.
fn interrupted_proc_checkpoint(
    config: &SearchConfig,
    workers: usize,
    launcher: WorkerLauncher,
    tag: &str,
) -> (Vec<u8>, PathBuf, PathBuf) {
    let examples = synthetic_examples(40);
    let search = FeatureSearch::from_examples(&examples, config.clone());
    let dir = temp_dir(tag);
    let injector = FaultInjector::new(vec![FaultPlan {
        trigger: FaultTrigger::OnKeyPrefix("worker:0:round2#a1".into()),
        kind: FaultKind::Cancel,
    }]);
    let err = search
        .driver()
        .process_workers(workers, launcher)
        .checkpoint(&dir, 2)
        .fault_injector(&injector)
        .run(&examples)
        .expect_err("the keyed cancellation must interrupt the run");
    let SearchError::Interrupted {
        checkpoint: Some(path),
        ..
    } = err
    else {
        panic!("expected Interrupted with a checkpoint path, got {err}");
    };
    assert!(injector.injected() >= 1, "the cancel must have fired");
    let ckpt = SearchCheckpoint::load(&path).expect("checkpoint loads");
    let islands = ckpt.islands.expect("interrupted mid-islands");
    assert!(
        islands.round >= 1,
        "at least one committed round must precede the cancel"
    );
    let bytes = std::fs::read(&path).expect("checkpoint readable");
    (bytes, path, dir)
}

#[test]
fn interrupted_checkpoint_bytes_are_identical_across_channels_and_counts() {
    let config = island_config(2);
    let mut variants: Vec<(&str, usize, WorkerLauncher)> = vec![
        ("loop-w1", 1, WorkerLauncher::Loopback),
        ("loop-w2", 2, WorkerLauncher::Loopback),
        ("loop-w4", 4, WorkerLauncher::Loopback),
        ("stdio-w2", 2, command_launcher(ChannelKind::Stdio)),
    ];
    if cfg!(unix) {
        variants.push(("unix-w2", 2, command_launcher(ChannelKind::UnixSocket)));
    }
    let mut first: Option<(String, Vec<u8>)> = None;
    for (tag, workers, launcher) in variants {
        let (bytes, _, dir) = interrupted_proc_checkpoint(&config, workers, launcher, tag);
        match &first {
            None => first = Some((tag.to_owned(), bytes)),
            Some((ref_tag, ref_bytes)) => assert_eq!(
                &bytes, ref_bytes,
                "checkpoint bytes of {tag} diverged from {ref_tag}"
            ),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Cross-mode resume, both directions: a checkpoint cut by the process
/// supervisor resumes under the thread coordinator (and vice versa) to the
/// same reference outcome — the trajectory lives in the bytes, not in the
/// runtime that wrote them.
#[test]
fn checkpoints_resume_across_modes_to_the_same_outcome() {
    let examples = synthetic_examples(40);
    let config = island_config(2);
    let reference = run_threads(&config, 2);
    let search = FeatureSearch::from_examples(&examples, config.clone());

    // Proc-cut checkpoint → thread-mode resume.
    let (_, path, dir) =
        interrupted_proc_checkpoint(&config, 2, WorkerLauncher::Loopback, "xmode-proc");
    let resumed = search
        .driver()
        .workers(2)
        .resume(&path, &examples)
        .expect("thread-mode resume completes");
    assert_eq!(resumed, reference, "proc→thread resume forked the trajectory");
    let _ = std::fs::remove_dir_all(&dir);

    // Thread-cut checkpoint → proc-mode resume.
    let dir = temp_dir("xmode-thread");
    let injector = FaultInjector::new(vec![FaultPlan {
        trigger: FaultTrigger::OnKeyPrefix("island:0:g2#".into()),
        kind: FaultKind::Cancel,
    }]);
    let err = search
        .driver()
        .workers(2)
        .checkpoint(&dir, 2)
        .fault_injector(&injector)
        .run(&examples)
        .expect_err("the keyed cancellation must interrupt the run");
    let SearchError::Interrupted {
        checkpoint: Some(path),
        ..
    } = err
    else {
        panic!("expected Interrupted with a checkpoint path, got {err}");
    };
    let resumed = search
        .driver()
        .process_workers(2, WorkerLauncher::Loopback)
        .resume(&path, &examples)
        .expect("proc-mode resume completes");
    assert_eq!(resumed, reference, "thread→proc resume forked the trajectory");
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// 3. Transient transport faults are byte-invisible.
// ---------------------------------------------------------------------------

#[test]
fn kill_torn_stall_and_duplicate_schedules_converge_to_the_same_bytes() {
    let config = island_config(2);
    let reference = run_threads(&config, 2);
    let examples = synthetic_examples(40);

    // Each schedule hits a different round boundary with a different fault
    // kind; each costs at most `restart_limit` retries, so every island
    // still completes.
    let schedules: Vec<(&str, Vec<FaultPlan>)> = vec![
        (
            "kill-and-respawn",
            vec![FaultPlan {
                trigger: FaultTrigger::OnKeyPrefix("worker:0:round1#a1".into()),
                kind: FaultKind::KillWorker,
            }],
        ),
        (
            "torn-frame",
            vec![FaultPlan {
                trigger: FaultTrigger::OnKeyPrefix("worker:1:round2#a1".into()),
                kind: FaultKind::TornFrame,
            }],
        ),
        (
            "stall-then-kill",
            vec![
                FaultPlan {
                    trigger: FaultTrigger::OnKeyPrefix("worker:0:round3#a1".into()),
                    kind: FaultKind::StallConn(30),
                },
                FaultPlan {
                    trigger: FaultTrigger::OnKeyPrefix("worker:0:round3#a1".into()),
                    kind: FaultKind::KillWorker,
                },
            ],
        ),
        (
            "duplicate-frames",
            vec![FaultPlan {
                trigger: FaultTrigger::OnKeyPrefix("worker:1:round1#a1".into()),
                kind: FaultKind::DuplicateFrame,
            }],
        ),
        (
            "slow-handshake",
            vec![FaultPlan {
                trigger: FaultTrigger::OnKeyPrefix("worker:0:round1#a1".into()),
                kind: FaultKind::SlowHandshake(20),
            }],
        ),
    ];
    for (tag, plans) in schedules {
        let injector = FaultInjector::new(plans);
        let telemetry = Telemetry::memory();
        let search = FeatureSearch::from_examples(&examples, config.clone());
        let outcome = search
            .driver()
            .process_workers(2, WorkerLauncher::Loopback)
            .fault_injector(&injector)
            .telemetry(telemetry.clone())
            .run(&examples)
            .unwrap_or_else(|e| panic!("schedule {tag} aborted the search: {e}"));
        assert!(injector.injected() >= 1, "schedule {tag} never fired");
        assert_eq!(
            outcome, reference,
            "schedule {tag} leaked into the result bytes"
        );
        if tag == "kill-and-respawn" {
            let lines = telemetry.drain_memory();
            assert!(
                lines.iter().any(|l| l.contains("\"kind\":\"worker_respawn\"")),
                "the kill must be visible in telemetry"
            );
        }
    }
}

/// The same transient kill, driven through real stdio worker processes:
/// the supervisor reaps the killed child and respawns a fresh one, and the
/// outcome still matches the thread-mode reference.
#[test]
fn killed_stdio_worker_process_is_respawned_and_byte_invisible() {
    let config = island_config(2);
    let reference = run_threads(&config, 2);
    let examples = synthetic_examples(40);
    let injector = FaultInjector::new(vec![FaultPlan {
        trigger: FaultTrigger::OnKeyPrefix("worker:0:round2#a1".into()),
        kind: FaultKind::KillWorker,
    }]);
    let telemetry = Telemetry::memory();
    let search = FeatureSearch::from_examples(&examples, config);
    let outcome = search
        .driver()
        .process_workers(2, command_launcher(ChannelKind::Stdio))
        .fault_injector(&injector)
        .telemetry(telemetry.clone())
        .run(&examples)
        .expect("a killed worker process must not abort the search");
    assert!(injector.injected() >= 1, "the kill must have fired");
    assert_eq!(outcome, reference, "the respawn leaked into the bytes");
    assert!(
        telemetry.counter_value("worker.respawns") >= 1,
        "the respawn must be counted"
    );
}

// ---------------------------------------------------------------------------
// 4. Exhausting the reconnect window freezes, the run completes.
// ---------------------------------------------------------------------------

#[test]
fn exhausted_reconnect_window_freezes_islands_but_the_search_completes() {
    let examples = synthetic_examples(40);
    let config = island_config(2);

    // Kill worker 1 on *every* attempt of *every* round: its island (id 1)
    // must freeze after `restart_limit + 1` attempts, and the search must
    // complete on island 0 alone, with the frozen island still merged.
    let injector = FaultInjector::new(vec![FaultPlan {
        trigger: FaultTrigger::OnKeyPrefix("worker:1:round".into()),
        kind: FaultKind::KillWorker,
    }]);
    let telemetry = Telemetry::memory();
    let search = FeatureSearch::from_examples(&examples, config);
    let outcome = search
        .driver()
        .process_workers(2, WorkerLauncher::Loopback)
        .fault_injector(&injector)
        .telemetry(telemetry.clone())
        .run(&examples)
        .expect("a dead worker must degrade the search, not abort it");
    assert!(
        !outcome.features.is_empty(),
        "the surviving island must still deliver features"
    );
    assert!(
        telemetry.counter_value("worker.frozen_islands") >= 1,
        "the freeze must be counted"
    );
    let lines = telemetry.drain_memory();
    for kind in ["worker_frozen", "island_frozen", "worker_respawn"] {
        assert!(
            lines.iter().any(|l| l.contains(&format!("\"kind\":\"{kind}\""))),
            "expected a `{kind}` event in {} line(s)",
            lines.len()
        );
    }
}

/// Freezing must also be visible in the *state*: interrupt right after the
/// freeze and check the checkpoint records the island as frozen — that is
/// the one (deliberate, reported) divergence transport faults may cause.
#[test]
fn a_frozen_island_is_recorded_in_the_checkpoint() {
    let examples = synthetic_examples(40);
    let config = island_config(2);
    let search = FeatureSearch::from_examples(&examples, config);
    let dir = temp_dir("frozen-ckpt");
    let injector = FaultInjector::new(vec![
        // Island 1's worker never comes back...
        FaultPlan {
            trigger: FaultTrigger::OnKeyPrefix("worker:1:round".into()),
            kind: FaultKind::KillWorker,
        },
        // ...and once round 2 starts (island 1 already frozen), cancel.
        FaultPlan {
            trigger: FaultTrigger::OnKeyPrefix("worker:0:round2#a1".into()),
            kind: FaultKind::Cancel,
        },
    ]);
    let err = search
        .driver()
        .process_workers(2, WorkerLauncher::Loopback)
        .checkpoint(&dir, 1)
        .fault_injector(&injector)
        .run(&examples)
        .expect_err("the keyed cancellation must interrupt the run");
    let SearchError::Interrupted {
        checkpoint: Some(path),
        ..
    } = err
    else {
        panic!("expected Interrupted with a checkpoint path, got {err}");
    };
    let ckpt = SearchCheckpoint::load(&path).expect("checkpoint loads");
    let islands = ckpt.islands.expect("interrupted mid-islands");
    assert_eq!(
        islands.islands[1].status,
        IslandStatus::Frozen,
        "the frozen island must be checkpointed as frozen"
    );
    assert_eq!(
        islands.islands[0].status,
        IslandStatus::Active,
        "the healthy island must stay active"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// 5. The worker binary is crash-only on malformed handshakes.
// ---------------------------------------------------------------------------

/// Feeds `bytes` to a real `fegen island-worker` child and returns
/// `(exit_ok, stderr)`, failing the test if the child outlives the
/// deadline (a hang is exactly the bug this guards against).
fn drive_worker_with(bytes: &[u8]) -> (bool, String) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_fegen"))
        .arg("island-worker")
        .stdin(Stdio::piped())
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("island-worker spawns");
    child
        .stdin
        .take()
        .expect("stdin piped")
        .write_all(bytes)
        .expect("handshake bytes written");
    // stdin drops here: EOF after the garbage.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
    let status = loop {
        match child.try_wait().expect("try_wait") {
            Some(status) => break status,
            None if std::time::Instant::now() > deadline => {
                let _ = child.kill();
                panic!("island-worker hung on malformed handshake");
            }
            None => std::thread::sleep(std::time::Duration::from_millis(10)),
        }
    };
    let mut stderr = String::new();
    child
        .stderr
        .take()
        .expect("stderr piped")
        .read_to_string(&mut stderr)
        .expect("stderr readable");
    (status.success(), stderr)
}

#[test]
fn malformed_handshakes_exit_nonzero_with_typed_errors() {
    use fegen::core::gp::transport::encode_frame;
    use fegen::core::gp::worker_proc::{encode_msg, WireMsg};

    // Not a frame at all: the magic check must reject it.
    let garbage = b"this is not a frame, not even close, padding padding!".to_vec();
    // A pristine frame whose payload is not a message.
    let bad_payload = encode_frame(0, b"{\"NotAMessage\":{}}").expect("frame encodes");
    // A valid message that is not a handshake.
    let not_hello = encode_frame(
        0,
        &encode_msg(&WireMsg::HelloAck { spec_digest: 1 }).expect("message encodes"),
    )
    .expect("frame encodes");
    // Immediate EOF: zero handshake bytes.
    let eof = Vec::new();

    for (tag, bytes, needle) in [
        ("garbage", garbage, "transport"),
        ("bad-payload", bad_payload, "transport"),
        ("not-hello", not_hello, "handshake"),
        ("eof", eof, "transport"),
    ] {
        let (ok, stderr) = drive_worker_with(&bytes);
        assert!(!ok, "{tag}: the worker must exit nonzero, stderr: {stderr}");
        assert!(
            stderr.contains("island-worker") && stderr.contains(needle),
            "{tag}: expected a typed `{needle}` error on stderr, got: {stderr}"
        );
    }
}
