//! Protocol abuse suite for `fegen serve`: everything a hostile or broken
//! client can put on the wire must end in a typed response or a dead
//! *connection* — never a dead daemon, never a panic — and the bounded
//! caches behind the daemon must stay observationally equivalent to the
//! unbounded ones they replaced.
//!
//! Three layers are exercised: the frame codec (torn frames, oversized
//! length prefixes), the JSON message layer (garbage payloads, absurd
//! nesting, interner-flooding symbol sets), and the model artifact
//! (version skew at startup, hot-reload mid-session).

use fegen::core::gp::transport::{
    duplex, SendFault, StreamTransport, TransportError, FRAME_MAGIC, MAX_FRAME_LEN,
    PROTOCOL_VERSION,
};
use fegen::core::ir::IrNode;
use fegen::core::serve::{
    decode_response, encode_request, serve_connection, ModelArtifact, ModelError,
    ServeEngine, ServeError, ServeOptions, ServeRequest, ServeResponse, WireAttr, WireNode,
    ERROR_ID_UNDECODABLE, MAX_IR_DEPTH, SERVE_PROTOCOL,
};
use fegen::core::{
    parse_feature, EvalEngine, EvalPool, FrameTransport, SearchConfig, Telemetry,
    TrainingExample,
};
use std::io::{Read as _, Write as _};
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::sync::Arc;

// ---------------------------------------------------------------------------
// Fixtures
// ---------------------------------------------------------------------------

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fegen-serve-proto-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// Synthetic training loops: no simulator involved, so artifact staging is
/// milliseconds, not seconds.
fn examples() -> Vec<TrainingExample> {
    (0..6)
        .map(|i| {
            let ir = IrNode::build("loop", |l| {
                l.attr_num("num-iter", 4.0 + i as f64);
                for _ in 0..=i {
                    l.child("insn", |n| {
                        n.attr_enum("mode", "SI");
                    });
                }
            });
            let cycles = (0..4)
                .map(|k| 100.0 + (k as f64 - (i % 4) as f64).abs() * 10.0)
                .collect();
            TrainingExample { ir, cycles }
        })
        .collect()
}

fn artifact_with(features: &[&str]) -> ModelArtifact {
    let parsed: Vec<_> = features
        .iter()
        .map(|s| parse_feature(s).expect("feature parses"))
        .collect();
    ModelArtifact::train(&SearchConfig::quick(), &parsed, &examples())
        .expect("artifact trains")
}

fn staged_model(dir: &Path) -> PathBuf {
    let path = dir.join("model.fgm");
    artifact_with(&["count(//*)", "count(filter(//*, is-type(insn)))"])
        .save(&path)
        .expect("artifact saves");
    path
}

fn engine_at(path: PathBuf) -> ServeEngine {
    ServeEngine::new(path, ServeOptions::default(), Telemetry::disabled())
        .expect("engine starts on a valid model")
}

fn frame(req: &ServeRequest) -> Vec<u8> {
    encode_request(req).expect("request encodes")
}

fn sample_loop() -> WireNode {
    WireNode {
        kind: "loop".into(),
        attrs: vec![("num-iter".into(), WireAttr::Num(8.0))],
        children: vec![WireNode {
            kind: "insn".into(),
            attrs: vec![("mode".into(), WireAttr::Enum("SI".into()))],
            children: vec![],
        }],
    }
}

fn hello<T: FrameTransport>(client: &mut T) {
    client
        .send(&frame(&ServeRequest::Hello {
            protocol: SERVE_PROTOCOL,
        }))
        .expect("hello sends");
    let ack = client.recv().expect("ack arrives");
    assert!(
        matches!(
            decode_response(&ack).expect("ack decodes"),
            ServeResponse::HelloAck { protocol, .. } if protocol == SERVE_PROTOCOL
        ),
        "handshake must ack"
    );
}

fn expect_decisions<T: FrameTransport>(client: &mut T, id: u64, n: usize) {
    let reply = client.recv().expect("decisions arrive");
    match decode_response(&reply).expect("decisions decode") {
        ServeResponse::Decisions { id: got, decisions } => {
            assert_eq!(got, id);
            assert_eq!(decisions.len(), n);
        }
        other => panic!("expected Decisions, got {other:?}"),
    }
}

// ---------------------------------------------------------------------------
// 1. Frame-layer abuse: the connection dies, the engine survives.
// ---------------------------------------------------------------------------

#[test]
fn torn_frame_kills_the_connection_but_not_the_engine() {
    let dir = tmp_dir("torn");
    let engine = Arc::new(engine_at(staged_model(&dir)));

    // Connection 1: handshake, then a deliberately torn frame.
    let server_engine = Arc::clone(&engine);
    let (mut client, mut server) = duplex();
    let handle = std::thread::spawn(move || serve_connection(&mut server, &server_engine));
    hello(&mut client);
    client
        .send_with(
            &frame(&ServeRequest::Stats { id: 1 }),
            SendFault::Torn,
        )
        .expect("torn send reports success");
    drop(client);
    match handle.join().expect("server thread survives") {
        Err(ServeError::Transport(TransportError::TornFrame { .. })) => {}
        other => panic!("expected a torn-frame transport error, got {other:?}"),
    }

    // Connection 2 over the SAME engine: full service, untouched.
    let server_engine = Arc::clone(&engine);
    let (mut client, mut server) = duplex();
    let handle = std::thread::spawn(move || serve_connection(&mut server, &server_engine));
    hello(&mut client);
    client
        .send(&frame(&ServeRequest::Predict {
            id: 2,
            loops: vec![sample_loop()],
        }))
        .expect("predict sends");
    expect_decisions(&mut client, 2, 1);
    drop(client);
    handle.join().expect("thread").expect("clean close");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn oversized_length_prefix_is_rejected_before_allocation() {
    // Hand-craft a header whose length field exceeds the hard cap; the
    // reader must refuse with OverLength instead of trying to allocate.
    let mut bytes = Vec::new();
    bytes.extend_from_slice(&FRAME_MAGIC);
    bytes.extend_from_slice(&PROTOCOL_VERSION.to_le_bytes());
    bytes.extend_from_slice(&0u64.to_le_bytes());
    bytes.extend_from_slice(&(MAX_FRAME_LEN + 1).to_le_bytes());
    bytes.extend_from_slice(&0u64.to_le_bytes());

    let mut server = StreamTransport::new(std::io::Cursor::new(bytes), std::io::sink());
    match server.recv() {
        Err(TransportError::OverLength { len, max }) => {
            assert_eq!(len, MAX_FRAME_LEN + 1);
            assert_eq!(max, MAX_FRAME_LEN);
        }
        other => panic!("expected OverLength, got {other:?}"),
    }
}

// ---------------------------------------------------------------------------
// 2. Message-layer abuse: typed error responses, connection keeps serving.
// ---------------------------------------------------------------------------

#[test]
fn garbage_json_then_normal_service() {
    let dir = tmp_dir("garbage");
    let engine = engine_at(staged_model(&dir));
    let (mut client, mut server) = duplex();
    let handle = std::thread::spawn(move || {
        let r = serve_connection(&mut server, &engine);
        (r, engine.stats())
    });
    hello(&mut client);
    for payload in [
        b"{ definitely not json".as_slice(),
        &[0xff, 0xfe, 0x00, 0x01],
        br#"{"Predict":{"id":"not a number"}}"#,
    ] {
        client.send(payload).expect("garbage sends");
        let reply = client.recv().expect("error arrives");
        match decode_response(&reply).expect("error decodes") {
            ServeResponse::Error { id, .. } => assert_eq!(id, ERROR_ID_UNDECODABLE),
            other => panic!("expected Error, got {other:?}"),
        }
    }
    client
        .send(&frame(&ServeRequest::Predict {
            id: 9,
            loops: vec![sample_loop()],
        }))
        .expect("predict sends");
    expect_decisions(&mut client, 9, 1);
    drop(client);
    let (result, stats) = handle.join().expect("thread");
    result.expect("clean close");
    assert_eq!(stats.errors, 3, "each garbage payload counted once");
    assert_eq!(stats.requests, 1, "only the real predict counted");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn deep_nesting_is_rejected_with_a_typed_error() {
    let dir = tmp_dir("deep");
    let engine = engine_at(staged_model(&dir));
    let (mut client, mut server) = duplex();
    let handle = std::thread::spawn(move || serve_connection(&mut server, &engine));
    hello(&mut client);
    let mut node = sample_loop();
    for _ in 0..MAX_IR_DEPTH {
        node = WireNode {
            kind: "loop".into(),
            attrs: vec![],
            children: vec![node],
        };
    }
    client
        .send(&frame(&ServeRequest::Predict {
            id: 4,
            loops: vec![node],
        }))
        .expect("deep predict sends");
    let reply = client.recv().expect("reply arrives");
    match decode_response(&reply).expect("reply decodes") {
        ServeResponse::Error { id, detail } => {
            assert_eq!(id, 4);
            assert!(detail.contains("deep"), "unexpected detail: {detail}");
        }
        other => panic!("expected Error, got {other:?}"),
    }
    drop(client);
    handle.join().expect("thread").expect("clean close");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn symbol_flood_is_rejected_without_growing_the_interner() {
    let dir = tmp_dir("flood");
    let engine = engine_at(staged_model(&dir));
    let (mut client, mut server) = duplex();
    let handle = std::thread::spawn(move || serve_connection(&mut server, &engine));
    hello(&mut client);
    // More fresh attribute names than the daemon's symbol headroom: the
    // whole batch must bounce before a single name is interned (the
    // interner leaks by design; admission is what bounds it).
    let flood: Vec<(String, WireAttr)> = (0..5000)
        .map(|i| (format!("hostile-attr-{i}"), WireAttr::Num(i as f64)))
        .collect();
    let node = WireNode {
        kind: "loop".into(),
        attrs: flood,
        children: vec![],
    };
    let before = fegen::core::ir::symbol_count();
    client
        .send(&frame(&ServeRequest::Predict {
            id: 5,
            loops: vec![node],
        }))
        .expect("flood sends");
    let reply = client.recv().expect("reply arrives");
    match decode_response(&reply).expect("reply decodes") {
        ServeResponse::Error { id, detail } => {
            assert_eq!(id, 5);
            assert!(detail.contains("symbol"), "unexpected detail: {detail}");
        }
        other => panic!("expected Error, got {other:?}"),
    }
    assert_eq!(
        fegen::core::ir::symbol_count(),
        before,
        "a rejected batch must not intern anything"
    );
    drop(client);
    handle.join().expect("thread").expect("clean close");
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// 3. Model artifact: version skew refused, hot reload without dropping.
// ---------------------------------------------------------------------------

#[test]
fn version_skewed_artifact_is_refused_with_a_typed_error() {
    let dir = tmp_dir("skew");
    let path = dir.join("model.fgm");
    let mut artifact = artifact_with(&["count(//*)"]);
    artifact.version = 99;
    artifact.save(&path).expect("skewed artifact saves");
    match ServeEngine::new(path, ServeOptions::default(), Telemetry::disabled()) {
        Err(ModelError::VersionMismatch { found, expected, .. }) => {
            assert_eq!(found, 99);
            assert_eq!(expected, 1);
        }
        Ok(_) => panic!("engine must refuse a version-skewed artifact"),
        Err(other) => panic!("expected VersionMismatch, got {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn hot_reload_swaps_the_model_without_dropping_the_session() {
    let dir = tmp_dir("reload");
    let path = staged_model(&dir);
    // Disable request-count polling so the explicit Reload is what we test.
    let opts = ServeOptions {
        reload_check_every: 0,
        ..ServeOptions::default()
    };
    let engine = Arc::new(
        ServeEngine::new(path.clone(), opts, Telemetry::disabled()).expect("engine starts"),
    );
    let digest_before = engine.model().digest;
    let server_engine = Arc::clone(&engine);
    let (mut client, mut server) = duplex();
    let handle = std::thread::spawn(move || serve_connection(&mut server, &server_engine));
    hello(&mut client);
    client
        .send(&frame(&ServeRequest::Predict {
            id: 1,
            loops: vec![sample_loop()],
        }))
        .expect("predict sends");
    expect_decisions(&mut client, 1, 1);

    // A new artifact lands at the same path (atomic rename), mid-session.
    artifact_with(&["count(//*)", "count(filter(//*, is-type(reg)))", "count(/*)"])
        .save(&path)
        .expect("replacement artifact saves");
    client
        .send(&frame(&ServeRequest::Reload { id: 2 }))
        .expect("reload sends");
    let reply = client.recv().expect("reload reply arrives");
    match decode_response(&reply).expect("reply decodes") {
        ServeResponse::ReloadDone {
            id,
            reloaded,
            model_digest,
        } => {
            assert_eq!(id, 2);
            assert!(reloaded, "the changed artifact must be adopted");
            assert_ne!(model_digest, digest_before, "digest must change");
        }
        other => panic!("expected ReloadDone, got {other:?}"),
    }

    // Same connection keeps predicting on the new model.
    client
        .send(&frame(&ServeRequest::Predict {
            id: 3,
            loops: vec![sample_loop()],
        }))
        .expect("predict sends");
    expect_decisions(&mut client, 3, 1);
    drop(client);
    handle.join().expect("thread").expect("clean close");
    assert_eq!(engine.model().features.len(), 3, "new model is active");
    assert_eq!(engine.stats().reloads, 1);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn failed_reload_keeps_the_old_model_serving() {
    let dir = tmp_dir("reload-fail");
    let path = staged_model(&dir);
    let opts = ServeOptions {
        reload_check_every: 0,
        ..ServeOptions::default()
    };
    let engine = Arc::new(
        ServeEngine::new(path.clone(), opts, Telemetry::disabled()).expect("engine starts"),
    );
    let digest_before = engine.model().digest;
    let server_engine = Arc::clone(&engine);
    let (mut client, mut server) = duplex();
    let handle = std::thread::spawn(move || serve_connection(&mut server, &server_engine));
    hello(&mut client);
    std::fs::write(&path, b"{ this is no artifact").expect("corrupt artifact writes");
    client
        .send(&frame(&ServeRequest::Reload { id: 1 }))
        .expect("reload sends");
    let reply = client.recv().expect("reply arrives");
    match decode_response(&reply).expect("reply decodes") {
        ServeResponse::Error { id, detail } => {
            assert_eq!(id, 1);
            assert!(
                detail.contains("old model stays active"),
                "unexpected detail: {detail}"
            );
        }
        other => panic!("expected Error, got {other:?}"),
    }
    client
        .send(&frame(&ServeRequest::Predict {
            id: 2,
            loops: vec![sample_loop()],
        }))
        .expect("predict sends");
    expect_decisions(&mut client, 2, 1);
    drop(client);
    handle.join().expect("thread").expect("clean close");
    assert_eq!(engine.model().digest, digest_before, "old model still active");
    assert_eq!(engine.stats().reload_failures, 1);
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// 4. The bounded program LRU is observationally invisible.
// ---------------------------------------------------------------------------

/// A tiny-capacity program cache must evict constantly yet produce columns
/// bit-identical to the default (effectively unbounded) cache — eviction
/// can cost recompiles, never answers.
#[test]
fn tiny_program_cache_is_byte_identical_to_the_default() {
    let loops: Vec<IrNode> = (0..8)
        .map(|i| {
            IrNode::build("loop", |l| {
                l.attr_num("num-iter", 3.0 + i as f64);
                for j in 0..=(i % 4) {
                    l.child("insn", |n| {
                        n.attr_num("uid", j as f64);
                        n.attr_enum("mode", if j % 2 == 0 { "SI" } else { "DI" });
                    });
                }
            })
        })
        .collect();
    let features: Vec<_> = [
        "count(//*)",
        "count(filter(//*, is-type(insn)))",
        "max(//*, count(//*))",
        "count(/*) + count(//*)",
        "count(filter(//*, is-type(loop)))",
    ]
    .iter()
    .map(|s| parse_feature(s).expect("feature parses"))
    .collect();

    let big = EvalPool::new(loops.iter(), EvalEngine::Compiled);
    let mut tiny = EvalPool::new(loops.iter(), EvalEngine::Compiled);
    tiny.set_program_cache_capacity(2);

    const BUDGET: u64 = 100_000;
    // Interleave twice so the tiny cache must re-admit evicted programs.
    for round in 0..2 {
        for f in &features {
            let a = big.column(f, BUDGET).expect("big column");
            let b = tiny.column(f, BUDGET).expect("tiny column");
            assert_eq!(a.len(), b.len());
            for (i, (x, y)) in a.iter().zip(&b).enumerate() {
                assert_eq!(
                    x.to_bits(),
                    y.to_bits(),
                    "round {round}, feature `{f}`, loop {i}: {x} vs {y}"
                );
            }
        }
    }
    assert!(
        tiny.stats().program_evictions > 0,
        "a capacity-2 cache over 5 features must evict"
    );
    assert_eq!(
        big.stats().program_evictions,
        0,
        "the default capacity must not evict on 5 features"
    );
}

// ---------------------------------------------------------------------------
// 5. The real binary: spawn `fegen serve --stdio` and drive it.
// ---------------------------------------------------------------------------

#[test]
fn real_daemon_serves_and_shuts_down_cleanly() {
    let dir = tmp_dir("real");
    let model = staged_model(&dir);
    let mut child = Command::new(env!("CARGO_BIN_EXE_fegen"))
        .arg("serve")
        .arg("--stdio")
        .arg("--model")
        .arg(&model)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("daemon spawns");
    let stdin = child.stdin.take().expect("stdin piped");
    let stdout = child.stdout.take().expect("stdout piped");
    let mut wire = StreamTransport::new(stdout, stdin);
    hello(&mut wire);
    wire.send(&frame(&ServeRequest::Predict {
        id: 1,
        loops: vec![sample_loop(), sample_loop()],
    }))
    .expect("predict sends");
    expect_decisions(&mut wire, 1, 2);
    wire.send(&frame(&ServeRequest::Shutdown)).expect("shutdown sends");
    let bye = wire.recv().expect("bye arrives");
    assert!(matches!(
        decode_response(&bye).expect("bye decodes"),
        ServeResponse::Bye
    ));
    drop(wire);
    let status = child.wait().expect("daemon exits");
    assert!(status.success(), "clean shutdown must exit zero: {status}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn real_daemon_refuses_garbage_stdin_without_hanging_or_panicking() {
    let dir = tmp_dir("real-garbage");
    let model = staged_model(&dir);
    let mut child = Command::new(env!("CARGO_BIN_EXE_fegen"))
        .arg("serve")
        .arg("--stdio")
        .arg("--model")
        .arg(&model)
        .stdin(Stdio::piped())
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("daemon spawns");
    child
        .stdin
        .take()
        .expect("stdin piped")
        .write_all(b"this is not a frame at all, just hostile bytes on the wire")
        .expect("garbage written");
    // stdin drops: EOF after the garbage.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
    let status = loop {
        match child.try_wait().expect("try_wait") {
            Some(status) => break status,
            None if std::time::Instant::now() > deadline => {
                let _ = child.kill();
                panic!("daemon hung on garbage stdin");
            }
            None => std::thread::sleep(std::time::Duration::from_millis(10)),
        }
    };
    let mut stderr = String::new();
    child
        .stderr
        .take()
        .expect("stderr piped")
        .read_to_string(&mut stderr)
        .expect("stderr readable");
    assert!(!status.success(), "bad magic must be a nonzero exit");
    assert!(
        !stderr.contains("panicked"),
        "must be a typed error, not a panic: {stderr}"
    );
    assert!(
        stderr.contains("serve"),
        "stderr names the failing subsystem: {stderr}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn real_daemon_refuses_a_version_skewed_artifact_at_startup() {
    let dir = tmp_dir("real-skew");
    let model = dir.join("model.fgm");
    let mut artifact = artifact_with(&["count(//*)"]);
    artifact.version = 99;
    artifact.save(&model).expect("skewed artifact saves");
    let output = Command::new(env!("CARGO_BIN_EXE_fegen"))
        .arg("serve")
        .arg("--stdio")
        .arg("--model")
        .arg(&model)
        .stdin(Stdio::null())
        .output()
        .expect("daemon runs");
    assert!(!output.status.success(), "version skew must refuse startup");
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("version") && !stderr.contains("panicked"),
        "typed version error expected: {stderr}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
