//! Structural invariants of the RTL middle end, checked over generated
//! benchmarks before and after unrolling and inlining.

use fegen_rtl::cfg::Cfg;
use fegen_rtl::inline::{call_sites, inline_call};
use fegen_rtl::lower::lower_program;
use fegen_rtl::node::InsnBody;
use fegen_rtl::unroll::apply_factors;
use fegen_rtl::{RtlFunction, RtlProgram};
use fegen_suite::{generate_suite, SuiteConfig};
use std::collections::{HashMap, HashSet};

fn suite_programs() -> Vec<(String, RtlProgram)> {
    generate_suite(&SuiteConfig::tiny())
        .into_iter()
        .map(|b| {
            let rtl = lower_program(&b.program).expect("suite lowers");
            (b.name, rtl)
        })
        .collect()
}

/// Asserts the structural well-formedness every pass must preserve.
fn check_function(name: &str, f: &RtlFunction) {
    // 1. Labels unique, every branch target defined.
    let mut labels = HashSet::new();
    for insn in &f.insns {
        if let InsnBody::Label(l) = insn.body {
            assert!(labels.insert(l), "{name}: duplicate label {l}");
        }
    }
    for insn in &f.insns {
        let target = match insn.body {
            InsnBody::Jump { target } | InsnBody::CondJump { target, .. } => Some(target),
            _ => None,
        };
        if let Some(t) = target {
            assert!(labels.contains(&t), "{name}: dangling branch target {t}");
        }
    }
    // 2. Registers referenced are all allocated.
    for insn in &f.insns {
        let mut used = Vec::new();
        match &insn.body {
            InsnBody::Set { dest, src } => {
                dest.regs_used(&mut used);
                src.regs_used(&mut used);
            }
            InsnBody::CondJump { cond, .. } => cond.regs_used(&mut used),
            InsnBody::Call { args, dest, .. } => {
                for a in args {
                    a.regs_used(&mut used);
                }
                if let Some(d) = dest {
                    d.regs_used(&mut used);
                }
            }
            InsnBody::Return { value: Some(v) } => v.regs_used(&mut used),
            _ => {}
        }
        for r in used {
            assert!(
                (r as usize) < f.reg_modes.len(),
                "{name}: register {r} out of range ({} allocated)",
                f.reg_modes.len()
            );
        }
    }
    // 3. CFG blocks partition the instruction list; edges are consistent.
    let cfg = Cfg::build(f);
    let mut covered = 0usize;
    for (k, b) in cfg.blocks.iter().enumerate() {
        assert_eq!(b.index, k);
        assert_eq!(b.start, covered, "{name}: blocks must tile the insns");
        covered = b.end;
        for &s in &b.succs {
            assert!(s < cfg.blocks.len());
            assert!(
                cfg.blocks[s].preds.contains(&k),
                "{name}: edge {k}->{s} missing reverse link"
            );
        }
    }
    if !f.insns.is_empty() {
        assert_eq!(covered, f.insns.len(), "{name}: trailing uncovered insns");
    }
    // 4. Natural-loop headers dominate their members.
    let doms = cfg.dominators();
    for l in cfg.natural_loops() {
        for &b in &l.blocks {
            assert!(
                doms[b].contains(&l.header),
                "{name}: loop header {} does not dominate member {b}",
                l.header
            );
        }
    }
    // 5. Structured loop regions (when intact) are properly nested spans.
    for region in &f.loops {
        if let Some((s, e)) = f.loop_span(region) {
            assert!(s < e, "{name}: inverted loop span");
        }
    }
}

#[test]
fn lowered_functions_are_well_formed() {
    for (name, rtl) in suite_programs() {
        for f in &rtl.functions {
            check_function(&format!("{name}::{}", f.name), f);
        }
    }
}

#[test]
fn unrolled_functions_stay_well_formed() {
    for (name, rtl) in suite_programs() {
        for f in &rtl.functions {
            // A deterministic-but-varied factor assignment per loop.
            let factors: HashMap<usize, usize> = f
                .loops
                .iter()
                .map(|l| (l.id, (l.id * 7 + f.insns.len()) % 16))
                .collect();
            let u = apply_factors(f, &factors)
                .unwrap_or_else(|e| panic!("{name}::{}: {e}", f.name));
            check_function(&format!("{name}::{} (unrolled)", f.name), &u);
        }
    }
}

#[test]
fn inlined_functions_stay_well_formed() {
    for (name, rtl) in suite_programs() {
        let func_names: Vec<String> = rtl.functions.iter().map(|f| f.name.clone()).collect();
        for fname in func_names {
            let f = rtl.function(&fname).expect("listed");
            for site in call_sites(f) {
                let inlined = match inline_call(&rtl, &fname, &site) {
                    Ok(p) => p,
                    Err(_) => continue,
                };
                for g in &inlined.functions {
                    check_function(&format!("{name}::{} (after inline)", g.name), g);
                }
            }
        }
    }
}

#[test]
fn unroll_then_inline_composition_is_well_formed() {
    // The transforms must compose: inline a callee, then unroll every loop
    // of the grown caller (including imported callee loops).
    for (name, rtl) in suite_programs() {
        let func_names: Vec<String> = rtl.functions.iter().map(|f| f.name.clone()).collect();
        for fname in &func_names {
            let f = rtl.function(fname).expect("listed");
            let Some(site) = call_sites(f).into_iter().next() else {
                continue;
            };
            let Ok(inlined) = inline_call(&rtl, fname, &site) else {
                continue;
            };
            let grown = inlined.function(fname).expect("caller survives");
            let factors: HashMap<usize, usize> =
                grown.loops.iter().map(|l| (l.id, 3)).collect();
            let u = apply_factors(grown, &factors)
                .unwrap_or_else(|e| panic!("{name}::{fname}: {e}"));
            check_function(&format!("{name}::{fname} (inline+unroll)"), &u);
        }
    }
}
