//! Property-based tests of the feature language over real exported IR:
//! print/parse round-trips, evaluator determinism and totality, and the
//! GP operators' structural invariants.

use fegen::core::grammar::Grammar;
use fegen::core::ir::IrNode;
use fegen::core::lang::visit::{self, Sort};
use fegen::core::lang::{parse_feature, Evaluator};
use fegen::rtl::export::export_loop;
use fegen::rtl::lower::lower_program;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A real exported loop plus the grammar derived from a corpus around it.
fn corpus() -> (Grammar, Vec<IrNode>) {
    let src = "\
        int a[128]; float f[128]; int idx[64]; int tab[32]; int m[8][8];\n\
        int k1(int n) { int i; int s; s = 0; for (i = 0; i < n; i = i + 1) { s = s + a[i]; } return s; }\n\
        void k2(int n) { int i; for (i = 1; i < 100; i = i + 1) { f[i] = f[i] * 0.5 + f[i - 1] * 0.25; } }\n\
        void k3() { int i; int j; for (i = 0; i < 8; i = i + 1) { for (j = 0; j < 8; j = j + 1) { m[i][j] = i * j; } } }\n\
        void k4(int n) { int i; for (i = 0; i < n; i = i + 1) { tab[a[idx[i % 64]] % 32] = i; } }\n";
    let ast = fegen::lang::parse_program(src).unwrap();
    let rtl = lower_program(&ast).unwrap();
    let mut irs = Vec::new();
    for func in &rtl.functions {
        for region in &func.loops {
            irs.push(export_loop(func, region, &rtl.layout));
        }
    }
    let grammar = Grammar::derive(irs.iter());
    (grammar, irs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any generated feature prints to text that parses back to the same AST.
    #[test]
    fn generated_features_roundtrip(seed in 0u64..10_000, depth in 2usize..7) {
        let (grammar, _) = corpus();
        let mut rng = StdRng::seed_from_u64(seed);
        let f = grammar.gen_feature(&mut rng, depth);
        let printed = f.to_string();
        let reparsed = parse_feature(&printed)
            .unwrap_or_else(|e| panic!("`{printed}`: {e}"));
        prop_assert_eq!(f, reparsed);
    }

    /// Evaluation is total (modulo the budget) and deterministic on real IR.
    #[test]
    fn evaluation_is_deterministic_and_finite(seed in 0u64..10_000) {
        let (grammar, irs) = corpus();
        let mut rng = StdRng::seed_from_u64(seed);
        let f = grammar.gen_feature(&mut rng, 5);
        for ir in &irs {
            let a = f.eval_with_budget(ir, 500_000);
            let b = f.eval_with_budget(ir, 500_000);
            prop_assert_eq!(&a, &b);
            if let Ok(v) = a {
                prop_assert!(v.is_finite(), "non-finite value from {}", f);
            }
        }
    }

    /// A larger budget never changes a successful result.
    #[test]
    fn budget_only_gates_never_alters(seed in 0u64..10_000) {
        let (grammar, irs) = corpus();
        let mut rng = StdRng::seed_from_u64(seed);
        let f = grammar.gen_feature(&mut rng, 4);
        let ir = &irs[seed as usize % irs.len()];
        if let Ok(small) = f.eval_with_budget(ir, 50_000) {
            let big = f.eval_with_budget(ir, 5_000_000).unwrap();
            prop_assert_eq!(small, big);
        }
    }

    /// Mutation produces a valid same-sort tree; crossover conserves total size.
    #[test]
    fn gp_operators_preserve_invariants(seed in 0u64..10_000) {
        let (grammar, irs) = corpus();
        let mut rng = StdRng::seed_from_u64(seed);
        let a = grammar.gen_feature(&mut rng, 5);
        let b = grammar.gen_feature(&mut rng, 5);

        let m = fegen::core::gp::mutate(&grammar, &a, &mut rng, 4);
        let printed = m.to_string();
        prop_assert_eq!(parse_feature(&printed).unwrap(), m);

        let (c1, c2) = fegen::core::gp::crossover(&a, &b, &mut rng);
        prop_assert_eq!(c1.size() + c2.size(), a.size() + b.size());
        // Children still evaluate on real IR (or time out; never panic).
        for c in [&c1, &c2] {
            let _ = c.eval_with_budget(&irs[0], 200_000);
        }
    }

    /// Subtree pick/replace agree for every position of every sort.
    #[test]
    fn pick_replace_identity(seed in 0u64..10_000) {
        let (grammar, _) = corpus();
        let mut rng = StdRng::seed_from_u64(seed);
        let f = grammar.gen_feature(&mut rng, 5);
        let counts = visit::counts(&f);
        for sort in [Sort::Num, Sort::Bool, Sort::Seq] {
            for i in 0..counts.get(sort) {
                let sub = visit::pick(&f, sort, i).expect("within counts");
                let same = visit::replace(&f, sort, i, &sub).expect("within counts");
                prop_assert_eq!(&same, &f);
            }
        }
    }
}

#[test]
fn evaluator_budget_is_monotone_in_work() {
    // A feature over descendants costs more on bigger IR.
    let (_, irs) = corpus();
    let f = parse_feature("sum(//*, count(//*))").unwrap();
    let mut costs: Vec<(usize, u64)> = irs
        .iter()
        .map(|ir| {
            let mut ev = Evaluator::new(u64::MAX / 2);
            let before = ev.remaining();
            let _ = ev.eval(&f, ir);
            (ir.size(), before - ev.remaining())
        })
        .collect();
    costs.sort();
    for w in costs.windows(2) {
        assert!(
            w[0].1 <= w[1].1 * 2,
            "cost should grow with IR size: {costs:?}"
        );
    }
}
