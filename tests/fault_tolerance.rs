//! Fault-tolerance integration tests for the search runtime.
//!
//! These prove the two load-bearing properties of the checkpoint/resume
//! design end to end, driven by the deterministic fault-injection harness:
//!
//! 1. **Kill-and-resume is exact**: a search interrupted by an injected
//!    cancellation and resumed from its checkpoint reaches the *identical*
//!    [`SearchOutcome`] an uninterrupted run produces — with sequential and
//!    with parallel fitness evaluation.
//! 2. **Faulty evaluators cost candidates, not the search**: injected
//!    panics, exhausted budgets and NaN fitness values are isolated per
//!    candidate; the greedy loop always runs to completion, and results
//!    stay independent of the thread count.

use fegen::core::ir::IrNode;
use fegen::core::search::TrainingExample;
use fegen::core::{
    FaultInjector, FaultKind, FaultPlan, FaultTrigger, FeatureSearch, SearchConfig, SearchError,
};
use std::path::PathBuf;

/// Synthetic task: the best unroll factor is fully determined by the number
/// of `insn` children, so the search reliably finds improving features.
fn synthetic_examples(n: usize) -> Vec<TrainingExample> {
    (0..n)
        .map(|i| {
            let insns = 1 + i % 5;
            let best = insns % 4;
            let ir = IrNode::build("loop", |l| {
                l.attr_num("decoy", (i * 7 % 3) as f64);
                for _ in 0..insns {
                    l.child("insn", |x| {
                        x.attr_enum("mode", "SI");
                    });
                }
                l.child("jump_insn", |_| {});
            });
            let cycles = (0..4)
                .map(|k| {
                    if k == best {
                        80.0
                    } else {
                        100.0 + (k as f64 - best as f64).abs()
                    }
                })
                .collect();
            TrainingExample { ir, cycles }
        })
        .collect()
}

fn small_config(threads: usize) -> SearchConfig {
    let mut config = SearchConfig::quick();
    config.seed = 41;
    config.max_features = 2;
    config.max_total_generations = 24;
    config.gp.population = 14;
    config.gp.max_generations = 6;
    config.gp.stagnation_limit = 6;
    config.gp.threads = threads;
    config
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fegen-ft-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// FNV-1a, mirroring the injector's candidate hash for OnMatch assertions.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h = (h ^ b as u64).wrapping_mul(0x100000001b3);
    }
    h
}

/// Interrupts a run via an injected cancellation on the `on_call`th fitness
/// evaluation, then resumes from the written checkpoint and checks the
/// final outcome against an uninterrupted reference run.
fn kill_and_resume(threads: usize, on_call: u64, tag: &str) {
    let examples = synthetic_examples(40);
    let config = small_config(threads);
    let search = FeatureSearch::from_examples(&examples, config);

    let reference = search
        .try_run(&examples)
        .expect("uninterrupted run completes");
    assert!(
        !reference.features.is_empty(),
        "the synthetic task must be solvable, or the test proves nothing"
    );

    let dir = temp_dir(tag);
    let injector = FaultInjector::new(vec![FaultPlan {
        trigger: FaultTrigger::OnCall(on_call),
        kind: FaultKind::Cancel,
    }]);
    let err = search
        .driver()
        .checkpoint(&dir, 2)
        .fault_injector(&injector)
        .run(&examples)
        .expect_err("the injected cancellation must interrupt the run");
    let SearchError::Interrupted {
        checkpoint: Some(checkpoint),
        ..
    } = err
    else {
        panic!("expected Interrupted with a checkpoint path, got {err}");
    };
    assert!(checkpoint.exists());
    assert!(injector.injected() >= 1);

    let resumed = search
        .driver()
        .resume(&checkpoint, &examples)
        .expect("resume completes");
    assert_eq!(resumed, reference, "resume must not fork the trajectory");
    assert!(
        !checkpoint.exists(),
        "a completed search must clean up its checkpoint"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn kill_and_resume_is_exact_sequential() {
    kill_and_resume(1, 25, "seq");
}

#[test]
fn kill_and_resume_is_exact_parallel() {
    kill_and_resume(4, 25, "par");
}

#[test]
fn kill_and_resume_is_exact_when_interrupted_late() {
    // A later interruption lands in a later outer iteration, exercising
    // resume with accepted features and recomputed base columns.
    kill_and_resume(1, 70, "late");
}

#[test]
fn injected_panics_cost_candidates_not_the_search() {
    let examples = synthetic_examples(40);
    let search = FeatureSearch::from_examples(&examples, small_config(1));
    let injector = FaultInjector::new(vec![FaultPlan {
        trigger: FaultTrigger::OnMatch {
            modulus: 5,
            residue: 2,
        },
        kind: FaultKind::Panic,
    }]);
    let outcome = search
        .driver()
        .fault_injector(&injector)
        .run(&examples)
        .expect("a panicking evaluator must not abort the search");
    assert!(injector.injected() > 0, "the fault pattern should have fired");
    // Poisoned candidates can never be accepted: they are isolated and
    // memoised as invalid, exactly like timeouts.
    for f in &outcome.features {
        assert_ne!(fnv1a(f.to_string().as_bytes()) % 5, 2, "accepted {f}");
    }
}

#[test]
fn search_is_deterministic_across_thread_counts_under_panics() {
    let examples = synthetic_examples(40);
    let run_with = |threads: usize| {
        let search = FeatureSearch::from_examples(&examples, small_config(threads));
        // OnMatch faults are a property of the candidate, not the call
        // order, so injection is identical whatever the thread count.
        let injector = FaultInjector::new(vec![FaultPlan {
            trigger: FaultTrigger::OnMatch {
                modulus: 5,
                residue: 2,
            },
            kind: FaultKind::Panic,
        }]);
        search
            .driver()
            .fault_injector(&injector)
            .run(&examples)
            .expect("search completes under injected panics")
    };
    let seq = run_with(1);
    let par = run_with(4);
    assert_eq!(seq.features, par.features);
    assert_eq!(seq.steps, par.steps);
    assert_eq!(seq.total_generations, par.total_generations);
}

#[test]
fn budget_exhaustion_penalizes_only_the_candidate() {
    // Candidates whose evaluation "runs out of budget" (fitness None, the
    // same signal EvalError::BudgetExceeded produces in one internal-CV
    // fold) lose their slot; the greedy loop itself must run to completion
    // and still find clean features.
    let examples = synthetic_examples(40);
    let search = FeatureSearch::from_examples(&examples, small_config(1));
    let injector = FaultInjector::new(vec![FaultPlan {
        trigger: FaultTrigger::OnMatch {
            modulus: 3,
            residue: 1,
        },
        kind: FaultKind::ExhaustBudget,
    }]);
    let outcome = search
        .driver()
        .fault_injector(&injector)
        .run(&examples)
        .expect("budget exhaustion must never abort the greedy loop");
    assert!(injector.injected() > 0);
    for f in &outcome.features {
        assert_ne!(fnv1a(f.to_string().as_bytes()) % 3, 1, "accepted {f}");
    }
}

#[test]
fn nan_fitness_never_wins() {
    let examples = synthetic_examples(40);
    let search = FeatureSearch::from_examples(&examples, small_config(1));
    let injector = FaultInjector::new(vec![FaultPlan {
        trigger: FaultTrigger::OnMatch {
            modulus: 2,
            residue: 0,
        },
        kind: FaultKind::NanFitness,
    }]);
    let outcome = search
        .driver()
        .fault_injector(&injector)
        .run(&examples)
        .expect("NaN fitness must never abort the search");
    for f in &outcome.features {
        assert_ne!(fnv1a(f.to_string().as_bytes()) % 2, 0, "accepted {f}");
    }
}

#[test]
fn empty_training_set_is_a_typed_error() {
    let examples = synthetic_examples(10);
    let search = FeatureSearch::from_examples(&examples, small_config(1));
    assert!(matches!(
        search.try_run(&[]),
        Err(SearchError::EmptyTrainingSet)
    ));
}

#[test]
fn resuming_a_foreign_checkpoint_is_rejected() {
    let examples = synthetic_examples(30);
    let config = small_config(1);
    let search = FeatureSearch::from_examples(&examples, config.clone());

    let dir = temp_dir("foreign");
    let injector = FaultInjector::new(vec![FaultPlan {
        trigger: FaultTrigger::OnCall(25),
        kind: FaultKind::Cancel,
    }]);
    let err = search
        .driver()
        .checkpoint(&dir, 2)
        .fault_injector(&injector)
        .run(&examples)
        .expect_err("interrupted");
    let SearchError::Interrupted {
        checkpoint: Some(checkpoint),
        ..
    } = err
    else {
        panic!("expected a checkpoint, got {err}");
    };

    // Different config → StateMismatch.
    let mut other_config = config.clone();
    other_config.seed ^= 0xdead;
    let other = FeatureSearch::from_examples(&examples, other_config);
    let err = other
        .driver()
        .resume(&checkpoint, &examples)
        .expect_err("foreign config must be rejected");
    assert!(
        matches!(
            err,
            SearchError::Checkpoint(fegen::core::CheckpointError::StateMismatch { .. })
        ),
        "{err}"
    );

    // Different examples → StateMismatch.
    let err = search
        .driver()
        .resume(&checkpoint, &synthetic_examples(31))
        .expect_err("foreign examples must be rejected");
    assert!(
        matches!(
            err,
            SearchError::Checkpoint(fegen::core::CheckpointError::StateMismatch { .. })
        ),
        "{err}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
