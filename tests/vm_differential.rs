//! Differential tests: the compiled bytecode VM against the tree-walking
//! interpreter, which stays in the codebase as the reference oracle.
//!
//! The compiled engine is only admissible because it is *extensionally
//! identical* to the interpreter — same values, same [`EvalError`]s, and
//! the same step-budget exhaustion points, feature by feature, loop by
//! loop. These tests check that equivalence on grammar-generated features
//! over both real exported loops and randomly generated IR trees, and then
//! prove the end-to-end consequence: a search run on the compiled engine —
//! including one interrupted and resumed mid-GP — reproduces the
//! interpreter run byte for byte at any thread count.

use fegen::core::grammar::Grammar;
use fegen::core::ir::{IrArena, IrNode};
use fegen::core::lang::{parse_feature, EvalError, Evaluator, FeatureExpr, Program};
use fegen::core::search::TrainingExample;
use fegen::core::{
    CancelToken, EvalEngine, EvalPool, FaultInjector, FaultKind, FaultPlan, FaultTrigger,
    FeatureSearch, SearchConfig, SearchError,
};
use fegen::rtl::export::export_loop;
use fegen::rtl::lower::lower_program;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::PathBuf;

/// Real exported loops plus the grammar derived from them.
fn corpus() -> (Grammar, Vec<IrNode>) {
    let src = "\
        int a[128]; float f[128]; int idx[64]; int tab[32]; int m[8][8];\n\
        int k1(int n) { int i; int s; s = 0; for (i = 0; i < n; i = i + 1) { s = s + a[i]; } return s; }\n\
        void k2(int n) { int i; for (i = 1; i < 100; i = i + 1) { f[i] = f[i] * 0.5 + f[i - 1] * 0.25; } }\n\
        void k3() { int i; int j; for (i = 0; i < 8; i = i + 1) { for (j = 0; j < 8; j = j + 1) { m[i][j] = i * j; } } }\n\
        void k4(int n) { int i; for (i = 0; i < n; i = i + 1) { tab[a[idx[i % 64]] % 32] = i; } }\n";
    let ast = fegen::lang::parse_program(src).unwrap();
    let rtl = lower_program(&ast).unwrap();
    let mut irs = Vec::new();
    for func in &rtl.functions {
        for region in &func.loops {
            irs.push(export_loop(func, region, &rtl.layout));
        }
    }
    let grammar = Grammar::derive(irs.iter());
    (grammar, irs)
}

/// A random IR tree: node kinds, attribute shapes and fan-out all drawn
/// from the RNG, so the differential check is not limited to the shapes the
/// RTL exporter happens to produce.
fn random_ir(rng: &mut StdRng, depth: usize) -> IrNode {
    const KINDS: [&str; 5] = ["loop", "insn", "jump_insn", "mem_ref", "expr"];
    let kind = KINDS[rng.gen_range(0..KINDS.len())];
    let mut node = IrNode::new(kind);
    fill(rng, &mut node, depth);
    node
}

fn fill(rng: &mut StdRng, node: &mut IrNode, depth: usize) {
    const KINDS: [&str; 5] = ["loop", "insn", "jump_insn", "mem_ref", "expr"];
    const ENUMS: [&str; 4] = ["SI", "DF", "QI", "none"];
    for (name, p) in [("weight", 0.8), ("depth", 0.4), ("stride", 0.3)] {
        if rng.gen_bool(p) {
            node.attr_num(name, rng.gen_range(-8i32..64) as f64);
        }
    }
    if rng.gen_bool(0.6) {
        let mode = ENUMS[rng.gen_range(0..ENUMS.len())];
        node.attr_enum("mode", mode);
    }
    if rng.gen_bool(0.3) {
        let innermost = rng.gen_bool(0.5);
        node.attr_bool("innermost", innermost);
    }
    if depth > 0 {
        for _ in 0..rng.gen_range(0..4usize) {
            let kind = KINDS[rng.gen_range(0..KINDS.len())];
            node.child(kind, |c| fill(rng, c, depth - 1));
        }
    }
}

/// Evaluates `f` both ways on `ir` and asserts identical outcomes.
fn assert_agree(f: &FeatureExpr, ir: &IrNode, budget: u64) {
    let interp = f.eval_with_budget(ir, budget);
    let arena = IrArena::from_tree(ir);
    let compiled = Program::compile(f).eval(&arena, budget);
    assert_eq!(
        interp, compiled,
        "engines disagree on `{f}` (budget {budget})"
    );
}

/// Exact steps the interpreter spends on `f` over `ir` (unbounded budget).
fn interpreter_cost(f: &FeatureExpr, ir: &IrNode) -> u64 {
    let mut ev = Evaluator::new(u64::MAX / 2);
    let before = ev.remaining();
    let _ = ev.eval(f, ir);
    before - ev.remaining()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Equal values and equal errors on real exported loops.
    #[test]
    fn vm_matches_interpreter_on_exported_loops(seed in 0u64..10_000, depth in 2usize..7) {
        let (grammar, irs) = corpus();
        let mut rng = StdRng::seed_from_u64(seed);
        let f = grammar.gen_feature(&mut rng, depth);
        for ir in &irs {
            assert_agree(&f, ir, 500_000);
        }
    }

    /// Equal values and equal errors on randomly generated IR trees, with
    /// the grammar derived from those same trees so features reference
    /// their actual kinds and attributes.
    #[test]
    fn vm_matches_interpreter_on_random_ir(seed in 0u64..10_000) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xa5a5);
        let irs: Vec<IrNode> = (0..4).map(|_| random_ir(&mut rng, 3)).collect();
        let grammar = Grammar::derive(irs.iter());
        for _ in 0..4 {
            let f = grammar.gen_feature(&mut rng, 5);
            for ir in &irs {
                assert_agree(&f, ir, 200_000);
            }
        }
    }

    /// The engines exhaust the step budget at exactly the same point: for
    /// every generated feature, probing budgets around the interpreter's
    /// measured cost yields identical outcomes — including the flip from
    /// `BudgetExceeded` to success at precisely the same budget.
    #[test]
    fn budget_exhaustion_points_agree(seed in 0u64..10_000, depth in 2usize..6) {
        let (grammar, irs) = corpus();
        let mut rng = StdRng::seed_from_u64(seed);
        let f = grammar.gen_feature(&mut rng, depth);
        let ir = &irs[seed as usize % irs.len()];
        let spent = interpreter_cost(&f, ir);
        for budget in [0, 1, spent.saturating_sub(1), spent, spent + 1] {
            assert_agree(&f, ir, budget);
        }
    }

    /// Per-loop evaluation through pools agrees between engines, and the
    /// column-level discard rule (`None` on any failure) agrees too.
    #[test]
    fn pools_agree_between_engines(seed in 0u64..10_000) {
        let (grammar, irs) = corpus();
        let mut rng = StdRng::seed_from_u64(seed);
        let compiled = EvalPool::new(irs.iter(), EvalEngine::Compiled);
        let interp = EvalPool::new(irs.iter(), EvalEngine::Interpreter);
        for _ in 0..3 {
            let f = grammar.gen_feature(&mut rng, 5);
            for budget in [300, 60_000] {
                for i in 0..irs.len() {
                    prop_assert_eq!(
                        compiled.eval(&f, i, budget),
                        interp.eval(&f, i, budget),
                        "loop {} of `{}`", i, &f
                    );
                }
                prop_assert_eq!(compiled.column(&f, budget), interp.column(&f, budget));
            }
            // Replay from the warm result cache must not change outcomes.
            for i in 0..irs.len() {
                prop_assert_eq!(
                    compiled.eval(&f, i, 60_000),
                    interp.eval(&f, i, 60_000)
                );
            }
        }
    }

    /// The amortized columnar sweep is extensionally identical to
    /// evaluating every cell individually: equal values when all loops
    /// succeed, and `None` exactly when any per-cell evaluation fails
    /// (budget exhaustion or a non-finite value).
    #[test]
    fn columnar_sweep_matches_per_cell_eval(seed in 0u64..10_000) {
        let (grammar, irs) = corpus();
        let mut rng = StdRng::seed_from_u64(seed ^ 0xc01);
        let pool = EvalPool::new(irs.iter(), EvalEngine::Compiled);
        for depth in [3usize, 5] {
            let f = grammar.gen_feature(&mut rng, depth);
            for budget in [300, 60_000] {
                let cells: Result<Vec<f64>, EvalError> =
                    (0..irs.len()).map(|i| pool.eval(&f, i, budget)).collect();
                prop_assert_eq!(
                    pool.column(&f, budget),
                    cells.ok(),
                    "column/per-cell divergence on `{}` (budget {})", &f, budget
                );
            }
        }
    }

    /// An installed but untriggered cancellation token leaves
    /// `column_cancellable` identical to `column`; once the token flips,
    /// the cancellable sweep bails out with `None` while the plain sweep
    /// is deliberately unaffected.
    #[test]
    fn cancellation_gates_only_the_cancellable_sweep(seed in 0u64..10_000) {
        let (grammar, irs) = corpus();
        let mut rng = StdRng::seed_from_u64(seed ^ 0xca7);
        let mut pool = EvalPool::new(irs.iter(), EvalEngine::Compiled);
        let token = CancelToken::new();
        pool.set_cancel(token.clone());
        let f = grammar.gen_feature(&mut rng, 4);
        for budget in [300u64, 60_000] {
            prop_assert_eq!(
                pool.column_cancellable(&f, budget),
                pool.column(&f, budget),
                "uncancelled token perturbed the sweep of `{}`", &f
            );
        }
        token.cancel();
        prop_assert_eq!(pool.column_cancellable(&f, 60_000), None);
        let cells: Result<Vec<f64>, EvalError> =
            (0..irs.len()).map(|i| pool.eval(&f, i, 60_000)).collect();
        prop_assert_eq!(
            pool.column(&f, 60_000),
            cells.ok(),
            "plain column sweep must ignore cancellation (`{}`)", &f
        );
    }
}

#[test]
fn non_finite_outcomes_agree() {
    let (_, irs) = corpus();
    let overflow = parse_feature(&format!("sum(//*, {0} * {0})", f64::MAX)).unwrap();
    for ir in &irs {
        let interp = overflow.eval_with_budget(ir, 1_000_000);
        assert_eq!(interp, Err(EvalError::NonFinite));
        let arena = IrArena::from_tree(ir);
        assert_eq!(Program::compile(&overflow).eval(&arena, 1_000_000), interp);
        // And through a pool, including a cached replay of the failure.
        let pool = EvalPool::new([ir], EvalEngine::Compiled);
        assert_eq!(pool.eval(&overflow, 0, 1_000_000), interp);
        assert_eq!(pool.eval(&overflow, 0, 1_000_000), interp);
    }
}

// ---------------------------------------------------------------------------
// End-to-end: the compiled engine reproduces the interpreter search exactly.
// ---------------------------------------------------------------------------

fn synthetic_examples(n: usize) -> Vec<TrainingExample> {
    (0..n)
        .map(|i| {
            let insns = 1 + i % 5;
            let best = insns % 4;
            let ir = IrNode::build("loop", |l| {
                l.attr_num("decoy", (i * 7 % 3) as f64);
                for _ in 0..insns {
                    l.child("insn", |x| {
                        x.attr_enum("mode", "SI");
                    });
                }
                l.child("jump_insn", |_| {});
            });
            let cycles = (0..4)
                .map(|k| {
                    if k == best {
                        80.0
                    } else {
                        100.0 + (k as f64 - best as f64).abs()
                    }
                })
                .collect();
            TrainingExample { ir, cycles }
        })
        .collect()
}

fn small_config(threads: usize) -> SearchConfig {
    let mut config = SearchConfig::quick();
    config.seed = 41;
    config.max_features = 2;
    config.max_total_generations = 24;
    config.gp.population = 14;
    config.gp.max_generations = 6;
    config.gp.stagnation_limit = 6;
    config.gp.threads = threads;
    config
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fegen-vmdiff-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The full search is byte-identical between the interpreter and the
/// compiled engine, at one thread and at several — the four runs must
/// produce one single outcome.
#[test]
fn search_outcome_is_engine_and_thread_invariant() {
    let examples = synthetic_examples(40);
    let run = |engine: EvalEngine, threads: usize| {
        FeatureSearch::from_examples(&examples, small_config(threads))
            .with_engine(engine)
            .try_run(&examples)
            .expect("search completes")
    };
    let reference = run(EvalEngine::Interpreter, 1);
    assert!(
        !reference.features.is_empty(),
        "the synthetic task must be solvable, or the test proves nothing"
    );
    assert_eq!(run(EvalEngine::Compiled, 1), reference);
    assert_eq!(run(EvalEngine::Compiled, 4), reference);
    assert_eq!(run(EvalEngine::Interpreter, 4), reference);
}

/// Kill-and-resume on the compiled engine: an injected mid-GP cancellation
/// followed by a resume reproduces, byte for byte, the outcome of an
/// *uninterrupted interpreter* run — checkpoint/resume (PR 1) and the
/// compiled engine compose.
#[test]
fn compiled_engine_kill_and_resume_matches_interpreter_reference() {
    let examples = synthetic_examples(40);
    let config = small_config(4);

    let reference = FeatureSearch::from_examples(&examples, config.clone())
        .with_engine(EvalEngine::Interpreter)
        .try_run(&examples)
        .expect("reference run completes");
    assert!(!reference.features.is_empty());

    let compiled =
        FeatureSearch::from_examples(&examples, config).with_engine(EvalEngine::Compiled);
    let dir = temp_dir("resume");
    let injector = FaultInjector::new(vec![FaultPlan {
        trigger: FaultTrigger::OnCall(25),
        kind: FaultKind::Cancel,
    }]);
    let err = compiled
        .driver()
        .checkpoint(&dir, 2)
        .fault_injector(&injector)
        .run(&examples)
        .expect_err("the injected cancellation must interrupt the run");
    let SearchError::Interrupted {
        checkpoint: Some(checkpoint),
        ..
    } = err
    else {
        panic!("expected Interrupted with a checkpoint path, got {err}");
    };

    let resumed = compiled
        .driver()
        .resume(&checkpoint, &examples)
        .expect("resume completes");
    assert_eq!(
        resumed, reference,
        "compiled kill-and-resume must not fork the interpreter trajectory"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
