//! Property tests of the paper's robust measurement statistics
//! ([`fegen_sim::measure`]): the log-transform + 1.5 × IQR protocol must be
//! order-independent, reject heavy outliers, stay inside the sample range,
//! scale like a mean — and be *total* over adversarial inputs (NaN, ±∞,
//! zeros, negatives, empty, singleton), which is exactly what a crashed or
//! overflowed measurement run feeds it.

use fegen_sim::measure::{robust_mean, robust_stats};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A plausible cycle reading: strictly positive and finite.
fn cycles() -> impl Strategy<Value = f64> {
    1.0..1.0e9
}

/// An adversarial reading: anything a broken run could report.
fn any_reading() -> impl Strategy<Value = f64> {
    prop_oneof![
        cycles(),
        -1.0e6..1.0e6,
        prop::sample::select(vec![f64::NAN, f64::INFINITY, f64::NEG_INFINITY, 0.0, -0.0]),
    ]
}

/// Fisher–Yates with a seeded RNG, so every permutation is reachable and
/// the failing case is reproducible.
fn shuffled(samples: &[f64], seed: u64) -> Vec<f64> {
    let mut out = samples.to_vec();
    let mut rng = StdRng::seed_from_u64(seed);
    for i in (1..out.len()).rev() {
        out.swap(i, rng.gen_range(0..=i));
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn permutation_invariant(
        samples in prop::collection::vec(any_reading(), 1..40),
        seed in 0u64..1000,
    ) {
        // Exact equality, not approximate: the statistics sort internally,
        // so sample order must be completely immaterial.
        prop_assert_eq!(robust_stats(&shuffled(&samples, seed)), robust_stats(&samples));
    }

    #[test]
    fn total_and_none_exactly_when_no_finite_sample(
        samples in prop::collection::vec(any_reading(), 0..40),
    ) {
        let has_finite = samples.iter().any(|s| s.is_finite());
        match robust_stats(&samples) {
            Some(s) => {
                prop_assert!(has_finite);
                prop_assert!(s.mean.is_finite() && s.mean > 0.0, "mean {}", s.mean);
                prop_assert!(s.log_iqr.is_finite() && s.log_iqr >= 0.0);
                prop_assert!(s.kept >= 1 && s.kept <= s.finite);
                prop_assert_eq!(s.finite, samples.iter().filter(|v| v.is_finite()).count());
            }
            None => prop_assert!(!has_finite),
        }
    }

    #[test]
    fn mean_stays_inside_the_finite_sample_range(
        samples in prop::collection::vec(cycles(), 1..40),
    ) {
        let m = robust_mean(&samples).expect("finite input");
        let lo = samples.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = samples.iter().copied().fold(0.0, f64::max);
        prop_assert!(
            m >= lo * (1.0 - 1e-12) && m <= hi * (1.0 + 1e-12),
            "mean {m} outside [{lo}, {hi}]"
        );
    }

    #[test]
    fn heavy_outliers_are_rejected(
        base in 100.0..1.0e6,
        n_clean in 20usize..60,
        n_outliers in 1usize..4,
    ) {
        // A tight cluster with a few 10x context-switch spikes: the robust
        // mean must stay on the cluster while the plain mean is dragged off.
        let mut samples = vec![base; n_clean];
        samples.extend(vec![base * 10.0; n_outliers]);
        let robust = robust_mean(&samples).expect("finite input");
        let plain = samples.iter().sum::<f64>() / samples.len() as f64;
        prop_assert!(
            (robust - base).abs() < base * 1e-9,
            "outliers leaked into the robust mean: {robust} vs {base}"
        );
        prop_assert!(plain > base * 1.1, "test needs real outlier pressure");
    }

    #[test]
    fn single_sample_is_its_own_mean(s in cycles()) {
        let stats = robust_stats(&[s]).expect("one finite sample");
        prop_assert!((stats.mean - s).abs() < s * 1e-12);
        prop_assert_eq!(stats.log_iqr, 0.0);
        prop_assert_eq!((stats.kept, stats.finite), (1, 1));
    }

    #[test]
    fn scales_like_a_mean(
        samples in prop::collection::vec(cycles(), 1..40),
        scale in 0.001..1000.0,
    ) {
        // Log-domain statistics commute with positive scaling: the same
        // samples survive the IQR cut, so the mean scales exactly.
        let base = robust_mean(&samples).expect("finite input");
        let scaled: Vec<f64> = samples.iter().map(|s| s * scale).collect();
        let m = robust_mean(&scaled).expect("finite input");
        prop_assert!(
            (m - base * scale).abs() <= base * scale * 1e-9,
            "{m} vs {}", base * scale
        );
    }

    #[test]
    fn non_finite_noise_never_changes_the_answer(
        samples in prop::collection::vec(cycles(), 1..30),
        junk in prop::collection::vec(
            prop::sample::select(vec![f64::NAN, f64::INFINITY, f64::NEG_INFINITY]),
            0..10,
        ),
        seed in 0u64..1000,
    ) {
        // Interleave garbage among real readings: the statistics must be
        // exactly those of the real readings alone.
        let mut mixed = samples.clone();
        mixed.extend(junk);
        let mixed = shuffled(&mixed, seed);
        prop_assert_eq!(robust_stats(&mixed), robust_stats(&samples));
    }
}
