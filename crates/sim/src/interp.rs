//! The RTL interpreter with cycle accounting.
//!
//! [`Machine`] executes lowered [`fegen_rtl::RtlProgram`]s and attributes
//! cycles to the function executing them (exclusive of callees) — the
//! paper's measurements record "the number of cycles required to execute
//! the function containing the loop that had been altered" (§V).
//!
//! Cycle accounting = static block costs (see [`crate::cost`]) charged on
//! every block entry, plus dynamic penalties: D-cache misses on actual
//! addresses, I-cache misses on the block's code footprint, and branch
//! mispredictions from a two-bit predictor.

use crate::cache::{BranchPredictor, Cache};
use crate::cost::{block_costs, BlockCosts, CostModel};
use fegen_rtl::cfg::Cfg;
use fegen_rtl::func::ParamKind;
use fegen_rtl::node::{InsnBody, Mode, Rtx, RtxCode, RtxValue};
use fegen_rtl::{RtlFunction, RtlProgram};
use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;
use std::sync::Arc;

/// A runtime value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    /// Integer.
    I(i64),
    /// Float.
    F(f64),
}

impl Value {
    /// Integer view (floats truncate).
    pub fn as_i(self) -> i64 {
        match self {
            Value::I(v) => v,
            Value::F(v) => v as i64,
        }
    }

    /// Float view.
    pub fn as_f(self) -> f64 {
        match self {
            Value::I(v) => v as f64,
            Value::F(v) => v,
        }
    }

    /// Truthiness (non-zero).
    pub fn is_true(self) -> bool {
        match self {
            Value::I(v) => v != 0,
            Value::F(v) => v != 0.0,
        }
    }
}

/// An argument to [`Machine::call`].
#[derive(Debug, Clone, PartialEq)]
pub enum Arg {
    /// Scalar integer.
    Int(i64),
    /// Scalar float.
    Float(f64),
    /// Array argument: the name of an allocated array (global or
    /// `func::local`).
    Array(String),
}

/// Simulator error.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// No function with that name.
    UnknownFunction(String),
    /// A `symbol_ref` did not resolve to an allocated array.
    UnknownSymbol(String),
    /// A memory access fell outside the allocated image.
    BadAddress(i64),
    /// The instruction budget was exhausted (runaway loop).
    InsnLimit,
    /// Call depth exceeded (unexpected recursion).
    CallDepth,
    /// A jump targeted a label that does not exist.
    BadLabel(u32),
    /// Wrong number or kind of arguments.
    BadArguments(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::UnknownFunction(n) => write!(f, "unknown function `{n}`"),
            SimError::UnknownSymbol(n) => write!(f, "unknown symbol `{n}`"),
            SimError::BadAddress(a) => write!(f, "memory access out of range at cell {a}"),
            SimError::InsnLimit => write!(f, "instruction limit exceeded"),
            SimError::CallDepth => write!(f, "call depth exceeded"),
            SimError::BadLabel(l) => write!(f, "jump to unknown label {l}"),
            SimError::BadArguments(m) => write!(f, "bad arguments: {m}"),
        }
    }
}

impl std::error::Error for SimError {}

/// Simulator configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Pipeline cost constants.
    pub model: CostModel,
    /// D-cache lines (×64-byte lines; 256 = 16 KiB).
    pub dcache_lines: usize,
    /// I-cache lines (×64-byte lines).
    pub icache_lines: usize,
    /// Branch-predictor entries.
    pub bp_entries: usize,
    /// Abort after this many executed instructions.
    pub max_insns: u64,
    /// Maximum call depth.
    pub max_depth: usize,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            model: CostModel::default(),
            dcache_lines: 256,
            icache_lines: 256,
            bp_entries: 512,
            max_insns: 200_000_000,
            max_depth: 64,
        }
    }
}

const LINE_BYTES: usize = 64;
const INSN_BYTES: u64 = 4;

/// The content-derived part of a function's execution image: CFG-shaped
/// lookup tables and static block costs. Depends only on the function body
/// and the cost model — never on the function's position in a program — so
/// one analysis can be shared (via [`Arc`]) by every [`Machine`] simulating
/// an identical copy of the function. This is the immutable state a
/// fork-once measurement campaign builds once per benchmark and reuses for
/// every per-factor variant.
#[derive(Debug, Clone)]
pub struct FuncAnalysis {
    /// Static block costs under the configured pipeline model.
    pub costs: BlockCosts,
    /// Block index of every instruction.
    pub block_of: Vec<usize>,
    /// Whether the instruction index starts a block.
    pub is_block_start: Vec<bool>,
    /// Block span (start, end) per block.
    pub spans: Vec<(usize, usize)>,
    /// Instruction index of every label.
    pub label_at: HashMap<u32, usize>,
}

impl FuncAnalysis {
    /// Builds the analysis for one function under `model`.
    pub fn build(f: &RtlFunction, model: &CostModel) -> FuncAnalysis {
        let cfg = Cfg::build(f);
        let costs = block_costs(f, &cfg, model);
        let n = f.insns.len();
        let mut block_of = vec![0usize; n];
        let mut is_block_start = vec![false; n];
        let mut spans = Vec::with_capacity(cfg.blocks.len());
        for b in &cfg.blocks {
            spans.push((b.start, b.end));
            if b.start < n {
                is_block_start[b.start] = true;
            }
            block_of[b.start..b.end].fill(b.index);
        }
        let mut label_at = HashMap::new();
        for (i, insn) in f.insns.iter().enumerate() {
            if let InsnBody::Label(l) = insn.body {
                label_at.insert(l, i);
            }
        }
        FuncAnalysis {
            costs,
            block_of,
            is_block_start,
            spans,
            label_at,
        }
    }
}

/// Shareable per-function analyses, keyed by function name. Entries must
/// have been built from functions *identical in content* to the ones they
/// are reused for — [`Machine::with_overlay`] looks them up by name and
/// trusts them.
pub type AnalysisCache = HashMap<String, Arc<FuncAnalysis>>;

/// Prepared per-function execution image: the shared content analysis plus
/// the program-position-dependent code address.
struct FuncImage<'p> {
    func: &'p RtlFunction,
    analysis: Arc<FuncAnalysis>,
    /// Byte address of the function's first instruction.
    code_base: u64,
}

/// The mutable simulation state of a [`Machine`] at one point in time:
/// memory image, cache and predictor contents, and cycle/instruction
/// counters. Exported after a benchmark's `init` calls and imported into
/// per-factor fork machines, it lets a measurement campaign simulate
/// initialisation once instead of once per factor — sound only when the
/// fork would replay init at identical code addresses (the eligibility
/// test lives in [`crate::oracle::ProgramSnapshot`]).
#[derive(Debug, Clone)]
pub struct MachineState {
    memory: Vec<u64>,
    dcache: Cache,
    icache: Cache,
    bp: BranchPredictor,
    cycles_by_func: HashMap<String, u64>,
    total_cycles: u64,
    insns_executed: u64,
}

/// The simulated machine: program, memory image, caches, predictor and
/// per-function cycle counters.
pub struct Machine<'p> {
    program: &'p RtlProgram,
    images: HashMap<&'p str, Rc<FuncImage<'p>>>,
    /// Memory image: one 8-byte cell per array element.
    pub memory: Vec<u64>,
    dcache: Cache,
    icache: Cache,
    bp: BranchPredictor,
    cycles_by_func: HashMap<String, u64>,
    total_cycles: u64,
    insns_executed: u64,
    analyses_reused: usize,
    analyses_built: usize,
    config: SimConfig,
}

impl<'p> fmt::Debug for Machine<'p> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Machine")
            .field("functions", &self.images.len())
            .field("memory_cells", &self.memory.len())
            .field("total_cycles", &self.total_cycles)
            .field("insns_executed", &self.insns_executed)
            .finish()
    }
}

impl<'p> Machine<'p> {
    /// Prepares a machine for `program` (builds CFGs and static block
    /// costs for every function, zeroes memory).
    pub fn new(program: &'p RtlProgram, config: SimConfig) -> Machine<'p> {
        Machine::with_overlay(program, None, None, config)
    }

    /// As [`Machine::new`], with two fork-oriented extensions: `overlay`
    /// (when `Some`) is substituted — by name — for the program's own copy
    /// of that function, and `analyses` (when `Some`) supplies prebuilt
    /// [`FuncAnalysis`] entries reused for every non-overlay function found
    /// in it. The overlay's analysis is always built fresh.
    ///
    /// Code addresses are assigned sequentially over the *substituted*
    /// function list in program order, exactly as [`Machine::new`] would
    /// lay out a materialized variant program — so I-cache and
    /// branch-predictor behaviour is identical to simulating that variant.
    ///
    /// Cached entries are trusted: the caller guarantees each was built
    /// from a function with the same body as the program's, under the same
    /// cost model.
    pub fn with_overlay(
        program: &'p RtlProgram,
        overlay: Option<&'p RtlFunction>,
        analyses: Option<&AnalysisCache>,
        config: SimConfig,
    ) -> Machine<'p> {
        let mut images = HashMap::new();
        let mut code_base = 0u64;
        let mut analyses_reused = 0usize;
        let mut analyses_built = 0usize;
        for f in &program.functions {
            let substituted = overlay.filter(|o| o.name == f.name);
            let f: &'p RtlFunction = substituted.unwrap_or(f);
            let cached = if substituted.is_none() {
                analyses.and_then(|c| c.get(f.name.as_str()))
            } else {
                None
            };
            let analysis = match cached {
                Some(a) => {
                    analyses_reused += 1;
                    Arc::clone(a)
                }
                None => {
                    analyses_built += 1;
                    Arc::new(FuncAnalysis::build(f, &config.model))
                }
            };
            let n = f.insns.len();
            images.insert(
                f.name.as_str(),
                Rc::new(FuncImage {
                    func: f,
                    analysis,
                    code_base,
                }),
            );
            code_base += (n as u64 + 8) * INSN_BYTES;
        }
        let memory = vec![0u64; program.layout.total_cells() as usize];
        Machine {
            program,
            images,
            memory,
            dcache: Cache::new(config.dcache_lines, LINE_BYTES),
            icache: Cache::new(config.icache_lines, LINE_BYTES),
            bp: BranchPredictor::new(config.bp_entries),
            cycles_by_func: HashMap::new(),
            total_cycles: 0,
            insns_executed: 0,
            analyses_reused,
            analyses_built,
            config,
        }
    }

    /// Calls `name` with `args`; returns the function's return value.
    ///
    /// # Errors
    ///
    /// See [`SimError`].
    pub fn call(&mut self, name: &str, args: &[Arg]) -> Result<Option<Value>, SimError> {
        let image = self
            .images
            .get(name)
            .ok_or_else(|| SimError::UnknownFunction(name.to_owned()))?;
        let func = image.func;
        if args.len() != func.params.len() {
            return Err(SimError::BadArguments(format!(
                "`{name}` expects {} arguments, got {}",
                func.params.len(),
                args.len()
            )));
        }
        let mut scalars = Vec::new();
        let mut arrays: HashMap<String, u64> = HashMap::new();
        for (p, a) in func.params.iter().zip(args) {
            match (&p.kind, a) {
                (ParamKind::Scalar { mode, .. }, Arg::Int(v)) => {
                    scalars.push(convert_to_mode(Value::I(*v), *mode));
                }
                (ParamKind::Scalar { mode, .. }, Arg::Float(v)) => {
                    scalars.push(convert_to_mode(Value::F(*v), *mode));
                }
                (ParamKind::Array { .. }, Arg::Array(sym)) => {
                    let info = self
                        .program
                        .layout
                        .get(sym)
                        .ok_or_else(|| SimError::UnknownSymbol(sym.clone()))?;
                    arrays.insert(p.name.clone(), info.base);
                }
                _ => {
                    return Err(SimError::BadArguments(format!(
                        "argument for `{}` has the wrong kind",
                        p.name
                    )))
                }
            }
        }
        self.call_values(name, &scalars, arrays, 0)
    }

    /// Cycles attributed (exclusively) to function `name` so far.
    pub fn cycles_of(&self, name: &str) -> u64 {
        self.cycles_by_func.get(name).copied().unwrap_or(0)
    }

    /// Total cycles across all functions.
    pub fn total_cycles(&self) -> u64 {
        self.total_cycles
    }

    /// Total instructions executed.
    pub fn insns_executed(&self) -> u64 {
        self.insns_executed
    }

    /// Snapshots the machine's mutable state (memory, caches, predictor,
    /// counters) for later [`Machine::import_state`] into a fork.
    pub fn export_state(&self) -> MachineState {
        MachineState {
            memory: self.memory.clone(),
            dcache: self.dcache.clone(),
            icache: self.icache.clone(),
            bp: self.bp.clone(),
            cycles_by_func: self.cycles_by_func.clone(),
            total_cycles: self.total_cycles,
            insns_executed: self.insns_executed,
        }
    }

    /// Replaces the machine's mutable state with an exported snapshot.
    /// The state must come from a machine whose execution up to the export
    /// point would have been identical on this machine (same memory
    /// layout, same code addresses for everything executed) — the caller
    /// proves that; this method just installs the bytes.
    pub fn import_state(&mut self, state: MachineState) {
        debug_assert_eq!(
            state.memory.len(),
            self.memory.len(),
            "state from a different memory layout"
        );
        self.memory = state.memory;
        self.dcache = state.dcache;
        self.icache = state.icache;
        self.bp = state.bp;
        self.cycles_by_func = state.cycles_by_func;
        self.total_cycles = state.total_cycles;
        self.insns_executed = state.insns_executed;
    }

    /// Function analyses taken from the cache at construction.
    pub fn analyses_reused(&self) -> usize {
        self.analyses_reused
    }

    /// Function analyses built from scratch at construction.
    pub fn analyses_built(&self) -> usize {
        self.analyses_built
    }

    /// Branch mispredictions so far.
    pub fn mispredicts(&self) -> u64 {
        self.bp.mispredicts()
    }

    /// D-cache misses so far.
    pub fn dcache_misses(&self) -> u64 {
        self.dcache.misses()
    }

    /// I-cache misses so far.
    pub fn icache_misses(&self) -> u64 {
        self.icache.misses()
    }

    /// Reads one cell of an allocated array (for checking results).
    ///
    /// # Errors
    ///
    /// `UnknownSymbol` / `BadAddress` when the array or index is invalid.
    pub fn read_array(&self, name: &str, index: usize) -> Result<Value, SimError> {
        let info = self
            .program
            .layout
            .get(name)
            .ok_or_else(|| SimError::UnknownSymbol(name.to_owned()))?;
        if index >= info.len {
            return Err(SimError::BadAddress(index as i64));
        }
        let bits = self.memory[(info.base + index as u64) as usize];
        Ok(match info.mode {
            Mode::DF => Value::F(f64::from_bits(bits)),
            _ => Value::I(bits as i64),
        })
    }

    /// Writes one cell of an allocated array (for setting up inputs).
    ///
    /// # Errors
    ///
    /// `UnknownSymbol` / `BadAddress` when the array or index is invalid.
    pub fn write_array(&mut self, name: &str, index: usize, value: Value) -> Result<(), SimError> {
        let info = self
            .program
            .layout
            .get(name)
            .ok_or_else(|| SimError::UnknownSymbol(name.to_owned()))?;
        if index >= info.len {
            return Err(SimError::BadAddress(index as i64));
        }
        let bits = match info.mode {
            Mode::DF => value.as_f().to_bits(),
            _ => value.as_i() as u64,
        };
        self.memory[(info.base + index as u64) as usize] = bits;
        Ok(())
    }

    fn call_values(
        &mut self,
        name: &str,
        scalars: &[Value],
        arrays: HashMap<String, u64>,
        depth: usize,
    ) -> Result<Option<Value>, SimError> {
        if depth >= self.config.max_depth {
            return Err(SimError::CallDepth);
        }
        let image: Rc<FuncImage<'p>> = Rc::clone(
            self.images
                .get(name)
                .ok_or_else(|| SimError::UnknownFunction(name.to_owned()))?,
        );
        let func = image.func;
        let code_base = image.code_base;

        let mut regs: Vec<Value> = func
            .reg_modes
            .iter()
            .map(|m| match m {
                Mode::DF => Value::F(0.0),
                _ => Value::I(0),
            })
            .collect();
        let mut next_scalar = 0usize;
        for p in &func.params {
            if let ParamKind::Scalar { reg, .. } = p.kind {
                regs[reg as usize] = scalars[next_scalar];
                next_scalar += 1;
            }
        }

        let mut cycles = 0u64;
        let mut pc = 0usize;
        let mut result: Option<Value> = None;

        'exec: while pc < func.insns.len() {
            // Charge block cost on block entry.
            if image.analysis.is_block_start[pc] {
                let b = image.analysis.block_of[pc];
                let (bs, be) = image.analysis.spans[b];
                cycles += image.analysis.costs.cycles[b] + image.analysis.costs.spill[b];
                // Touch the block's I-cache lines.
                let lo = code_base + bs as u64 * INSN_BYTES;
                let hi = code_base + be as u64 * INSN_BYTES;
                let mut addr = lo - lo % LINE_BYTES as u64;
                while addr < hi {
                    if !self.icache.access(addr) {
                        cycles += self.config.model.icache_miss;
                    }
                    addr += LINE_BYTES as u64;
                }
            }

            self.insns_executed += 1;
            if self.insns_executed > self.config.max_insns {
                return Err(SimError::InsnLimit);
            }

            let insn = &func.insns[pc];
            match &insn.body {
                InsnBody::Label(_) => {
                    pc += 1;
                }
                InsnBody::Set { dest, src } => {
                    let v = self.eval(src, &regs, &arrays, &mut cycles)?;
                    match dest.code {
                        RtxCode::Reg => {
                            let r = dest.as_reg().expect("reg dest") as usize;
                            regs[r] = convert_to_mode(v, dest.mode);
                        }
                        RtxCode::Mem => {
                            let addr = self
                                .eval(&dest.ops[0], &regs, &arrays, &mut cycles)?
                                .as_i();
                            self.store(addr, convert_to_mode(v, dest.mode), &mut cycles)?;
                        }
                        _ => unreachable!("set dest is reg or mem"),
                    }
                    pc += 1;
                }
                InsnBody::CondJump { cond, target } => {
                    let taken = self
                        .eval(cond, &regs, &arrays, &mut cycles)?
                        .is_true();
                    let site = code_base + pc as u64;
                    if !self.bp.predict_and_update(site, taken) {
                        cycles += self.config.model.mispredict;
                    }
                    if taken {
                        pc = *image
                            .analysis
                            .label_at
                            .get(target)
                            .ok_or(SimError::BadLabel(*target))?;
                    } else {
                        pc += 1;
                    }
                }
                InsnBody::Jump { target } => {
                    pc = *image
                        .analysis
                        .label_at
                        .get(target)
                        .ok_or(SimError::BadLabel(*target))?;
                }
                InsnBody::Call {
                    name: callee,
                    args,
                    dest,
                } => {
                    // Evaluate arguments in the caller.
                    let callee_func = self
                        .images
                        .get(callee.as_str())
                        .ok_or_else(|| SimError::UnknownFunction(callee.clone()))?
                        .func;
                    let mut scalar_vals = Vec::new();
                    let mut array_binds: HashMap<String, u64> = HashMap::new();
                    for (p, a) in callee_func.params.iter().zip(args) {
                        match &p.kind {
                            ParamKind::Array { .. } => {
                                let RtxValue::Sym(sym) = &a.value else {
                                    return Err(SimError::BadArguments(format!(
                                        "array argument to `{callee}` is not a symbol"
                                    )));
                                };
                                let base = match arrays.get(sym) {
                                    Some(b) => *b,
                                    None => {
                                        self.program
                                            .layout
                                            .get(sym)
                                            .ok_or_else(|| {
                                                SimError::UnknownSymbol(sym.clone())
                                            })?
                                            .base
                                    }
                                };
                                array_binds.insert(p.name.clone(), base);
                            }
                            ParamKind::Scalar { mode, .. } => {
                                let v = self.eval(a, &regs, &arrays, &mut cycles)?;
                                scalar_vals.push(convert_to_mode(v, *mode));
                            }
                        }
                    }
                    cycles += self.config.model.call_overhead;
                    let ret = self.call_values(callee, &scalar_vals, array_binds, depth + 1)?;
                    if let Some(d) = dest {
                        let r = d.as_reg().expect("call dest is a reg") as usize;
                        regs[r] = convert_to_mode(
                            ret.ok_or_else(|| {
                                SimError::BadArguments(format!("`{callee}` returned no value"))
                            })?,
                            d.mode,
                        );
                    }
                    pc += 1;
                }
                InsnBody::Return { value } => {
                    result = match value {
                        Some(v) => Some(self.eval(v, &regs, &arrays, &mut cycles)?),
                        None => None,
                    };
                    break 'exec;
                }
            }
        }

        *self.cycles_by_func.entry(name.to_owned()).or_insert(0) += cycles;
        self.total_cycles += cycles;
        Ok(result)
    }

    fn load(&mut self, addr: i64, mode: Mode, cycles: &mut u64) -> Result<Value, SimError> {
        if addr < 0 || addr as usize >= self.memory.len() {
            return Err(SimError::BadAddress(addr));
        }
        if !self.dcache.access(addr as u64 * 8) {
            *cycles += self.config.model.dcache_miss;
        }
        let bits = self.memory[addr as usize];
        Ok(match mode {
            Mode::DF => Value::F(f64::from_bits(bits)),
            _ => Value::I(bits as i64),
        })
    }

    fn store(&mut self, addr: i64, value: Value, cycles: &mut u64) -> Result<(), SimError> {
        if addr < 0 || addr as usize >= self.memory.len() {
            return Err(SimError::BadAddress(addr));
        }
        if !self.dcache.access(addr as u64 * 8) {
            *cycles += self.config.model.dcache_miss;
        }
        self.memory[addr as usize] = match value {
            Value::F(v) => v.to_bits(),
            Value::I(v) => v as u64,
        };
        Ok(())
    }

    fn eval(
        &mut self,
        rtx: &Rtx,
        regs: &[Value],
        arrays: &HashMap<String, u64>,
        cycles: &mut u64,
    ) -> Result<Value, SimError> {
        use RtxCode::*;
        Ok(match rtx.code {
            Reg => regs[rtx.as_reg().expect("reg") as usize],
            ConstInt => Value::I(rtx.as_const_int().expect("const_int")),
            ConstDouble => match rtx.value {
                RtxValue::Float(v) => Value::F(v),
                _ => unreachable!("const_double payload"),
            },
            SymbolRef => {
                let RtxValue::Sym(sym) = &rtx.value else {
                    unreachable!("symbol_ref payload")
                };
                let base = match arrays.get(sym) {
                    Some(b) => *b,
                    None => {
                        self.program
                            .layout
                            .get(sym)
                            .ok_or_else(|| SimError::UnknownSymbol(sym.clone()))?
                            .base
                    }
                };
                Value::I(base as i64)
            }
            Mem => {
                let addr = self.eval(&rtx.ops[0], regs, arrays, cycles)?.as_i();
                self.load(addr, rtx.mode, cycles)?
            }
            Plus | Minus | Mult | Div | Mod | And | Ior | Xor | Ashift | Ashiftrt | Smin
            | Smax => {
                let a = self.eval(&rtx.ops[0], regs, arrays, cycles)?;
                let b = self.eval(&rtx.ops[1], regs, arrays, cycles)?;
                binary_op(rtx.code, rtx.mode, a, b)
            }
            Eq | Ne | Lt | Le | Gt | Ge => {
                let a = self.eval(&rtx.ops[0], regs, arrays, cycles)?;
                let b = self.eval(&rtx.ops[1], regs, arrays, cycles)?;
                compare(rtx.code, a, b)
            }
            Neg => {
                let a = self.eval(&rtx.ops[0], regs, arrays, cycles)?;
                match convert_to_mode(a, rtx.mode) {
                    Value::I(v) => Value::I(v.wrapping_neg()),
                    Value::F(v) => Value::F(-v),
                }
            }
            Abs => {
                let a = self.eval(&rtx.ops[0], regs, arrays, cycles)?;
                match convert_to_mode(a, rtx.mode) {
                    Value::I(v) => Value::I(v.wrapping_abs()),
                    Value::F(v) => Value::F(v.abs()),
                }
            }
            Not => {
                let a = self.eval(&rtx.ops[0], regs, arrays, cycles)?;
                Value::I(!a.as_i())
            }
            Float | FloatExtend => {
                let a = self.eval(&rtx.ops[0], regs, arrays, cycles)?;
                Value::F(a.as_f())
            }
            Fix => {
                let a = self.eval(&rtx.ops[0], regs, arrays, cycles)?;
                Value::I(a.as_f() as i64)
            }
        })
    }
}

fn convert_to_mode(v: Value, mode: Mode) -> Value {
    match mode {
        Mode::DF => Value::F(v.as_f()),
        Mode::SI | Mode::CC => Value::I(v.as_i()),
        Mode::Void => v,
    }
}

fn binary_op(code: RtxCode, mode: Mode, a: Value, b: Value) -> Value {
    use RtxCode::*;
    if mode == Mode::DF {
        let (a, b) = (a.as_f(), b.as_f());
        return Value::F(match code {
            Plus => a + b,
            Minus => a - b,
            Mult => a * b,
            Div => {
                if b == 0.0 {
                    0.0
                } else {
                    a / b
                }
            }
            Smin => a.min(b),
            Smax => a.max(b),
            _ => unreachable!("float op {code:?}"),
        });
    }
    let (a, b) = (a.as_i(), b.as_i());
    Value::I(match code {
        Plus => a.wrapping_add(b),
        Minus => a.wrapping_sub(b),
        Mult => a.wrapping_mul(b),
        Div => {
            if b == 0 {
                0
            } else {
                a.wrapping_div(b)
            }
        }
        Mod => {
            if b == 0 {
                0
            } else {
                a.wrapping_rem(b)
            }
        }
        And => a & b,
        Ior => a | b,
        Xor => a ^ b,
        Ashift => a.wrapping_shl((b & 63) as u32),
        Ashiftrt => a.wrapping_shr((b & 63) as u32),
        Smin => a.min(b),
        Smax => a.max(b),
        _ => unreachable!("int op {code:?}"),
    })
}

fn compare(code: RtxCode, a: Value, b: Value) -> Value {
    use RtxCode::*;
    let ord = if matches!(a, Value::F(_)) || matches!(b, Value::F(_)) {
        a.as_f().partial_cmp(&b.as_f())
    } else {
        Some(a.as_i().cmp(&b.as_i()))
    };
    let r = match (code, ord) {
        (Eq, Some(o)) => o.is_eq(),
        (Ne, Some(o)) => o.is_ne(),
        (Lt, Some(o)) => o.is_lt(),
        (Le, Some(o)) => o.is_le(),
        (Gt, Some(o)) => o.is_gt(),
        (Ge, Some(o)) => o.is_ge(),
        (Ne, None) => true,
        (_, None) => false,
        _ => unreachable!("comparison code"),
    };
    Value::I(i64::from(r))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fegen_rtl::lower::lower_program;

    fn machine_for(src: &str) -> (RtlProgram, SimConfig) {
        let ast = fegen_lang::parse_program(src).unwrap();
        (lower_program(&ast).unwrap(), SimConfig::default())
    }

    #[test]
    fn computes_scalar_arithmetic() {
        let (p, cfg) = machine_for("int f(int x) { return (x + 3) * 2 - x % 5; }");
        let mut m = Machine::new(&p, cfg);
        let r = m.call("f", &[Arg::Int(7)]).unwrap();
        assert_eq!(r, Some(Value::I((7 + 3) * 2 - 7 % 5)));
    }

    #[test]
    fn loops_accumulate_correctly() {
        let (p, cfg) = machine_for(
            "int f(int n) { int i; int s; s = 0; for (i = 1; i <= n; i = i + 1) { s = s + i; } return s; }",
        );
        let mut m = Machine::new(&p, cfg);
        assert_eq!(m.call("f", &[Arg::Int(100)]).unwrap(), Some(Value::I(5050)));
    }

    #[test]
    fn arrays_and_global_state() {
        let (p, cfg) = machine_for(
            "int g;\n\
             int a[16];\n\
             void fill(int n) { int i; for (i = 0; i < n; i = i + 1) { a[i] = i * i; } g = n; }\n\
             int get(int i) { return a[i] + g; }",
        );
        let mut m = Machine::new(&p, cfg);
        m.call("fill", &[Arg::Int(10)]).unwrap();
        assert_eq!(m.call("get", &[Arg::Int(3)]).unwrap(), Some(Value::I(9 + 10)));
        assert_eq!(m.read_array("a", 5).unwrap(), Value::I(25));
        assert_eq!(m.read_array("g", 0).unwrap(), Value::I(10));
    }

    #[test]
    fn float_arithmetic_and_conversions() {
        let (p, cfg) = machine_for(
            "float f(int n) { float s; int i; s = 0.0; for (i = 0; i < n; i = i + 1) { s = s + 0.5; } return s; }",
        );
        let mut m = Machine::new(&p, cfg);
        assert_eq!(m.call("f", &[Arg::Int(8)]).unwrap(), Some(Value::F(4.0)));
    }

    #[test]
    fn array_parameters_alias_caller_arrays() {
        let (p, cfg) = machine_for(
            "int buf[8];\n\
             void set0(int a[8], int v) { a[0] = v; }\n\
             int get0() { return buf[0]; }",
        );
        let mut m = Machine::new(&p, cfg);
        m.call("set0", &[Arg::Array("buf".into()), Arg::Int(42)])
            .unwrap();
        assert_eq!(m.call("get0", &[]).unwrap(), Some(Value::I(42)));
    }

    #[test]
    fn nested_calls_attribute_cycles_exclusively() {
        let (p, cfg) = machine_for(
            "int inner(int n) { int i; int s; s = 0; for (i = 0; i < n; i = i + 1) { s = s + i; } return s; }\n\
             int outer(int n) { return inner(n) + inner(n); }",
        );
        let mut m = Machine::new(&p, cfg);
        m.call("outer", &[Arg::Int(200)]).unwrap();
        let inner = m.cycles_of("inner");
        let outer = m.cycles_of("outer");
        assert!(inner > outer, "inner {inner} should dominate outer {outer}");
        assert_eq!(m.total_cycles(), inner + outer);
    }

    #[test]
    fn cycles_scale_with_trip_count() {
        let (p, cfg) = machine_for(
            "int f(int n) { int i; int s; s = 0; for (i = 0; i < n; i = i + 1) { s = s + i; } return s; }",
        );
        let mut m1 = Machine::new(&p, cfg.clone());
        m1.call("f", &[Arg::Int(10)]).unwrap();
        let mut m2 = Machine::new(&p, cfg);
        m2.call("f", &[Arg::Int(1000)]).unwrap();
        let (c1, c2) = (m1.cycles_of("f"), m2.cycles_of("f"));
        assert!(c2 > c1 * 50, "expected ~100x scaling: {c1} vs {c2}");
    }

    #[test]
    fn branchy_loops_cost_more_than_straight_loops() {
        let straight = "int f(int n) { int i; int s; s = 0; for (i = 0; i < n; i = i + 1) { s = s + 1; } return s; }";
        // Alternating branch inside the loop defeats the predictor.
        let branchy = "int f(int n) { int i; int s; s = 0; for (i = 0; i < n; i = i + 1) { if (i % 2 == 0) { s = s + 1; } else { s = s + 2; } } return s; }";
        let (p1, c1) = machine_for(straight);
        let (p2, c2) = machine_for(branchy);
        let mut m1 = Machine::new(&p1, c1);
        let mut m2 = Machine::new(&p2, c2);
        m1.call("f", &[Arg::Int(500)]).unwrap();
        m2.call("f", &[Arg::Int(500)]).unwrap();
        assert!(m2.cycles_of("f") > m1.cycles_of("f"));
        assert!(m2.mispredicts() > m1.mispredicts() + 100);
    }

    #[test]
    fn dcache_misses_on_large_strided_access() {
        let (p, cfg) = machine_for(
            "int a[4096];\n\
             void touch() { int i; for (i = 0; i < 4096; i = i + 8) { a[i] = i; } }",
        );
        let mut m = Machine::new(&p, cfg);
        m.call("touch", &[]).unwrap();
        // Stride 8 cells = one access per 64-byte line: every access misses
        // on a 16 KiB cache over a 32 KiB array.
        assert!(m.dcache_misses() >= 400, "misses {}", m.dcache_misses());
    }

    #[test]
    fn insn_limit_stops_infinite_loops() {
        let (p, mut cfg) = machine_for("void f() { for (;;) { } }");
        cfg.max_insns = 10_000;
        let mut m = Machine::new(&p, cfg);
        assert_eq!(m.call("f", &[]), Err(SimError::InsnLimit));
    }

    #[test]
    fn division_by_zero_is_defined() {
        let (p, cfg) = machine_for("int f(int x) { return 10 / x + 10 % x; }");
        let mut m = Machine::new(&p, cfg);
        assert_eq!(m.call("f", &[Arg::Int(0)]).unwrap(), Some(Value::I(0)));
    }

    #[test]
    fn wrong_arity_is_an_error() {
        let (p, cfg) = machine_for("int f(int x) { return x; }");
        let mut m = Machine::new(&p, cfg);
        assert!(matches!(m.call("f", &[]), Err(SimError::BadArguments(_))));
    }

    #[test]
    fn deterministic_cycle_counts() {
        let (p, cfg) = machine_for(
            "int f(int n) { int i; int s; s = 0; for (i = 0; i < n; i = i + 1) { s = s + i * 3; } return s; }",
        );
        let mut m1 = Machine::new(&p, cfg.clone());
        let mut m2 = Machine::new(&p, cfg);
        m1.call("f", &[Arg::Int(123)]).unwrap();
        m2.call("f", &[Arg::Int(123)]).unwrap();
        assert_eq!(m1.cycles_of("f"), m2.cycles_of("f"));
    }
}
