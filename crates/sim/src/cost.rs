//! Static per-block cost model: a dual-issue in-order scoreboard.
//!
//! For every basic block the model computes the cycles an in-order,
//! two-wide Pentium-class pipeline needs to issue and complete the block's
//! instructions, honouring register dependences and instruction latencies.
//! Dynamic effects (cache misses, branch mispredictions) are added by the
//! interpreter at run time on top of these static costs.

use fegen_rtl::node::{InsnBody, Mode, Rtx, RtxCode};
use fegen_rtl::RtlFunction;
use std::collections::HashMap;

/// Latency/penalty constants of the simulated machine.
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    /// Instructions issued per cycle.
    pub issue_width: u64,
    /// L1 data-cache miss penalty (cycles).
    pub dcache_miss: u64,
    /// Instruction-cache miss penalty per missing line (cycles).
    pub icache_miss: u64,
    /// Branch misprediction penalty (cycles).
    pub mispredict: u64,
    /// Fixed call/return overhead (cycles).
    pub call_overhead: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            issue_width: 2,
            dcache_miss: 20,
            icache_miss: 10,
            mispredict: 8,
            call_overhead: 10,
        }
    }
}

/// Issue latency of a single instruction.
pub fn insn_latency(body: &InsnBody) -> u64 {
    match body {
        InsnBody::Set { dest, src } => {
            let mut lat = 1u64;
            if src.code == RtxCode::Mem {
                lat = lat.max(2); // L1 hit
            }
            src.visit(&mut |n: &Rtx| {
                let l = match (n.code, n.mode) {
                    (RtxCode::Mult, Mode::DF) => 5,
                    (RtxCode::Mult, _) => 4,
                    (RtxCode::Div, Mode::DF) => 30,
                    (RtxCode::Div, _) => 16,
                    (RtxCode::Mod, _) => 16,
                    (RtxCode::Plus | RtxCode::Minus | RtxCode::Neg, Mode::DF) => 3,
                    (RtxCode::Float | RtxCode::Fix | RtxCode::FloatExtend, _) => 3,
                    _ => 1,
                };
                lat = lat.max(l);
            });
            let _ = dest;
            lat
        }
        InsnBody::Call { .. } => 1,
        _ => 1,
    }
}

/// Statically computed block costs for one function.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockCosts {
    /// Cycles to execute each block once (dependences + issue bound).
    pub cycles: Vec<u64>,
    /// Spill overhead per block execution, from estimated register
    /// pressure beyond the eight x86 integer registers.
    pub spill: Vec<u64>,
}

/// Computes the static cost of every block of `func` (blocks as produced
/// by [`fegen_rtl::cfg::Cfg::build`]).
pub fn block_costs(func: &RtlFunction, cfg: &fegen_rtl::cfg::Cfg, model: &CostModel) -> BlockCosts {
    let mut cycles = Vec::with_capacity(cfg.blocks.len());
    let mut spill = Vec::with_capacity(cfg.blocks.len());
    for b in &cfg.blocks {
        let insns = &func.insns[b.start..b.end];
        cycles.push(schedule_cost(insns, model));
        spill.push(spill_cost(insns));
    }
    BlockCosts { cycles, spill }
}

/// In-order dual-issue scoreboard over a straight-line span.
fn schedule_cost(insns: &[fegen_rtl::Insn], model: &CostModel) -> u64 {
    let mut ready: HashMap<u32, u64> = HashMap::new();
    let mut cycle = 0u64;
    let mut slot = 0u64;
    let mut done_max = 0u64;
    for insn in insns {
        if insn.is_label() {
            continue;
        }
        // Operand readiness.
        let mut used: Vec<u32> = Vec::new();
        match &insn.body {
            InsnBody::Set { dest, src } => {
                src.regs_used(&mut used);
                if dest.code == RtxCode::Mem {
                    dest.ops[0].regs_used(&mut used);
                }
            }
            InsnBody::CondJump { cond, .. } => cond.regs_used(&mut used),
            InsnBody::Call { args, .. } => {
                for a in args {
                    a.regs_used(&mut used);
                }
            }
            InsnBody::Return { value: Some(v) } => v.regs_used(&mut used),
            _ => {}
        }
        let earliest = used
            .iter()
            .map(|r| ready.get(r).copied().unwrap_or(0))
            .max()
            .unwrap_or(0);
        if slot >= model.issue_width {
            cycle += 1;
            slot = 0;
        }
        if earliest > cycle {
            cycle = earliest;
            slot = 0;
        }
        slot += 1;
        let lat = insn_latency(&insn.body);
        let done = cycle + lat;
        done_max = done_max.max(done);
        if let InsnBody::Set { dest, .. } = &insn.body {
            if let Some(r) = dest.as_reg() {
                ready.insert(r, done);
            }
        }
        if let InsnBody::Call { dest: Some(d), .. } = &insn.body {
            if let Some(r) = d.as_reg() {
                ready.insert(r, done + model.call_overhead);
            }
        }
    }
    done_max.max(u64::from(insns.iter().any(|i| !i.is_label())))
}

/// Register-pressure spill estimate: beyond 8 live integer registers a
/// Pentium must spill; each excess register costs roughly a store plus a
/// (likely L1-hit) reload per block execution.
fn spill_cost(insns: &[fegen_rtl::Insn]) -> u64 {
    let mut regs: std::collections::HashSet<u32> = std::collections::HashSet::new();
    for insn in insns {
        match &insn.body {
            InsnBody::Set { dest, src } => {
                let mut used = Vec::new();
                src.regs_used(&mut used);
                dest.regs_used(&mut used);
                regs.extend(used);
            }
            InsnBody::CondJump { cond, .. } => {
                let mut used = Vec::new();
                cond.regs_used(&mut used);
                regs.extend(used);
            }
            _ => {}
        }
    }
    (regs.len() as u64).saturating_sub(8) * 3
}

#[cfg(test)]
mod tests {
    use super::*;
    use fegen_rtl::cfg::Cfg;
    use fegen_rtl::lower::lower_program;

    fn costs(src: &str) -> (BlockCosts, Cfg) {
        let ast = fegen_lang::parse_program(src).unwrap();
        let p = lower_program(&ast).unwrap();
        let f = &p.functions[0];
        let cfg = Cfg::build(f);
        (block_costs(f, &cfg, &CostModel::default()), cfg)
    }

    #[test]
    fn longer_blocks_cost_more() {
        let (a, _) = costs("int f(int x) { return x + 1; }");
        let (b, _) = costs("int f(int x) { int t; t = x + 1; t = t * 3; t = t - x; return t; }");
        assert!(b.cycles[0] > a.cycles[0]);
    }

    #[test]
    fn division_dominates_cost() {
        let (div, _) = costs("int f(int x) { return x / 3; }");
        let (add, _) = costs("int f(int x) { return x + 3; }");
        assert!(div.cycles[0] >= add.cycles[0] + 10);
    }

    #[test]
    fn independent_ops_pair_up() {
        // Eight independent adds: ≈ 4 issue cycles + 1 latency.
        let (ind, _) = costs(
            "void f(int a, int b) {\n\
               int t0; int t1; int t2; int t3; int t4; int t5; int t6; int t7;\n\
               t0 = a + 1; t1 = a + 2; t2 = a + 3; t3 = a + 4;\n\
               t4 = b + 1; t5 = b + 2; t6 = b + 3; t7 = b + 4;\n\
             }",
        );
        // Eight chained adds: ≥ 8 cycles.
        let (dep, _) = costs(
            "void f(int a) {\n\
               int t;\n\
               t = a + 1; t = t + 2; t = t + 3; t = t + 4;\n\
               t = t + 1; t = t + 2; t = t + 3; t = t + 4;\n\
             }",
        );
        assert!(
            dep.cycles[0] > ind.cycles[0],
            "dependent {} vs independent {}",
            dep.cycles[0],
            ind.cycles[0]
        );
    }

    #[test]
    fn spill_cost_kicks_in_beyond_eight_regs() {
        let (small, _) = costs("int f(int x) { return x + 1; }");
        assert_eq!(small.spill[0], 0);
        // 12 simultaneously-referenced registers in one block.
        let mut body = String::new();
        for k in 0..12 {
            body.push_str(&format!("int t{k}; t{k} = x + {k};\n"));
        }
        body.push_str("x = t0 + t1 + t2 + t3 + t4 + t5 + t6 + t7 + t8 + t9 + t10 + t11;\n");
        let (big, _) = costs(&format!("void f(int x) {{ {body} }}"));
        assert!(big.spill[0] > 0);
    }

    #[test]
    fn empty_block_costs_at_most_one() {
        let (c, _) = costs("void f() { }");
        assert!(c.cycles[0] <= 1);
    }
}
