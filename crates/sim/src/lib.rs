//! # fegen-sim — cycle-approximate CPU simulation and measurement
//!
//! The paper measures loop-unrolling variants on "an Intel single core
//! Pentium … at 2.8 GHz" (§V). This crate provides the reproduction's
//! hardware substrate: a deterministic, cycle-approximate simulator for the
//! RTL of `fegen-rtl`, modelling the mechanisms that make unroll factors
//! matter on such a machine —
//!
//! - an in-order, dual-issue pipeline with realistic instruction latencies
//!   ([`cost`]),
//! - direct-mapped I- and D-caches and a two-bit branch predictor
//!   ([`cache`]),
//! - an interpreter that executes RTL and attributes cycles to the function
//!   executing them ([`interp`]),
//! - the paper's measurement statistics — log transform + 1.5 × IQR outlier
//!   rejection over repeated noisy runs ([`measure`]),
//! - training-data generation: per-loop cycle tables over unroll factors
//!   0–15 with GCC-default factors elsewhere ([`oracle`]).
//!
//! ```
//! use fegen_sim::interp::{Arg, Machine, SimConfig, Value};
//!
//! let ast = fegen_lang::parse_program(
//!     "int f(int n) { int i; int s; s = 0;
//!        for (i = 0; i < n; i = i + 1) { s = s + i; } return s; }",
//! )?;
//! let rtl = fegen_rtl::lower::lower_program(&ast)?;
//! let mut m = Machine::new(&rtl, SimConfig::default());
//! assert_eq!(m.call("f", &[Arg::Int(10)])?, Some(Value::I(45)));
//! assert!(m.cycles_of("f") > 0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```


// Library code must report through telemetry events or typed errors,
// never by printing; binaries are exempt (their crate roots are in bin/).
#![deny(clippy::print_stdout, clippy::print_stderr)]

pub mod cache;
pub mod cost;
pub mod interp;
pub mod measure;
pub mod oracle;

pub use interp::{AnalysisCache, Arg, FuncAnalysis, Machine, MachineState, SimConfig, SimError, Value};
pub use oracle::{
    measure_workload, CallSpec, LoopMeasurement, LoopSite, OracleConfig, ProgramSnapshot,
    SnapshotStats, Workload,
};
