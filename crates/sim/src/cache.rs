//! Direct-mapped caches and a two-bit branch predictor.
//!
//! These are the micro-architectural mechanisms that make loop unrolling a
//! non-trivial optimisation on the paper's Pentium target: unrolling
//! amortises branch overhead and exposes ILP, but bloats the instruction
//! footprint (I-cache), and the remainder iterations run in a branchy
//! epilogue. The models are deliberately simple — direct-mapped,
//! fixed-penalty — because only the *shape* of the trade-off needs to be
//! faithful.

/// A direct-mapped cache with power-of-two geometry.
#[derive(Debug, Clone)]
pub struct Cache {
    /// Tag per line (`u64::MAX` = invalid).
    lines: Vec<u64>,
    line_shift: u32,
    index_mask: u64,
    hits: u64,
    misses: u64,
}

impl Cache {
    /// Creates a cache of `n_lines` lines of `line_bytes` bytes each; both
    /// must be powers of two.
    ///
    /// # Panics
    ///
    /// Panics if either argument is not a power of two.
    pub fn new(n_lines: usize, line_bytes: usize) -> Cache {
        assert!(n_lines.is_power_of_two(), "n_lines must be a power of two");
        assert!(
            line_bytes.is_power_of_two(),
            "line_bytes must be a power of two"
        );
        Cache {
            lines: vec![u64::MAX; n_lines],
            line_shift: line_bytes.trailing_zeros(),
            index_mask: (n_lines - 1) as u64,
            hits: 0,
            misses: 0,
        }
    }

    /// Accesses the byte address; returns `true` on hit.
    pub fn access(&mut self, addr: u64) -> bool {
        let line = addr >> self.line_shift;
        let index = (line & self.index_mask) as usize;
        if self.lines[index] == line {
            self.hits += 1;
            true
        } else {
            self.lines[index] = line;
            self.misses += 1;
            false
        }
    }

    /// Total hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Total misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Resets contents and statistics.
    pub fn reset(&mut self) {
        self.lines.fill(u64::MAX);
        self.hits = 0;
        self.misses = 0;
    }
}

/// A table of two-bit saturating counters.
#[derive(Debug, Clone)]
pub struct BranchPredictor {
    counters: Vec<u8>,
    mispredicts: u64,
    predictions: u64,
}

impl BranchPredictor {
    /// Creates a predictor with `entries` counters (power of two).
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two.
    pub fn new(entries: usize) -> BranchPredictor {
        assert!(entries.is_power_of_two(), "entries must be a power of two");
        BranchPredictor {
            // Weakly taken: loops predict well from the start, as real
            // predictors warmed by BTB allocation do.
            counters: vec![2; entries],
            mispredicts: 0,
            predictions: 0,
        }
    }

    /// Records the outcome of branch site `site`; returns `true` when the
    /// prediction was correct.
    pub fn predict_and_update(&mut self, site: u64, taken: bool) -> bool {
        let i = (site as usize) & (self.counters.len() - 1);
        let predicted_taken = self.counters[i] >= 2;
        if taken && self.counters[i] < 3 {
            self.counters[i] += 1;
        } else if !taken && self.counters[i] > 0 {
            self.counters[i] -= 1;
        }
        self.predictions += 1;
        let correct = predicted_taken == taken;
        if !correct {
            self.mispredicts += 1;
        }
        correct
    }

    /// Total mispredictions so far.
    pub fn mispredicts(&self) -> u64 {
        self.mispredicts
    }

    /// Total predictions so far.
    pub fn predictions(&self) -> u64 {
        self.predictions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_hits_after_first_touch() {
        let mut c = Cache::new(64, 64);
        assert!(!c.access(0));
        assert!(c.access(8));
        assert!(c.access(63));
        assert!(!c.access(64));
        assert_eq!(c.misses(), 2);
        assert_eq!(c.hits(), 2);
    }

    #[test]
    fn cache_conflicts_on_same_index() {
        let mut c = Cache::new(4, 64);
        // Addresses 0 and 4*64 map to index 0.
        assert!(!c.access(0));
        assert!(!c.access(4 * 64));
        assert!(!c.access(0), "evicted by the conflicting line");
    }

    #[test]
    fn cache_reset_clears_state() {
        let mut c = Cache::new(4, 64);
        c.access(0);
        c.reset();
        assert_eq!(c.misses(), 0);
        assert!(!c.access(0));
    }

    #[test]
    fn predictor_learns_loop_branches() {
        let mut bp = BranchPredictor::new(16);
        // A branch taken 100 times then not taken once (loop exit).
        let mut wrong = 0;
        for _ in 0..100 {
            if !bp.predict_and_update(3, true) {
                wrong += 1;
            }
        }
        assert!(wrong <= 1, "warmup mispredicts: {wrong}");
        assert!(!bp.predict_and_update(3, false), "exit should mispredict");
    }

    #[test]
    fn predictor_struggles_with_alternating_pattern() {
        let mut bp = BranchPredictor::new(16);
        let mut wrong = 0;
        for k in 0..100 {
            if !bp.predict_and_update(5, k % 2 == 0) {
                wrong += 1;
            }
        }
        assert!(wrong >= 40, "alternating pattern mispredicts: {wrong}");
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn cache_rejects_non_power_of_two() {
        let _ = Cache::new(3, 64);
    }
}
