//! Measurement-noise modelling and the paper's robust statistics.
//!
//! "For each differently compiled variation of a benchmark we ran that
//! version of the program at least one hundred times. We applied a standard
//! statistical technique to reduce the effects of noise: applying a log
//! transform and removing outliers outside the 1.5 × IQR (interquartile
//! range). The best unroll factor for each loop was determined as that with
//! the lowest average … cycle count." (§V)
//!
//! The simulator itself is deterministic, so noise is *injected* by a
//! calibrated model (multiplicative log-normal jitter plus occasional
//! heavy-tailed outliers — the empirical shape of timing noise on an
//! unloaded machine) and then removed again by [`robust_mean`], exercising
//! the exact pipeline the paper used.

use rand::Rng;

/// Multiplicative timing-noise model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseModel {
    /// Standard deviation of the log-normal jitter (≈ relative noise).
    pub sigma: f64,
    /// Probability of a heavy outlier (context switch, interrupt).
    pub outlier_prob: f64,
    /// Multiplier applied on outlier runs.
    pub outlier_scale: f64,
}

impl Default for NoiseModel {
    fn default() -> Self {
        NoiseModel {
            sigma: 0.01,
            outlier_prob: 0.03,
            outlier_scale: 1.6,
        }
    }
}

impl NoiseModel {
    /// Draws `n` noisy observations of `true_cycles`.
    pub fn samples<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        true_cycles: f64,
        n: usize,
    ) -> Vec<f64> {
        (0..n)
            .map(|_| {
                // Box-Muller normal from two uniforms.
                let u1: f64 = rng.gen_range(1e-12..1.0);
                let u2: f64 = rng.gen();
                let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
                let mut v = true_cycles * (self.sigma * z).exp();
                if rng.gen_bool(self.outlier_prob) {
                    v *= self.outlier_scale;
                }
                v
            })
            .collect()
    }
}

/// Robust log-domain statistics of one sample set: the outlier-rejected
/// mean plus the dispersion the rejection was based on, which is what an
/// adaptive sampler needs to decide whether more runs are warranted.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RobustStats {
    /// Outlier-rejected mean, back in cycle units.
    pub mean: f64,
    /// Interquartile range of the log-transformed samples (dimensionless;
    /// ≈ relative spread for small values).
    pub log_iqr: f64,
    /// Samples surviving the 1.5 × IQR rejection.
    pub kept: usize,
    /// Finite samples the statistics were computed over.
    pub finite: usize,
}

/// The paper's robust statistics: log transform, reject samples outside
/// 1.5 × IQR, mean of the survivors, transformed back.
///
/// Non-finite samples (NaN, ±∞ — a crashed run, an overflowed counter) are
/// discarded *before* the log transform so they can never poison the
/// quantiles; `None` is returned when no finite sample remains. A single
/// finite sample is its own mean with zero spread.
pub fn robust_stats(samples: &[f64]) -> Option<RobustStats> {
    let mut logs: Vec<f64> = samples
        .iter()
        .copied()
        .filter(|s| s.is_finite())
        .map(|s| s.max(1e-12).ln())
        .collect();
    if logs.is_empty() {
        return None;
    }
    let finite = logs.len();
    logs.sort_by(|a, b| a.total_cmp(b));
    let q = |p: f64| -> f64 {
        // Linear-interpolated quantile.
        let idx = p * (logs.len() - 1) as f64;
        let lo = idx.floor() as usize;
        let hi = idx.ceil() as usize;
        let frac = idx - lo as f64;
        logs[lo] * (1.0 - frac) + logs[hi] * frac
    };
    let (q1, q3) = (q(0.25), q(0.75));
    let iqr = q3 - q1;
    let (lo, hi) = (q1 - 1.5 * iqr, q3 + 1.5 * iqr);
    let kept: Vec<f64> = logs.iter().copied().filter(|&l| l >= lo && l <= hi).collect();
    let kept = if kept.is_empty() { logs } else { kept };
    let mean = kept.iter().sum::<f64>() / kept.len() as f64;
    Some(RobustStats {
        mean: mean.exp(),
        log_iqr: iqr,
        kept: kept.len(),
        finite,
    })
}

/// The robust average alone (see [`robust_stats`]).
///
/// Returns `None` when no finite sample remains after discarding NaN/±∞.
pub fn robust_mean(samples: &[f64]) -> Option<f64> {
    robust_stats(samples).map(|s| s.mean)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn robust_mean_of_constant_is_constant() {
        let m = robust_mean(&[100.0; 50]).unwrap();
        assert!((m - 100.0).abs() < 1e-9);
    }

    #[test]
    fn robust_mean_rejects_outliers() {
        let mut samples = vec![100.0; 40];
        samples.extend([500.0, 900.0]);
        let m = robust_mean(&samples).unwrap();
        assert!((m - 100.0).abs() < 1.0, "outliers not rejected: {m}");
    }

    #[test]
    fn plain_mean_would_be_biased_but_robust_is_not() {
        let mut rng = StdRng::seed_from_u64(7);
        let model = NoiseModel {
            sigma: 0.02,
            outlier_prob: 0.1,
            outlier_scale: 3.0,
        };
        let samples = model.samples(&mut rng, 1000.0, 200);
        let plain = samples.iter().sum::<f64>() / samples.len() as f64;
        let robust = robust_mean(&samples).unwrap();
        assert!(plain > 1050.0, "outliers should bias the plain mean: {plain}");
        assert!(
            (robust - 1000.0).abs() < 30.0,
            "robust mean should recover the truth: {robust}"
        );
    }

    #[test]
    fn empty_input_is_none() {
        assert_eq!(robust_mean(&[]), None);
    }

    #[test]
    fn non_finite_samples_are_discarded_not_poisonous() {
        let m = robust_mean(&[100.0, f64::NAN, 100.0, f64::INFINITY, 100.0, f64::NEG_INFINITY])
            .unwrap();
        assert!((m - 100.0).abs() < 1e-9, "non-finite samples leaked: {m}");
    }

    #[test]
    fn all_non_finite_is_none() {
        assert_eq!(robust_mean(&[f64::NAN, f64::INFINITY, f64::NEG_INFINITY]), None);
        assert_eq!(robust_mean(&[f64::NAN]), None);
    }

    #[test]
    fn stats_report_spread_and_counts() {
        let s = robust_stats(&[100.0, 101.0, 99.0, 100.5, f64::NAN]).unwrap();
        assert_eq!(s.finite, 4);
        assert!(s.kept >= 3);
        assert!(s.log_iqr > 0.0 && s.log_iqr < 0.05, "spread: {}", s.log_iqr);
        let tight = robust_stats(&[100.0; 8]).unwrap();
        assert_eq!(tight.log_iqr, 0.0);
        assert_eq!(tight.kept, 8);
    }

    #[test]
    fn single_sample_is_identity() {
        assert!((robust_mean(&[42.0]).unwrap() - 42.0).abs() < 1e-9);
    }

    #[test]
    fn recovers_ordering_of_close_variants() {
        // Two variants 2% apart must stay correctly ordered after noise +
        // robust averaging with 100 runs — the paper's measurement goal.
        let mut rng = StdRng::seed_from_u64(42);
        let model = NoiseModel::default();
        let mut correct = 0;
        for trial in 0..20 {
            let a = 1000.0;
            let b = 1020.0;
            let ma = robust_mean(&model.samples(&mut rng, a, 100)).unwrap();
            let mb = robust_mean(&model.samples(&mut rng, b, 100)).unwrap();
            if ma < mb {
                correct += 1;
            }
            let _ = trial;
        }
        assert!(correct >= 19, "ordering recovered in {correct}/20 trials");
    }
}
