//! Training-data generation: per-loop cycle tables across unroll factors.
//!
//! "We took each loop, one at a time, and unrolled it by different factors,
//! zero to fifteen. This gave a compiled program for which all but one loop
//! has the default unroll factor as determined by GCC's default heuristic.
//! We executed each of these versions of the program … recording the number
//! of cycles required to execute the function containing the loop that had
//! been altered." (§V)

use crate::interp::{AnalysisCache, Arg, FuncAnalysis, Machine, MachineState, SimConfig, SimError};
use fegen_rtl::heuristic::{gcc_default_factors, GccParams};
use fegen_rtl::node::InsnBody;
use fegen_rtl::unroll::{apply_factors, UnrollError};
use fegen_rtl::RtlProgram;
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One call the workload performs.
#[derive(Debug, Clone, PartialEq)]
pub struct CallSpec {
    /// Function to call.
    pub func: String,
    /// Arguments.
    pub args: Vec<Arg>,
}

/// A benchmark workload: initialisation calls, then kernel calls.
///
/// Kernels must only read data written by `init` (or their own outputs);
/// the measurement loop re-runs `init` before each measured kernel run, so
/// in-place kernels are safe.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Workload {
    /// Setup calls (fill input arrays).
    pub init: Vec<CallSpec>,
    /// Measured kernel calls.
    pub kernels: Vec<CallSpec>,
}

/// Identifies one loop in one function.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct LoopSite {
    /// Containing function.
    pub func: String,
    /// Loop id within the function.
    pub loop_id: usize,
}

impl fmt::Display for LoopSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.func, self.loop_id)
    }
}

/// Configuration of the data-generation pass.
#[derive(Debug, Clone, PartialEq)]
pub struct OracleConfig {
    /// Largest unroll factor enumerated (paper: 15 → 16 table entries).
    pub max_factor: usize,
    /// Simulator configuration.
    pub sim: SimConfig,
    /// Parameters of the GCC default heuristic applied to the *other*
    /// loops of each variant.
    pub gcc: GccParams,
}

impl Default for OracleConfig {
    fn default() -> Self {
        OracleConfig {
            max_factor: 15,
            sim: SimConfig::default(),
            gcc: GccParams::default(),
        }
    }
}

/// A measured loop: its site and the cycle table over factors `0..=max`.
#[derive(Debug, Clone, PartialEq)]
pub struct LoopMeasurement {
    /// Which loop.
    pub site: LoopSite,
    /// `cycles[k]` = cycles of the containing function with factor `k`.
    pub cycles: Vec<f64>,
}

impl LoopMeasurement {
    /// The oracle-best factor.
    pub fn best_factor(&self) -> usize {
        fegen_ml_free_oracle(&self.cycles)
    }
}

/// argmin without depending on `fegen-ml` from this crate.
fn fegen_ml_free_oracle(cycles: &[f64]) -> usize {
    cycles
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
        .map(|(i, _)| i)
        .unwrap_or(0)
}

/// Error from data generation.
#[derive(Debug, Clone, PartialEq)]
pub enum OracleError {
    /// The simulator failed.
    Sim(SimError),
    /// The unroller failed.
    Unroll(UnrollError),
    /// A workload call references a missing function.
    UnknownFunction(String),
}

impl fmt::Display for OracleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OracleError::Sim(e) => write!(f, "simulation failed: {e}"),
            OracleError::Unroll(e) => write!(f, "unrolling failed: {e}"),
            OracleError::UnknownFunction(n) => write!(f, "workload calls unknown `{n}`"),
        }
    }
}

impl std::error::Error for OracleError {}

impl From<SimError> for OracleError {
    fn from(e: SimError) -> Self {
        OracleError::Sim(e)
    }
}

impl From<UnrollError> for OracleError {
    fn from(e: UnrollError) -> Self {
        OracleError::Unroll(e)
    }
}

/// The functions transitively reachable from `calls` through the call
/// graph of `program`.
fn reachable_functions<'a>(
    program: &'a RtlProgram,
    calls: &'a [CallSpec],
) -> HashSet<&'a str> {
    // Call graph.
    let mut callees: HashMap<&str, Vec<&str>> = HashMap::new();
    for f in &program.functions {
        let mut out = Vec::new();
        for insn in &f.insns {
            if let InsnBody::Call { name, .. } = &insn.body {
                out.push(name.as_str());
            }
        }
        callees.insert(f.name.as_str(), out);
    }
    let mut seen: HashSet<&str> = HashSet::new();
    let mut stack: Vec<&str> = calls.iter().map(|c| c.func.as_str()).collect();
    while let Some(f) = stack.pop() {
        if seen.insert(f) {
            if let Some(cs) = callees.get(f) {
                stack.extend(cs.iter().copied());
            }
        }
    }
    seen
}

/// The functions transitively reachable from the workload's kernel calls.
pub fn kernel_functions(program: &RtlProgram, workload: &Workload) -> Vec<String> {
    let seen = reachable_functions(program, &workload.kernels);
    let mut out: Vec<String> = program
        .functions
        .iter()
        .filter(|f| seen.contains(f.name.as_str()))
        .map(|f| f.name.clone())
        .collect();
    out.sort();
    out
}

/// Every loop site in the workload's kernel functions.
pub fn loop_sites(program: &RtlProgram, workload: &Workload) -> Vec<LoopSite> {
    let mut sites = Vec::new();
    for name in kernel_functions(program, workload) {
        let f = program.function(&name).expect("from program");
        for l in &f.loops {
            sites.push(LoopSite {
                func: name.clone(),
                loop_id: l.id,
            });
        }
    }
    sites
}

/// Builds a program variant: every kernel function unrolled with the GCC
/// default factors, except that loop `site` (when `Some`) uses `factor`.
///
/// Non-kernel functions (initialisation) are left un-unrolled, identically
/// in every variant.
///
/// # Errors
///
/// Returns an error when the unroller fails (corrupted loop regions).
pub fn program_variant(
    program: &RtlProgram,
    kernel_funcs: &[String],
    site: Option<(&LoopSite, usize)>,
    gcc: &GccParams,
    use_defaults_elsewhere: bool,
) -> Result<RtlProgram, OracleError> {
    let mut out = program.clone();
    for name in kernel_funcs {
        let f = out
            .function(name)
            .ok_or_else(|| OracleError::UnknownFunction(name.clone()))?;
        let mut factors: HashMap<usize, usize> = if use_defaults_elsewhere {
            gcc_default_factors(f, gcc)
        } else {
            HashMap::new()
        };
        if let Some((s, factor)) = site {
            if &s.func == name {
                factors.insert(s.loop_id, factor);
            }
        }
        let new_f = apply_factors(f, &factors)?;
        *out.function_mut(name).expect("present") = new_f;
    }
    Ok(out)
}

/// Applies explicit per-loop factors (`factors[func][loop_id]`) to the
/// kernel functions; loops without an entry stay un-unrolled.
///
/// # Errors
///
/// Returns an error when the unroller fails.
pub fn program_with_factors(
    program: &RtlProgram,
    kernel_funcs: &[String],
    factors: &HashMap<String, HashMap<usize, usize>>,
) -> Result<RtlProgram, OracleError> {
    let mut out = program.clone();
    for name in kernel_funcs {
        let f = out
            .function(name)
            .ok_or_else(|| OracleError::UnknownFunction(name.clone()))?;
        let empty = HashMap::new();
        let per_loop = factors.get(name).unwrap_or(&empty);
        let new_f = apply_factors(f, per_loop)?;
        *out.function_mut(name).expect("present") = new_f;
    }
    Ok(out)
}

/// Runs the full workload on `program`; returns total cycles across all
/// functions (init included — it is identical in every configuration).
///
/// # Errors
///
/// Returns an error when the simulator fails.
pub fn run_workload(
    program: &RtlProgram,
    workload: &Workload,
    sim: &SimConfig,
) -> Result<u64, OracleError> {
    let mut m = Machine::new(program, sim.clone());
    for call in workload.init.iter().chain(&workload.kernels) {
        m.call(&call.func, &call.args)?;
    }
    Ok(m.total_cycles())
}

/// The workload's kernel calls that can reach `func`, in workload order.
/// Simulating only these (after `init`) reproduces the exclusive cycle
/// count `func` would accumulate under the full kernel sequence.
pub fn relevant_kernel_calls(
    program: &RtlProgram,
    workload: &Workload,
    func: &str,
) -> Vec<CallSpec> {
    workload
        .kernels
        .iter()
        .filter(|c| {
            let single = Workload {
                init: vec![],
                kernels: vec![(*c).clone()],
            };
            kernel_functions(program, &single).iter().any(|f| f == func)
        })
        .cloned()
        .collect()
}

/// Measures the cycle table of one loop site: one simulation per factor,
/// re-running `init` each time, recording the containing function's
/// exclusive cycles.
///
/// # Errors
///
/// Returns an error when unrolling or simulation fails.
pub fn measure_site(
    program: &RtlProgram,
    workload: &Workload,
    kernel_funcs: &[String],
    site: &LoopSite,
    config: &OracleConfig,
) -> Result<LoopMeasurement, OracleError> {
    let mut cycles = Vec::with_capacity(config.max_factor + 1);
    let relevant = relevant_kernel_calls(program, workload, &site.func);
    for factor in 0..=config.max_factor {
        let variant = program_variant(
            program,
            kernel_funcs,
            Some((site, factor)),
            &config.gcc,
            true,
        )?;
        let mut m = Machine::new(&variant, config.sim.clone());
        for call in &workload.init {
            m.call(&call.func, &call.args)?;
        }
        for call in &relevant {
            m.call(&call.func, &call.args)?;
        }
        cycles.push(m.cycles_of(&site.func) as f64);
    }
    Ok(LoopMeasurement {
        site: site.clone(),
        cycles,
    })
}

/// Measures every loop site of the workload. This is the paper's §V data
/// generation (2,778 loops × 16 factors at full scale).
///
/// # Errors
///
/// Returns the first unroll/simulation error.
pub fn measure_workload(
    program: &RtlProgram,
    workload: &Workload,
    config: &OracleConfig,
) -> Result<Vec<LoopMeasurement>, OracleError> {
    let kernel_funcs = kernel_functions(program, workload);
    loop_sites(program, workload)
        .iter()
        .map(|site| measure_site(program, workload, &kernel_funcs, site, config))
        .collect()
}

/// Cumulative fork accounting of one [`ProgramSnapshot`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SnapshotStats {
    /// Per-factor forks performed.
    pub forks: u64,
    /// Forks that imported the shared post-init machine state instead of
    /// re-simulating the workload's `init` calls.
    pub init_forks: u64,
    /// Function analyses served from the snapshot's cache across forks.
    pub analyses_reused: u64,
    /// Function analyses rebuilt (the overlay function, once per fork).
    pub analyses_built: u64,
}

impl SnapshotStats {
    /// Fraction of per-fork analyses served from the cache.
    pub fn reuse_rate(&self) -> f64 {
        let total = self.analyses_reused + self.analyses_built;
        if total == 0 {
            0.0
        } else {
            self.analyses_reused as f64 / total as f64
        }
    }
}

/// Immutable compile-and-warmup state shared by every per-factor
/// measurement of one benchmark: the pre-unroll RTL, the default-unrolled
/// variant every measurement differs from in exactly one function, the GCC
/// default factors those variants embed, one [`FuncAnalysis`] per function
/// of the default variant, and — when provably sound — the machine state
/// left behind by the workload's `init` calls.
///
/// [`ProgramSnapshot::fork`] then measures one `(site, factor)` cell by
/// re-unrolling only the site's function, simulating it as an overlay on
/// the shared default variant, and importing the post-init machine state
/// instead of replaying initialisation — the paper's §V protocol with the
/// per-factor redundancy (re-clone, re-unroll, re-analysis, re-init of
/// every other function) forked away. Forks are read-only on the snapshot
/// (counters aside), so one snapshot behind an [`Arc`] serves concurrent
/// workers.
///
/// Byte-for-byte equivalence with the scratch path ([`measure_site`]) is
/// load-bearing: default factors are computed from *original* function
/// bodies (as [`program_variant`] does); function order — and therefore
/// every code address the I-cache and branch predictor see — is preserved;
/// unroll failures are re-raised at fork time in the order the scratch
/// path would first encounter them; and the post-init state is reused only
/// when every function init executes sits *before* the site's function in
/// program order, which pins its code addresses (and with them the I-cache
/// and predictor contents init leaves behind) to the same values in every
/// variant. Sites failing that test replay init per fork, exactly like the
/// scratch path.
#[derive(Debug)]
pub struct ProgramSnapshot {
    original: RtlProgram,
    default_program: RtlProgram,
    workload: Workload,
    kernel_funcs: Vec<String>,
    /// GCC default factors per kernel function (computed on original bodies).
    default_factors: HashMap<String, HashMap<usize, usize>>,
    /// Default-unroll errors deferred to fork time, keyed by function.
    default_errors: HashMap<String, UnrollError>,
    analyses: AnalysisCache,
    /// Machine state after the `init` calls, run once on the default
    /// variant (`None` when init itself fails — forks then replay init and
    /// surface the failure exactly where the scratch path would).
    init_state: Option<MachineState>,
    /// Functions transitively reachable from the `init` calls.
    init_reachable: HashSet<String>,
    /// Greatest program-order position among init-reachable functions.
    max_init_pos: Option<usize>,
    /// Program-order position of every function.
    positions: HashMap<String, usize>,
    config: OracleConfig,
    forks: AtomicU64,
    init_forks: AtomicU64,
    analyses_reused: AtomicU64,
    analyses_built: AtomicU64,
}

impl ProgramSnapshot {
    /// Builds the shared state: one default-factor unroll per kernel
    /// function, one analysis per function of the resulting program, and
    /// one simulation of the workload's `init` calls.
    ///
    /// Unroll and init failures are recorded, not raised — the scratch
    /// path only surfaces them when a site is measured, so
    /// [`ProgramSnapshot::fork`] re-raises them there to keep failure
    /// behaviour identical.
    ///
    /// # Errors
    ///
    /// Returns an error when a kernel function is missing from `program`.
    pub fn build(
        program: &RtlProgram,
        kernel_funcs: &[String],
        workload: &Workload,
        config: &OracleConfig,
    ) -> Result<ProgramSnapshot, OracleError> {
        let mut default_program = program.clone();
        let mut default_factors = HashMap::new();
        let mut default_errors = HashMap::new();
        for name in kernel_funcs {
            let f = default_program
                .function(name)
                .ok_or_else(|| OracleError::UnknownFunction(name.clone()))?;
            let factors = gcc_default_factors(f, &config.gcc);
            match apply_factors(f, &factors) {
                Ok(new_f) => {
                    *default_program.function_mut(name).expect("present") = new_f;
                    default_factors.insert(name.clone(), factors);
                }
                Err(e) => {
                    default_errors.insert(name.clone(), e);
                }
            }
        }
        let analyses: AnalysisCache = default_program
            .functions
            .iter()
            .map(|f| {
                (
                    f.name.clone(),
                    Arc::new(FuncAnalysis::build(f, &config.sim.model)),
                )
            })
            .collect();
        let positions: HashMap<String, usize> = program
            .functions
            .iter()
            .enumerate()
            .map(|(i, f)| (f.name.clone(), i))
            .collect();
        let init_reachable: HashSet<String> = reachable_functions(program, &workload.init)
            .into_iter()
            .map(str::to_owned)
            .collect();
        let max_init_pos = init_reachable
            .iter()
            .filter_map(|f| positions.get(f))
            .copied()
            .max();
        // One init run on the default variant. Sound to reuse for a fork
        // of `site` iff every init-executed function keeps its content and
        // code address in that variant (see `init_forkable`).
        let init_state = (|| {
            let mut m = Machine::with_overlay(
                &default_program,
                None,
                Some(&analyses),
                config.sim.clone(),
            );
            for call in &workload.init {
                m.call(&call.func, &call.args).ok()?;
            }
            Some(m.export_state())
        })();
        Ok(ProgramSnapshot {
            original: program.clone(),
            default_program,
            workload: workload.clone(),
            kernel_funcs: kernel_funcs.to_vec(),
            default_factors,
            default_errors,
            analyses,
            init_state,
            init_reachable,
            max_init_pos,
            positions,
            config: config.clone(),
            forks: AtomicU64::new(0),
            init_forks: AtomicU64::new(0),
            analyses_reused: AtomicU64::new(0),
            analyses_built: AtomicU64::new(0),
        })
    }

    /// The pre-unroll program the snapshot was built from.
    pub fn original(&self) -> &RtlProgram {
        &self.original
    }

    /// The workload the snapshot measures.
    pub fn workload(&self) -> &Workload {
        &self.workload
    }

    /// The oracle configuration the snapshot embeds.
    pub fn config(&self) -> &OracleConfig {
        &self.config
    }

    /// Whether forks of `site` may import the shared post-init state:
    /// requires init never to execute the site's function (its body varies
    /// per factor) and every init-reachable function to sit before it in
    /// program order (so the code addresses init touched — and with them
    /// the I-cache and predictor state it left — are variant-invariant).
    fn init_forkable(&self, site: &LoopSite) -> bool {
        if self.init_reachable.contains(&site.func) {
            return false;
        }
        let Some(site_pos) = self.positions.get(&site.func) else {
            return false;
        };
        self.max_init_pos.is_none_or(|m| m < *site_pos)
    }

    /// Forks one `(site, factor)` cell: re-unrolls only the site's
    /// function (GCC defaults merged with the override, from the original
    /// body), seeds a machine with the shared post-init state (or replays
    /// `init` when that is not provably sound) and simulates the
    /// `relevant` kernel calls against the shared default variant.
    /// Returns the site function's exclusive cycles.
    ///
    /// # Errors
    ///
    /// Exactly the errors [`measure_site`] would raise for this cell, in
    /// the same encounter order.
    pub fn fork(
        &self,
        site: &LoopSite,
        factor: usize,
        relevant: &[CallSpec],
    ) -> Result<u64, OracleError> {
        // Re-raise deferred default-unroll errors in the order the scratch
        // path's per-function loop would hit them; the site's own function
        // fails (or not) with the merged factors instead.
        let mut overlay = None;
        for name in &self.kernel_funcs {
            if name == &site.func {
                let orig = self
                    .original
                    .function(name)
                    .ok_or_else(|| OracleError::UnknownFunction(name.clone()))?;
                let mut factors = self
                    .default_factors
                    .get(name)
                    .cloned()
                    .unwrap_or_else(|| gcc_default_factors(orig, &self.config.gcc));
                factors.insert(site.loop_id, factor);
                overlay = Some(apply_factors(orig, &factors)?);
            } else if let Some(e) = self.default_errors.get(name) {
                return Err(OracleError::Unroll(e.clone()));
            }
        }
        let overlay = overlay.ok_or_else(|| OracleError::UnknownFunction(site.func.clone()))?;
        let mut m = Machine::with_overlay(
            &self.default_program,
            Some(&overlay),
            Some(&self.analyses),
            self.config.sim.clone(),
        );
        match self.init_state.as_ref().filter(|_| self.init_forkable(site)) {
            Some(state) => {
                m.import_state(state.clone());
                self.init_forks.fetch_add(1, Ordering::Relaxed);
            }
            None => {
                for call in &self.workload.init {
                    m.call(&call.func, &call.args)?;
                }
            }
        }
        for call in relevant {
            m.call(&call.func, &call.args)?;
        }
        self.forks.fetch_add(1, Ordering::Relaxed);
        self.analyses_reused
            .fetch_add(m.analyses_reused() as u64, Ordering::Relaxed);
        self.analyses_built
            .fetch_add(m.analyses_built() as u64, Ordering::Relaxed);
        Ok(m.cycles_of(&site.func))
    }

    /// Measures one site's full cycle table by forking every factor —
    /// the fork-once equivalent of [`measure_site`].
    ///
    /// # Errors
    ///
    /// As [`ProgramSnapshot::fork`].
    pub fn measure_site(&self, site: &LoopSite) -> Result<LoopMeasurement, OracleError> {
        let relevant = relevant_kernel_calls(&self.original, &self.workload, &site.func);
        let mut cycles = Vec::with_capacity(self.config.max_factor + 1);
        for factor in 0..=self.config.max_factor {
            cycles.push(self.fork(site, factor, &relevant)? as f64);
        }
        Ok(LoopMeasurement {
            site: site.clone(),
            cycles,
        })
    }

    /// Cumulative fork accounting (cheap; counters are relaxed atomics).
    pub fn stats(&self) -> SnapshotStats {
        SnapshotStats {
            forks: self.forks.load(Ordering::Relaxed),
            init_forks: self.init_forks.load(Ordering::Relaxed),
            analyses_reused: self.analyses_reused.load(Ordering::Relaxed),
            analyses_built: self.analyses_built.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fegen_rtl::lower::lower_program;

    fn setup() -> (RtlProgram, Workload) {
        let src = "\
            int data[256];\n\
            int out[256];\n\
            void init() { int i; for (i = 0; i < 256; i = i + 1) { data[i] = i * 7 % 31; } }\n\
            void scale(int n) { int i; for (i = 0; i < n; i = i + 1) { out[i] = data[i] * 3; } }\n\
            int reduce(int n) { int i; int s; s = 0; for (i = 0; i < n; i = i + 1) { s = s + data[i]; } return s; }\n";
        let ast = fegen_lang::parse_program(src).unwrap();
        let program = lower_program(&ast).unwrap();
        let workload = Workload {
            init: vec![CallSpec {
                func: "init".into(),
                args: vec![],
            }],
            kernels: vec![
                CallSpec {
                    func: "scale".into(),
                    args: vec![Arg::Int(200)],
                },
                CallSpec {
                    func: "reduce".into(),
                    args: vec![Arg::Int(200)],
                },
            ],
        };
        (program, workload)
    }

    #[test]
    fn kernel_functions_exclude_init() {
        let (p, w) = setup();
        let funcs = kernel_functions(&p, &w);
        assert_eq!(funcs, vec!["reduce".to_owned(), "scale".to_owned()]);
    }

    #[test]
    fn loop_sites_enumerate_kernel_loops() {
        let (p, w) = setup();
        let sites = loop_sites(&p, &w);
        assert_eq!(sites.len(), 2);
    }

    #[test]
    fn cycle_tables_have_sixteen_entries_and_vary() {
        let (p, w) = setup();
        let config = OracleConfig::default();
        let tables = measure_workload(&p, &w, &config).unwrap();
        assert_eq!(tables.len(), 2);
        for t in &tables {
            assert_eq!(t.cycles.len(), 16);
            assert!(t.cycles.iter().all(|&c| c > 0.0));
            // Unrolling must change the cycle count somewhere.
            let min = t.cycles.iter().cloned().fold(f64::INFINITY, f64::min);
            let max = t.cycles.iter().cloned().fold(0.0, f64::max);
            assert!(max > min, "flat cycle table for {}: {:?}", t.site, t.cycles);
        }
    }

    #[test]
    fn unrolling_preserves_results() {
        // The reduce kernel must compute the same value at every factor.
        let (p, w) = setup();
        let kernel_funcs = kernel_functions(&p, &w);
        let site = LoopSite {
            func: "reduce".into(),
            loop_id: 0,
        };
        let mut results = Vec::new();
        for factor in [0usize, 1, 2, 3, 5, 7, 8, 15] {
            let v = program_variant(
                &p,
                &kernel_funcs,
                Some((&site, factor)),
                &GccParams::default(),
                true,
            )
            .unwrap();
            let mut m = Machine::new(&v, SimConfig::default());
            for c in &w.init {
                m.call(&c.func, &c.args).unwrap();
            }
            let r = m.call("reduce", &[Arg::Int(200)]).unwrap();
            results.push(r);
        }
        assert!(
            results.windows(2).all(|w| w[0] == w[1]),
            "unrolling changed semantics: {results:?}"
        );
    }

    #[test]
    fn best_factor_is_argmin() {
        let m = LoopMeasurement {
            site: LoopSite {
                func: "f".into(),
                loop_id: 0,
            },
            cycles: vec![100.0, 90.0, 85.0, 95.0],
        };
        assert_eq!(m.best_factor(), 2);
    }

    #[test]
    fn run_workload_totals_cycles() {
        let (p, w) = setup();
        let total = run_workload(&p, &w, &SimConfig::default()).unwrap();
        assert!(total > 1000, "workload should cost real cycles: {total}");
    }

    #[test]
    fn forked_measurement_is_bit_identical_to_scratch() {
        let (p, w) = setup();
        let config = OracleConfig::default();
        let kernel_funcs = kernel_functions(&p, &w);
        let snapshot = ProgramSnapshot::build(&p, &kernel_funcs, &w, &config).unwrap();
        for site in loop_sites(&p, &w) {
            let scratch = measure_site(&p, &w, &kernel_funcs, &site, &config).unwrap();
            let forked = snapshot.measure_site(&site).unwrap();
            assert_eq!(
                scratch.cycles.iter().map(|c| c.to_bits()).collect::<Vec<_>>(),
                forked.cycles.iter().map(|c| c.to_bits()).collect::<Vec<_>>(),
                "fork diverged from scratch at {site}"
            );
        }
    }

    #[test]
    fn fork_is_deterministic_and_counts_reuse() {
        let (p, w) = setup();
        let config = OracleConfig::default();
        let kernel_funcs = kernel_functions(&p, &w);
        let snapshot = ProgramSnapshot::build(&p, &kernel_funcs, &w, &config).unwrap();
        let site = LoopSite {
            func: "reduce".into(),
            loop_id: 0,
        };
        let relevant = relevant_kernel_calls(&p, &w, &site.func);
        let a = snapshot.fork(&site, 4, &relevant).unwrap();
        let b = snapshot.fork(&site, 4, &relevant).unwrap();
        assert_eq!(a, b, "repeated forks must agree");
        let stats = snapshot.stats();
        assert_eq!(stats.forks, 2);
        // Each fork rebuilds exactly one analysis (the overlay) and reuses
        // the rest of the program's.
        assert_eq!(stats.analyses_built, 2);
        assert_eq!(
            stats.analyses_reused,
            2 * (p.functions.len() as u64 - 1)
        );
        assert!(stats.reuse_rate() > 0.5);
    }

    #[test]
    fn snapshot_is_shareable_across_threads() {
        let (p, w) = setup();
        let config = OracleConfig::default();
        let kernel_funcs = kernel_functions(&p, &w);
        let snapshot = Arc::new(ProgramSnapshot::build(&p, &kernel_funcs, &w, &config).unwrap());
        let site = LoopSite {
            func: "scale".into(),
            loop_id: 0,
        };
        let baseline = snapshot.measure_site(&site).unwrap();
        let results: Vec<LoopMeasurement> = std::thread::scope(|s| {
            (0..4)
                .map(|_| {
                    let snap = Arc::clone(&snapshot);
                    let site = site.clone();
                    s.spawn(move || snap.measure_site(&site).unwrap())
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        for r in results {
            assert_eq!(r.cycles, baseline.cycles);
        }
    }

    #[test]
    fn program_with_factors_applies_per_function() {
        let (p, w) = setup();
        let kernel_funcs = kernel_functions(&p, &w);
        let factors = HashMap::from([(
            "scale".to_owned(),
            HashMap::from([(0usize, 4usize)]),
        )]);
        let v = program_with_factors(&p, &kernel_funcs, &factors).unwrap();
        assert!(
            v.function("scale").unwrap().insns.len() > p.function("scale").unwrap().insns.len()
        );
        assert_eq!(
            v.function("reduce").unwrap().insns.len(),
            p.function("reduce").unwrap().insns.len()
        );
    }
}
