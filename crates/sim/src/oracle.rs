//! Training-data generation: per-loop cycle tables across unroll factors.
//!
//! "We took each loop, one at a time, and unrolled it by different factors,
//! zero to fifteen. This gave a compiled program for which all but one loop
//! has the default unroll factor as determined by GCC's default heuristic.
//! We executed each of these versions of the program … recording the number
//! of cycles required to execute the function containing the loop that had
//! been altered." (§V)

use crate::interp::{Arg, Machine, SimConfig, SimError};
use fegen_rtl::heuristic::{gcc_default_factors, GccParams};
use fegen_rtl::node::InsnBody;
use fegen_rtl::unroll::{apply_factors, UnrollError};
use fegen_rtl::RtlProgram;
use std::collections::{HashMap, HashSet};
use std::fmt;

/// One call the workload performs.
#[derive(Debug, Clone, PartialEq)]
pub struct CallSpec {
    /// Function to call.
    pub func: String,
    /// Arguments.
    pub args: Vec<Arg>,
}

/// A benchmark workload: initialisation calls, then kernel calls.
///
/// Kernels must only read data written by `init` (or their own outputs);
/// the measurement loop re-runs `init` before each measured kernel run, so
/// in-place kernels are safe.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Workload {
    /// Setup calls (fill input arrays).
    pub init: Vec<CallSpec>,
    /// Measured kernel calls.
    pub kernels: Vec<CallSpec>,
}

/// Identifies one loop in one function.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct LoopSite {
    /// Containing function.
    pub func: String,
    /// Loop id within the function.
    pub loop_id: usize,
}

impl fmt::Display for LoopSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.func, self.loop_id)
    }
}

/// Configuration of the data-generation pass.
#[derive(Debug, Clone, PartialEq)]
pub struct OracleConfig {
    /// Largest unroll factor enumerated (paper: 15 → 16 table entries).
    pub max_factor: usize,
    /// Simulator configuration.
    pub sim: SimConfig,
    /// Parameters of the GCC default heuristic applied to the *other*
    /// loops of each variant.
    pub gcc: GccParams,
}

impl Default for OracleConfig {
    fn default() -> Self {
        OracleConfig {
            max_factor: 15,
            sim: SimConfig::default(),
            gcc: GccParams::default(),
        }
    }
}

/// A measured loop: its site and the cycle table over factors `0..=max`.
#[derive(Debug, Clone, PartialEq)]
pub struct LoopMeasurement {
    /// Which loop.
    pub site: LoopSite,
    /// `cycles[k]` = cycles of the containing function with factor `k`.
    pub cycles: Vec<f64>,
}

impl LoopMeasurement {
    /// The oracle-best factor.
    pub fn best_factor(&self) -> usize {
        fegen_ml_free_oracle(&self.cycles)
    }
}

/// argmin without depending on `fegen-ml` from this crate.
fn fegen_ml_free_oracle(cycles: &[f64]) -> usize {
    cycles
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
        .map(|(i, _)| i)
        .unwrap_or(0)
}

/// Error from data generation.
#[derive(Debug, Clone, PartialEq)]
pub enum OracleError {
    /// The simulator failed.
    Sim(SimError),
    /// The unroller failed.
    Unroll(UnrollError),
    /// A workload call references a missing function.
    UnknownFunction(String),
}

impl fmt::Display for OracleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OracleError::Sim(e) => write!(f, "simulation failed: {e}"),
            OracleError::Unroll(e) => write!(f, "unrolling failed: {e}"),
            OracleError::UnknownFunction(n) => write!(f, "workload calls unknown `{n}`"),
        }
    }
}

impl std::error::Error for OracleError {}

impl From<SimError> for OracleError {
    fn from(e: SimError) -> Self {
        OracleError::Sim(e)
    }
}

impl From<UnrollError> for OracleError {
    fn from(e: UnrollError) -> Self {
        OracleError::Unroll(e)
    }
}

/// The functions transitively reachable from the workload's kernel calls.
pub fn kernel_functions(program: &RtlProgram, workload: &Workload) -> Vec<String> {
    // Call graph.
    let mut callees: HashMap<&str, Vec<&str>> = HashMap::new();
    for f in &program.functions {
        let mut out = Vec::new();
        for insn in &f.insns {
            if let InsnBody::Call { name, .. } = &insn.body {
                out.push(name.as_str());
            }
        }
        callees.insert(f.name.as_str(), out);
    }
    let mut seen: HashSet<&str> = HashSet::new();
    let mut stack: Vec<&str> = workload.kernels.iter().map(|c| c.func.as_str()).collect();
    while let Some(f) = stack.pop() {
        if seen.insert(f) {
            if let Some(cs) = callees.get(f) {
                stack.extend(cs.iter().copied());
            }
        }
    }
    let mut out: Vec<String> = program
        .functions
        .iter()
        .filter(|f| seen.contains(f.name.as_str()))
        .map(|f| f.name.clone())
        .collect();
    out.sort();
    out
}

/// Every loop site in the workload's kernel functions.
pub fn loop_sites(program: &RtlProgram, workload: &Workload) -> Vec<LoopSite> {
    let mut sites = Vec::new();
    for name in kernel_functions(program, workload) {
        let f = program.function(&name).expect("from program");
        for l in &f.loops {
            sites.push(LoopSite {
                func: name.clone(),
                loop_id: l.id,
            });
        }
    }
    sites
}

/// Builds a program variant: every kernel function unrolled with the GCC
/// default factors, except that loop `site` (when `Some`) uses `factor`.
///
/// Non-kernel functions (initialisation) are left un-unrolled, identically
/// in every variant.
///
/// # Errors
///
/// Returns an error when the unroller fails (corrupted loop regions).
pub fn program_variant(
    program: &RtlProgram,
    kernel_funcs: &[String],
    site: Option<(&LoopSite, usize)>,
    gcc: &GccParams,
    use_defaults_elsewhere: bool,
) -> Result<RtlProgram, OracleError> {
    let mut out = program.clone();
    for name in kernel_funcs {
        let f = out
            .function(name)
            .ok_or_else(|| OracleError::UnknownFunction(name.clone()))?;
        let mut factors: HashMap<usize, usize> = if use_defaults_elsewhere {
            gcc_default_factors(f, gcc)
        } else {
            HashMap::new()
        };
        if let Some((s, factor)) = site {
            if &s.func == name {
                factors.insert(s.loop_id, factor);
            }
        }
        let new_f = apply_factors(f, &factors)?;
        *out.function_mut(name).expect("present") = new_f;
    }
    Ok(out)
}

/// Applies explicit per-loop factors (`factors[func][loop_id]`) to the
/// kernel functions; loops without an entry stay un-unrolled.
///
/// # Errors
///
/// Returns an error when the unroller fails.
pub fn program_with_factors(
    program: &RtlProgram,
    kernel_funcs: &[String],
    factors: &HashMap<String, HashMap<usize, usize>>,
) -> Result<RtlProgram, OracleError> {
    let mut out = program.clone();
    for name in kernel_funcs {
        let f = out
            .function(name)
            .ok_or_else(|| OracleError::UnknownFunction(name.clone()))?;
        let empty = HashMap::new();
        let per_loop = factors.get(name).unwrap_or(&empty);
        let new_f = apply_factors(f, per_loop)?;
        *out.function_mut(name).expect("present") = new_f;
    }
    Ok(out)
}

/// Runs the full workload on `program`; returns total cycles across all
/// functions (init included — it is identical in every configuration).
///
/// # Errors
///
/// Returns an error when the simulator fails.
pub fn run_workload(
    program: &RtlProgram,
    workload: &Workload,
    sim: &SimConfig,
) -> Result<u64, OracleError> {
    let mut m = Machine::new(program, sim.clone());
    for call in workload.init.iter().chain(&workload.kernels) {
        m.call(&call.func, &call.args)?;
    }
    Ok(m.total_cycles())
}

/// Measures the cycle table of one loop site: one simulation per factor,
/// re-running `init` each time, recording the containing function's
/// exclusive cycles.
///
/// # Errors
///
/// Returns an error when unrolling or simulation fails.
pub fn measure_site(
    program: &RtlProgram,
    workload: &Workload,
    kernel_funcs: &[String],
    site: &LoopSite,
    config: &OracleConfig,
) -> Result<LoopMeasurement, OracleError> {
    let mut cycles = Vec::with_capacity(config.max_factor + 1);
    // Kernel calls that can reach the function under measurement.
    let relevant: Vec<&CallSpec> = workload
        .kernels
        .iter()
        .filter(|c| {
            let single = Workload {
                init: vec![],
                kernels: vec![(*c).clone()],
            };
            kernel_functions(program, &single)
                .iter()
                .any(|f| f == &site.func)
        })
        .collect();
    for factor in 0..=config.max_factor {
        let variant = program_variant(
            program,
            kernel_funcs,
            Some((site, factor)),
            &config.gcc,
            true,
        )?;
        let mut m = Machine::new(&variant, config.sim.clone());
        for call in &workload.init {
            m.call(&call.func, &call.args)?;
        }
        for call in &relevant {
            m.call(&call.func, &call.args)?;
        }
        cycles.push(m.cycles_of(&site.func) as f64);
    }
    Ok(LoopMeasurement {
        site: site.clone(),
        cycles,
    })
}

/// Measures every loop site of the workload. This is the paper's §V data
/// generation (2,778 loops × 16 factors at full scale).
///
/// # Errors
///
/// Returns the first unroll/simulation error.
pub fn measure_workload(
    program: &RtlProgram,
    workload: &Workload,
    config: &OracleConfig,
) -> Result<Vec<LoopMeasurement>, OracleError> {
    let kernel_funcs = kernel_functions(program, workload);
    loop_sites(program, workload)
        .iter()
        .map(|site| measure_site(program, workload, &kernel_funcs, site, config))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fegen_rtl::lower::lower_program;

    fn setup() -> (RtlProgram, Workload) {
        let src = "\
            int data[256];\n\
            int out[256];\n\
            void init() { int i; for (i = 0; i < 256; i = i + 1) { data[i] = i * 7 % 31; } }\n\
            void scale(int n) { int i; for (i = 0; i < n; i = i + 1) { out[i] = data[i] * 3; } }\n\
            int reduce(int n) { int i; int s; s = 0; for (i = 0; i < n; i = i + 1) { s = s + data[i]; } return s; }\n";
        let ast = fegen_lang::parse_program(src).unwrap();
        let program = lower_program(&ast).unwrap();
        let workload = Workload {
            init: vec![CallSpec {
                func: "init".into(),
                args: vec![],
            }],
            kernels: vec![
                CallSpec {
                    func: "scale".into(),
                    args: vec![Arg::Int(200)],
                },
                CallSpec {
                    func: "reduce".into(),
                    args: vec![Arg::Int(200)],
                },
            ],
        };
        (program, workload)
    }

    #[test]
    fn kernel_functions_exclude_init() {
        let (p, w) = setup();
        let funcs = kernel_functions(&p, &w);
        assert_eq!(funcs, vec!["reduce".to_owned(), "scale".to_owned()]);
    }

    #[test]
    fn loop_sites_enumerate_kernel_loops() {
        let (p, w) = setup();
        let sites = loop_sites(&p, &w);
        assert_eq!(sites.len(), 2);
    }

    #[test]
    fn cycle_tables_have_sixteen_entries_and_vary() {
        let (p, w) = setup();
        let config = OracleConfig::default();
        let tables = measure_workload(&p, &w, &config).unwrap();
        assert_eq!(tables.len(), 2);
        for t in &tables {
            assert_eq!(t.cycles.len(), 16);
            assert!(t.cycles.iter().all(|&c| c > 0.0));
            // Unrolling must change the cycle count somewhere.
            let min = t.cycles.iter().cloned().fold(f64::INFINITY, f64::min);
            let max = t.cycles.iter().cloned().fold(0.0, f64::max);
            assert!(max > min, "flat cycle table for {}: {:?}", t.site, t.cycles);
        }
    }

    #[test]
    fn unrolling_preserves_results() {
        // The reduce kernel must compute the same value at every factor.
        let (p, w) = setup();
        let kernel_funcs = kernel_functions(&p, &w);
        let site = LoopSite {
            func: "reduce".into(),
            loop_id: 0,
        };
        let mut results = Vec::new();
        for factor in [0usize, 1, 2, 3, 5, 7, 8, 15] {
            let v = program_variant(
                &p,
                &kernel_funcs,
                Some((&site, factor)),
                &GccParams::default(),
                true,
            )
            .unwrap();
            let mut m = Machine::new(&v, SimConfig::default());
            for c in &w.init {
                m.call(&c.func, &c.args).unwrap();
            }
            let r = m.call("reduce", &[Arg::Int(200)]).unwrap();
            results.push(r);
        }
        assert!(
            results.windows(2).all(|w| w[0] == w[1]),
            "unrolling changed semantics: {results:?}"
        );
    }

    #[test]
    fn best_factor_is_argmin() {
        let m = LoopMeasurement {
            site: LoopSite {
                func: "f".into(),
                loop_id: 0,
            },
            cycles: vec![100.0, 90.0, 85.0, 95.0],
        };
        assert_eq!(m.best_factor(), 2);
    }

    #[test]
    fn run_workload_totals_cycles() {
        let (p, w) = setup();
        let total = run_workload(&p, &w, &SimConfig::default()).unwrap();
        assert!(total > 1000, "workload should cost real cycles: {total}");
    }

    #[test]
    fn program_with_factors_applies_per_function() {
        let (p, w) = setup();
        let kernel_funcs = kernel_functions(&p, &w);
        let factors = HashMap::from([(
            "scale".to_owned(),
            HashMap::from([(0usize, 4usize)]),
        )]);
        let v = program_with_factors(&p, &kernel_funcs, &factors).unwrap();
        assert!(
            v.function("scale").unwrap().insns.len() > p.function("scale").unwrap().insns.len()
        );
        assert_eq!(
            v.function("reduce").unwrap().insns.len(),
            p.function("reduce").unwrap().insns.len()
        );
    }
}
