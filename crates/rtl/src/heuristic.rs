//! GCC's default unrolling heuristic and the features it consults.
//!
//! The paper's motivating example (Figure 3) lists the information GCC's
//! hard-coded heuristic looks at: `ninsns`, `av_ninsns`, `niter`,
//! `expected_loop_iterations`, `num_loop_branches` and `simple_p`. This
//! module computes those features over our RTL and re-creates the decision
//! logic of GCC 4.3's `decide_unroll_constant_iterations` /
//! `decide_unroll_runtime_iterations` (size caps, unroll-times cap,
//! divisor preference for constant trip counts, power-of-two factors for
//! runtime trip counts).

use crate::func::{LoopRegion, RtlFunction};
use crate::node::InsnBody;

/// Sentinel exported for an unknown `niter` — GCC reports a huge bound when
/// the trip count is not a compile-time constant (the value visible in the
/// paper's Figure 3 listing).
pub const NITER_UNKNOWN: f64 = 6.138_492_672_488_243e17;

/// Names of the GCC heuristic features, in the order
/// [`gcc_features`] produces them (paper Figure 3(a)).
pub const GCC_FEATURE_NAMES: [&str; 6] = [
    "ninsns",
    "av_ninsns",
    "niter",
    "expected_loop_iterations",
    "num_loop_branches",
    "simple_p",
];

/// GCC 4.3 parameter defaults used by the unrolling decisions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GccParams {
    /// `PARAM_MAX_UNROLLED_INSNS`.
    pub max_unrolled_insns: usize,
    /// `PARAM_MAX_AVERAGE_UNROLLED_INSNS`.
    pub max_average_unrolled_insns: usize,
    /// `PARAM_MAX_UNROLL_TIMES`.
    pub max_unroll_times: usize,
}

impl Default for GccParams {
    fn default() -> Self {
        GccParams {
            max_unrolled_insns: 200,
            max_average_unrolled_insns: 80,
            max_unroll_times: 8,
        }
    }
}

/// The six features of the GCC heuristic for one loop.
pub fn gcc_features(func: &RtlFunction, region: &LoopRegion) -> Vec<f64> {
    let ninsns = func.loop_ninsns(region);
    let branches = num_loop_branches(func, region);
    // GCC's `av_ninsns` estimates the insns executed on an average
    // iteration; without profile data it discounts the control overhead.
    let av_ninsns = ninsns.saturating_sub(branches).max(1);
    let niter = region
        .trip_count()
        .map_or(NITER_UNKNOWN, |t| t as f64);
    let expected = region.trip_count().map_or(49.0, |t| t as f64);
    vec![
        ninsns as f64,
        av_ninsns as f64,
        niter,
        expected,
        branches as f64,
        f64::from(u8::from(region.is_simple())),
    ]
}

/// Number of conditional branches inside the loop span.
pub fn num_loop_branches(func: &RtlFunction, region: &LoopRegion) -> usize {
    match func.loop_span(region) {
        Some((s, e)) => func.insns[s..e]
            .iter()
            .filter(|i| matches!(i.body, InsnBody::CondJump { .. }))
            .count(),
        None => 0,
    }
}

/// GCC's default unroll-factor decision for one loop.
///
/// Returns 0 (leave the loop alone) or a factor in `2..=max_unroll_times`.
pub fn gcc_default_factor(func: &RtlFunction, region: &LoopRegion, params: &GccParams) -> usize {
    let ninsns = func.loop_ninsns(region).max(1);
    let branches = num_loop_branches(func, region);
    let av_ninsns = ninsns.saturating_sub(branches).max(1);

    // Size-derived cap on the unroll times.
    let mut nunroll = params.max_unrolled_insns / ninsns;
    nunroll = nunroll.min(params.max_average_unrolled_insns / av_ninsns);
    nunroll = nunroll.min(params.max_unroll_times);
    if nunroll < 2 {
        return 0;
    }

    match region.trip_count() {
        Some(niter) => {
            // Constant iterations: refuse tiny loops, prefer a factor that
            // divides the trip count (no epilogue iterations).
            if niter < 2 * nunroll as u64 {
                return 0;
            }
            for f in (2..=nunroll as u64).rev() {
                if niter % f == 0 {
                    return f as usize;
                }
            }
            nunroll
        }
        None => {
            // Runtime iterations: GCC unrolls by a power of two so the
            // entry test is cheap; non-simple ("stupid") loops use the
            // same size logic.
            let mut f = 1usize;
            while f * 2 <= nunroll {
                f *= 2;
            }
            if f < 2 {
                0
            } else {
                f
            }
        }
    }
}

/// Applies [`gcc_default_factor`] to every loop of `func`.
pub fn gcc_default_factors(
    func: &RtlFunction,
    params: &GccParams,
) -> std::collections::HashMap<usize, usize> {
    func.loops
        .iter()
        .map(|l| (l.id, gcc_default_factor(func, l, params)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower_program;
    use crate::RtlProgram;

    fn lower(src: &str) -> RtlProgram {
        let ast = fegen_lang::parse_program(src).unwrap();
        lower_program(&ast).unwrap()
    }

    #[test]
    fn features_have_documented_shape() {
        let p = lower(
            "void f(int a[64]) { int i; for (i = 0; i < 64; i = i + 1) { a[i] = i; } }",
        );
        let f = &p.functions[0];
        let feats = gcc_features(f, &f.loops[0]);
        assert_eq!(feats.len(), GCC_FEATURE_NAMES.len());
        let niter = feats[2];
        assert_eq!(niter, 64.0);
        let simple_p = feats[5];
        assert_eq!(simple_p, 1.0);
        assert!(feats[0] >= 4.0, "ninsns = {}", feats[0]);
    }

    #[test]
    fn unknown_trip_count_uses_sentinel() {
        let p = lower("void f(int n) { int i; i = 0; while (i < n) { i = i + 1; } }");
        let f = &p.functions[0];
        let feats = gcc_features(f, &f.loops[0]);
        assert_eq!(feats[2], NITER_UNKNOWN);
        assert_eq!(feats[3], 49.0);
        assert_eq!(feats[5], 0.0);
    }

    #[test]
    fn constant_trip_count_prefers_divisor() {
        let p = lower(
            "void f(int a[60]) { int i; for (i = 0; i < 60; i = i + 1) { a[i] = i; } }",
        );
        let f = &p.functions[0];
        let factor = gcc_default_factor(f, &f.loops[0], &GccParams::default());
        assert!(factor >= 2);
        assert_eq!(60 % factor, 0, "factor {factor} should divide 60");
    }

    #[test]
    fn tiny_trip_count_is_not_unrolled() {
        let p = lower("void f(int a[4]) { int i; for (i = 0; i < 4; i = i + 1) { a[i] = i; } }");
        let f = &p.functions[0];
        assert_eq!(gcc_default_factor(f, &f.loops[0], &GccParams::default()), 0);
    }

    #[test]
    fn runtime_loop_gets_power_of_two() {
        let p = lower(
            "void f(int a[64], int n) { int i; for (i = 0; i < n; i = i + 1) { a[i] = i; } }",
        );
        let f = &p.functions[0];
        let factor = gcc_default_factor(f, &f.loops[0], &GccParams::default());
        assert!(factor.is_power_of_two() && factor >= 2, "factor {factor}");
    }

    #[test]
    fn huge_body_is_not_unrolled() {
        // A body with > max_unrolled_insns/2 instructions cannot unroll.
        let mut body = String::new();
        for k in 0..120 {
            body.push_str(&format!("a[i] = a[i] + {k};\n"));
        }
        let src = format!(
            "void f(int a[64], int n) {{ int i; for (i = 0; i < n; i = i + 1) {{ {body} }} }}"
        );
        let p = lower(&src);
        let f = &p.functions[0];
        assert_eq!(gcc_default_factor(f, &f.loops[0], &GccParams::default()), 0);
    }

    #[test]
    fn default_factors_cover_all_loops() {
        let p = lower(
            "void f(int m[8][8]) {\n\
               int i; int j;\n\
               for (i = 0; i < 8; i = i + 1) {\n\
                 for (j = 0; j < 8; j = j + 1) { m[i][j] = 0; }\n\
               }\n\
             }",
        );
        let f = &p.functions[0];
        let factors = gcc_default_factors(f, &GccParams::default());
        assert_eq!(factors.len(), 2);
    }
}
