//! Lowered functions, programs, loop regions and memory layout.

use crate::node::{Insn, InsnBody, LabelId, Mode};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// How a parameter is passed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ParamKind {
    /// Scalar in a virtual register.
    Scalar {
        /// Value mode.
        mode: Mode,
        /// Register holding the argument on entry.
        reg: u32,
    },
    /// Array passed by reference (callee sees the caller's array symbol).
    Array {
        /// Element mode.
        elem_mode: Mode,
    },
}

/// A function parameter.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Param {
    /// Parameter name.
    pub name: String,
    /// Passing convention.
    pub kind: ParamKind,
}

/// Loop bound operand of a recognised induction.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Bound {
    /// Constant bound.
    Const(i64),
    /// Loop-invariant register bound.
    Reg(u32),
}

/// A recognised canonical induction: `for (r = init; r < bound; r += step)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Induction {
    /// The induction register.
    pub reg: u32,
    /// Known constant initial value, when the init clause was `r = const`.
    pub init: Option<i64>,
    /// Constant (positive) step.
    pub step: i64,
    /// Loop bound.
    pub bound: Bound,
    /// `true` for `r <= bound`, `false` for `r < bound`.
    pub inclusive: bool,
}

/// A structured loop region, identified by the labels lowering placed
/// around it:
///
/// ```text
/// Lcond:  <condition insns>  condjump-false Lexit
/// Lbody:  <body insns…>
/// Lstep:  <step insns>       jump Lcond
/// Lexit:
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoopRegion {
    /// Loop id, unique within the function, in source order.
    pub id: usize,
    /// Label of the condition block (the loop header).
    pub cond_label: LabelId,
    /// Label at the start of the body.
    pub body_label: LabelId,
    /// Label at the start of the step code.
    pub step_label: LabelId,
    /// Label immediately after the loop.
    pub exit_label: LabelId,
    /// Static nesting depth (1 = outermost).
    pub depth: usize,
    /// Canonical induction, when recognised ("simple" loops in GCC terms).
    pub induction: Option<Induction>,
}

impl LoopRegion {
    /// Exact trip count when both the initial value and the bound are
    /// compile-time constants.
    pub fn trip_count(&self) -> Option<u64> {
        let ind = self.induction?;
        let init = ind.init?;
        let Bound::Const(bound) = ind.bound else {
            return None;
        };
        let bound = if ind.inclusive { bound + 1 } else { bound };
        if bound <= init {
            return Some(0);
        }
        let span = (bound - init) as u64;
        let step = ind.step as u64;
        Some(span.div_ceil(step))
    }

    /// Whether the loop is "simple" in GCC's unroller sense: a recognised
    /// single induction with constant step.
    pub fn is_simple(&self) -> bool {
        self.induction.is_some()
    }
}

/// One array (or scalar global) placed in simulated memory.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ArrayInfo {
    /// First cell index (cells are 8 bytes; byte address = `base * 8`).
    pub base: u64,
    /// Number of elements (cells).
    pub len: usize,
    /// Element mode.
    pub mode: Mode,
}

/// Program-wide memory layout: every global and local array gets a fixed
/// region of the simulated address space (benchmark functions are not
/// recursive, so static allocation is exact).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct MemoryLayout {
    arrays: HashMap<String, ArrayInfo>,
    next: u64,
}

impl MemoryLayout {
    /// Creates an empty layout.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates `len` cells for `name` and returns its info.
    ///
    /// # Panics
    ///
    /// Panics if `name` was already allocated.
    pub fn alloc(&mut self, name: impl Into<String>, len: usize, mode: Mode) -> ArrayInfo {
        let name = name.into();
        let info = ArrayInfo {
            base: self.next,
            len,
            mode,
        };
        self.next += len as u64;
        // Pad to a cache-line boundary (8 cells = 64 bytes) so arrays do
        // not share lines, as separate C objects generally would not.
        self.next = self.next.div_ceil(8) * 8;
        let prev = self.arrays.insert(name.clone(), info);
        assert!(prev.is_none(), "array `{name}` allocated twice");
        info
    }

    /// Looks up an allocation.
    pub fn get(&self, name: &str) -> Option<ArrayInfo> {
        self.arrays.get(name).copied()
    }

    /// Total cells allocated (memory image size).
    pub fn total_cells(&self) -> u64 {
        self.next
    }

    /// Iterates over all allocations.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &ArrayInfo)> {
        self.arrays.iter()
    }
}

/// A lowered function.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RtlFunction {
    /// Function name.
    pub name: String,
    /// Parameters in order.
    pub params: Vec<Param>,
    /// Mode of each virtual register (index = register number).
    pub reg_modes: Vec<Mode>,
    /// The instruction list.
    pub insns: Vec<Insn>,
    /// Structured loop regions recorded by lowering, in source order.
    pub loops: Vec<LoopRegion>,
    /// Return mode (`None` for void).
    pub ret_mode: Option<Mode>,
    pub(crate) next_label: u32,
    pub(crate) next_uid: u32,
}

impl RtlFunction {
    /// Index of the instruction defining `label`.
    pub fn label_index(&self, label: LabelId) -> Option<usize> {
        self.insns
            .iter()
            .position(|i| matches!(i.body, InsnBody::Label(l) if l == label))
    }

    /// Allocates a fresh label id.
    pub fn fresh_label(&mut self) -> LabelId {
        let l = self.next_label;
        self.next_label += 1;
        l
    }

    /// Allocates a fresh virtual register of the given mode.
    pub fn fresh_reg(&mut self, mode: Mode) -> u32 {
        let r = self.reg_modes.len() as u32;
        self.reg_modes.push(mode);
        r
    }

    /// Allocates a fresh instruction uid.
    pub fn fresh_uid(&mut self) -> u32 {
        let u = self.next_uid;
        self.next_uid += 1;
        u
    }

    /// The half-open instruction-index span of a loop region
    /// `[cond_label .. exit_label)`.
    ///
    /// Returns `None` when the labels are absent (e.g. the loop was
    /// destroyed by an enclosing transformation).
    pub fn loop_span(&self, region: &LoopRegion) -> Option<(usize, usize)> {
        let start = self.label_index(region.cond_label)?;
        let end = self.label_index(region.exit_label)?;
        (start < end).then_some((start, end))
    }

    /// Number of non-label instructions inside a loop region (GCC's
    /// `ninsns` for the loop).
    pub fn loop_ninsns(&self, region: &LoopRegion) -> usize {
        match self.loop_span(region) {
            Some((s, e)) => self.insns[s..e]
                .iter()
                .filter(|i| !i.is_label())
                .count(),
            None => 0,
        }
    }

    /// Renders the function as a GCC-style RTL dump.
    pub fn dump(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(out, ";; function {}", self.name);
        for insn in &self.insns {
            let _ = writeln!(out, "{insn}");
        }
        out
    }
}

/// A lowered program: functions plus the shared memory layout.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RtlProgram {
    /// Lowered functions.
    pub functions: Vec<RtlFunction>,
    /// Memory layout of all globals and local arrays.
    pub layout: MemoryLayout,
}

impl RtlProgram {
    /// Looks up a function by name.
    pub fn function(&self, name: &str) -> Option<&RtlFunction> {
        self.functions.iter().find(|f| f.name == name)
    }

    /// Mutable lookup by name.
    pub fn function_mut(&mut self, name: &str) -> Option<&mut RtlFunction> {
        self.functions.iter_mut().find(|f| f.name == name)
    }

    /// Content digest of the whole lowered program (functions in order,
    /// bodies, loop regions, memory layout) — FNV-1a over an exhaustive,
    /// *canonical* rendering: the functions' `Debug` form (every field,
    /// deterministic — only `Vec`s and scalars) followed by the memory
    /// layout's allocations sorted by name, so the `HashMap`'s per-instance
    /// iteration order cannot leak in. Two independently lowered programs
    /// digest equal iff a simulation could not tell them apart, so the
    /// digest pins the exact pre-unroll compile state a measurement
    /// campaign forks from, independent of how it was configured.
    pub fn content_digest(&self) -> u64 {
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        let mut feed = |text: String| {
            for byte in text.bytes() {
                hash ^= u64::from(byte);
                hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        for f in &self.functions {
            feed(format!("{f:?}|"));
        }
        let mut arrays: Vec<_> = self.layout.iter().collect();
        arrays.sort_by(|a, b| a.0.cmp(b.0));
        for (name, info) in arrays {
            feed(format!("{name}={info:?};"));
        }
        feed(format!("next={}", self.layout.total_cells()));
        hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trip_count_arithmetic() {
        let mk = |init: Option<i64>, bound: Bound, step: i64, inclusive: bool| LoopRegion {
            id: 0,
            cond_label: 0,
            body_label: 1,
            step_label: 2,
            exit_label: 3,
            depth: 1,
            induction: Some(Induction {
                reg: 0,
                init,
                step,
                bound,
                inclusive,
            }),
        };
        assert_eq!(mk(Some(0), Bound::Const(10), 1, false).trip_count(), Some(10));
        assert_eq!(mk(Some(0), Bound::Const(10), 1, true).trip_count(), Some(11));
        assert_eq!(mk(Some(0), Bound::Const(10), 3, false).trip_count(), Some(4));
        assert_eq!(mk(Some(5), Bound::Const(5), 1, false).trip_count(), Some(0));
        assert_eq!(mk(None, Bound::Const(10), 1, false).trip_count(), None);
        assert_eq!(mk(Some(0), Bound::Reg(3), 1, false).trip_count(), None);
    }

    #[test]
    fn layout_is_line_padded_and_disjoint() {
        let mut l = MemoryLayout::new();
        let a = l.alloc("a", 3, Mode::SI);
        let b = l.alloc("b", 10, Mode::DF);
        assert_eq!(a.base, 0);
        assert_eq!(b.base, 8, "padded to the next 8-cell line");
        assert!(l.total_cells() >= 18);
        assert_eq!(l.get("a"), Some(a));
        assert_eq!(l.get("missing"), None);
    }

    #[test]
    #[should_panic(expected = "allocated twice")]
    fn layout_rejects_duplicates() {
        let mut l = MemoryLayout::new();
        l.alloc("x", 1, Mode::SI);
        l.alloc("x", 1, Mode::SI);
    }

    #[test]
    fn content_digest_tracks_content_not_identity() {
        let f = RtlFunction {
            name: "f".into(),
            params: vec![],
            reg_modes: vec![Mode::SI],
            insns: vec![],
            loops: vec![],
            ret_mode: None,
            next_label: 0,
            next_uid: 0,
        };
        let p1 = RtlProgram {
            functions: vec![f.clone()],
            layout: MemoryLayout::new(),
        };
        let p2 = p1.clone();
        assert_eq!(p1.content_digest(), p2.content_digest());
        let mut p3 = p1.clone();
        p3.functions[0].reg_modes.push(Mode::DF);
        assert_ne!(p1.content_digest(), p3.content_digest());
        let mut p4 = p1;
        p4.functions.push(f);
        assert_ne!(p2.content_digest(), p4.content_digest());
        // Independently built layouts must digest equal: each HashMap has
        // its own iteration order, which the canonical rendering hides.
        let build = || {
            let mut layout = MemoryLayout::new();
            for name in ["a", "b", "c", "d", "e", "g", "h"] {
                layout.alloc(name, 4, Mode::SI);
            }
            RtlProgram {
                functions: vec![],
                layout,
            }
        };
        assert_eq!(build().content_digest(), build().content_digest());
    }

    #[test]
    fn fresh_allocators_are_monotone() {
        let mut f = RtlFunction {
            name: "f".into(),
            params: vec![],
            reg_modes: vec![Mode::SI],
            insns: vec![],
            loops: vec![],
            ret_mode: None,
            next_label: 2,
            next_uid: 5,
        };
        assert_eq!(f.fresh_label(), 2);
        assert_eq!(f.fresh_label(), 3);
        assert_eq!(f.fresh_reg(Mode::DF), 1);
        assert_eq!(f.reg_modes[1], Mode::DF);
        assert_eq!(f.fresh_uid(), 5);
    }
}
