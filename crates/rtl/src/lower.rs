//! Lowering from the Tiny-C AST to RTL.
//!
//! The output is three-address style RTL, the shape GCC's expander produces
//! before the unroller runs: loads and stores are separate `set`s,
//! comparisons materialise into registers, loop conditions end with a single
//! conditional jump. Each structured source loop is recorded as a
//! [`LoopRegion`] around four labels (see [`crate::func::LoopRegion`]), and
//! canonical `for (i = c0; i < bound; i = i + c)` loops are recognised as
//! *simple* inductions — exactly the loops GCC's unroller can unroll
//! without internal exit tests.

use crate::func::{
    Bound, Induction, LoopRegion, MemoryLayout, Param, ParamKind, RtlFunction, RtlProgram,
};
use crate::node::{Insn, InsnBody, Mode, Rtx, RtxCode};
use fegen_lang::ast::{self, BinOp, Block, Expr, Function, LValue, Program, Scalar, Stmt, UnOp};
use std::collections::HashMap;
use std::fmt;

/// Error produced by lowering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LowerError {
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for LowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lowering error: {}", self.message)
    }
}

impl std::error::Error for LowerError {}

fn err(message: impl Into<String>) -> LowerError {
    LowerError {
        message: message.into(),
    }
}

/// Lowers a semantically checked program to RTL.
///
/// # Errors
///
/// Returns an error for constructs sema should have rejected (unknown
/// names, indexing mismatches); a checked program always lowers.
pub fn lower_program(program: &Program) -> Result<RtlProgram, LowerError> {
    let mut layout = MemoryLayout::new();
    for g in &program.globals {
        match &g.ty {
            ast::Type::Array { elem, dims } => {
                let len = dims.iter().product();
                layout.alloc(g.name.clone(), len, mode_of(*elem));
            }
            ast::Type::Int => {
                layout.alloc(g.name.clone(), 1, Mode::SI);
            }
            ast::Type::Float => {
                layout.alloc(g.name.clone(), 1, Mode::DF);
            }
            ast::Type::Void => return Err(err(format!("global `{}` has type void", g.name))),
        }
    }
    let mut functions = Vec::with_capacity(program.functions.len());
    for f in &program.functions {
        functions.push(lower_function(f, program, &mut layout)?);
    }
    Ok(RtlProgram { functions, layout })
}

fn mode_of(s: Scalar) -> Mode {
    match s {
        Scalar::Int => Mode::SI,
        Scalar::Float => Mode::DF,
    }
}

fn scalar_mode(ty: &ast::Type) -> Option<Mode> {
    match ty {
        ast::Type::Int => Some(Mode::SI),
        ast::Type::Float => Some(Mode::DF),
        _ => None,
    }
}

/// How a name is accessed inside a function.
#[derive(Debug, Clone)]
enum Binding {
    /// Scalar in a virtual register.
    Reg { reg: u32, mode: Mode },
    /// Array (or global scalar) in memory behind a symbol.
    Memory {
        symbol: String,
        mode: Mode,
        /// Array extents; empty for a global scalar.
        dims: Vec<usize>,
    },
}

/// An operand: a register or a constant (the leaves RTL expressions use).
#[derive(Debug, Clone, Copy)]
enum Operand {
    Reg(u32, Mode),
    CInt(i64),
    CDouble(f64),
}

impl Operand {
    fn mode(&self) -> Mode {
        match self {
            Operand::Reg(_, m) => *m,
            Operand::CInt(_) => Mode::SI,
            Operand::CDouble(_) => Mode::DF,
        }
    }

    fn to_rtx(self) -> Rtx {
        match self {
            Operand::Reg(r, m) => Rtx::reg(m, r),
            Operand::CInt(v) => Rtx::const_int(v),
            Operand::CDouble(v) => Rtx::const_double(v),
        }
    }
}

struct Lowerer<'a> {
    program: &'a Program,
    func: RtlFunction,
    env: HashMap<String, Binding>,
    layout: &'a mut MemoryLayout,
    loop_depth: usize,
}

fn lower_function(
    f: &Function,
    program: &Program,
    layout: &mut MemoryLayout,
) -> Result<RtlFunction, LowerError> {
    let mut func = RtlFunction {
        name: f.name.clone(),
        params: Vec::new(),
        reg_modes: Vec::new(),
        insns: Vec::new(),
        loops: Vec::new(),
        ret_mode: scalar_mode(&f.ret),
        next_label: 0,
        next_uid: 0,
    };
    let mut env = HashMap::new();

    // Globals are visible unless shadowed: global arrays and global scalars
    // both live behind symbols.
    for g in &program.globals {
        let binding = match &g.ty {
            ast::Type::Array { elem, dims } => Binding::Memory {
                symbol: g.name.clone(),
                mode: mode_of(*elem),
                dims: dims.clone(),
            },
            ast::Type::Int => Binding::Memory {
                symbol: g.name.clone(),
                mode: Mode::SI,
                dims: vec![],
            },
            ast::Type::Float => Binding::Memory {
                symbol: g.name.clone(),
                mode: Mode::DF,
                dims: vec![],
            },
            ast::Type::Void => unreachable!("rejected above"),
        };
        env.insert(g.name.clone(), binding);
    }

    for p in &f.params {
        match &p.ty {
            ast::Type::Array { elem, dims } => {
                func.params.push(Param {
                    name: p.name.clone(),
                    kind: ParamKind::Array {
                        elem_mode: mode_of(*elem),
                    },
                });
                env.insert(
                    p.name.clone(),
                    Binding::Memory {
                        symbol: p.name.clone(),
                        mode: mode_of(*elem),
                        dims: dims.clone(),
                    },
                );
            }
            ty => {
                let mode = scalar_mode(ty).ok_or_else(|| err("void parameter"))?;
                let reg = func.fresh_reg(mode);
                func.params.push(Param {
                    name: p.name.clone(),
                    kind: ParamKind::Scalar { mode, reg },
                });
                env.insert(p.name.clone(), Binding::Reg { reg, mode });
            }
        }
    }

    let mut lw = Lowerer {
        program,
        func,
        env,
        layout,
        loop_depth: 0,
    };
    lw.block(&f.body)?;

    // Implicit return.
    let needs_return = !matches!(
        lw.func.insns.last().map(|i| &i.body),
        Some(InsnBody::Return { .. })
    );
    if needs_return {
        let value = lw.func.ret_mode.map(|m| match m {
            Mode::SI => Rtx::const_int(0),
            _ => Rtx::const_double(0.0),
        });
        lw.emit(InsnBody::Return { value });
    }
    Ok(lw.func)
}

impl<'a> Lowerer<'a> {
    fn emit(&mut self, body: InsnBody) {
        let uid = self.func.fresh_uid();
        self.func.insns.push(Insn { uid, body });
    }

    fn emit_label(&mut self, label: u32) {
        self.emit(InsnBody::Label(label));
    }

    /// Materialises `src` into a fresh register of its mode.
    fn force_reg(&mut self, src: Rtx) -> Operand {
        let mode = src.mode;
        if let Some(r) = src.as_reg() {
            return Operand::Reg(r, mode);
        }
        let r = self.func.fresh_reg(mode);
        self.emit(InsnBody::Set {
            dest: Rtx::reg(mode, r),
            src,
        });
        Operand::Reg(r, mode)
    }

    /// Converts an operand to `target` mode, emitting a conversion insn if
    /// needed.
    fn convert(&mut self, op: Operand, target: Mode) -> Operand {
        if op.mode() == target {
            return op;
        }
        match (op, target) {
            (Operand::CInt(v), Mode::DF) => Operand::CDouble(v as f64),
            (Operand::CDouble(v), Mode::SI) => Operand::CInt(v as i64),
            (op, Mode::DF) => {
                // (float:DF (reg:SI r)) — int to float.
                let src = Rtx::unary(RtxCode::Float, Mode::DF, op.to_rtx());
                self.force_reg(src)
            }
            (op, Mode::SI) => {
                // (fix:SI (reg:DF r)) — float to int, truncating.
                let src = Rtx::unary(RtxCode::Fix, Mode::SI, op.to_rtx());
                self.force_reg(src)
            }
            (op, _) => op,
        }
    }

    fn block(&mut self, b: &Block) -> Result<(), LowerError> {
        for s in &b.stmts {
            self.stmt(s)?;
        }
        Ok(())
    }

    fn stmt(&mut self, s: &Stmt) -> Result<(), LowerError> {
        match s {
            Stmt::Decl(d) => self.decl(d),
            Stmt::Assign { target, value } => self.assign(target, value),
            Stmt::If {
                cond,
                then_blk,
                else_blk,
            } => self.if_stmt(cond, then_blk, else_blk.as_ref()),
            Stmt::While { cond, body } => self.loop_stmt(None, cond, None, body),
            Stmt::For {
                init,
                cond,
                step,
                body,
            } => self.loop_stmt(init.as_deref(), cond, step.as_deref(), body),
            Stmt::Return(value) => {
                let value = match (value, self.func.ret_mode) {
                    (Some(e), Some(m)) => {
                        let op = self.expr(e)?;
                        let op = self.convert(op, m);
                        Some(op.to_rtx())
                    }
                    _ => None,
                };
                self.emit(InsnBody::Return { value });
                Ok(())
            }
            Stmt::ExprStmt(e) => {
                if let Expr::Call { name, args } = e {
                    self.call(name, args, false)?;
                    Ok(())
                } else {
                    Err(err("expression statement must be a call"))
                }
            }
            Stmt::Block(b) => self.block(b),
        }
    }

    fn decl(&mut self, d: &ast::VarDecl) -> Result<(), LowerError> {
        match &d.ty {
            ast::Type::Array { elem, dims } => {
                let symbol = format!("{}::{}", self.func.name, d.name);
                let len = dims.iter().product();
                self.layout.alloc(symbol.clone(), len, mode_of(*elem));
                self.env.insert(
                    d.name.clone(),
                    Binding::Memory {
                        symbol,
                        mode: mode_of(*elem),
                        dims: dims.clone(),
                    },
                );
            }
            ty => {
                let mode = scalar_mode(ty).ok_or_else(|| err("void local"))?;
                let reg = self.func.fresh_reg(mode);
                self.env.insert(d.name.clone(), Binding::Reg { reg, mode });
            }
        }
        Ok(())
    }

    /// Computes the element address expression for an indexed access.
    fn element_address(
        &mut self,
        symbol: &str,
        dims: &[usize],
        indices: &[Expr],
    ) -> Result<Rtx, LowerError> {
        let base = Rtx::symbol(symbol);
        if indices.is_empty() {
            // Global scalar: address is the symbol itself.
            return Ok(base);
        }
        if indices.len() != dims.len() {
            return Err(err(format!("index arity mismatch on `{symbol}`")));
        }
        // Linear index: i (1-D) or i * cols + j (2-D).
        let linear = if indices.len() == 1 {
            let i = self.expr(&indices[0])?;
            self.convert(i, Mode::SI).to_rtx()
        } else {
            let i = self.expr(&indices[0])?;
            let i = self.convert(i, Mode::SI);
            let j = self.expr(&indices[1])?;
            let j = self.convert(j, Mode::SI);
            let cols = dims[1] as i64;
            let scaled = self.force_reg(Rtx::binary(
                RtxCode::Mult,
                Mode::SI,
                i.to_rtx(),
                Rtx::const_int(cols),
            ));
            self.force_reg(Rtx::binary(
                RtxCode::Plus,
                Mode::SI,
                scaled.to_rtx(),
                j.to_rtx(),
            ))
            .to_rtx()
        };
        Ok(Rtx::binary(RtxCode::Plus, Mode::SI, base, linear))
    }

    fn lookup(&self, name: &str) -> Result<Binding, LowerError> {
        self.env
            .get(name)
            .cloned()
            .ok_or_else(|| err(format!("unknown name `{name}`")))
    }

    fn assign(&mut self, target: &LValue, value: &Expr) -> Result<(), LowerError> {
        match self.lookup(&target.name)? {
            Binding::Reg { reg, mode } => {
                if !target.indices.is_empty() {
                    return Err(err(format!("scalar `{}` indexed", target.name)));
                }
                let v = self.expr(value)?;
                let v = self.convert(v, mode);
                self.emit(InsnBody::Set {
                    dest: Rtx::reg(mode, reg),
                    src: v.to_rtx(),
                });
            }
            Binding::Memory { symbol, mode, dims } => {
                // Keep the compound address inside the mem node —
                // `(mem (plus (symbol_ref a) (reg i)))` is a single x86
                // addressing mode, and GCC RTL stores it exactly so.
                let addr = self.element_address(&symbol, &dims, &target.indices)?;
                let v = self.expr(value)?;
                let v = self.convert(v, mode);
                self.emit(InsnBody::Set {
                    dest: Rtx::mem(mode, addr),
                    src: v.to_rtx(),
                });
            }
        }
        Ok(())
    }

    fn if_stmt(
        &mut self,
        cond: &Expr,
        then_blk: &Block,
        else_blk: Option<&Block>,
    ) -> Result<(), LowerError> {
        let c = self.expr(cond)?;
        let c = self.convert(c, Mode::SI);
        let l_else = self.func.fresh_label();
        // Branch to else when the condition is zero.
        self.emit(InsnBody::CondJump {
            cond: Rtx::binary(RtxCode::Eq, Mode::SI, c.to_rtx(), Rtx::const_int(0)),
            target: l_else,
        });
        self.block(then_blk)?;
        match else_blk {
            Some(e) => {
                let l_end = self.func.fresh_label();
                self.emit(InsnBody::Jump { target: l_end });
                self.emit_label(l_else);
                self.block(e)?;
                self.emit_label(l_end);
            }
            None => self.emit_label(l_else),
        }
        Ok(())
    }

    /// Shared lowering for `for` and `while` (a `while` is a `for` with no
    /// init/step).
    fn loop_stmt(
        &mut self,
        init: Option<&Stmt>,
        cond: &Expr,
        step: Option<&Stmt>,
        body: &Block,
    ) -> Result<(), LowerError> {
        if let Some(init) = init {
            self.stmt(init)?;
        }
        let l_cond = self.func.fresh_label();
        let l_body = self.func.fresh_label();
        let l_step = self.func.fresh_label();
        let l_exit = self.func.fresh_label();

        self.loop_depth += 1;
        let depth = self.loop_depth;

        self.emit_label(l_cond);
        let c = self.expr(cond)?;
        let c = self.convert(c, Mode::SI);
        self.emit(InsnBody::CondJump {
            cond: Rtx::binary(RtxCode::Eq, Mode::SI, c.to_rtx(), Rtx::const_int(0)),
            target: l_exit,
        });
        self.emit_label(l_body);
        self.block(body)?;
        self.emit_label(l_step);
        if let Some(step) = step {
            self.stmt(step)?;
        }
        self.emit(InsnBody::Jump { target: l_cond });
        self.emit_label(l_exit);
        self.loop_depth -= 1;

        let induction = self.recognise_induction(init, cond, step, body);
        let id = self.func.loops.len();
        self.func.loops.push(LoopRegion {
            id,
            cond_label: l_cond,
            body_label: l_body,
            step_label: l_step,
            exit_label: l_exit,
            depth,
            induction,
        });
        Ok(())
    }

    /// Recognises the canonical `for (v = c0; v < bound; v = v + c)` shape
    /// at the AST level; `bound` must be a constant or a scalar register
    /// that the loop body does not assign.
    fn recognise_induction(
        &self,
        init: Option<&Stmt>,
        cond: &Expr,
        step: Option<&Stmt>,
        body: &Block,
    ) -> Option<Induction> {
        // Step: `v = v + c`, c > 0 constant.
        let Stmt::Assign {
            target: step_target,
            value: step_value,
        } = step?
        else {
            return None;
        };
        if !step_target.indices.is_empty() {
            return None;
        }
        let var = &step_target.name;
        let Expr::Binary {
            op: BinOp::Add,
            lhs,
            rhs,
        } = step_value
        else {
            return None;
        };
        let step_const = match (lhs.as_ref(), rhs.as_ref()) {
            (Expr::Var(v), Expr::IntLit(c)) if v == var && *c > 0 => *c,
            _ => return None,
        };

        // Condition: `v < bound` or `v <= bound`.
        let Expr::Binary { op, lhs, rhs } = cond else {
            return None;
        };
        let inclusive = match op {
            BinOp::Lt => false,
            BinOp::Le => true,
            _ => return None,
        };
        let Expr::Var(cv) = lhs.as_ref() else {
            return None;
        };
        if cv != var {
            return None;
        }
        let bound = match rhs.as_ref() {
            Expr::IntLit(b) => Bound::Const(*b),
            Expr::Var(b) => {
                if assigns_var(body, b) || assigns_var_stmt(step.unwrap(), b) {
                    return None;
                }
                match self.env.get(b)? {
                    Binding::Reg { reg, mode: Mode::SI } => Bound::Reg(*reg),
                    _ => return None,
                }
            }
            _ => return None,
        };

        // The body must not assign the induction variable.
        if assigns_var(body, var) {
            return None;
        }

        let Binding::Reg {
            reg,
            mode: Mode::SI,
        } = self.env.get(var)?
        else {
            return None;
        };

        // Init: `v = c0` gives a known start.
        let init_const = match init {
            Some(Stmt::Assign {
                target,
                value: Expr::IntLit(c),
            }) if &target.name == var => Some(*c),
            _ => None,
        };

        Some(Induction {
            reg: *reg,
            init: init_const,
            step: step_const,
            bound,
            inclusive,
        })
    }

    fn expr(&mut self, e: &Expr) -> Result<Operand, LowerError> {
        match e {
            Expr::IntLit(v) => Ok(Operand::CInt(*v)),
            Expr::FloatLit(v) => Ok(Operand::CDouble(*v)),
            Expr::Var(name) => match self.lookup(name)? {
                Binding::Reg { reg, mode } => Ok(Operand::Reg(reg, mode)),
                Binding::Memory { symbol, mode, dims } => {
                    if !dims.is_empty() {
                        return Err(err(format!("array `{name}` used as scalar")));
                    }
                    // Global scalar load.
                    let load = Rtx::mem(mode, Rtx::symbol(symbol));
                    Ok(self.force_reg(load))
                }
            },
            Expr::Index { name, indices } => match self.lookup(name)? {
                Binding::Memory { symbol, mode, dims } => {
                    let addr = self.element_address(&symbol, &dims, indices)?;
                    let load = Rtx::mem(mode, addr);
                    Ok(self.force_reg(load))
                }
                Binding::Reg { .. } => Err(err(format!("scalar `{name}` indexed"))),
            },
            Expr::Unary { op, expr } => {
                let v = self.expr(expr)?;
                match op {
                    UnOp::Neg => {
                        let mode = v.mode();
                        Ok(self.force_reg(Rtx::unary(RtxCode::Neg, mode, v.to_rtx())))
                    }
                    UnOp::Not => {
                        let v = self.convert(v, Mode::SI);
                        Ok(self.force_reg(Rtx::binary(
                            RtxCode::Eq,
                            Mode::SI,
                            v.to_rtx(),
                            Rtx::const_int(0),
                        )))
                    }
                }
            }
            Expr::Binary { op, lhs, rhs } => self.binary(*op, lhs, rhs),
            Expr::Call { name, args } => {
                let dest = self.call(name, args, true)?;
                dest.ok_or_else(|| err(format!("void call `{name}` used as value")))
            }
        }
    }

    fn binary(&mut self, op: BinOp, lhs: &Expr, rhs: &Expr) -> Result<Operand, LowerError> {
        let a = self.expr(lhs)?;
        let b = self.expr(rhs)?;
        // Result/operand mode: float wins for arithmetic; comparisons use
        // the common operand mode and produce SI.
        let operand_mode = if a.mode() == Mode::DF || b.mode() == Mode::DF {
            Mode::DF
        } else {
            Mode::SI
        };
        let a = self.convert(a, operand_mode);
        let b = self.convert(b, operand_mode);
        let (code, result_mode) = match op {
            BinOp::Add => (RtxCode::Plus, operand_mode),
            BinOp::Sub => (RtxCode::Minus, operand_mode),
            BinOp::Mul => (RtxCode::Mult, operand_mode),
            BinOp::Div => (RtxCode::Div, operand_mode),
            BinOp::Rem => (RtxCode::Mod, Mode::SI),
            BinOp::Shl => (RtxCode::Ashift, Mode::SI),
            BinOp::Shr => (RtxCode::Ashiftrt, Mode::SI),
            BinOp::BitAnd => (RtxCode::And, Mode::SI),
            BinOp::BitOr => (RtxCode::Ior, Mode::SI),
            BinOp::BitXor => (RtxCode::Xor, Mode::SI),
            BinOp::Lt => (RtxCode::Lt, Mode::SI),
            BinOp::Le => (RtxCode::Le, Mode::SI),
            BinOp::Gt => (RtxCode::Gt, Mode::SI),
            BinOp::Ge => (RtxCode::Ge, Mode::SI),
            BinOp::Eq => (RtxCode::Eq, Mode::SI),
            BinOp::Ne => (RtxCode::Ne, Mode::SI),
            // Non-short-circuit logical ops over materialised 0/1 values
            // (Tiny-C expressions are pure, so this is semantics-preserving).
            BinOp::And | BinOp::Or => {
                let a = self.truth_value(a);
                let b = self.truth_value(b);
                let code = if op == BinOp::And {
                    RtxCode::And
                } else {
                    RtxCode::Ior
                };
                return Ok(self.force_reg(Rtx::binary(code, Mode::SI, a.to_rtx(), b.to_rtx())));
            }
        };
        Ok(self.force_reg(Rtx::binary(code, result_mode, a.to_rtx(), b.to_rtx())))
    }

    /// Normalises a value to 0/1 (`v != 0`).
    fn truth_value(&mut self, v: Operand) -> Operand {
        match v {
            Operand::CInt(c) => Operand::CInt(i64::from(c != 0)),
            Operand::CDouble(c) => Operand::CInt(i64::from(c != 0.0)),
            Operand::Reg(_, mode) => {
                let zero = match mode {
                    Mode::DF => Rtx::const_double(0.0),
                    _ => Rtx::const_int(0),
                };
                self.force_reg(Rtx::binary(RtxCode::Ne, Mode::SI, v.to_rtx(), zero))
            }
        }
    }

    fn call(
        &mut self,
        name: &str,
        args: &[Expr],
        want_value: bool,
    ) -> Result<Option<Operand>, LowerError> {
        let callee = self
            .program
            .function(name)
            .ok_or_else(|| err(format!("unknown function `{name}`")))?;
        let mut lowered_args = Vec::with_capacity(args.len());
        for (param, arg) in callee.params.iter().zip(args) {
            match &param.ty {
                ast::Type::Array { .. } => {
                    let Expr::Var(arg_name) = arg else {
                        return Err(err("array argument must be a name"));
                    };
                    let Binding::Memory { symbol, .. } = self.lookup(arg_name)? else {
                        return Err(err(format!("`{arg_name}` is not an array")));
                    };
                    lowered_args.push(Rtx::symbol(symbol));
                }
                ty => {
                    let mode = scalar_mode(ty).ok_or_else(|| err("void parameter"))?;
                    let v = self.expr(arg)?;
                    let v = self.convert(v, mode);
                    lowered_args.push(v.to_rtx());
                }
            }
        }
        let ret_mode = scalar_mode(&callee.ret);
        let dest = match (want_value, ret_mode) {
            (true, Some(m)) => {
                let r = self.func.fresh_reg(m);
                Some(Rtx::reg(m, r))
            }
            _ => None,
        };
        self.emit(InsnBody::Call {
            name: name.to_owned(),
            args: lowered_args,
            dest: dest.clone(),
        });
        Ok(dest.map(|d| Operand::Reg(d.as_reg().expect("dest is a reg"), d.mode)))
    }
}

/// Whether `block` contains an assignment to scalar `var`.
fn assigns_var(block: &Block, var: &str) -> bool {
    block.stmts.iter().any(|s| assigns_var_stmt(s, var))
}

fn assigns_var_stmt(s: &Stmt, var: &str) -> bool {
    match s {
        Stmt::Assign { target, .. } => target.indices.is_empty() && target.name == var,
        Stmt::If {
            then_blk, else_blk, ..
        } => {
            assigns_var(then_blk, var)
                || else_blk.as_ref().is_some_and(|b| assigns_var(b, var))
        }
        Stmt::While { body, .. } => assigns_var(body, var),
        Stmt::For {
            init, step, body, ..
        } => {
            init.as_deref().is_some_and(|s| assigns_var_stmt(s, var))
                || step.as_deref().is_some_and(|s| assigns_var_stmt(s, var))
                || assigns_var(body, var)
        }
        Stmt::Block(b) => assigns_var(b, var),
        Stmt::Decl(d) => d.name == var, // shadowing declaration invalidates
        Stmt::Return(_) | Stmt::ExprStmt(_) => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::func::Bound;

    fn lower(src: &str) -> RtlProgram {
        let ast = fegen_lang::parse_program(src).unwrap();
        lower_program(&ast).unwrap()
    }

    #[test]
    fn lowers_simple_counted_loop_with_induction() {
        let p = lower(
            "int f(int n, int a[64]) {\n\
               int i; int s; s = 0;\n\
               for (i = 0; i < n; i = i + 1) { s = s + a[i]; }\n\
               return s;\n\
             }",
        );
        let f = &p.functions[0];
        assert_eq!(f.loops.len(), 1);
        let l = &f.loops[0];
        assert!(l.is_simple(), "canonical for loop must be simple");
        let ind = l.induction.unwrap();
        assert_eq!(ind.init, Some(0));
        assert_eq!(ind.step, 1);
        assert!(matches!(ind.bound, Bound::Reg(_)));
        assert!(!ind.inclusive);
        assert_eq!(l.depth, 1);
    }

    #[test]
    fn constant_bound_gives_trip_count() {
        let p = lower(
            "void f(int a[64]) { int i; for (i = 0; i < 64; i = i + 4) { a[i] = i; } }",
        );
        let l = &p.functions[0].loops[0];
        assert_eq!(l.trip_count(), Some(16));
    }

    #[test]
    fn while_loop_is_not_simple() {
        let p = lower("void f(int n) { int i; i = 0; while (i < n) { i = i + 1; } }");
        let l = &p.functions[0].loops[0];
        assert!(!l.is_simple());
        assert_eq!(l.trip_count(), None);
    }

    #[test]
    fn body_assignment_to_induction_blocks_simplicity() {
        let p = lower(
            "void f(int n) { int i; for (i = 0; i < n; i = i + 1) { if (i > 3) { i = i + 2; } } }",
        );
        assert!(!p.functions[0].loops[0].is_simple());
    }

    #[test]
    fn nested_loops_have_depths() {
        let p = lower(
            "void f(int m[8][8]) {\n\
               int i; int j;\n\
               for (i = 0; i < 8; i = i + 1) {\n\
                 for (j = 0; j < 8; j = j + 1) { m[i][j] = i + j; }\n\
               }\n\
             }",
        );
        let f = &p.functions[0];
        assert_eq!(f.loops.len(), 2);
        // Inner loop is recorded first (finished lowering first).
        assert_eq!(f.loops[0].depth, 2);
        assert_eq!(f.loops[1].depth, 1);
    }

    #[test]
    fn loop_span_and_ninsns() {
        let p = lower("void f(int a[16]) { int i; for (i = 0; i < 16; i = i + 1) { a[i] = 0; } }");
        let f = &p.functions[0];
        let l = &f.loops[0];
        let (s, e) = f.loop_span(l).unwrap();
        assert!(s < e);
        assert!(f.loop_ninsns(l) >= 4, "cond, store, step, jump at minimum");
    }

    #[test]
    fn global_scalars_load_and_store_through_memory() {
        let p = lower("int g; void f() { g = g + 1; }");
        let f = &p.functions[0];
        let has_load = f.insns.iter().any(|i| {
            matches!(&i.body, InsnBody::Set { src, .. } if src.code == RtxCode::Mem)
        });
        let has_store = f.insns.iter().any(|i| {
            matches!(&i.body, InsnBody::Set { dest, .. } if dest.code == RtxCode::Mem)
        });
        assert!(has_load && has_store);
        assert!(p.layout.get("g").is_some());
    }

    #[test]
    fn two_dimensional_indexing_scales_by_columns() {
        let p = lower("float m[4][6]; void f() { m[2][3] = 1.0; }");
        let f = &p.functions[0];
        // Somewhere a (mult ... (const_int 6)) must appear.
        let mut found = false;
        for i in &f.insns {
            if let InsnBody::Set { src, .. } = &i.body {
                src.visit(&mut |n| {
                    if n.code == RtxCode::Mult
                        && n.ops.iter().any(|o| o.as_const_int() == Some(6))
                    {
                        found = true;
                    }
                });
            }
        }
        assert!(found, "column scaling by 6 not found:\n{}", f.dump());
    }

    #[test]
    fn local_arrays_get_function_scoped_symbols() {
        let p = lower("void f() { int buf[32]; buf[0] = 1; }");
        assert!(p.layout.get("f::buf").is_some());
    }

    #[test]
    fn float_int_conversion_emitted() {
        let p = lower("float f(int n) { return n * 1.5; }");
        let f = &p.functions[0];
        let mut has_float_conv = false;
        for i in &f.insns {
            if let InsnBody::Set { src, .. } = &i.body {
                src.visit(&mut |n| has_float_conv |= n.code == RtxCode::Float);
            }
        }
        assert!(has_float_conv, "int->float conversion missing:\n{}", f.dump());
    }

    #[test]
    fn call_lowering_passes_arrays_as_symbols() {
        let p = lower(
            "int sum(int a[8]) { return a[0]; }\n\
             int g; int f(int x[8]) { return sum(x) + g; }",
        );
        let f = p.function("f").unwrap();
        let call = f
            .insns
            .iter()
            .find_map(|i| match &i.body {
                InsnBody::Call { name, args, dest } => Some((name, args, dest)),
                _ => None,
            })
            .expect("call insn present");
        assert_eq!(call.0, "sum");
        assert_eq!(call.1[0].code, RtxCode::SymbolRef);
        assert!(call.2.is_some());
    }

    #[test]
    fn if_else_produces_two_labels_and_jump() {
        let p = lower("int f(int x) { if (x > 0) { return 1; } else { return 2; } return 0; }");
        let f = &p.functions[0];
        let n_condjump = f
            .insns
            .iter()
            .filter(|i| matches!(i.body, InsnBody::CondJump { .. }))
            .count();
        assert_eq!(n_condjump, 1);
    }

    #[test]
    fn implicit_return_added_for_void() {
        let p = lower("void f() { }");
        assert!(matches!(
            p.functions[0].insns.last().unwrap().body,
            InsnBody::Return { value: None }
        ));
    }

    #[test]
    fn logical_ops_materialise_truth_values() {
        let p = lower("int f(int a, int b) { return a > 0 && b > 2; }");
        let f = &p.functions[0];
        let mut has_and = false;
        for i in &f.insns {
            if let InsnBody::Set { src, .. } = &i.body {
                has_and |= src.code == RtxCode::And;
            }
        }
        assert!(has_and, "{}", f.dump());
    }
}
