//! RTL expression trees, machine modes and instructions.
//!
//! The shape mirrors GCC RTL: every expression is a node with a *code*
//! (`reg`, `mem`, `plus`, `set`, …), a *machine mode* (`SI`, `DF`, …) and
//! operands. Instructions come pre-decoded (label / set / jump / call /
//! return) so the interpreter in `fegen-sim` does not pattern-match
//! `(set (pc) (if_then_else …))` at run time; the exporter re-materialises
//! the GCC-style pattern shape when building feature-generator trees.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Machine mode of an RTL expression (GCC's `machine_mode`, reduced).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Mode {
    /// 32-bit integer (`SImode`) — the mode of Tiny-C `int` values.
    SI,
    /// 64-bit float (`DFmode`) — the mode of Tiny-C `float` values.
    DF,
    /// No value (`VOIDmode`) — labels, jumps, stores.
    Void,
    /// Condition codes (`CCmode`) — comparison results.
    CC,
}

impl Mode {
    /// GCC-style name used in exported attributes (`@mode==SI`).
    pub fn name(&self) -> &'static str {
        match self {
            Mode::SI => "SI",
            Mode::DF => "DF",
            Mode::Void => "VOID",
            Mode::CC => "CC",
        }
    }
}

impl fmt::Display for Mode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// RTL expression codes (GCC `rtx_code`, reduced to what lowering emits).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)] // names follow GCC rtx codes one-to-one
pub enum RtxCode {
    Reg,
    Mem,
    ConstInt,
    ConstDouble,
    SymbolRef,
    Plus,
    Minus,
    Mult,
    Div,
    Mod,
    Neg,
    Abs,
    Smin,
    Smax,
    And,
    Ior,
    Xor,
    Not,
    Ashift,
    Ashiftrt,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    FloatExtend,
    Fix,
    Float,
}

impl RtxCode {
    /// GCC-style lowercase name (`plus`, `const_int`, …) used as the
    /// exported node kind.
    pub fn name(&self) -> &'static str {
        use RtxCode::*;
        match self {
            Reg => "reg",
            Mem => "mem",
            ConstInt => "const_int",
            ConstDouble => "const_double",
            SymbolRef => "symbol_ref",
            Plus => "plus",
            Minus => "minus",
            Mult => "mult",
            Div => "div",
            Mod => "mod",
            Neg => "neg",
            Abs => "abs",
            Smin => "smin",
            Smax => "smax",
            And => "and",
            Ior => "ior",
            Xor => "xor",
            Not => "not",
            Ashift => "ashift",
            Ashiftrt => "ashiftrt",
            Eq => "eq",
            Ne => "ne",
            Lt => "lt",
            Le => "le",
            Gt => "gt",
            Ge => "ge",
            FloatExtend => "float_extend",
            Fix => "fix",
            Float => "float",
        }
    }

    /// Whether the code is a comparison producing 0/1.
    pub fn is_comparison(&self) -> bool {
        use RtxCode::*;
        matches!(self, Eq | Ne | Lt | Le | Gt | Ge)
    }
}

impl fmt::Display for RtxCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// Immediate payload of an [`Rtx`] node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RtxValue {
    /// No payload (operators).
    None,
    /// `const_int` value.
    Int(i64),
    /// `const_double` value.
    Float(f64),
    /// `reg` number (virtual register).
    Reg(u32),
    /// `symbol_ref` name (array or global base).
    Sym(String),
}

/// An RTL expression: code + mode + operands + payload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Rtx {
    /// Expression code.
    pub code: RtxCode,
    /// Machine mode of the value.
    pub mode: Mode,
    /// Operand sub-expressions.
    pub ops: Vec<Rtx>,
    /// Immediate payload (register number, constant, symbol).
    pub value: RtxValue,
}

impl Rtx {
    /// `(reg:mode n)`
    pub fn reg(mode: Mode, n: u32) -> Rtx {
        Rtx {
            code: RtxCode::Reg,
            mode,
            ops: vec![],
            value: RtxValue::Reg(n),
        }
    }

    /// `(const_int v)`
    pub fn const_int(v: i64) -> Rtx {
        Rtx {
            code: RtxCode::ConstInt,
            mode: Mode::SI,
            ops: vec![],
            value: RtxValue::Int(v),
        }
    }

    /// `(const_double v)`
    pub fn const_double(v: f64) -> Rtx {
        Rtx {
            code: RtxCode::ConstDouble,
            mode: Mode::DF,
            ops: vec![],
            value: RtxValue::Float(v),
        }
    }

    /// `(symbol_ref name)` — the base address of an array.
    pub fn symbol(name: impl Into<String>) -> Rtx {
        Rtx {
            code: RtxCode::SymbolRef,
            mode: Mode::SI,
            ops: vec![],
            value: RtxValue::Sym(name.into()),
        }
    }

    /// `(mem:mode addr)`
    pub fn mem(mode: Mode, addr: Rtx) -> Rtx {
        Rtx {
            code: RtxCode::Mem,
            mode,
            ops: vec![addr],
            value: RtxValue::None,
        }
    }

    /// Binary operator node.
    pub fn binary(code: RtxCode, mode: Mode, a: Rtx, b: Rtx) -> Rtx {
        Rtx {
            code,
            mode,
            ops: vec![a, b],
            value: RtxValue::None,
        }
    }

    /// Unary operator node.
    pub fn unary(code: RtxCode, mode: Mode, a: Rtx) -> Rtx {
        Rtx {
            code,
            mode,
            ops: vec![a],
            value: RtxValue::None,
        }
    }

    /// The register number if this is a `reg` node.
    pub fn as_reg(&self) -> Option<u32> {
        match (&self.code, &self.value) {
            (RtxCode::Reg, RtxValue::Reg(n)) => Some(*n),
            _ => None,
        }
    }

    /// The constant value if this is a `const_int` node.
    pub fn as_const_int(&self) -> Option<i64> {
        match (&self.code, &self.value) {
            (RtxCode::ConstInt, RtxValue::Int(v)) => Some(*v),
            _ => None,
        }
    }

    /// Number of nodes in this expression tree.
    pub fn size(&self) -> usize {
        1 + self.ops.iter().map(Rtx::size).sum::<usize>()
    }

    /// Visits every node of the tree, pre-order.
    pub fn visit(&self, f: &mut impl FnMut(&Rtx)) {
        f(self);
        for op in &self.ops {
            op.visit(f);
        }
    }

    /// Collects the registers read by this expression.
    pub fn regs_used(&self, out: &mut Vec<u32>) {
        self.visit(&mut |n| {
            if let Some(r) = n.as_reg() {
                out.push(r);
            }
        });
    }

    /// Whether the expression contains any `mem` node.
    pub fn contains_mem(&self) -> bool {
        let mut found = false;
        self.visit(&mut |n| found |= n.code == RtxCode::Mem);
        found
    }

    /// Whether the expression computes in floating point anywhere.
    pub fn contains_float(&self) -> bool {
        let mut found = false;
        self.visit(&mut |n| found |= n.mode == Mode::DF);
        found
    }
}

impl fmt::Display for Rtx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (&self.code, &self.value) {
            (RtxCode::Reg, RtxValue::Reg(n)) => write!(f, "(reg:{} {n})", self.mode),
            (RtxCode::ConstInt, RtxValue::Int(v)) => write!(f, "(const_int {v})"),
            (RtxCode::ConstDouble, RtxValue::Float(v)) => write!(f, "(const_double {v})"),
            (RtxCode::SymbolRef, RtxValue::Sym(s)) => write!(f, "(symbol_ref \"{s}\")"),
            _ => {
                write!(f, "({}:{}", self.code, self.mode)?;
                for op in &self.ops {
                    write!(f, " {op}")?;
                }
                write!(f, ")")
            }
        }
    }
}

/// A label identifier, unique within a function.
pub type LabelId = u32;

/// A decoded instruction body.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum InsnBody {
    /// `(code_label n)`
    Label(LabelId),
    /// `(set dest src)` — `dest` is a `reg` or `mem`.
    Set {
        /// Destination (`reg` or `mem`).
        dest: Rtx,
        /// Source expression.
        src: Rtx,
    },
    /// Conditional jump: `(set (pc) (if_then_else cond (label_ref t) (pc)))`.
    /// Taken when `cond` evaluates non-zero.
    CondJump {
        /// Comparison expression.
        cond: Rtx,
        /// Branch target.
        target: LabelId,
    },
    /// Unconditional jump: `(set (pc) (label_ref t))`.
    Jump {
        /// Jump target.
        target: LabelId,
    },
    /// Call instruction; scalar arguments are expressions, array arguments
    /// pass the base symbol.
    Call {
        /// Callee name.
        name: String,
        /// Argument expressions (a `symbol_ref` passes an array).
        args: Vec<Rtx>,
        /// Register receiving the return value, if any.
        dest: Option<Rtx>,
    },
    /// Function return.
    Return {
        /// Returned value, if the function is non-void.
        value: Option<Rtx>,
    },
}

/// An instruction: a unique id plus its decoded body.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Insn {
    /// Unique id within the function (stable across unrolling copies: the
    /// copy keeps the original uid, which lets the branch predictor in the
    /// simulator treat copies as distinct static branch sites via their
    /// position instead).
    pub uid: u32,
    /// Decoded body.
    pub body: InsnBody,
}

impl Insn {
    /// Whether this instruction is a `code_label`.
    pub fn is_label(&self) -> bool {
        matches!(self.body, InsnBody::Label(_))
    }

    /// Whether this instruction ends a basic block.
    pub fn is_control(&self) -> bool {
        matches!(
            self.body,
            InsnBody::CondJump { .. } | InsnBody::Jump { .. } | InsnBody::Return { .. }
        )
    }

    /// The GCC-style kind name used on export (`insn`, `jump_insn`,
    /// `call_insn`, `code_label`).
    pub fn kind_name(&self) -> &'static str {
        match self.body {
            InsnBody::Label(_) => "code_label",
            InsnBody::Set { .. } => "insn",
            InsnBody::CondJump { .. } | InsnBody::Jump { .. } => "jump_insn",
            InsnBody::Call { .. } => "call_insn",
            InsnBody::Return { .. } => "jump_insn",
        }
    }
}

impl fmt::Display for Insn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.body {
            InsnBody::Label(l) => write!(f, "L{l}:"),
            InsnBody::Set { dest, src } => write!(f, "  (set {dest} {src})"),
            InsnBody::CondJump { cond, target } => {
                write!(f, "  (set (pc) (if_then_else {cond} (label_ref L{target}) (pc)))")
            }
            InsnBody::Jump { target } => write!(f, "  (set (pc) (label_ref L{target}))"),
            InsnBody::Call { name, args, dest } => {
                match dest {
                    Some(d) => write!(f, "  (set {d} (call \"{name}\"")?,
                    None => write!(f, "  (call \"{name}\"")?,
                }
                for a in args {
                    write!(f, " {a}")?;
                }
                write!(f, "))")
            }
            InsnBody::Return { value: Some(v) } => write!(f, "  (return {v})"),
            InsnBody::Return { value: None } => write!(f, "  (return)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_set() -> Insn {
        // (set (reg:SI 1) (plus:SI (reg:SI 2) (const_int 4)))
        Insn {
            uid: 7,
            body: InsnBody::Set {
                dest: Rtx::reg(Mode::SI, 1),
                src: Rtx::binary(
                    RtxCode::Plus,
                    Mode::SI,
                    Rtx::reg(Mode::SI, 2),
                    Rtx::const_int(4),
                ),
            },
        }
    }

    #[test]
    fn rtx_accessors() {
        let r = Rtx::reg(Mode::SI, 3);
        assert_eq!(r.as_reg(), Some(3));
        assert_eq!(r.as_const_int(), None);
        let c = Rtx::const_int(9);
        assert_eq!(c.as_const_int(), Some(9));
    }

    #[test]
    fn size_and_regs_used() {
        let Insn {
            body: InsnBody::Set { src, .. },
            ..
        } = sample_set()
        else {
            unreachable!()
        };
        assert_eq!(src.size(), 3);
        let mut regs = Vec::new();
        src.regs_used(&mut regs);
        assert_eq!(regs, vec![2]);
    }

    #[test]
    fn contains_mem_and_float() {
        let load = Rtx::mem(Mode::DF, Rtx::symbol("a"));
        assert!(load.contains_mem());
        assert!(load.contains_float());
        assert!(!Rtx::const_int(1).contains_mem());
    }

    #[test]
    fn display_matches_gcc_style() {
        let insn = sample_set();
        assert_eq!(
            insn.to_string(),
            "  (set (reg:SI 1) (plus:SI (reg:SI 2) (const_int 4)))"
        );
    }

    #[test]
    fn insn_classification() {
        assert!(Insn {
            uid: 0,
            body: InsnBody::Label(3)
        }
        .is_label());
        assert!(Insn {
            uid: 0,
            body: InsnBody::Jump { target: 1 }
        }
        .is_control());
        assert_eq!(sample_set().kind_name(), "insn");
        assert_eq!(
            Insn {
                uid: 0,
                body: InsnBody::CondJump {
                    cond: Rtx::const_int(1),
                    target: 2
                }
            }
            .kind_name(),
            "jump_insn"
        );
    }

    #[test]
    fn comparison_codes() {
        assert!(RtxCode::Lt.is_comparison());
        assert!(!RtxCode::Plus.is_comparison());
    }
}
