//! # fegen-rtl — the RTL-style compiler IR
//!
//! The paper studies loop unrolling "at the point at which loop unrolling
//! occurs in GCC \[where\] the program has been lowered to the register
//! transfer language (RTL). In RTL, instructions are in an algebraic form
//! with a treed, list-of-lists representation" (§VI). This crate provides
//! that substrate for the reproduction:
//!
//! - [`node`] — the RTL expression trees ([`node::Rtx`]), machine modes and
//!   decoded instructions ([`node::Insn`]);
//! - [`func`] — whole lowered functions and programs, memory layout for
//!   arrays, loop regions;
//! - [`lower`] — lowering from the Tiny-C AST (`fegen-lang`) to RTL;
//! - [`mod@cfg`] — basic blocks, control-flow graph, natural-loop discovery and
//!   loop depths;
//! - [`unroll`] — the loop-unrolling transformation with **explicit per-loop
//!   unroll factors** (the compiler extension the paper added to GCC);
//! - [`heuristic`] — a re-creation of GCC's default unrolling heuristic and
//!   the features it consults (`ninsns`, `av_ninsns`, `niter`, …; paper
//!   Figure 3);
//! - [`stateml`] — the 22 hand-crafted loop features of Stephenson &
//!   Amarasinghe (paper Figure 14);
//! - [`export`] — export of a loop's RTL (augmented with basic-block
//!   structure and analysis attributes) as `fegen-core` [`fegen_core::ir::IrNode`]
//!   trees for the feature generator.
//!
//! ```
//! use fegen_rtl::lower::lower_program;
//!
//! let ast = fegen_lang::parse_program(
//!     "int f(int n, int a[64]) {
//!        int i; int s; s = 0;
//!        for (i = 0; i < n; i = i + 1) { s = s + a[i]; }
//!        return s;
//!      }",
//! )?;
//! let rtl = lower_program(&ast)?;
//! let f = &rtl.functions[0];
//! assert_eq!(f.loops.len(), 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```


// Library code must report through telemetry events or typed errors,
// never by printing; binaries are exempt (their crate roots are in bin/).
#![deny(clippy::print_stdout, clippy::print_stderr)]

pub mod cfg;
pub mod export;
pub mod func;
pub mod heuristic;
pub mod inline;
pub mod lower;
pub mod node;
pub mod stateml;
pub mod unroll;

pub use func::{RtlFunction, RtlProgram};
pub use node::{Insn, InsnBody, Mode, Rtx, RtxCode};
