//! Function inlining with explicit per-call-site decisions.
//!
//! The paper closes with: "Our system is generic … and is easily extended
//! to cover different data structures within any compiler. Future work
//! will investigate exploring different feature spaces for new
//! optimizations." This module provides that second optimization: an
//! inliner whose decision (inline or not, per call site) can be driven by
//! the same learned-heuristic machinery as the unroller — the experiment
//! lives in `fegen-bench`'s `ext_inlining` binary.
//!
//! The transform splices the callee's body at the call site with renamed
//! registers and labels; scalar arguments bind through fresh registers and
//! array arguments substitute the callee's parameter symbols.

use crate::func::{Bound, LoopRegion, RtlFunction, RtlProgram};
use crate::node::{Insn, InsnBody, LabelId, Rtx, RtxValue};
use std::collections::HashMap;
use std::fmt;

/// One call site within a function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallSite {
    /// Uid of the `call_insn`.
    pub insn_uid: u32,
    /// Callee name.
    pub callee: String,
}

/// Inliner error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InlineError {
    /// The function or call site was not found.
    NoSuchSite,
    /// The callee does not exist in the program.
    UnknownCallee(String),
    /// Direct recursion cannot be inlined.
    Recursive(String),
}

impl fmt::Display for InlineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InlineError::NoSuchSite => write!(f, "call site not found"),
            InlineError::UnknownCallee(n) => write!(f, "unknown callee `{n}`"),
            InlineError::Recursive(n) => write!(f, "cannot inline recursive call to `{n}`"),
        }
    }
}

impl std::error::Error for InlineError {}

/// Lists every call site of `func`, in instruction order.
pub fn call_sites(func: &RtlFunction) -> Vec<CallSite> {
    func.insns
        .iter()
        .filter_map(|i| match &i.body {
            InsnBody::Call { name, .. } => Some(CallSite {
                insn_uid: i.uid,
                callee: name.clone(),
            }),
            _ => None,
        })
        .collect()
}

/// Substitutes register numbers, and array-parameter symbols, in an
/// expression tree.
fn rewrite_rtx(rtx: &Rtx, reg_offset: u32, symbols: &HashMap<String, String>) -> Rtx {
    let mut out = rtx.clone();
    out.ops = rtx
        .ops
        .iter()
        .map(|o| rewrite_rtx(o, reg_offset, symbols))
        .collect();
    match &mut out.value {
        RtxValue::Reg(r) => *r += reg_offset,
        RtxValue::Sym(s) => {
            if let Some(replacement) = symbols.get(s.as_str()) {
                *s = replacement.clone();
            }
        }
        _ => {}
    }
    out
}

/// Returns a copy of the program where the call at `site` inside function
/// `caller` is replaced by the callee's body.
///
/// Loop regions of the callee are appended to the caller's region list
/// (with fresh ids and labels, and depths adjusted by the call site's own
/// loop depth), so they remain individually unrollable afterwards.
///
/// # Errors
///
/// See [`InlineError`].
pub fn inline_call(
    program: &RtlProgram,
    caller_name: &str,
    site: &CallSite,
) -> Result<RtlProgram, InlineError> {
    if caller_name == site.callee {
        return Err(InlineError::Recursive(site.callee.clone()));
    }
    let callee = program
        .function(&site.callee)
        .ok_or_else(|| InlineError::UnknownCallee(site.callee.clone()))?
        .clone();
    let mut out = program.clone();
    let caller = out
        .function_mut(caller_name)
        .ok_or(InlineError::NoSuchSite)?;
    let call_index = caller
        .insns
        .iter()
        .position(|i| i.uid == site.insn_uid && matches!(i.body, InsnBody::Call { .. }))
        .ok_or(InlineError::NoSuchSite)?;
    let InsnBody::Call { args, dest, .. } = caller.insns[call_index].body.clone() else {
        return Err(InlineError::NoSuchSite);
    };

    // Renaming tables.
    let reg_offset = caller.reg_modes.len() as u32;
    caller.reg_modes.extend(callee.reg_modes.iter().copied());
    let mut label_map: HashMap<LabelId, LabelId> = HashMap::new();
    for insn in &callee.insns {
        if let InsnBody::Label(l) = insn.body {
            label_map.insert(l, caller.fresh_label());
        }
    }
    let l_continue = caller.fresh_label();

    // Parameter binding.
    let mut symbols: HashMap<String, String> = HashMap::new();
    let mut prologue: Vec<InsnBody> = Vec::new();
    let mut scalar_args = args.iter();
    for p in &callee.params {
        match &p.kind {
            crate::func::ParamKind::Array { .. } => {
                let arg = scalar_args.next().expect("arity checked by sema");
                let RtxValue::Sym(sym) = &arg.value else {
                    return Err(InlineError::NoSuchSite);
                };
                symbols.insert(p.name.clone(), sym.clone());
            }
            crate::func::ParamKind::Scalar { mode, reg } => {
                let arg = scalar_args.next().expect("arity checked by sema");
                prologue.push(InsnBody::Set {
                    dest: Rtx::reg(*mode, reg + reg_offset),
                    src: arg.clone(),
                });
            }
        }
    }

    // Rewrite the callee body.
    let map_label = |l: LabelId| *label_map.get(&l).expect("labels collected");
    let mut body: Vec<InsnBody> = Vec::with_capacity(callee.insns.len());
    for insn in &callee.insns {
        let rewritten = match &insn.body {
            InsnBody::Label(l) => InsnBody::Label(map_label(*l)),
            InsnBody::Set { dest, src } => InsnBody::Set {
                dest: rewrite_rtx(dest, reg_offset, &symbols),
                src: rewrite_rtx(src, reg_offset, &symbols),
            },
            InsnBody::CondJump { cond, target } => InsnBody::CondJump {
                cond: rewrite_rtx(cond, reg_offset, &symbols),
                target: map_label(*target),
            },
            InsnBody::Jump { target } => InsnBody::Jump {
                target: map_label(*target),
            },
            InsnBody::Call {
                name,
                args,
                dest,
            } => InsnBody::Call {
                name: name.clone(),
                args: args
                    .iter()
                    .map(|a| rewrite_rtx(a, reg_offset, &symbols))
                    .collect(),
                dest: dest.as_ref().map(|d| rewrite_rtx(d, reg_offset, &symbols)),
            },
            InsnBody::Return { value } => {
                // Return becomes an assignment to the call destination (if
                // any) followed by a jump past the inlined body.
                if let (Some(d), Some(v)) = (&dest, value) {
                    body.push(InsnBody::Set {
                        dest: d.clone(),
                        src: rewrite_rtx(v, reg_offset, &symbols),
                    });
                }
                InsnBody::Jump { target: l_continue }
            }
        };
        body.push(rewritten);
    }

    // Depth of the call site inside the caller's loops.
    let site_depth = caller
        .loops
        .clone()
        .iter()
        .filter(|r| {
            caller
                .loop_span(r)
                .is_some_and(|(s, e)| s <= call_index && call_index < e)
        })
        .count();

    // Splice: prologue + body + continue label replace the call insn.
    let mut spliced: Vec<Insn> = Vec::with_capacity(prologue.len() + body.len() + 1);
    for b in prologue.into_iter().chain(body) {
        let uid = caller.fresh_uid();
        spliced.push(Insn { uid, body: b });
    }
    let uid = caller.fresh_uid();
    spliced.push(Insn {
        uid,
        body: InsnBody::Label(l_continue),
    });
    caller.insns.splice(call_index..=call_index, spliced);

    // Import the callee's loop regions.
    let next_id = caller.loops.len();
    for (k, region) in callee.loops.iter().enumerate() {
        caller.loops.push(LoopRegion {
            id: next_id + k,
            cond_label: map_label(region.cond_label),
            body_label: map_label(region.body_label),
            step_label: map_label(region.step_label),
            exit_label: map_label(region.exit_label),
            depth: region.depth + site_depth,
            induction: region.induction.map(|mut ind| {
                ind.reg += reg_offset;
                if let Bound::Reg(r) = ind.bound {
                    ind.bound = Bound::Reg(r + reg_offset);
                }
                ind
            }),
        });
    }
    Ok(out)
}

/// A GCC-style size heuristic: inline when the callee is small.
pub fn size_heuristic(callee: &RtlFunction, max_insns: usize) -> bool {
    callee.insns.iter().filter(|i| !i.is_label()).count() <= max_insns
}

/// Whether the callee body contains calls itself (used to stop cascades).
pub fn has_calls(func: &RtlFunction) -> bool {
    func.insns
        .iter()
        .any(|i| matches!(i.body, InsnBody::Call { .. }))
}

/// Exports a call site for the feature generator: the call instruction,
/// the caller context (containing-loop depth, caller size) and the whole
/// callee body as IR.
pub fn export_call_site(
    program: &RtlProgram,
    caller: &RtlFunction,
    site: &CallSite,
) -> fegen_core::ir::IrNode {
    use fegen_core::ir::IrNode;
    let callee = program.function(&site.callee).expect("callee exists");
    let call_index = caller
        .insns
        .iter()
        .position(|i| i.uid == site.insn_uid)
        .expect("site in caller");
    let site_depth = caller
        .loops
        .iter()
        .filter(|r| {
            caller
                .loop_span(r)
                .is_some_and(|(s, e)| s <= call_index && call_index < e)
        })
        .count();
    let mut root = IrNode::new("call-site");
    root.attr_num("loop-depth", site_depth as f64);
    root.attr_num("caller-size", caller.insns.len() as f64);
    root.attr_num(
        "callee-size",
        callee.insns.iter().filter(|i| !i.is_label()).count() as f64,
    );
    root.attr_num("callee-loops", callee.loops.len() as f64);
    root.attr_bool("callee-has-calls", has_calls(callee));
    // The callee body as IR: reuse the loop exporter per region, plus a
    // flat body node for straight-line callees.
    let mut callee_node = IrNode::new("callee");
    for region in &callee.loops {
        callee_node.push_child(crate::export::export_loop(callee, region, &program.layout));
    }
    if callee.loops.is_empty() {
        let mut body = IrNode::new("basic-block");
        body.attr_num("n-insns", callee.insns.len() as f64);
        callee_node.push_child(body);
    }
    root.push_child(callee_node);
    root
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower_program;

    fn lower(src: &str) -> RtlProgram {
        let ast = fegen_lang::parse_program(src).unwrap();
        lower_program(&ast).unwrap()
    }

    const SRC: &str = "\
        int tab[32];\n\
        int clamp(int x) { if (x > 9) { return 9; } return x; }\n\
        int helper(int a, int b) { return a * 2 + b; }\n\
        void kernel(int n) {\n\
          int i;\n\
          for (i = 0; i < n; i = i + 1) { tab[i % 32] = clamp(helper(i, n)); }\n\
        }\n";

    #[test]
    fn call_sites_enumerated_in_order() {
        let p = lower(SRC);
        let kernel = p.function("kernel").unwrap();
        let sites = call_sites(kernel);
        assert_eq!(sites.len(), 2);
        assert_eq!(sites[0].callee, "helper");
        assert_eq!(sites[1].callee, "clamp");
    }

    #[test]
    fn inlining_removes_the_call_and_grows_the_caller() {
        let p = lower(SRC);
        let kernel = p.function("kernel").unwrap();
        let sites = call_sites(kernel);
        let inlined = inline_call(&p, "kernel", &sites[0]).unwrap();
        let new_kernel = inlined.function("kernel").unwrap();
        assert_eq!(call_sites(new_kernel).len(), 1, "one call remains");
        assert!(new_kernel.insns.len() > kernel.insns.len());
    }

    #[test]
    fn inlining_preserves_semantics() {
        use fegen_sim_free_check::*;
        let p = lower(SRC);
        let kernel = p.function("kernel").unwrap();
        let reference = run(&p);
        for site in call_sites(kernel) {
            let inlined = inline_call(&p, "kernel", &site).unwrap();
            assert_eq!(run(&inlined), reference, "inlining {site:?} changed results");
        }
        // Inline both, in sequence.
        let mut q = p.clone();
        while let Some(site) = call_sites(q.function("kernel").unwrap()).first().cloned() {
            q = inline_call(&q, "kernel", &site).unwrap();
        }
        assert_eq!(run(&q), reference);
        assert!(call_sites(q.function("kernel").unwrap()).is_empty());
    }

    /// Semantic check without depending on fegen-sim (dependency direction):
    /// a minimal RTL evaluator good enough for this test's programs.
    mod fegen_sim_free_check {
        use super::super::*;
        use crate::node::{Mode, RtxCode};

        pub fn run(program: &RtlProgram) -> Vec<i64> {
            let mut memory = vec![0i64; program.layout.total_cells() as usize];
            call(program, "kernel", &[20], &mut memory);
            memory
        }

        fn call(program: &RtlProgram, name: &str, args: &[i64], memory: &mut [i64]) -> i64 {
            let func = program.function(name).expect("function");
            let mut regs = vec![0i64; func.reg_modes.len()];
            let mut fregs = vec![0f64; func.reg_modes.len()];
            let mut next = 0usize;
            for p in &func.params {
                if let crate::func::ParamKind::Scalar { reg, .. } = p.kind {
                    regs[reg as usize] = args[next];
                    next += 1;
                }
            }
            let labels: HashMap<LabelId, usize> = func
                .insns
                .iter()
                .enumerate()
                .filter_map(|(i, insn)| match insn.body {
                    InsnBody::Label(l) => Some((l, i)),
                    _ => None,
                })
                .collect();
            let mut pc = 0usize;
            let mut steps = 0u64;
            while pc < func.insns.len() {
                steps += 1;
                assert!(steps < 1_000_000, "runaway test program");
                match &func.insns[pc].body {
                    InsnBody::Label(_) => pc += 1,
                    InsnBody::Set { dest, src } => {
                        let v = eval(program, src, &regs, &fregs, memory);
                        match dest.code {
                            RtxCode::Reg => {
                                let r = dest.as_reg().unwrap() as usize;
                                if dest.mode == Mode::DF {
                                    fregs[r] = v as f64;
                                } else {
                                    regs[r] = v;
                                }
                            }
                            RtxCode::Mem => {
                                let a =
                                    eval(program, &dest.ops[0], &regs, &fregs, memory) as usize;
                                memory[a] = v;
                            }
                            _ => unreachable!(),
                        }
                        pc += 1;
                    }
                    InsnBody::CondJump { cond, target } => {
                        if eval(program, cond, &regs, &fregs, memory) != 0 {
                            pc = labels[target];
                        } else {
                            pc += 1;
                        }
                    }
                    InsnBody::Jump { target } => pc = labels[target],
                    InsnBody::Call { name, args, dest } => {
                        let vals: Vec<i64> = args
                            .iter()
                            .filter(|a| a.code != RtxCode::SymbolRef)
                            .map(|a| eval(program, a, &regs, &fregs, memory))
                            .collect();
                        let r = call(program, name, &vals, memory);
                        if let Some(d) = dest {
                            regs[d.as_reg().unwrap() as usize] = r;
                        }
                        pc += 1;
                    }
                    InsnBody::Return { value } => {
                        return value
                            .as_ref()
                            .map_or(0, |v| eval(program, v, &regs, &fregs, memory));
                    }
                }
            }
            0
        }

        fn eval(
            program: &RtlProgram,
            rtx: &Rtx,
            regs: &[i64],
            fregs: &[f64],
            memory: &[i64],
        ) -> i64 {
            use RtxCode::*;
            match rtx.code {
                Reg => {
                    let r = rtx.as_reg().unwrap() as usize;
                    if rtx.mode == Mode::DF {
                        fregs[r] as i64
                    } else {
                        regs[r]
                    }
                }
                ConstInt => rtx.as_const_int().unwrap(),
                SymbolRef => match &rtx.value {
                    RtxValue::Sym(s) => program.layout.get(s).expect("symbol").base as i64,
                    _ => unreachable!(),
                },
                Mem => {
                    let a = eval(program, &rtx.ops[0], regs, fregs, memory) as usize;
                    memory[a]
                }
                Plus => {
                    eval(program, &rtx.ops[0], regs, fregs, memory)
                        + eval(program, &rtx.ops[1], regs, fregs, memory)
                }
                Minus => {
                    eval(program, &rtx.ops[0], regs, fregs, memory)
                        - eval(program, &rtx.ops[1], regs, fregs, memory)
                }
                Mult => {
                    eval(program, &rtx.ops[0], regs, fregs, memory)
                        * eval(program, &rtx.ops[1], regs, fregs, memory)
                }
                Mod => {
                    let b = eval(program, &rtx.ops[1], regs, fregs, memory);
                    if b == 0 {
                        0
                    } else {
                        eval(program, &rtx.ops[0], regs, fregs, memory) % b
                    }
                }
                Eq | Ne | Lt | Le | Gt | Ge => {
                    let a = eval(program, &rtx.ops[0], regs, fregs, memory);
                    let b = eval(program, &rtx.ops[1], regs, fregs, memory);
                    i64::from(match rtx.code {
                        Eq => a == b,
                        Ne => a != b,
                        Lt => a < b,
                        Le => a <= b,
                        Gt => a > b,
                        _ => a >= b,
                    })
                }
                _ => panic!("test evaluator does not support {:?}", rtx.code),
            }
        }
    }

    #[test]
    fn recursion_is_rejected() {
        let p = lower("int f(int x) { if (x > 0) { return f(x - 1); } return 0; }");
        let f = p.function("f").unwrap();
        let sites = call_sites(f);
        assert_eq!(
            inline_call(&p, "f", &sites[0]).unwrap_err(),
            InlineError::Recursive("f".into())
        );
    }

    #[test]
    fn inlined_callee_loops_stay_unrollable() {
        let src = "\
            int acc[64];\n\
            int summit(int n) { int i; int s; s = 0; for (i = 0; i < n; i = i + 1) { s = s + acc[i]; } return s; }\n\
            int outer(int n) { return summit(n) + summit(n); }\n";
        let p = lower(src);
        let outer = p.function("outer").unwrap();
        let sites = call_sites(outer);
        let inlined = inline_call(&p, "outer", &sites[0]).unwrap();
        let new_outer = inlined.function("outer").unwrap();
        assert_eq!(new_outer.loops.len(), 1, "callee loop imported");
        let region = &new_outer.loops[0];
        assert!(new_outer.loop_span(region).is_some(), "region labels resolve");
        assert!(region.is_simple(), "induction survived renumbering");
        // And the imported loop actually unrolls.
        let unrolled = crate::unroll::unroll_loop(new_outer, 0, 4).unwrap();
        assert!(unrolled.insns.len() > new_outer.insns.len());
    }

    #[test]
    fn call_site_depth_adjusts_imported_loops() {
        let src = "\
            int acc[64];\n\
            int summit(int n) { int i; int s; s = 0; for (i = 0; i < n; i = i + 1) { s = s + acc[i]; } return s; }\n\
            void outer(int n) { int j; for (j = 0; j < n; j = j + 1) { acc[j % 64] = summit(j); } }\n";
        let p = lower(src);
        let outer = p.function("outer").unwrap();
        let sites = call_sites(outer);
        let inlined = inline_call(&p, "outer", &sites[0]).unwrap();
        let new_outer = inlined.function("outer").unwrap();
        let imported = new_outer.loops.last().unwrap();
        assert_eq!(imported.depth, 2, "callee depth 1 + call-site depth 1");
    }

    #[test]
    fn export_call_site_shape() {
        let p = lower(SRC);
        let kernel = p.function("kernel").unwrap();
        let sites = call_sites(kernel);
        let ir = export_call_site(&p, kernel, &sites[1]);
        assert_eq!(ir.kind().as_str(), "call-site");
        let f = fegen_core::lang::parse_feature("get-attr(@callee-size)").unwrap();
        assert!(f.eval_default(&ir).unwrap() > 0.0);
        let d = fegen_core::lang::parse_feature("get-attr(@loop-depth)").unwrap();
        assert_eq!(d.eval_default(&ir).unwrap(), 1.0);
    }

    #[test]
    fn size_heuristic_thresholds() {
        let p = lower(SRC);
        assert!(size_heuristic(p.function("clamp").unwrap(), 16));
        assert!(!size_heuristic(p.function("kernel").unwrap(), 4));
    }
}
