//! Export of loop RTL as feature-generator IR trees.
//!
//! "We extract the RTL representation of the loops, augmenting it to include
//! the structure of the basic blocks in the loop and the RTL instructions
//! contained within their blocks. We also export any information GCC can
//! compute at that time such as estimated block frequencies, loop depths,
//! and so on." (§VI)
//!
//! The exported tree for a loop looks like:
//!
//! ```text
//! (loop @num-iter @depth @simple @ninsns @num-branches)
//!   (basic-block @index @loop-depth @freq @may-be-hot @n-insns)
//!     (insn (set (reg @mode @regno) (plus @mode … (const_int @value))))
//!     (jump_insn (set (pc) (if_then_else (eq …) (label_ref) (pc))))
//!     …
//! ```
//!
//! `symbol_ref` nodes additionally carry a `var_decl` child describing the
//! referenced object's type (`array_type` over `integer_type` /
//! `real_type`), mirroring how the paper's exported RTL reaches into GCC's
//! tree-level type information (its found features test `is-type(var_decl)`,
//! `is-type(array_type)`, `is-type(real_type)`, …).

use crate::cfg::Cfg;
use crate::func::{LoopRegion, MemoryLayout, ParamKind, RtlFunction};
use crate::heuristic;
use crate::node::{InsnBody, Mode, Rtx, RtxCode, RtxValue};
use fegen_core::ir::IrNode;

/// Exports one loop of `func` (with its basic-block structure and analysis
/// attributes) as an [`IrNode`] tree.
pub fn export_loop(func: &RtlFunction, region: &LoopRegion, layout: &MemoryLayout) -> IrNode {
    let cfg = Cfg::build(func);
    let depths = cfg.loop_depths();
    let freqs = cfg.block_frequencies();

    let mut root = IrNode::new("loop");
    root.attr_num(
        "num-iter",
        region
            .trip_count()
            .map_or(heuristic::NITER_UNKNOWN, |t| t as f64),
    );
    root.attr_num("depth", region.depth as f64);
    root.attr_bool("simple", region.is_simple());
    root.attr_num("ninsns", func.loop_ninsns(region) as f64);
    root.attr_num(
        "num-branches",
        heuristic::num_loop_branches(func, region) as f64,
    );

    let Some((start, end)) = func.loop_span(region) else {
        return root;
    };

    for block in &cfg.blocks {
        // Blocks fully inside the loop span.
        if block.start < start || block.end > end || block.is_empty() {
            continue;
        }
        let mut bb = IrNode::new("basic-block");
        bb.attr_num("index", block.index as f64);
        bb.attr_num("loop-depth", depths[block.index] as f64);
        bb.attr_num("freq", freqs[block.index]);
        bb.attr_bool("may-be-hot", freqs[block.index] >= 10.0);
        bb.attr_num(
            "n-insns",
            func.insns[block.start..block.end]
                .iter()
                .filter(|i| !i.is_label())
                .count() as f64,
        );
        for insn in &func.insns[block.start..block.end] {
            bb.push_child(export_insn(insn, func, layout));
        }
        root.push_child(bb);
    }
    root
}

fn export_insn(
    insn: &crate::node::Insn,
    func: &RtlFunction,
    layout: &MemoryLayout,
) -> IrNode {
    let mut node = IrNode::new(insn.kind_name());
    node.attr_num("uid", f64::from(insn.uid));
    match &insn.body {
        InsnBody::Label(l) => {
            node.attr_num("label", f64::from(*l));
        }
        InsnBody::Set { dest, src } => {
            let mut set = IrNode::new("set");
            set.push_child(export_rtx(dest, func, layout));
            set.push_child(export_rtx(src, func, layout));
            node.push_child(set);
        }
        InsnBody::CondJump { cond, target } => {
            let mut set = IrNode::new("set");
            set.child("pc", |_| {});
            let mut ite = IrNode::new("if_then_else");
            ite.push_child(export_rtx(cond, func, layout));
            ite.child("label_ref", |l| {
                l.attr_num("label", f64::from(*target));
            });
            ite.child("pc", |_| {});
            set.push_child(ite);
            node.push_child(set);
        }
        InsnBody::Jump { target } => {
            let mut set = IrNode::new("set");
            set.child("pc", |_| {});
            set.child("label_ref", |l| {
                l.attr_num("label", f64::from(*target));
            });
            node.push_child(set);
        }
        InsnBody::Call { name, args, dest } => {
            // Calls to functions that only read scalars cannot touch
            // memory — GCC marks such references `unchanging`.
            let scalar_only = args.iter().all(|a| a.code != RtxCode::SymbolRef);
            node.attr_bool("unchanging", scalar_only);
            let mut call = IrNode::new("call");
            call.child("symbol_ref", |s| {
                s.attr_enum("name", name.as_str());
            });
            for a in args {
                call.push_child(export_rtx(a, func, layout));
            }
            if let Some(d) = dest {
                let mut set = IrNode::new("set");
                set.push_child(export_rtx(d, func, layout));
                set.push_child(call);
                node.push_child(set);
            } else {
                node.push_child(call);
            }
        }
        InsnBody::Return { value } => {
            let mut ret = IrNode::new("return");
            if let Some(v) = value {
                ret.push_child(export_rtx(v, func, layout));
            }
            node.push_child(ret);
        }
    }
    node
}

fn export_rtx(rtx: &Rtx, func: &RtlFunction, layout: &MemoryLayout) -> IrNode {
    let mut node = IrNode::new(rtx.code.name());
    if rtx.mode != Mode::Void {
        node.attr_enum("mode", rtx.mode.name());
    }
    match &rtx.value {
        RtxValue::Int(v) => {
            node.attr_num("value", *v as f64);
            // GCC's RTL integers are `wide-int`s underneath; exporting the
            // representation node gives the grammar the `wide-int` kind the
            // paper's found features mention.
            node.child("wide-int", |w| {
                w.attr_num("value", *v as f64);
            });
        }
        RtxValue::Float(v) => {
            node.attr_num("value", *v);
        }
        RtxValue::Reg(r) => {
            node.attr_num("regno", f64::from(*r));
        }
        RtxValue::Sym(name) => {
            node.attr_enum("name", name.as_str());
            node.push_child(export_var_decl(name, func, layout));
        }
        RtxValue::None => {}
    }
    for op in &rtx.ops {
        node.push_child(export_rtx(op, func, layout));
    }
    node
}

/// Builds the `var_decl`/type annotation for a referenced symbol.
fn export_var_decl(name: &str, func: &RtlFunction, layout: &MemoryLayout) -> IrNode {
    let mut decl = IrNode::new("var_decl");
    decl.attr_enum("name", name);
    let info = layout.get(name).or_else(|| {
        // Array parameters are not in the layout; take the element mode
        // from the parameter declaration (extent unknown to the callee).
        func.params.iter().find_map(|p| match (&p.kind, p.name == name) {
            (ParamKind::Array { elem_mode }, true) => Some(crate::func::ArrayInfo {
                base: 0,
                len: 0,
                mode: *elem_mode,
            }),
            _ => None,
        })
    });
    match info {
        Some(info) if info.len == 1 => {
            // Global scalar.
            decl.push_child(scalar_type_node(info.mode));
        }
        Some(info) => {
            let mut arr = IrNode::new("array_type");
            if info.len > 0 {
                arr.attr_num("size", info.len as f64);
            }
            arr.push_child(scalar_type_node(info.mode));
            decl.push_child(arr);
        }
        None => {}
    }
    decl
}

fn scalar_type_node(mode: Mode) -> IrNode {
    match mode {
        Mode::DF => IrNode::new("real_type"),
        _ => IrNode::new("integer_type"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower_program;
    use crate::RtlProgram;
    use fegen_core::lang::parse_feature;

    fn lower(src: &str) -> RtlProgram {
        let ast = fegen_lang::parse_program(src).unwrap();
        lower_program(&ast).unwrap()
    }

    fn export_first_loop(src: &str) -> IrNode {
        let p = lower(src);
        let f = &p.functions[0];
        export_loop(f, &f.loops[0], &p.layout)
    }

    const SAMPLE: &str = "void f(float a[32], float b[32]) {\n\
                            int i;\n\
                            for (i = 0; i < 32; i = i + 1) { a[i] = a[i] * 2.0 + b[i]; }\n\
                          }";

    #[test]
    fn root_is_loop_with_analysis_attrs() {
        let ir = export_first_loop(SAMPLE);
        assert_eq!(ir.kind().as_str(), "loop");
        let f = parse_feature("get-attr(@num-iter)").unwrap();
        assert_eq!(f.eval_default(&ir).unwrap(), 32.0);
        let f = parse_feature("get-attr(@simple)").unwrap();
        assert_eq!(f.eval_default(&ir).unwrap(), 1.0);
    }

    #[test]
    fn children_are_basic_blocks() {
        let ir = export_first_loop(SAMPLE);
        assert!(!ir.children().is_empty());
        let f = parse_feature("count(filter(/*, is-type(basic-block)))").unwrap();
        assert_eq!(f.eval_default(&ir).unwrap(), ir.children().len() as f64);
    }

    #[test]
    fn paper_style_features_evaluate() {
        let ir = export_first_loop(SAMPLE);
        // Features in the spirit of the paper's Figure 16.
        for (src, expect_positive) in [
            ("count(filter(//*, is-type(reg)))", true),
            ("count(filter(//*, is-type(basic-block)))", true),
            ("count(filter(//*, is-type(mem)))", true),
            ("count(filter(//*, is-type(array_type)))", true),
            ("count(filter(//*, is-type(real_type)))", true),
            ("count(filter(//*, is-type(wide-int)))", true),
            ("count(filter(//*, is-type(le) && !has-attr(@mode)))", false),
            ("count(filter(//*, @mode==DF))", true),
            ("max(filter(/*, is-type(basic-block)), count(filter(//*, is-type(insn))))", true),
        ] {
            let f = parse_feature(src).unwrap();
            let v = f.eval_default(&ir).unwrap();
            if expect_positive {
                assert!(v > 0.0, "`{src}` evaluated to {v}\n{}", ir.dump());
            }
        }
    }

    #[test]
    fn jump_insns_export_if_then_else_shape() {
        let ir = export_first_loop(SAMPLE);
        let f =
            parse_feature("count(filter(//*, is-type(jump_insn) && /[0][is-type(set)]))").unwrap();
        assert!(f.eval_default(&ir).unwrap() >= 1.0);
        let g = parse_feature("count(filter(//*, is-type(if_then_else)))").unwrap();
        assert!(g.eval_default(&ir).unwrap() >= 1.0);
    }

    #[test]
    fn unknown_trip_count_exports_sentinel() {
        let ir = export_first_loop(
            "void f(int n) { int i; i = 0; while (i < n) { i = i + 1; } }",
        );
        let f = parse_feature("get-attr(@num-iter)").unwrap();
        let v = f.eval_default(&ir).unwrap();
        assert!(v > 1e17, "sentinel expected, got {v}");
    }

    #[test]
    fn call_insn_unchanging_attr() {
        let p = lower(
            "int sq(int x) { return x * x; }\n\
             void f(int a[16]) { int i; for (i = 0; i < 16; i = i + 1) { a[i] = sq(i); } }",
        );
        let f = p.function("f").unwrap();
        let ir = export_loop(f, &f.loops[0], &p.layout);
        let q = parse_feature(
            "count(filter(//*, is-type(call_insn) && has-attr(@unchanging)))",
        )
        .unwrap();
        assert_eq!(q.eval_default(&ir).unwrap(), 1.0);
    }

    #[test]
    fn grammar_derivation_over_export_is_rich() {
        let ir = export_first_loop(SAMPLE);
        let g = fegen_core::Grammar::derive([&ir]);
        let kinds: Vec<&str> = g.kinds().iter().map(|k| k.as_str()).collect();
        for expected in ["loop", "basic-block", "insn", "set", "reg", "mem", "plus"] {
            assert!(
                kinds.contains(&expected),
                "missing kind {expected}: {kinds:?}"
            );
        }
        assert!(!g.num_attrs().is_empty());
        assert!(!g.enum_attrs().is_empty());
    }
}
