//! The hand-crafted loop features of Stephenson & Amarasinghe (paper
//! Figure 14) — the "stateML" comparison scheme.
//!
//! All 22 features are computed over the loop's RTL span. Dependence
//! heights use a forward pass that tracks, per register, the height of the
//! chain that last defined it (definitions from outside the loop count as
//! height zero), which matches the "dependence height of computations"
//! notion used by the original feature set.

use crate::func::{LoopRegion, RtlFunction};
use crate::node::{InsnBody, Mode, Rtx, RtxCode};
use std::collections::{HashMap, HashSet};

/// Names of the stateML features, in the order [`stateml_features`]
/// produces them (paper Figure 14).
pub const STATEML_FEATURE_NAMES: [&str; 22] = [
    "loop_nest_level",
    "num_ops",
    "num_float_ops",
    "num_branches",
    "num_memory_ops",
    "num_operands",
    "num_implicit_insns",
    "num_unique_predicates",
    "critical_path_latency",
    "est_cycle_length",
    "language",
    "num_parallel_computations",
    "max_dependence_height",
    "max_memory_dependence_height",
    "max_control_dependence_height",
    "avg_dependence_height",
    "num_indirect_refs",
    "min_mem_loop_carried_dep",
    "num_mem_to_mem_deps",
    "trip_count",
    "num_uses",
    "num_defs",
];

/// Value used for "no memory-to-memory loop-carried dependence".
const NO_MEM_DEP: f64 = 1e6;

/// Per-instruction issue latency used for the critical-path estimates
/// (kept consistent with the simulator's cost model in spirit; exactness
/// is not required — the original features were compiler estimates too).
fn latency(body: &InsnBody) -> u64 {
    match body {
        InsnBody::Set { dest, src } => {
            let mut lat = 1u64;
            if src.code == RtxCode::Mem {
                lat = 2;
            }
            src.visit(&mut |n| {
                let l = match (n.code, n.mode) {
                    (RtxCode::Mult, Mode::DF) => 5,
                    (RtxCode::Mult, _) => 4,
                    (RtxCode::Div, Mode::DF) => 30,
                    (RtxCode::Div, _) => 16,
                    (RtxCode::Mod, _) => 16,
                    (RtxCode::Plus | RtxCode::Minus, Mode::DF) => 3,
                    _ => 1,
                };
                lat = lat.max(l);
            });
            if dest.code == RtxCode::Mem {
                lat = lat.max(1);
            }
            lat
        }
        InsnBody::Call { .. } => 10,
        _ => 1,
    }
}

/// Computes the 22 stateML features for one loop.
pub fn stateml_features(func: &RtlFunction, region: &LoopRegion) -> Vec<f64> {
    let Some((start, end)) = func.loop_span(region) else {
        return vec![0.0; STATEML_FEATURE_NAMES.len()];
    };
    let span = &func.insns[start..end];

    let mut num_ops = 0usize;
    let mut num_float = 0usize;
    let mut num_branches = 0usize;
    let mut num_mem = 0usize;
    let mut num_operands = 0usize;
    let mut num_implicit = 0usize;
    let mut predicates: HashSet<String> = HashSet::new();
    let mut num_uses = 0usize;
    let mut num_defs = 0usize;
    let mut num_indirect = 0usize;
    let mut store_bases: HashSet<String> = HashSet::new();
    let mut load_bases: HashSet<String> = HashSet::new();

    // Dependence heights (unit and latency-weighted), forward pass.
    let mut height: HashMap<u32, u64> = HashMap::new();
    let mut lat_height: HashMap<u32, u64> = HashMap::new();
    let mut mem_height: HashMap<u32, u64> = HashMap::new();
    let mut regs_from_loads: HashSet<u32> = HashSet::new();
    let mut max_height = 0u64;
    let mut max_lat_height = 0u64;
    let mut max_mem_height = 0u64;
    let mut sum_height = 0u64;
    let mut n_height = 0u64;
    let mut total_latency = 0u64;

    for insn in span {
        match &insn.body {
            InsnBody::Label(_) => continue,
            InsnBody::CondJump { cond, .. } => {
                num_branches += 1;
                predicates.insert(cond.to_string());
                let mut used = Vec::new();
                cond.regs_used(&mut used);
                num_uses += used.len();
                num_operands += cond.size().saturating_sub(1);
                continue;
            }
            InsnBody::Jump { .. } | InsnBody::Return { .. } => continue,
            InsnBody::Call { args, dest, .. } => {
                num_ops += 1;
                total_latency += latency(&insn.body);
                for a in args {
                    let mut used = Vec::new();
                    a.regs_used(&mut used);
                    num_uses += used.len();
                    num_operands += 1;
                }
                if let Some(d) = dest {
                    if let Some(r) = d.as_reg() {
                        num_defs += 1;
                        height.insert(r, 1);
                        lat_height.insert(r, latency(&insn.body));
                    }
                }
                continue;
            }
            InsnBody::Set { dest, src } => {
                num_ops += 1;
                let lat = latency(&insn.body);
                total_latency += lat;

                if src.contains_float() || dest.contains_float() {
                    num_float += 1;
                }
                let is_load = src.code == RtxCode::Mem;
                let is_store = dest.code == RtxCode::Mem;
                if is_load || is_store {
                    num_mem += 1;
                }
                if is_load {
                    if let Some(base) = mem_base(src) {
                        load_bases.insert(base);
                    }
                    // Indirect reference: the address depends on a register
                    // that itself came from a load in this loop.
                    let mut addr_regs = Vec::new();
                    src.ops[0].regs_used(&mut addr_regs);
                    if addr_regs.iter().any(|r| regs_from_loads.contains(r)) {
                        num_indirect += 1;
                    }
                }
                if is_store {
                    if let Some(base) = mem_base(dest) {
                        store_bases.insert(base);
                    }
                }
                // Implicit instructions: plain register copies.
                if src.code == RtxCode::Reg && dest.code == RtxCode::Reg {
                    num_implicit += 1;
                }

                // Uses / defs / operands.
                let mut used = Vec::new();
                src.regs_used(&mut used);
                if is_store {
                    dest.ops[0].regs_used(&mut used);
                }
                num_uses += used.len();
                num_operands += src.size();
                if let Some(r) = dest.as_reg() {
                    num_defs += 1;
                    // Height update.
                    let h = 1 + used.iter().map(|u| height.get(u).copied().unwrap_or(0)).max().unwrap_or(0);
                    let lh = lat
                        + used
                            .iter()
                            .map(|u| lat_height.get(u).copied().unwrap_or(0))
                            .max()
                            .unwrap_or(0);
                    let mh = u64::from(is_load)
                        + used
                            .iter()
                            .map(|u| mem_height.get(u).copied().unwrap_or(0))
                            .max()
                            .unwrap_or(0);
                    max_height = max_height.max(h);
                    max_lat_height = max_lat_height.max(lh);
                    max_mem_height = max_mem_height.max(mh);
                    sum_height += h;
                    n_height += 1;
                    height.insert(r, h);
                    lat_height.insert(r, lh);
                    mem_height.insert(r, mh);
                    if is_load {
                        regs_from_loads.insert(r);
                    } else {
                        regs_from_loads.remove(&r);
                    }
                }
            }
        }
    }

    let mem_to_mem: usize = store_bases.intersection(&load_bases).count();
    let min_mem_dep = if mem_to_mem > 0 { 0.0 } else { NO_MEM_DEP };
    let critical_path = max_lat_height.max(1);
    // Dual-issue bound vs. dependence bound.
    let est_cycle_len = (total_latency.div_ceil(2)).max(critical_path);
    let parallel = (num_ops as f64 / critical_path as f64).max(1.0).round();
    let avg_height = if n_height == 0 {
        0.0
    } else {
        sum_height as f64 / n_height as f64
    };
    let trip = region.trip_count().map_or(-1.0, |t| t as f64);

    vec![
        region.depth as f64,
        num_ops as f64,
        num_float as f64,
        num_branches as f64,
        num_mem as f64,
        num_operands as f64,
        num_implicit as f64,
        predicates.len() as f64,
        critical_path as f64,
        est_cycle_len as f64,
        0.0, // language: C
        parallel,
        max_height as f64,
        max_mem_height as f64,
        num_branches as f64, // control-dependence height ≈ branch nesting
        avg_height,
        num_indirect as f64,
        min_mem_dep,
        mem_to_mem as f64,
        trip,
        num_uses as f64,
        num_defs as f64,
    ]
}

/// The base symbol of a `mem` node's address, when it has one.
fn mem_base(mem: &Rtx) -> Option<String> {
    debug_assert_eq!(mem.code, RtxCode::Mem);
    let mut base = None;
    mem.ops[0].visit(&mut |n| {
        if n.code == RtxCode::SymbolRef {
            if let crate::node::RtxValue::Sym(s) = &n.value {
                base.get_or_insert_with(|| s.clone());
            }
        }
    });
    base
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower_program;
    use crate::RtlProgram;

    fn lower(src: &str) -> RtlProgram {
        let ast = fegen_lang::parse_program(src).unwrap();
        lower_program(&ast).unwrap()
    }

    fn features(src: &str) -> Vec<f64> {
        let p = lower(src);
        let f = &p.functions[0];
        stateml_features(f, f.loops.last().unwrap())
    }

    fn get(feats: &[f64], name: &str) -> f64 {
        let i = STATEML_FEATURE_NAMES
            .iter()
            .position(|n| *n == name)
            .unwrap_or_else(|| panic!("unknown feature {name}"));
        feats[i]
    }

    #[test]
    fn has_22_features() {
        let f = features(
            "void f(int a[16]) { int i; for (i = 0; i < 16; i = i + 1) { a[i] = i; } }",
        );
        assert_eq!(f.len(), 22);
    }

    #[test]
    fn trip_count_and_nest_level() {
        let f = features(
            "void f(int m[4][4]) {\n\
               int i; int j;\n\
               for (i = 0; i < 4; i = i + 1) {\n\
                 for (j = 0; j < 4; j = j + 1) { m[i][j] = 0; }\n\
               }\n\
             }",
        );
        // Last loop in the list is the outer one.
        assert_eq!(get(&f, "loop_nest_level"), 1.0);
        assert_eq!(get(&f, "trip_count"), 4.0);
    }

    #[test]
    fn float_ops_counted() {
        let int_only = features(
            "void f(int a[8]) { int i; for (i = 0; i < 8; i = i + 1) { a[i] = i * 2; } }",
        );
        assert_eq!(get(&int_only, "num_float_ops"), 0.0);
        let floaty = features(
            "void f(float a[8]) { int i; for (i = 0; i < 8; i = i + 1) { a[i] = a[i] * 2.0; } }",
        );
        assert!(get(&floaty, "num_float_ops") >= 2.0);
    }

    #[test]
    fn memory_ops_and_mem_deps() {
        let f = features(
            "void f(int a[8], int b[8]) { int i; for (i = 0; i < 8; i = i + 1) { a[i] = b[i]; } }",
        );
        assert_eq!(get(&f, "num_memory_ops"), 2.0);
        // Load base b, store base a: no mem-to-mem dependence.
        assert_eq!(get(&f, "num_mem_to_mem_deps"), 0.0);
        assert_eq!(get(&f, "min_mem_loop_carried_dep"), 1e6);

        let g = features(
            "void f(int a[8]) { int i; for (i = 1; i < 8; i = i + 1) { a[i] = a[i - 1]; } }",
        );
        assert_eq!(get(&g, "num_mem_to_mem_deps"), 1.0);
        assert_eq!(get(&g, "min_mem_loop_carried_dep"), 0.0);
    }

    #[test]
    fn indirect_references_detected() {
        let f = features(
            "void f(int a[16], int idx[16]) {\n\
               int i; for (i = 0; i < 16; i = i + 1) { a[i] = a[idx[i]]; }\n\
             }",
        );
        assert_eq!(get(&f, "num_indirect_refs"), 1.0);
    }

    #[test]
    fn dependence_height_grows_with_chains() {
        let short = features(
            "void f(int a[8]) { int i; for (i = 0; i < 8; i = i + 1) { a[i] = 1; } }",
        );
        let long = features(
            "void f(int a[8], int x) {\n\
               int i; int t;\n\
               for (i = 0; i < 8; i = i + 1) { t = x + 1; t = t * t; t = t + i; a[i] = t; }\n\
             }",
        );
        assert!(
            get(&long, "max_dependence_height") > get(&short, "max_dependence_height"),
            "long {} vs short {}",
            get(&long, "max_dependence_height"),
            get(&short, "max_dependence_height")
        );
    }

    #[test]
    fn branches_and_predicates() {
        let f = features(
            "void f(int a[8]) {\n\
               int i;\n\
               for (i = 0; i < 8; i = i + 1) {\n\
                 if (a[i] > 0) { a[i] = 0; }\n\
                 if (a[i] < 0) { a[i] = 1; }\n\
               }\n\
             }",
        );
        // Loop condition + two ifs.
        assert_eq!(get(&f, "num_branches"), 3.0);
        assert!(get(&f, "num_unique_predicates") >= 2.0);
    }

    #[test]
    fn division_stretches_critical_path() {
        let div = features(
            "void f(int a[8]) { int i; for (i = 0; i < 8; i = i + 1) { a[i] = a[i] / 3; } }",
        );
        let add = features(
            "void f(int a[8]) { int i; for (i = 0; i < 8; i = i + 1) { a[i] = a[i] + 3; } }",
        );
        assert!(get(&div, "critical_path_latency") > get(&add, "critical_path_latency"));
    }
}
