//! Basic blocks, control-flow graph, dominators and natural loops.
//!
//! The exporter augments each loop's RTL "to include the structure of the
//! basic blocks in the loop" (§VI) with attributes such as `@loop-depth` and
//! estimated block frequencies — this module computes those analyses from
//! the instruction list alone (it does not trust the structured
//! [`crate::func::LoopRegion`]s, so it stays correct after unrolling).

use crate::func::RtlFunction;
use crate::node::{InsnBody, LabelId};
use std::collections::{BTreeSet, HashMap};

/// A basic block: a maximal straight-line instruction span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BasicBlock {
    /// Block index in the CFG.
    pub index: usize,
    /// First instruction index (inclusive).
    pub start: usize,
    /// Last instruction index (exclusive).
    pub end: usize,
    /// Successor block indices.
    pub succs: Vec<usize>,
    /// Predecessor block indices.
    pub preds: Vec<usize>,
}

impl BasicBlock {
    /// Number of instructions in the block (labels included).
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the block is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// A natural loop discovered from back edges.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NaturalLoop {
    /// Header block index.
    pub header: usize,
    /// All blocks of the loop (header included).
    pub blocks: BTreeSet<usize>,
}

/// A control-flow graph over an [`RtlFunction`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cfg {
    /// Blocks in instruction order (block 0 is the entry).
    pub blocks: Vec<BasicBlock>,
    label_block: HashMap<LabelId, usize>,
}

impl Cfg {
    /// Builds the CFG of `func`.
    pub fn build(func: &RtlFunction) -> Cfg {
        let insns = &func.insns;
        let n = insns.len();
        // Leaders: 0, every label, every instruction after a control insn.
        let mut leader = vec![false; n.max(1)];
        if n > 0 {
            leader[0] = true;
        }
        for (i, insn) in insns.iter().enumerate() {
            if insn.is_label() {
                leader[i] = true;
            }
            if insn.is_control() && i + 1 < n {
                leader[i + 1] = true;
            }
        }
        let mut blocks = Vec::new();
        let mut label_block = HashMap::new();
        let mut start = 0usize;
        for i in 1..=n {
            if i == n || leader[i] {
                let index = blocks.len();
                for insn in &insns[start..i] {
                    if let InsnBody::Label(l) = insn.body {
                        label_block.insert(l, index);
                    }
                }
                blocks.push(BasicBlock {
                    index,
                    start,
                    end: i,
                    succs: Vec::new(),
                    preds: Vec::new(),
                });
                start = i;
            }
        }
        // Successors.
        let mut edges: Vec<(usize, usize)> = Vec::new();
        for b in 0..blocks.len() {
            let last = &insns[blocks[b].end - 1];
            match &last.body {
                InsnBody::Jump { target } => {
                    if let Some(&t) = label_block.get(target) {
                        edges.push((b, t));
                    }
                }
                InsnBody::CondJump { target, .. } => {
                    if let Some(&t) = label_block.get(target) {
                        edges.push((b, t));
                    }
                    if b + 1 < blocks.len() {
                        edges.push((b, b + 1));
                    }
                }
                InsnBody::Return { .. } => {}
                _ => {
                    if b + 1 < blocks.len() {
                        edges.push((b, b + 1));
                    }
                }
            }
        }
        for (u, v) in edges {
            if !blocks[u].succs.contains(&v) {
                blocks[u].succs.push(v);
                blocks[v].preds.push(u);
            }
        }
        Cfg {
            blocks,
            label_block,
        }
    }

    /// The block containing label `l`.
    pub fn block_of_label(&self, l: LabelId) -> Option<usize> {
        self.label_block.get(&l).copied()
    }

    /// Dominator sets (bit-per-block, iterative data-flow).
    ///
    /// `doms[b]` contains `d` iff `d` dominates `b`. Unreachable blocks
    /// dominate nothing and are dominated by everything (conventional).
    pub fn dominators(&self) -> Vec<BTreeSet<usize>> {
        let n = self.blocks.len();
        if n == 0 {
            return Vec::new();
        }
        let all: BTreeSet<usize> = (0..n).collect();
        let mut doms: Vec<BTreeSet<usize>> = vec![all.clone(); n];
        doms[0] = BTreeSet::from([0]);
        let mut changed = true;
        while changed {
            changed = false;
            for b in 1..n {
                let mut new: Option<BTreeSet<usize>> = None;
                for &p in &self.blocks[b].preds {
                    new = Some(match new {
                        None => doms[p].clone(),
                        Some(acc) => acc.intersection(&doms[p]).copied().collect(),
                    });
                }
                let mut new = new.unwrap_or_default();
                new.insert(b);
                if new != doms[b] {
                    doms[b] = new;
                    changed = true;
                }
            }
        }
        doms
    }

    /// Natural loops: one per header, merged over all back edges into that
    /// header, sorted by header index.
    pub fn natural_loops(&self) -> Vec<NaturalLoop> {
        let doms = self.dominators();
        let mut by_header: HashMap<usize, BTreeSet<usize>> = HashMap::new();
        for (b, block) in self.blocks.iter().enumerate() {
            for &s in &block.succs {
                // Back edge b -> s when s dominates b.
                if doms[b].contains(&s) {
                    let set = by_header.entry(s).or_insert_with(|| {
                        let mut set = BTreeSet::new();
                        set.insert(s);
                        set
                    });
                    // Walk predecessors backwards from b until the header.
                    let mut stack = vec![b];
                    while let Some(x) = stack.pop() {
                        if set.insert(x) {
                            stack.extend(self.blocks[x].preds.iter().copied());
                        }
                    }
                }
            }
        }
        let mut loops: Vec<NaturalLoop> = by_header
            .into_iter()
            .map(|(header, blocks)| NaturalLoop { header, blocks })
            .collect();
        loops.sort_by_key(|l| l.header);
        loops
    }

    /// Loop-nesting depth of every block (0 = not in any loop).
    pub fn loop_depths(&self) -> Vec<usize> {
        let loops = self.natural_loops();
        let mut depth = vec![0usize; self.blocks.len()];
        for l in &loops {
            for &b in &l.blocks {
                depth[b] += 1;
            }
        }
        depth
    }

    /// Static block frequency estimate: `10^depth`, capped — the same
    /// flavour of estimate GCC exports as `frequency` when no profile is
    /// available.
    pub fn block_frequencies(&self) -> Vec<f64> {
        self.loop_depths()
            .into_iter()
            .map(|d| 10f64.powi(d.min(4) as i32))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower_program;

    fn cfg_of(src: &str) -> (Cfg, RtlFunction) {
        let ast = fegen_lang::parse_program(src).unwrap();
        let p = lower_program(&ast).unwrap();
        let f = p.functions.into_iter().next().unwrap();
        (Cfg::build(&f), f)
    }

    #[test]
    fn straight_line_is_one_block() {
        let (cfg, _) = cfg_of("int f(int x) { return x + 1; }");
        assert_eq!(cfg.blocks.len(), 1);
        assert!(cfg.blocks[0].succs.is_empty());
    }

    #[test]
    fn if_makes_diamond_or_triangle() {
        let (cfg, _) = cfg_of("int f(int x) { int y; y = 0; if (x > 0) { y = 1; } return y; }");
        // cond block, then block, join block.
        assert!(cfg.blocks.len() >= 3);
        let entry = &cfg.blocks[0];
        assert_eq!(entry.succs.len(), 2, "conditional entry has two successors");
    }

    #[test]
    fn loop_has_back_edge_and_natural_loop() {
        let (cfg, f) = cfg_of(
            "void f(int a[16]) { int i; for (i = 0; i < 16; i = i + 1) { a[i] = i; } }",
        );
        let loops = cfg.natural_loops();
        assert_eq!(loops.len(), 1);
        let l = &loops[0];
        // Header is the block holding the cond label.
        let header = cfg.block_of_label(f.loops[0].cond_label).unwrap();
        assert_eq!(l.header, header);
        assert!(l.blocks.len() >= 2);
    }

    #[test]
    fn nested_loops_have_nested_depths() {
        let (cfg, _) = cfg_of(
            "void f(int m[4][4]) {\n\
               int i; int j;\n\
               for (i = 0; i < 4; i = i + 1) {\n\
                 for (j = 0; j < 4; j = j + 1) { m[i][j] = 0; }\n\
               }\n\
             }",
        );
        let loops = cfg.natural_loops();
        assert_eq!(loops.len(), 2);
        let depths = cfg.loop_depths();
        assert_eq!(*depths.iter().max().unwrap(), 2);
        let freqs = cfg.block_frequencies();
        assert_eq!(freqs.iter().cloned().fold(0.0, f64::max), 100.0);
    }

    #[test]
    fn dominators_of_loop_header() {
        let (cfg, f) = cfg_of(
            "void f(int n) { int i; for (i = 0; i < n; i = i + 1) { } }",
        );
        let doms = cfg.dominators();
        let header = cfg.block_of_label(f.loops[0].cond_label).unwrap();
        // Entry dominates everything reachable.
        for (b, dom) in doms.iter().enumerate() {
            if !cfg.blocks[b].preds.is_empty() || b == 0 {
                assert!(dom.contains(&0), "entry must dominate block {b}");
            }
        }
        // Header dominates the body block.
        let body = cfg.block_of_label(f.loops[0].body_label).unwrap();
        assert!(doms[body].contains(&header));
    }

    #[test]
    fn empty_function_cfg() {
        let (cfg, _) = cfg_of("void f() { }");
        assert_eq!(cfg.blocks.len(), 1);
        assert!(cfg.natural_loops().is_empty());
    }
}
