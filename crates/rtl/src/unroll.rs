//! Loop unrolling with explicit per-loop factors.
//!
//! "We extended the compiler to allow unroll factors to be explicitly
//! specified for each loop in a program." (§V). A factor `f` replicates the
//! loop body `f` times per back edge (`0` and `1` both mean no change,
//! exactly as GCC's unroller treats them).
//!
//! Two strategies, mirroring GCC's RTL unroller:
//!
//! - **simple (counted) loops** — loops with a recognised induction unroll
//!   without internal exit tests: the new header checks that `f` full
//!   iterations remain (`i + (f−1)·step < bound`), the unrolled body runs
//!   `f` copies of body+step, and an **epilogue loop** (the original body,
//!   original labels) finishes the remaining iterations;
//! - **runtime loops** — everything else unrolls *with exits*: `f` copies of
//!   condition+body+step are chained, every condition still able to leave
//!   the loop, saving only the back-edge jumps.
//!
//! Label hygiene: labels defined inside a copied span get fresh names per
//! copy and intra-span branches are redirected; the original labels stay
//! with the epilogue (or first copy), which keeps nested
//! [`crate::func::LoopRegion`]s addressable — callers unroll innermost
//! loops first (see [`apply_factors`]).

use crate::func::{Bound, RtlFunction};
use crate::node::{Insn, InsnBody, LabelId, Mode, Rtx, RtxCode};
use std::collections::HashMap;
use std::fmt;

/// The largest factor the paper enumerates.
pub const MAX_FACTOR: usize = 15;

/// Error from the unroller.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UnrollError {
    /// No loop with the requested id.
    NoSuchLoop(usize),
    /// The loop's labels were not found (destroyed by another transform).
    BrokenRegion(usize),
}

impl fmt::Display for UnrollError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UnrollError::NoSuchLoop(id) => write!(f, "no loop with id {id}"),
            UnrollError::BrokenRegion(id) => write!(f, "loop {id} region labels missing"),
        }
    }
}

impl std::error::Error for UnrollError {}

/// Returns a copy of `func` with loop `loop_id` unrolled by `factor`.
///
/// # Errors
///
/// See [`UnrollError`].
pub fn unroll_loop(
    func: &RtlFunction,
    loop_id: usize,
    factor: usize,
) -> Result<RtlFunction, UnrollError> {
    let mut out = func.clone();
    unroll_in_place(&mut out, loop_id, factor)?;
    Ok(out)
}

/// Applies per-loop factors (`factors[loop.id]`; missing entries mean 0) to
/// every loop of `func`, innermost-first so nested regions stay valid.
///
/// # Errors
///
/// See [`UnrollError`].
pub fn apply_factors(
    func: &RtlFunction,
    factors: &HashMap<usize, usize>,
) -> Result<RtlFunction, UnrollError> {
    let mut out = func.clone();
    let mut order: Vec<(usize, usize)> = out
        .loops
        .iter()
        .map(|l| (l.id, l.depth))
        .collect();
    // Innermost (deepest) first; ties in reverse source order (later loops
    // first keeps earlier spans untouched).
    order.sort_by(|a, b| b.1.cmp(&a.1).then(b.0.cmp(&a.0)));
    for (id, _) in order {
        let factor = factors.get(&id).copied().unwrap_or(0);
        if factor > 1 {
            unroll_in_place(&mut out, id, factor)?;
        }
    }
    Ok(out)
}

fn unroll_in_place(
    func: &mut RtlFunction,
    loop_id: usize,
    factor: usize,
) -> Result<(), UnrollError> {
    if factor <= 1 {
        return Ok(());
    }
    let region = func
        .loops
        .iter()
        .find(|l| l.id == loop_id)
        .ok_or(UnrollError::NoSuchLoop(loop_id))?
        .clone();
    let (idx_cond, idx_exit) = func
        .loop_span(&region)
        .ok_or(UnrollError::BrokenRegion(loop_id))?;
    let idx_body = func
        .label_index(region.body_label)
        .ok_or(UnrollError::BrokenRegion(loop_id))?;
    let idx_step = func
        .label_index(region.step_label)
        .ok_or(UnrollError::BrokenRegion(loop_id))?;
    if !(idx_cond < idx_body && idx_body < idx_step && idx_step < idx_exit) {
        return Err(UnrollError::BrokenRegion(loop_id));
    }

    // Spans (all relative to the original insn list).
    // cond: (idx_cond, idx_body)  — Label(Lcond) .. CondJump -> Lexit
    // body: (idx_body, idx_step)  — Label(Lbody) .. body insns
    // step: (idx_step, idx_exit)  — Label(Lstep) .. step insns, Jump Lcond
    let cond_insns: Vec<Insn> = func.insns[idx_cond + 1..idx_body].to_vec();
    let body_insns: Vec<Insn> = func.insns[idx_body..idx_step].to_vec();
    // Step without the trailing back-edge jump.
    let step_end = idx_exit - 1;
    debug_assert!(matches!(
        func.insns[step_end].body,
        InsnBody::Jump { .. }
    ));
    let step_insns: Vec<Insn> = func.insns[idx_step..step_end].to_vec();

    let mut new_span: Vec<Insn> = Vec::new();
    match region.induction {
        Some(ind) => {
            // ---- Simple counted loop: guarded unroll + epilogue. ----
            let l_epi_cond = func.fresh_label();
            let lookahead = func.fresh_reg(Mode::SI);
            let guard = func.fresh_reg(Mode::SI);

            // Runtime trip count: GCC's unroller materialises the
            // iteration count and its remainder modulo the factor in the
            // preheader — an integer division executed once per loop
            // entry. Placed before the header label so only entries (not
            // back edges) pay for it.
            if region.trip_count().is_none() {
                let span_reg = func.fresh_reg(Mode::SI);
                let rem_reg = func.fresh_reg(Mode::SI);
                let bound_rtx = match ind.bound {
                    Bound::Const(c) => Rtx::const_int(c),
                    Bound::Reg(r) => Rtx::reg(Mode::SI, r),
                };
                push(
                    func,
                    &mut new_span,
                    InsnBody::Set {
                        dest: Rtx::reg(Mode::SI, span_reg),
                        src: Rtx::binary(
                            RtxCode::Minus,
                            Mode::SI,
                            bound_rtx,
                            Rtx::reg(Mode::SI, ind.reg),
                        ),
                    },
                );
                push(
                    func,
                    &mut new_span,
                    InsnBody::Set {
                        dest: Rtx::reg(Mode::SI, rem_reg),
                        src: Rtx::binary(
                            RtxCode::Mod,
                            Mode::SI,
                            Rtx::reg(Mode::SI, span_reg),
                            Rtx::const_int((factor as i64) * ind.step),
                        ),
                    },
                );
            }

            // Lcond: t = i + (f-1)*step; if !(t < bound) goto epi.
            push(func, &mut new_span, InsnBody::Label(region.cond_label));
            push(
                func,
                &mut new_span,
                InsnBody::Set {
                    dest: Rtx::reg(Mode::SI, lookahead),
                    src: Rtx::binary(
                        RtxCode::Plus,
                        Mode::SI,
                        Rtx::reg(Mode::SI, ind.reg),
                        Rtx::const_int((factor as i64 - 1) * ind.step),
                    ),
                },
            );
            let bound_rtx = match ind.bound {
                Bound::Const(c) => Rtx::const_int(c),
                Bound::Reg(r) => Rtx::reg(Mode::SI, r),
            };
            let cmp_code = if ind.inclusive {
                RtxCode::Le
            } else {
                RtxCode::Lt
            };
            push(
                func,
                &mut new_span,
                InsnBody::Set {
                    dest: Rtx::reg(Mode::SI, guard),
                    src: Rtx::binary(cmp_code, Mode::SI, Rtx::reg(Mode::SI, lookahead), bound_rtx),
                },
            );
            push(
                func,
                &mut new_span,
                InsnBody::CondJump {
                    cond: Rtx::binary(
                        RtxCode::Eq,
                        Mode::SI,
                        Rtx::reg(Mode::SI, guard),
                        Rtx::const_int(0),
                    ),
                    target: l_epi_cond,
                },
            );
            // f copies of body + step, fresh labels per copy.
            for _copy in 0..factor {
                let renamed = copy_span_fresh(func, &body_insns);
                new_span.extend(renamed);
                let renamed = copy_span_fresh(func, &step_insns);
                new_span.extend(renamed);
            }
            push(
                func,
                &mut new_span,
                InsnBody::Jump {
                    target: region.cond_label,
                },
            );
            // Epilogue: the original loop, new header label.
            push(func, &mut new_span, InsnBody::Label(l_epi_cond));
            for insn in &cond_insns {
                push(func, &mut new_span, insn.body.clone());
            }
            new_span.extend(body_insns.iter().cloned());
            new_span.extend(step_insns.iter().cloned());
            push(
                func,
                &mut new_span,
                InsnBody::Jump { target: l_epi_cond },
            );
        }
        None => {
            // ---- Runtime loop: unroll with exits. ----
            // Copy 1 keeps the original labels.
            push(func, &mut new_span, InsnBody::Label(region.cond_label));
            new_span.extend(cond_insns.iter().cloned());
            new_span.extend(body_insns.iter().cloned());
            new_span.extend(step_insns.iter().cloned());
            // Copies 2..f get fresh labels.
            for _copy in 1..factor {
                let renamed = copy_span_fresh(func, &cond_insns);
                new_span.extend(renamed);
                let renamed = copy_span_fresh(func, &body_insns);
                new_span.extend(renamed);
                let renamed = copy_span_fresh(func, &step_insns);
                new_span.extend(renamed);
            }
            push(
                func,
                &mut new_span,
                InsnBody::Jump {
                    target: region.cond_label,
                },
            );
        }
    }

    // Splice: replace [idx_cond, idx_exit) with the new span (the exit
    // label stays in place).
    func.insns.splice(idx_cond..idx_exit, new_span);
    Ok(())
}

fn push(func: &mut RtlFunction, out: &mut Vec<Insn>, body: InsnBody) {
    let uid = func.fresh_uid();
    out.push(Insn { uid, body });
}

/// Clones a span, renaming labels *defined inside it* (and branches to
/// them) to fresh labels; branches to outside labels are preserved.
fn copy_span_fresh(func: &mut RtlFunction, span: &[Insn]) -> Vec<Insn> {
    let mut rename: HashMap<LabelId, LabelId> = HashMap::new();
    for insn in span {
        if let InsnBody::Label(l) = insn.body {
            rename.insert(l, func.fresh_label());
        }
    }
    let map = |rename: &HashMap<LabelId, LabelId>, l: LabelId| -> LabelId {
        rename.get(&l).copied().unwrap_or(l)
    };
    span.iter()
        .map(|insn| {
            let body = match &insn.body {
                InsnBody::Label(l) => InsnBody::Label(map(&rename, *l)),
                InsnBody::Jump { target } => InsnBody::Jump {
                    target: map(&rename, *target),
                },
                InsnBody::CondJump { cond, target } => InsnBody::CondJump {
                    cond: cond.clone(),
                    target: map(&rename, *target),
                },
                other => other.clone(),
            };
            let uid = func.fresh_uid();
            Insn { uid, body }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower_program;
    use crate::RtlProgram;

    fn lower(src: &str) -> RtlProgram {
        let ast = fegen_lang::parse_program(src).unwrap();
        lower_program(&ast).unwrap()
    }

    fn count_jumps(f: &RtlFunction) -> usize {
        f.insns
            .iter()
            .filter(|i| matches!(i.body, InsnBody::Jump { .. } | InsnBody::CondJump { .. }))
            .count()
    }

    #[test]
    fn factor_zero_and_one_are_noops() {
        let p = lower("void f(int a[16]) { int i; for (i = 0; i < 16; i = i + 1) { a[i] = i; } }");
        let f = &p.functions[0];
        assert_eq!(&unroll_loop(f, 0, 0).unwrap(), f);
        assert_eq!(&unroll_loop(f, 0, 1).unwrap(), f);
    }

    #[test]
    fn simple_loop_grows_with_factor_and_has_epilogue() {
        let p = lower("void f(int a[64]) { int i; for (i = 0; i < 64; i = i + 1) { a[i] = i; } }");
        let f = &p.functions[0];
        let u4 = unroll_loop(f, 0, 4).unwrap();
        let u8 = unroll_loop(f, 0, 8).unwrap();
        assert!(u4.insns.len() > f.insns.len());
        assert!(u8.insns.len() > u4.insns.len());
        // The epilogue duplicates the original cond/body once; body appears
        // factor + 1 times in total (count stores).
        let stores = |f: &RtlFunction| {
            f.insns
                .iter()
                .filter(|i| {
                    matches!(&i.body, InsnBody::Set { dest, .. } if dest.code == RtxCode::Mem)
                })
                .count()
        };
        assert_eq!(stores(&u4), 5);
        assert_eq!(stores(&u8), 9);
    }

    #[test]
    fn runtime_loop_unrolls_with_exits() {
        let p = lower(
            "void f(int n) { int i; i = 0; while (i < n) { i = i + 1; } }",
        );
        let f = &p.functions[0];
        let u3 = unroll_loop(f, 0, 3).unwrap();
        // Three exit tests (cond jumps) remain, plus one back edge.
        assert!(count_jumps(&u3) > count_jumps(f));
        let cond_jumps = u3
            .insns
            .iter()
            .filter(|i| matches!(i.body, InsnBody::CondJump { .. }))
            .count();
        assert_eq!(cond_jumps, 3, "{}", u3.dump());
    }

    #[test]
    fn unknown_loop_id_errors() {
        let p = lower("void f() { }");
        assert_eq!(
            unroll_loop(&p.functions[0], 3, 2).unwrap_err(),
            UnrollError::NoSuchLoop(3)
        );
    }

    #[test]
    fn labels_remain_unique_after_unrolling() {
        let p = lower(
            "void f(int a[64], int n) {\n\
               int i;\n\
               for (i = 0; i < n; i = i + 1) {\n\
                 if (a[i] > 0) { a[i] = 0; } else { a[i] = 1; }\n\
               }\n\
             }",
        );
        let u = unroll_loop(&p.functions[0], 0, 6).unwrap();
        let mut seen = std::collections::HashSet::new();
        for insn in &u.insns {
            if let InsnBody::Label(l) = insn.body {
                assert!(seen.insert(l), "duplicate label {l}:\n{}", u.dump());
            }
        }
        // Every jump target resolves.
        for insn in &u.insns {
            let target = match insn.body {
                InsnBody::Jump { target } | InsnBody::CondJump { target, .. } => Some(target),
                _ => None,
            };
            if let Some(t) = target {
                assert!(u.label_index(t).is_some(), "dangling label {t}");
            }
        }
    }

    #[test]
    fn nested_inner_then_outer_unrolling_keeps_labels_unique() {
        let p = lower(
            "void f(int m[8][8]) {\n\
               int i; int j;\n\
               for (i = 0; i < 8; i = i + 1) {\n\
                 for (j = 0; j < 8; j = j + 1) { m[i][j] = i + j; }\n\
               }\n\
             }",
        );
        let f = &p.functions[0];
        // Inner loop has id 0 (recorded first), outer id 1.
        let factors = HashMap::from([(0usize, 4usize), (1usize, 2usize)]);
        let u = apply_factors(f, &factors).unwrap();
        let mut seen = std::collections::HashSet::new();
        for insn in &u.insns {
            if let InsnBody::Label(l) = insn.body {
                assert!(seen.insert(l), "duplicate label {l}");
            }
        }
        assert!(u.insns.len() > f.insns.len() * 3);
    }

    #[test]
    fn apply_factors_with_empty_map_is_noop() {
        let p = lower("void f(int a[8]) { int i; for (i = 0; i < 8; i = i + 1) { a[i] = 1; } }");
        let f = &p.functions[0];
        assert_eq!(&apply_factors(f, &HashMap::new()).unwrap(), f);
    }
}
