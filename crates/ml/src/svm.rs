//! Support-vector machine with a Gaussian RBF kernel, trained by SMO,
//! multi-class via one-vs-all.
//!
//! This is the "state-of-the-art" comparison scheme of the paper (§VII-B.2),
//! following Stephenson & Amarasinghe: "we learn K different classifiers
//! (one for each unroll factor) each trained to distinguish the examples in
//! a specific class from the examples in all the remaining classes. At
//! prediction time … the class with the largest output is selected." Kernel
//! and parameters match the paper: `k(x,x') = exp(-||x-x'||² / 2σ²)` with
//! σ = 1 and C = 10.
//!
//! Inputs should be standardised (see [`crate::data::Dataset::standardized`])
//! — with σ fixed at 1 the kernel width only suits unit-scale features,
//! exactly as in the paper's setup.

use crate::data::Dataset;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// SVM hyper-parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SvmConfig {
    /// Upper bound on the Lagrange multipliers (paper: 10).
    pub c: f64,
    /// RBF kernel width σ (paper: 1).
    pub sigma: f64,
    /// KKT violation tolerance.
    pub tol: f64,
    /// SMO terminates after this many passes without any update.
    pub max_passes: usize,
    /// Hard cap on SMO iterations per binary problem.
    pub max_iters: usize,
    /// Seed of the SMO partner-selection RNG.
    pub seed: u64,
}

impl Default for SvmConfig {
    fn default() -> Self {
        SvmConfig {
            c: 10.0,
            sigma: 1.0,
            tol: 1e-3,
            max_passes: 3,
            max_iters: 20_000,
            seed: 0x5eed,
        }
    }
}

/// One binary (one-vs-all) classifier.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Binary {
    /// Indices into the stored support vectors.
    alphas_y: Vec<f64>,
    bias: f64,
    /// Support vectors for this binary problem.
    vectors: Vec<Vec<f64>>,
}

impl Binary {
    fn decision(&self, x: &[f64], gamma: f64) -> f64 {
        let mut sum = self.bias;
        for (ay, v) in self.alphas_y.iter().zip(&self.vectors) {
            sum += ay * rbf(v, x, gamma);
        }
        sum
    }
}

/// A trained one-vs-all RBF SVM.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Svm {
    binaries: Vec<Binary>,
    gamma: f64,
}

fn rbf(a: &[f64], b: &[f64], gamma: f64) -> f64 {
    let mut d2 = 0.0;
    for (x, y) in a.iter().zip(b) {
        let d = x - y;
        d2 += d * d;
    }
    (-gamma * d2).exp()
}

impl Svm {
    /// Trains one binary SMO problem per class.
    ///
    /// The dataset should already be standardised. Training is
    /// deterministic for a fixed [`SvmConfig::seed`].
    pub fn train(data: &Dataset, config: &SvmConfig) -> Svm {
        let gamma = 1.0 / (2.0 * config.sigma * config.sigma);
        let n = data.len();
        // Precompute the kernel matrix once; shared by all K problems.
        let kernel: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                (0..n)
                    .map(|j| rbf(data.row(i), data.row(j), gamma))
                    .collect()
            })
            .collect();
        let binaries = (0..data.n_classes())
            .map(|class| {
                let y: Vec<f64> = (0..n)
                    .map(|i| if data.label(i) == class { 1.0 } else { -1.0 })
                    .collect();
                train_binary(data, &y, &kernel, config)
            })
            .collect();
        Svm { binaries, gamma }
    }

    /// Predicts the class with the largest decision value.
    pub fn predict(&self, row: &[f64]) -> usize {
        // Ties break towards the smaller class index.
        let values = self.decision_values(row);
        let mut best = 0usize;
        for (i, v) in values.iter().enumerate().skip(1) {
            if *v > values[best] {
                best = i;
            }
        }
        best
    }

    /// Per-class decision values (one-vs-all margins).
    pub fn decision_values(&self, row: &[f64]) -> Vec<f64> {
        self.binaries
            .iter()
            .map(|b| b.decision(row, self.gamma))
            .collect()
    }

    /// Total number of stored support vectors across all binary problems.
    pub fn n_support_vectors(&self) -> usize {
        self.binaries.iter().map(|b| b.vectors.len()).sum()
    }
}

/// Simplified SMO (Platt) on a precomputed kernel matrix.
fn train_binary(data: &Dataset, y: &[f64], kernel: &[Vec<f64>], config: &SvmConfig) -> Binary {
    let n = data.len();
    if n == 0 {
        return Binary {
            alphas_y: vec![],
            bias: 0.0,
            vectors: vec![],
        };
    }
    let mut alpha = vec![0.0f64; n];
    let mut b = 0.0f64;
    let mut rng = StdRng::seed_from_u64(config.seed);
    let decision = |alpha: &[f64], b: f64, i: usize| -> f64 {
        let mut s = b;
        for j in 0..n {
            if alpha[j] != 0.0 {
                s += alpha[j] * y[j] * kernel[i][j];
            }
        }
        s
    };

    let mut passes = 0usize;
    let mut iters = 0usize;
    while passes < config.max_passes && iters < config.max_iters {
        let mut changed = 0usize;
        for i in 0..n {
            iters += 1;
            if iters >= config.max_iters {
                break;
            }
            let e_i = decision(&alpha, b, i) - y[i];
            let viol = (y[i] * e_i < -config.tol && alpha[i] < config.c)
                || (y[i] * e_i > config.tol && alpha[i] > 0.0);
            if !viol {
                continue;
            }
            // Pick a random partner j != i.
            let mut j = rng.gen_range(0..n - 1);
            if j >= i {
                j += 1;
            }
            let e_j = decision(&alpha, b, j) - y[j];
            let (a_i_old, a_j_old) = (alpha[i], alpha[j]);
            let (lo, hi) = if y[i] != y[j] {
                (
                    (a_j_old - a_i_old).max(0.0),
                    (config.c + a_j_old - a_i_old).min(config.c),
                )
            } else {
                (
                    (a_i_old + a_j_old - config.c).max(0.0),
                    (a_i_old + a_j_old).min(config.c),
                )
            };
            if lo >= hi {
                continue;
            }
            let eta = 2.0 * kernel[i][j] - kernel[i][i] - kernel[j][j];
            if eta >= 0.0 {
                continue;
            }
            let mut a_j = a_j_old - y[j] * (e_i - e_j) / eta;
            a_j = a_j.clamp(lo, hi);
            if (a_j - a_j_old).abs() < 1e-5 {
                continue;
            }
            let a_i = a_i_old + y[i] * y[j] * (a_j_old - a_j);
            alpha[i] = a_i;
            alpha[j] = a_j;
            let b1 = b - e_i
                - y[i] * (a_i - a_i_old) * kernel[i][i]
                - y[j] * (a_j - a_j_old) * kernel[i][j];
            let b2 = b - e_j
                - y[i] * (a_i - a_i_old) * kernel[i][j]
                - y[j] * (a_j - a_j_old) * kernel[j][j];
            b = if 0.0 < a_i && a_i < config.c {
                b1
            } else if 0.0 < a_j && a_j < config.c {
                b2
            } else {
                (b1 + b2) / 2.0
            };
            changed += 1;
        }
        if changed == 0 {
            passes += 1;
        } else {
            passes = 0;
        }
    }

    // Keep only support vectors.
    let mut alphas_y = Vec::new();
    let mut vectors = Vec::new();
    for i in 0..n {
        if alpha[i] > 1e-8 {
            alphas_y.push(alpha[i] * y[i]);
            vectors.push(data.row(i).to_vec());
        }
    }
    Binary {
        alphas_y,
        bias: b,
        vectors,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::Dataset;

    fn blobs() -> Dataset {
        // Three well-separated 2-D blobs.
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        let centers = [(-3.0, 0.0), (3.0, 0.0), (0.0, 4.0)];
        for (c, &(cx, cy)) in centers.iter().enumerate() {
            for k in 0..12 {
                let dx = (k % 4) as f64 * 0.2 - 0.3;
                let dy = (k / 4) as f64 * 0.2 - 0.2;
                xs.push(vec![cx + dx, cy + dy]);
                ys.push(c);
            }
        }
        Dataset::new(xs, ys, 3).unwrap()
    }

    #[test]
    fn separates_blobs() {
        let d = blobs();
        let svm = Svm::train(&d, &SvmConfig::default());
        let correct = (0..d.len())
            .filter(|&i| svm.predict(d.row(i)) == d.label(i))
            .count();
        assert_eq!(correct, d.len(), "train accuracy must be perfect on separated blobs");
    }

    #[test]
    fn predicts_new_points_near_centers() {
        let d = blobs();
        let svm = Svm::train(&d, &SvmConfig::default());
        assert_eq!(svm.predict(&[-3.1, 0.1]), 0);
        assert_eq!(svm.predict(&[2.8, -0.1]), 1);
        assert_eq!(svm.predict(&[0.1, 3.9]), 2);
    }

    #[test]
    fn nonlinear_boundary_with_rbf() {
        // Ring vs centre: not linearly separable.
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for k in 0..24 {
            let a = k as f64 * std::f64::consts::TAU / 24.0;
            xs.push(vec![2.0 * a.cos(), 2.0 * a.sin()]);
            ys.push(1);
        }
        for k in 0..12 {
            let a = k as f64 * std::f64::consts::TAU / 12.0;
            xs.push(vec![0.3 * a.cos(), 0.3 * a.sin()]);
            ys.push(0);
        }
        let d = Dataset::new(xs, ys, 2).unwrap();
        let svm = Svm::train(&d, &SvmConfig::default());
        assert_eq!(svm.predict(&[0.0, 0.0]), 0);
        assert_eq!(svm.predict(&[2.0, 0.0]), 1);
        assert_eq!(svm.predict(&[0.0, -2.0]), 1);
    }

    #[test]
    fn training_is_deterministic() {
        let d = blobs();
        let s1 = Svm::train(&d, &SvmConfig::default());
        let s2 = Svm::train(&d, &SvmConfig::default());
        assert_eq!(s1, s2);
    }

    #[test]
    fn empty_dataset_is_handled() {
        let d = Dataset::new(vec![], vec![], 2).unwrap();
        let svm = Svm::train(&d, &SvmConfig::default());
        // Degenerate but defined: ties at zero decision value → class 0.
        assert_eq!(svm.predict(&[1.0]), 0);
    }

    #[test]
    fn decision_values_have_one_entry_per_class() {
        let d = blobs();
        let svm = Svm::train(&d, &SvmConfig::default());
        assert_eq!(svm.decision_values(&[0.0, 0.0]).len(), 3);
    }

    #[test]
    fn keeps_only_support_vectors() {
        let d = blobs();
        let svm = Svm::train(&d, &SvmConfig::default());
        // At most every example in every binary problem; normally far fewer.
        assert!(svm.n_support_vectors() <= 3 * d.len());
        assert!(svm.n_support_vectors() > 0);
    }
}
