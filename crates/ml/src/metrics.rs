//! Evaluation metrics, including the paper's headline *percentage of the
//! maximum available speedup*.
//!
//! Per-loop measurements come as a cycle table: `cycles[k]` is the measured
//! cycle count of the containing function when the loop is unrolled with
//! heuristic value `k` (`k = 0` is the baseline — no unrolling). A method
//! that picks factor `p` achieves speedup `cycles[0] / cycles[p]`; the
//! oracle picks `argmin_k cycles[k]`.

/// Fraction of exactly-matching predictions.
///
/// Returns 0 for empty inputs.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn accuracy(predictions: &[usize], labels: &[usize]) -> f64 {
    assert_eq!(predictions.len(), labels.len());
    if predictions.is_empty() {
        return 0.0;
    }
    let hits = predictions
        .iter()
        .zip(labels)
        .filter(|(p, l)| p == l)
        .count();
    hits as f64 / predictions.len() as f64
}

/// The best (cycle-minimising) heuristic value for a cycle table.
pub fn oracle_choice(cycles: &[f64]) -> usize {
    cycles
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
        .map(|(i, _)| i)
        .unwrap_or(0)
}

/// The smallest heuristic value whose cycles are within `rel_tol` of the
/// minimum.
///
/// This is how training labels are derived from noisy measurements: any
/// factor within the noise floor of the best is a tie, and ties break
/// towards the smallest factor (less code growth). Collapsing the plateau
/// this way concentrates the label distribution — with exact argmin labels
/// a near-flat cycle table yields an essentially random label among the
/// plateau members, which no learner can (or needs to) predict.
pub fn oracle_choice_tolerant(cycles: &[f64], rel_tol: f64) -> usize {
    let min = cycles.iter().cloned().fold(f64::INFINITY, f64::min);
    let cutoff = min * (1.0 + rel_tol);
    cycles
        .iter()
        .position(|&c| c <= cutoff)
        .unwrap_or(0)
}

/// Speedup over baseline of choosing heuristic value `choice`:
/// `cycles[0] / cycles[choice]`.
pub fn speedup(cycles: &[f64], choice: usize) -> f64 {
    let base = cycles[0];
    let chosen = cycles[choice.min(cycles.len() - 1)];
    if chosen <= 0.0 {
        1.0
    } else {
        base / chosen
    }
}

/// Mean speedup over baseline across examples, for per-example choices.
///
/// # Panics
///
/// Panics if lengths differ or `tables` is empty.
pub fn mean_speedup(tables: &[Vec<f64>], choices: &[usize]) -> f64 {
    assert_eq!(tables.len(), choices.len());
    assert!(!tables.is_empty());
    tables
        .iter()
        .zip(choices)
        .map(|(t, &c)| speedup(t, c))
        .sum::<f64>()
        / tables.len() as f64
}

/// Mean oracle speedup across examples.
pub fn mean_oracle_speedup(tables: &[Vec<f64>]) -> f64 {
    let choices: Vec<usize> = tables.iter().map(|t| oracle_choice(t)).collect();
    mean_speedup(tables, &choices)
}

/// The paper's headline metric: what fraction of the maximum available
/// speedup a method achieved, `(S_method − 1) / (S_oracle − 1)`.
///
/// When the oracle itself offers (almost) no speedup the metric is
/// undefined; this returns 1.0 when the method matches the oracle and 0.0
/// otherwise, mirroring how such benchmarks are reported.
pub fn percent_of_max(method_speedup: f64, oracle_speedup: f64) -> f64 {
    let denom = oracle_speedup - 1.0;
    if denom.abs() < 1e-9 {
        return if (method_speedup - oracle_speedup).abs() < 1e-9 {
            1.0
        } else {
            0.0
        };
    }
    (method_speedup - 1.0) / denom
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_counts_matches() {
        assert_eq!(accuracy(&[1, 2, 3], &[1, 0, 3]), 2.0 / 3.0);
        assert_eq!(accuracy(&[], &[]), 0.0);
    }

    #[test]
    fn oracle_choice_minimises_cycles() {
        assert_eq!(oracle_choice(&[100.0, 90.0, 95.0]), 1);
        assert_eq!(oracle_choice(&[100.0]), 0);
        // Ties break towards the smaller factor (first minimum).
        assert_eq!(oracle_choice(&[100.0, 80.0, 80.0]), 1);
    }

    #[test]
    fn speedup_is_relative_to_baseline() {
        let t = [100.0, 80.0, 125.0];
        assert_eq!(speedup(&t, 0), 1.0);
        assert_eq!(speedup(&t, 1), 1.25);
        assert_eq!(speedup(&t, 2), 0.8);
    }

    #[test]
    fn speedup_clamps_out_of_range_choice() {
        let t = [100.0, 80.0];
        assert_eq!(speedup(&t, 99), 1.25);
    }

    #[test]
    fn mean_speedups() {
        let tables = vec![vec![100.0, 50.0], vec![100.0, 200.0]];
        // Oracle picks 1 then 0 → speedups 2.0 and 1.0 → mean 1.5.
        assert_eq!(mean_oracle_speedup(&tables), 1.5);
        assert_eq!(mean_speedup(&tables, &[1, 1]), (2.0 + 0.5) / 2.0);
    }

    #[test]
    fn percent_of_max_matches_paper_arithmetic() {
        // Oracle 1.05 average, method 1.038 → 76%.
        let p = percent_of_max(1.038, 1.05);
        assert!((p - 0.76).abs() < 1e-9);
        // Slowdowns yield negative percentages (GCC's -12% in Figure 2).
        assert!(percent_of_max(0.9712, 1.2378) < 0.0);
    }

    #[test]
    fn percent_of_max_degenerate_oracle() {
        assert_eq!(percent_of_max(1.0, 1.0), 1.0);
        assert_eq!(percent_of_max(0.9, 1.0), 0.0);
    }
}
