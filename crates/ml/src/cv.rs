//! Seeded k-fold cross-validation splits.
//!
//! The paper (§VI): "We split the loops into ten groups keeping one group
//! out for testing so that we can perform ten-fold cross validation. Loops
//! that are used for generating features and later learning a model are
//! *never* used to evaluate the model."

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// A k-fold splitter over `n` examples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KFold {
    k: usize,
    seed: u64,
}

impl KFold {
    /// Creates a `k`-fold splitter.
    ///
    /// # Panics
    ///
    /// Panics if `k < 2`.
    pub fn new(k: usize, seed: u64) -> KFold {
        assert!(k >= 2, "k-fold cross validation needs k >= 2");
        KFold { k, seed }
    }

    /// Number of folds.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Produces the `(train, test)` index sets for each fold over `n`
    /// examples. Every index appears in exactly one test set; shuffling is
    /// deterministic in the seed.
    pub fn splits(&self, n: usize) -> Vec<(Vec<usize>, Vec<usize>)> {
        let mut indices: Vec<usize> = (0..n).collect();
        let mut rng = StdRng::seed_from_u64(self.seed);
        indices.shuffle(&mut rng);
        let mut folds: Vec<Vec<usize>> = vec![Vec::new(); self.k];
        for (i, idx) in indices.into_iter().enumerate() {
            folds[i % self.k].push(idx);
        }
        (0..self.k)
            .map(|f| {
                let test = folds[f].clone();
                let train = folds
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| *i != f)
                    .flat_map(|(_, fold)| fold.iter().copied())
                    .collect();
                (train, test)
            })
            .collect()
    }

    /// Splits `n` examples into a single `(train, holdout)` pair with the
    /// given number of holdout parts out of `k` (e.g. the paper's internal
    /// 8-train / 1-validate split uses `holdout_parts = 1` with `k = 9`).
    pub fn single_split(&self, n: usize, holdout_parts: usize) -> (Vec<usize>, Vec<usize>) {
        assert!(holdout_parts < self.k);
        let mut indices: Vec<usize> = (0..n).collect();
        let mut rng = StdRng::seed_from_u64(self.seed);
        indices.shuffle(&mut rng);
        let cut = n * holdout_parts / self.k;
        let holdout = indices[..cut].to_vec();
        let train = indices[cut..].to_vec();
        (train, holdout)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn each_index_tested_exactly_once() {
        let kf = KFold::new(10, 42);
        let splits = kf.splits(57);
        let mut seen = BTreeSet::new();
        for (_, test) in &splits {
            for &i in test {
                assert!(seen.insert(i), "index {i} tested twice");
            }
        }
        assert_eq!(seen.len(), 57);
    }

    #[test]
    fn train_and_test_are_disjoint_and_complete() {
        let kf = KFold::new(5, 7);
        for (train, test) in kf.splits(23) {
            let train: BTreeSet<_> = train.into_iter().collect();
            let test: BTreeSet<_> = test.into_iter().collect();
            assert!(train.is_disjoint(&test));
            assert_eq!(train.len() + test.len(), 23);
        }
    }

    #[test]
    fn splits_are_deterministic_per_seed() {
        let a = KFold::new(4, 9).splits(40);
        let b = KFold::new(4, 9).splits(40);
        assert_eq!(a, b);
        let c = KFold::new(4, 10).splits(40);
        assert_ne!(a, c);
    }

    #[test]
    fn fold_sizes_are_balanced() {
        let kf = KFold::new(10, 0);
        for (_, test) in kf.splits(57) {
            assert!(test.len() == 5 || test.len() == 6, "fold size {}", test.len());
        }
    }

    #[test]
    fn single_split_ratio() {
        let kf = KFold::new(9, 1);
        let (train, holdout) = kf.single_split(90, 1);
        assert_eq!(holdout.len(), 10);
        assert_eq!(train.len(), 80);
        let all: BTreeSet<_> = train.iter().chain(holdout.iter()).collect();
        assert_eq!(all.len(), 90);
    }

    #[test]
    #[should_panic(expected = "k >= 2")]
    fn rejects_k_of_one() {
        let _ = KFold::new(1, 0);
    }
}
