//! Seeded k-fold cross-validation splits.
//!
//! The paper (§VI): "We split the loops into ten groups keeping one group
//! out for testing so that we can perform ten-fold cross validation. Loops
//! that are used for generating features and later learning a model are
//! *never* used to evaluate the model."

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Error from [`KFold::try_splits`]: the dataset is too small for the
/// requested fold count (every fold's test set must be non-empty).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TooFewExamples {
    /// Number of examples offered.
    pub n: usize,
    /// Folds requested.
    pub k: usize,
}

impl std::fmt::Display for TooFewExamples {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "cannot split {} example(s) into {} non-empty folds",
            self.n, self.k
        )
    }
}

impl std::error::Error for TooFewExamples {}

/// One fold's `(train, test)` index sets.
pub type Split = (Vec<usize>, Vec<usize>);

/// A k-fold splitter over `n` examples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KFold {
    k: usize,
    seed: u64,
}

impl KFold {
    /// Creates a `k`-fold splitter.
    ///
    /// # Panics
    ///
    /// Panics if `k < 2`.
    pub fn new(k: usize, seed: u64) -> KFold {
        assert!(k >= 2, "k-fold cross validation needs k >= 2");
        KFold { k, seed }
    }

    /// Number of folds.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The fold count actually used by [`KFold::splits`] for `n` examples:
    /// `k`, clamped so that no fold's test set can be empty (but never
    /// below 2). Callers can compare this against [`KFold::k`] to warn
    /// about a clamped configuration.
    pub fn effective_k(&self, n: usize) -> usize {
        self.k.min(n).max(2)
    }

    /// Produces the `(train, test)` index sets for each fold over `n`
    /// examples. Every index appears in exactly one test set; shuffling is
    /// deterministic in the seed.
    ///
    /// When `n < k` (possible after quarantine shrinks a suite), the fold
    /// count is clamped to [`KFold::effective_k`] so no silent empty test
    /// folds are produced; use [`KFold::try_splits`] to treat that as an
    /// error instead. With fewer than two examples the splits are
    /// inevitably degenerate (an empty side); callers needing a guarantee
    /// should use [`KFold::try_splits`].
    pub fn splits(&self, n: usize) -> Vec<Split> {
        self.splits_with_k(n, self.effective_k(n))
    }

    /// Like [`KFold::splits`], but rejects a fold count the dataset cannot
    /// fill: every fold is guaranteed a non-empty test *and* train set.
    ///
    /// # Errors
    ///
    /// [`TooFewExamples`] when `n < k`.
    pub fn try_splits(&self, n: usize) -> Result<Vec<Split>, TooFewExamples> {
        if n < self.k {
            return Err(TooFewExamples { n, k: self.k });
        }
        Ok(self.splits_with_k(n, self.k))
    }

    fn splits_with_k(&self, n: usize, k: usize) -> Vec<Split> {
        let mut indices: Vec<usize> = (0..n).collect();
        let mut rng = StdRng::seed_from_u64(self.seed);
        indices.shuffle(&mut rng);
        let mut folds: Vec<Vec<usize>> = vec![Vec::new(); k];
        for (i, idx) in indices.into_iter().enumerate() {
            folds[i % k].push(idx);
        }
        (0..k)
            .map(|f| {
                let test = folds[f].clone();
                let train = folds
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| *i != f)
                    .flat_map(|(_, fold)| fold.iter().copied())
                    .collect();
                (train, test)
            })
            .collect()
    }

    /// Splits `n` examples into a single `(train, holdout)` pair with the
    /// given number of holdout parts out of `k` (e.g. the paper's internal
    /// 8-train / 1-validate split uses `holdout_parts = 1` with `k = 9`).
    pub fn single_split(&self, n: usize, holdout_parts: usize) -> (Vec<usize>, Vec<usize>) {
        assert!(holdout_parts < self.k);
        let mut indices: Vec<usize> = (0..n).collect();
        let mut rng = StdRng::seed_from_u64(self.seed);
        indices.shuffle(&mut rng);
        let cut = n * holdout_parts / self.k;
        let holdout = indices[..cut].to_vec();
        let train = indices[cut..].to_vec();
        (train, holdout)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn each_index_tested_exactly_once() {
        let kf = KFold::new(10, 42);
        let splits = kf.splits(57);
        let mut seen = BTreeSet::new();
        for (_, test) in &splits {
            for &i in test {
                assert!(seen.insert(i), "index {i} tested twice");
            }
        }
        assert_eq!(seen.len(), 57);
    }

    #[test]
    fn train_and_test_are_disjoint_and_complete() {
        let kf = KFold::new(5, 7);
        for (train, test) in kf.splits(23) {
            let train: BTreeSet<_> = train.into_iter().collect();
            let test: BTreeSet<_> = test.into_iter().collect();
            assert!(train.is_disjoint(&test));
            assert_eq!(train.len() + test.len(), 23);
        }
    }

    #[test]
    fn splits_are_deterministic_per_seed() {
        let a = KFold::new(4, 9).splits(40);
        let b = KFold::new(4, 9).splits(40);
        assert_eq!(a, b);
        let c = KFold::new(4, 10).splits(40);
        assert_ne!(a, c);
    }

    #[test]
    fn fold_sizes_are_balanced() {
        let kf = KFold::new(10, 0);
        for (_, test) in kf.splits(57) {
            assert!(test.len() == 5 || test.len() == 6, "fold size {}", test.len());
        }
    }

    #[test]
    fn single_split_ratio() {
        let kf = KFold::new(9, 1);
        let (train, holdout) = kf.single_split(90, 1);
        assert_eq!(holdout.len(), 10);
        assert_eq!(train.len(), 80);
        let all: BTreeSet<_> = train.iter().chain(holdout.iter()).collect();
        assert_eq!(all.len(), 90);
    }

    #[test]
    #[should_panic(expected = "k >= 2")]
    fn rejects_k_of_one() {
        let _ = KFold::new(1, 0);
    }

    /// `n < k`: the silent-empty-test-fold regression. `splits` must clamp
    /// (no empty test folds, every index tested once) and `try_splits` must
    /// reject with a typed error.
    #[test]
    fn fewer_examples_than_folds_clamps_and_errors() {
        let kf = KFold::new(10, 3);
        assert_eq!(kf.effective_k(4), 4);
        let splits = kf.splits(4);
        assert_eq!(splits.len(), 4);
        let mut seen = BTreeSet::new();
        for (train, test) in &splits {
            assert!(!test.is_empty(), "clamped split yielded an empty test fold");
            assert!(!train.is_empty(), "clamped split yielded an empty train fold");
            for &i in test {
                assert!(seen.insert(i), "index {i} tested twice");
            }
        }
        assert_eq!(seen.len(), 4);
        assert_eq!(kf.try_splits(4), Err(TooFewExamples { n: 4, k: 10 }));
        let msg = TooFewExamples { n: 4, k: 10 }.to_string();
        assert!(msg.contains('4') && msg.contains("10"), "{msg}");
    }

    /// `n == k`: exactly one test example per fold, nothing clamped.
    #[test]
    fn examples_equal_folds_gives_singleton_test_folds() {
        let kf = KFold::new(5, 11);
        assert_eq!(kf.effective_k(5), 5);
        let splits = kf.try_splits(5).expect("n == k is splittable");
        assert_eq!(splits, kf.splits(5));
        assert_eq!(splits.len(), 5);
        let mut seen = BTreeSet::new();
        for (train, test) in &splits {
            assert_eq!(test.len(), 1);
            assert_eq!(train.len(), 4);
            seen.insert(test[0]);
        }
        assert_eq!(seen.len(), 5);
    }

    /// `n == k + 1`: one fold gets two test examples, the rest one.
    #[test]
    fn one_more_example_than_folds_balances() {
        let kf = KFold::new(5, 11);
        let splits = kf.try_splits(6).expect("n > k is splittable");
        assert_eq!(splits, kf.splits(6));
        assert_eq!(splits.len(), 5);
        let sizes: Vec<usize> = splits.iter().map(|(_, test)| test.len()).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 6);
        assert_eq!(sizes.iter().filter(|&&s| s == 2).count(), 1);
        assert_eq!(sizes.iter().filter(|&&s| s == 1).count(), 4);
        for (train, test) in &splits {
            assert_eq!(train.len() + test.len(), 6);
        }
    }

    /// Clamping never changes the answer when the dataset is big enough:
    /// `splits` and `try_splits` agree for every `n >= k`.
    #[test]
    fn clamping_is_identity_when_not_needed() {
        let kf = KFold::new(4, 2);
        for n in 4..20 {
            assert_eq!(kf.splits(n), kf.try_splits(n).expect("n >= k"));
        }
    }
}
