//! C4.5-style decision-tree classifier.
//!
//! Continuous attributes are split at midpoints between adjacent distinct
//! values; splits are chosen by **gain ratio** among candidates whose
//! information gain is at least the average positive gain (Quinlan's
//! guard against the gain-ratio bias towards unbalanced splits). Subtrees
//! are pruned with C4.5's pessimistic error estimate (confidence factor
//! 0.25).
//!
//! [`DecisionTree::predict_traced`] additionally records the decision path,
//! which the experiment harness uses to print the Figure 3 / Figure 4 style
//! path listings.

use crate::data::Dataset;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Training configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TreeConfig {
    /// Maximum depth of the tree.
    pub max_depth: usize,
    /// Minimum number of examples required to attempt a split.
    pub min_split: usize,
    /// Whether to apply pessimistic post-pruning.
    pub prune: bool,
    /// z-value of the pruning confidence bound (0.6925 ≈ CF 0.25, C4.5's
    /// default).
    pub prune_z: f64,
}

impl Default for TreeConfig {
    fn default() -> Self {
        TreeConfig {
            max_depth: 12,
            min_split: 4,
            prune: true,
            prune_z: 0.6925,
        }
    }
}

/// One step of a traced prediction: the split consulted and the direction
/// taken.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PathStep {
    /// Index of the feature consulted.
    pub feature: usize,
    /// Split threshold.
    pub threshold: f64,
    /// `true` when the example went left (`value <= threshold`).
    pub went_left: bool,
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum Node {
    Leaf {
        label: usize,
        /// Training examples that reached this leaf.
        n: usize,
        /// Of which misclassified.
        errors: usize,
        /// Class histogram of the training examples at this leaf.
        dist: Vec<usize>,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: Box<Node>,
        right: Box<Node>,
    },
}

/// Per-feature example orderings computed once per dataset.
///
/// C4.5 spends most of its time sorting candidate-split columns: the naive
/// implementation re-sorts every feature at every node of the recursion.
/// `Presorted` sorts each feature's example indices by value **once**; the
/// recursion then keeps each node's index lists sorted by order-preserving
/// partition (O(n) per node instead of O(n log n) per node *per feature*),
/// and cross-validation folds restrict the same orderings by membership
/// instead of re-sorting the fold.
///
/// Thresholds are only placed between *distinct* adjacent values and split
/// statistics are cumulative label counts, so the relative order of equal
/// values never affects a split decision: training through `Presorted`
/// produces trees identical to the re-sorting implementation.
#[derive(Debug, Clone)]
pub struct Presorted {
    /// `by_feature[f]` lists all example indices sorted ascending by the
    /// value of feature `f` (stable in example order for ties).
    by_feature: Vec<Vec<u32>>,
}

impl Presorted {
    /// Sorts every feature column of `data` once.
    pub fn new(data: &Dataset) -> Presorted {
        let n = data.len();
        let by_feature = (0..data.n_features())
            .map(|f| {
                let mut order: Vec<u32> = (0..n as u32).collect();
                // `total_cmp`, not `partial_cmp(..).unwrap_or(Equal)`: the
                // latter is not a total order when a NaN feature value slips
                // in, making the sort order — and thus the learned tree —
                // nondeterministic. Under the total order NaNs sort after
                // +inf, deterministically.
                order.sort_by(|&a, &b| {
                    data.row(a as usize)[f].total_cmp(&data.row(b as usize)[f])
                });
                order
            })
            .collect();
        Presorted { by_feature }
    }

    /// The orderings restricted to the examples in `indices` (order within
    /// each feature is preserved, so the result stays sorted by value).
    fn restrict(&self, n: usize, indices: &[usize]) -> Vec<Vec<u32>> {
        let mut member = vec![false; n];
        for &i in indices {
            member[i] = true;
        }
        self.by_feature
            .iter()
            .map(|order| {
                order
                    .iter()
                    .copied()
                    .filter(|&i| member[i as usize])
                    .collect()
            })
            .collect()
    }
}

/// A trained decision tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecisionTree {
    root: Node,
    n_features: usize,
}

impl DecisionTree {
    /// Trains a tree on `data`.
    ///
    /// An empty dataset yields a tree that always predicts class 0.
    pub fn train(data: &Dataset, config: &TreeConfig) -> DecisionTree {
        let presorted = Presorted::new(data);
        let indices: Vec<usize> = (0..data.len()).collect();
        DecisionTree::train_on(data, &presorted, &indices, config)
    }

    /// Trains a tree on the examples of `data` selected by `indices`,
    /// reusing the dataset-wide `presorted` orderings.
    ///
    /// Equivalent to `train(&data.subset(indices), config)` but without
    /// copying rows or re-sorting feature columns — the intended entry point
    /// for cross-validation, where every fold shares one [`Presorted`].
    /// `indices` must not contain duplicates.
    pub fn train_on(
        data: &Dataset,
        presorted: &Presorted,
        indices: &[usize],
        config: &TreeConfig,
    ) -> DecisionTree {
        let sorted = presorted.restrict(data.len(), indices);
        let mut root = grow(data, indices, &sorted, config, 0);
        if config.prune {
            prune(&mut root, config.prune_z);
        }
        DecisionTree {
            root,
            n_features: data.n_features(),
        }
    }

    /// Predicts the class of `row`.
    ///
    /// # Panics
    ///
    /// Panics if `row` is shorter than the training feature count.
    pub fn predict(&self, row: &[f64]) -> usize {
        let mut node = &self.root;
        loop {
            match node {
                Node::Leaf { label, .. } => return *label,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    node = if row[*feature] <= *threshold {
                        left
                    } else {
                        right
                    };
                }
            }
        }
    }

    /// Predicts the class of `row`, recording every split consulted.
    pub fn predict_traced(&self, row: &[f64]) -> (usize, Vec<PathStep>) {
        let mut node = &self.root;
        let mut path = Vec::new();
        loop {
            match node {
                Node::Leaf { label, .. } => return (*label, path),
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    let went_left = row[*feature] <= *threshold;
                    path.push(PathStep {
                        feature: *feature,
                        threshold: *threshold,
                        went_left,
                    });
                    node = if went_left { left } else { right };
                }
            }
        }
    }

    /// Number of leaves.
    pub fn n_leaves(&self) -> usize {
        fn count(n: &Node) -> usize {
            match n {
                Node::Leaf { .. } => 1,
                Node::Split { left, right, .. } => count(left) + count(right),
            }
        }
        count(&self.root)
    }

    /// Depth of the tree (a single leaf has depth 1).
    pub fn depth(&self) -> usize {
        fn depth(n: &Node) -> usize {
            match n {
                Node::Leaf { .. } => 1,
                Node::Split { left, right, .. } => 1 + depth(left).max(depth(right)),
            }
        }
        depth(&self.root)
    }

    /// Number of features the tree was trained with.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Renders the tree as an indented `if (fK <= t)` listing, in the style
    /// of the paper's Figure 3(b), with `names[k]` naming feature `k`
    /// (falls back to `fK`).
    pub fn render(&self, names: &[String]) -> String {
        fn name(names: &[String], k: usize) -> String {
            names.get(k).cloned().unwrap_or_else(|| format!("f{k}"))
        }
        fn go(n: &Node, names: &[String], out: &mut String, indent: usize) {
            use std::fmt::Write;
            let pad = "  ".repeat(indent);
            match n {
                Node::Leaf { label, .. } => {
                    let _ = writeln!(out, "{pad}predict {label};");
                }
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    let _ = writeln!(out, "{pad}if( {} <= {} )", name(names, *feature), threshold);
                    go(left, names, out, indent + 1);
                    let _ = writeln!(out, "{pad}else");
                    go(right, names, out, indent + 1);
                }
            }
        }
        let mut out = String::new();
        go(&self.root, names, &mut out, 0);
        out
    }
}

impl fmt::Display for DecisionTree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.render(&[]))
    }
}

fn entropy(counts: &[usize], total: usize) -> f64 {
    if total == 0 {
        return 0.0;
    }
    let total_f = total as f64;
    counts
        .iter()
        .filter(|&&c| c > 0)
        .map(|&c| {
            let p = c as f64 / total_f;
            -p * p.log2()
        })
        .sum()
}

struct SplitChoice {
    feature: usize,
    threshold: f64,
    gain: f64,
    gain_ratio: f64,
}

fn grow(
    data: &Dataset,
    indices: &[usize],
    sorted: &[Vec<u32>],
    config: &TreeConfig,
    depth: usize,
) -> Node {
    let make_leaf = |indices: &[usize]| -> Node {
        let mut counts = vec![0usize; data.n_classes()];
        for &i in indices {
            counts[data.label(i)] += 1;
        }
        let (label, &n_max) = counts
            .iter()
            .enumerate()
            .max_by_key(|(i, &c)| (c, usize::MAX - i))
            .unwrap_or((0, &0));
        Node::Leaf {
            label,
            n: indices.len(),
            errors: indices.len() - n_max,
            dist: counts,
        }
    };

    if indices.len() < config.min_split || depth >= config.max_depth {
        return make_leaf(indices);
    }
    let first_label = data.label(indices[0]);
    if indices.iter().all(|&i| data.label(i) == first_label) {
        return make_leaf(indices);
    }

    let Some(best) = best_split(data, indices, sorted) else {
        return make_leaf(indices);
    };

    let goes_left = |i: usize| data.row(i)[best.feature] <= best.threshold;
    let (left, right): (Vec<usize>, Vec<usize>) = indices.iter().partition(|&&i| goes_left(i));
    if left.is_empty() || right.is_empty() {
        return make_leaf(indices);
    }
    // Order-preserving partition keeps each child's orderings sorted by
    // value without re-sorting.
    let mut left_sorted = Vec::with_capacity(sorted.len());
    let mut right_sorted = Vec::with_capacity(sorted.len());
    for order in sorted {
        let (l, r): (Vec<u32>, Vec<u32>) =
            order.iter().partition(|&&i| goes_left(i as usize));
        left_sorted.push(l);
        right_sorted.push(r);
    }
    Node::Split {
        feature: best.feature,
        threshold: best.threshold,
        left: Box::new(grow(data, &left, &left_sorted, config, depth + 1)),
        right: Box::new(grow(data, &right, &right_sorted, config, depth + 1)),
    }
}

/// Finds the best (feature, threshold) by gain ratio among splits with at
/// least average positive gain. `sorted[f]` must list the node's examples
/// sorted ascending by feature `f`.
fn best_split(data: &Dataset, indices: &[usize], sorted: &[Vec<u32>]) -> Option<SplitChoice> {
    let n = indices.len();
    let n_classes = data.n_classes();
    let mut total_counts = vec![0usize; n_classes];
    for &i in indices {
        total_counts[data.label(i)] += 1;
    }
    let base_entropy = entropy(&total_counts, n);

    let mut candidates: Vec<SplitChoice> = Vec::new();
    for (feature, order) in sorted.iter().enumerate() {
        let value = |k: usize| data.row(order[k] as usize)[feature];
        let mut left_counts = vec![0usize; n_classes];
        let mut best_for_feature: Option<SplitChoice> = None;
        for k in 0..n - 1 {
            left_counts[data.label(order[k] as usize)] += 1;
            // Candidate threshold only between distinct values.
            if value(k) == value(k + 1) {
                continue;
            }
            let n_left = k + 1;
            let n_right = n - n_left;
            let mut right_counts = vec![0usize; n_classes];
            for (c, (&t, &l)) in right_counts
                .iter_mut()
                .zip(total_counts.iter().zip(left_counts.iter()))
            {
                *c = t - l;
            }
            let split_entropy = (n_left as f64 / n as f64) * entropy(&left_counts, n_left)
                + (n_right as f64 / n as f64) * entropy(&right_counts, n_right);
            let gain = base_entropy - split_entropy;
            if gain <= 1e-12 {
                continue;
            }
            let p_left = n_left as f64 / n as f64;
            let split_info = -(p_left * p_left.log2() + (1.0 - p_left) * (1.0 - p_left).log2());
            let gain_ratio = gain / split_info.max(1e-12);
            let threshold = (value(k) + value(k + 1)) / 2.0;
            // NaN rejection: a NaN or infinite feature value produces a
            // non-finite threshold (NaN ≠ NaN, so the distinct-values guard
            // above does not catch it); such a split can never be applied
            // meaningfully at prediction time, so it is not a candidate.
            if !threshold.is_finite() || !gain_ratio.is_finite() {
                continue;
            }
            let cand = SplitChoice {
                feature,
                threshold,
                gain,
                gain_ratio,
            };
            if best_for_feature
                .as_ref()
                .is_none_or(|b| cand.gain_ratio > b.gain_ratio)
            {
                best_for_feature = Some(cand);
            }
        }
        if let Some(c) = best_for_feature {
            candidates.push(c);
        }
    }
    if candidates.is_empty() {
        return None;
    }
    let avg_gain: f64 = candidates.iter().map(|c| c.gain).sum::<f64>() / candidates.len() as f64;
    candidates
        .into_iter()
        // C4.5: restrict gain-ratio selection to at-least-average gain.
        .filter(|c| c.gain >= avg_gain - 1e-12)
        // Total order: candidates all carry finite gain ratios (enforced at
        // construction), and `total_cmp` keeps the selection deterministic
        // even if that invariant is ever violated.
        .max_by(|a, b| a.gain_ratio.total_cmp(&b.gain_ratio))
}

/// C4.5 pessimistic error: upper confidence bound on the leaf error rate.
fn pessimistic_errors(n: usize, errors: usize, z: f64) -> f64 {
    if n == 0 {
        return 0.0;
    }
    let nf = n as f64;
    let f = errors as f64 / nf;
    let z2 = z * z;
    let ucb = (f + z2 / (2.0 * nf)
        + z * (f * (1.0 - f) / nf + z2 / (4.0 * nf * nf)).sqrt())
        / (1.0 + z2 / nf);
    ucb * nf
}

/// Bottom-up subtree replacement (C4.5's pessimistic pruning): collapse a
/// split when the upper confidence bound on the error of a leaf covering
/// the same examples is no worse than the sum over its children. Returns
/// `(class_histogram, pessimistic_errors)` for the subtree.
fn prune(node: &mut Node, z: f64) -> (Vec<usize>, f64) {
    match node {
        Node::Leaf {
            n, errors, dist, ..
        } => (dist.clone(), pessimistic_errors(*n, *errors, z)),
        Node::Split { left, right, .. } => {
            let (dl, pl) = prune(left, z);
            let (dr, pr) = prune(right, z);
            let dist: Vec<usize> = dl.iter().zip(&dr).map(|(a, b)| a + b).collect();
            let n: usize = dist.iter().sum();
            let (label, &n_max) = dist
                .iter()
                .enumerate()
                .max_by_key(|(i, &c)| (c, usize::MAX - i))
                .expect("non-empty class histogram");
            let leaf_errors = n - n_max;
            let as_leaf = pessimistic_errors(n, leaf_errors, z);
            if as_leaf <= pl + pr + 0.1 {
                *node = Node::Leaf {
                    label,
                    n,
                    errors: leaf_errors,
                    dist,
                };
                let p = pessimistic_errors(n, leaf_errors, z);
                let dist = match node {
                    Node::Leaf { dist, .. } => dist.clone(),
                    _ => unreachable!(),
                };
                (dist, p)
            } else {
                (dist, pl + pr)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::Dataset;

    fn xor_like() -> Dataset {
        // Two features; class = (x0 > 0.5) XOR (x1 > 0.5): needs depth 2.
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..8 {
            for j in 0..8 {
                let x0 = i as f64 / 8.0;
                let x1 = j as f64 / 8.0;
                xs.push(vec![x0, x1]);
                ys.push(usize::from((x0 > 0.5) != (x1 > 0.5)));
            }
        }
        Dataset::new(xs, ys, 2).unwrap()
    }

    #[test]
    fn learns_threshold_split() {
        let xs: Vec<Vec<f64>> = (0..30).map(|i| vec![i as f64]).collect();
        let ys: Vec<usize> = (0..30).map(|i| usize::from(i >= 17)).collect();
        let d = Dataset::new(xs, ys, 2).unwrap();
        let t = DecisionTree::train(&d, &TreeConfig::default());
        assert_eq!(t.predict(&[3.0]), 0);
        assert_eq!(t.predict(&[16.4]), 0);
        assert_eq!(t.predict(&[16.6]), 1);
        assert_eq!(t.predict(&[29.0]), 1);
    }

    #[test]
    fn learns_xor_with_depth_two() {
        let d = xor_like();
        let t = DecisionTree::train(&d, &TreeConfig::default());
        let correct = (0..d.len())
            .filter(|&i| t.predict(d.row(i)) == d.label(i))
            .count();
        assert!(
            correct as f64 / d.len() as f64 > 0.95,
            "xor accuracy {}/{}",
            correct,
            d.len()
        );
    }

    #[test]
    fn pure_dataset_yields_single_leaf() {
        let d = Dataset::new(vec![vec![1.0], vec![2.0], vec![3.0]], vec![1, 1, 1], 2).unwrap();
        let t = DecisionTree::train(&d, &TreeConfig::default());
        assert_eq!(t.n_leaves(), 1);
        assert_eq!(t.predict(&[100.0]), 1);
    }

    #[test]
    fn empty_dataset_predicts_class_zero() {
        let d = Dataset::new(vec![], vec![], 4).unwrap();
        let t = DecisionTree::train(&d, &TreeConfig::default());
        assert_eq!(t.predict(&[1.0, 2.0]), 0);
    }

    #[test]
    fn constant_features_yield_majority_leaf() {
        let d = Dataset::new(vec![vec![1.0]; 5], vec![0, 1, 1, 1, 0], 2).unwrap();
        let t = DecisionTree::train(&d, &TreeConfig::default());
        assert_eq!(t.n_leaves(), 1);
        assert_eq!(t.predict(&[1.0]), 1);
    }

    #[test]
    fn max_depth_is_respected() {
        let d = xor_like();
        let cfg = TreeConfig {
            max_depth: 1,
            prune: false,
            ..TreeConfig::default()
        };
        let t = DecisionTree::train(&d, &cfg);
        assert!(t.depth() <= 2, "depth {}", t.depth());
    }

    #[test]
    fn traced_prediction_matches_plain() {
        let d = xor_like();
        let t = DecisionTree::train(&d, &TreeConfig::default());
        for i in 0..d.len() {
            let (label, path) = t.predict_traced(d.row(i));
            assert_eq!(label, t.predict(d.row(i)));
            // Path must be consistent with the row.
            for step in &path {
                assert_eq!(step.went_left, d.row(i)[step.feature] <= step.threshold);
            }
        }
    }

    #[test]
    fn pruning_shrinks_noisy_trees() {
        // Random labels: an unpruned tree overfits into many leaves; the
        // pruned tree must be no larger.
        let xs: Vec<Vec<f64>> = (0..64).map(|i| vec![(i * 37 % 64) as f64]).collect();
        let ys: Vec<usize> = (0..64).map(|i| (i * 13 + 5) % 2).collect();
        let d = Dataset::new(xs, ys, 2).unwrap();
        let unpruned = DecisionTree::train(
            &d,
            &TreeConfig {
                prune: false,
                ..TreeConfig::default()
            },
        );
        let pruned = DecisionTree::train(&d, &TreeConfig::default());
        assert!(
            pruned.n_leaves() <= unpruned.n_leaves(),
            "pruned {} vs unpruned {}",
            pruned.n_leaves(),
            unpruned.n_leaves()
        );
    }

    #[test]
    fn render_mentions_feature_names() {
        let xs: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let ys: Vec<usize> = (0..20).map(|i| usize::from(i >= 10)).collect();
        let d = Dataset::new(xs, ys, 2).unwrap();
        let t = DecisionTree::train(&d, &TreeConfig::default());
        let rendered = t.render(&["ninsns".to_owned()]);
        assert!(rendered.contains("if( ninsns <="), "{rendered}");
    }

    #[test]
    fn train_on_subset_matches_training_on_copied_subset() {
        // The presorted fold path must produce exactly the tree that a
        // fresh `train` over a row-copied subset would (same structure,
        // thresholds and leaf statistics), including under ties.
        let xs: Vec<Vec<f64>> = (0..48)
            .map(|i| {
                vec![
                    (i * 37 % 16) as f64, // many repeated values
                    (i % 7) as f64,
                    (i * 13 % 48) as f64 / 4.0,
                ]
            })
            .collect();
        let ys: Vec<usize> = (0..48).map(|i| (i * 11 + 3) % 3).collect();
        let d = Dataset::new(xs, ys, 3).unwrap();
        let pre = Presorted::new(&d);
        for (lo, hi) in [(0, 48), (0, 31), (9, 40), (17, 23)] {
            let indices: Vec<usize> = (lo..hi).collect();
            let fast = DecisionTree::train_on(&d, &pre, &indices, &TreeConfig::default());
            let slow = DecisionTree::train(&d.subset(&indices), &TreeConfig::default());
            assert_eq!(fast, slow, "subset {lo}..{hi}");
        }
    }

    #[test]
    fn multiclass_prediction() {
        let xs: Vec<Vec<f64>> = (0..30).map(|i| vec![i as f64]).collect();
        let ys: Vec<usize> = (0..30).map(|i| i / 10).collect();
        let d = Dataset::new(xs, ys, 3).unwrap();
        let t = DecisionTree::train(&d, &TreeConfig::default());
        assert_eq!(t.predict(&[5.0]), 0);
        assert_eq!(t.predict(&[15.0]), 1);
        assert_eq!(t.predict(&[25.0]), 2);
    }

    /// Regression test for the `partial_cmp(..).unwrap_or(Equal)`
    /// comparators: a NaN attribute value used to make presorting (and so
    /// the learned tree) order-dependent, and could smuggle a NaN threshold
    /// into the tree. Training must be deterministic, ignore the poisoned
    /// feature, and still learn from the clean one.
    #[test]
    fn nan_features_are_rejected_deterministically() {
        // Feature 0 is poisoned with NaNs placed to sit between distinct
        // values; feature 1 cleanly separates the classes.
        let xs: Vec<Vec<f64>> = (0..24)
            .map(|i| {
                let poisoned = if i % 3 == 0 { f64::NAN } else { (i % 5) as f64 };
                vec![poisoned, i as f64]
            })
            .collect();
        let ys: Vec<usize> = (0..24).map(|i| usize::from(i >= 12)).collect();
        let d = Dataset::new(xs, ys, 2).unwrap();
        let t = DecisionTree::train(&d, &TreeConfig::default());
        // The clean feature still drives prediction.
        assert_eq!(t.predict(&[f64::NAN, 2.0]), 0);
        assert_eq!(t.predict(&[f64::NAN, 20.0]), 1);
        // Determinism: retraining and training through the presorted path
        // give the identical tree.
        assert_eq!(t, DecisionTree::train(&d, &TreeConfig::default()));
        let pre = Presorted::new(&d);
        let indices: Vec<usize> = (0..24).collect();
        assert_eq!(
            t,
            DecisionTree::train_on(&d, &pre, &indices, &TreeConfig::default())
        );
        // No split may carry a non-finite threshold.
        fn thresholds_finite(node: &Node) -> bool {
            match node {
                Node::Leaf { .. } => true,
                Node::Split {
                    threshold,
                    left,
                    right,
                    ..
                } => threshold.is_finite() && thresholds_finite(left) && thresholds_finite(right),
            }
        }
        assert!(thresholds_finite(&t.root));
    }

    /// An all-NaN feature matrix offers no usable split: training must not
    /// panic and must fall back to the majority leaf.
    #[test]
    fn all_nan_features_fall_back_to_majority() {
        let xs: Vec<Vec<f64>> = (0..9).map(|_| vec![f64::NAN, f64::NAN]).collect();
        let ys: Vec<usize> = (0..9).map(|i| usize::from(i < 3)).collect();
        let d = Dataset::new(xs, ys, 2).unwrap();
        let t = DecisionTree::train(&d, &TreeConfig::default());
        assert_eq!(t.predict(&[f64::NAN, f64::NAN]), 0);
        assert_eq!(t.predict(&[1.0, 1.0]), 0);
    }
}
