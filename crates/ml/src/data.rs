//! Datasets: fixed-length feature vectors with class labels.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Error constructing a [`Dataset`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DataError {
    /// Feature rows have differing lengths.
    RaggedRows,
    /// `labels.len() != features.len()`.
    LengthMismatch,
    /// A label is `>= n_classes`.
    LabelOutOfRange,
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::RaggedRows => write!(f, "feature rows have differing lengths"),
            DataError::LengthMismatch => write!(f, "labels and features differ in length"),
            DataError::LabelOutOfRange => write!(f, "label out of range"),
        }
    }
}

impl std::error::Error for DataError {}

/// A supervised classification dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    features: Vec<Vec<f64>>,
    labels: Vec<usize>,
    n_classes: usize,
}

impl Dataset {
    /// Creates a dataset from feature rows and class labels.
    ///
    /// # Errors
    ///
    /// See [`DataError`].
    pub fn new(
        features: Vec<Vec<f64>>,
        labels: Vec<usize>,
        n_classes: usize,
    ) -> Result<Dataset, DataError> {
        if features.len() != labels.len() {
            return Err(DataError::LengthMismatch);
        }
        if let Some(first) = features.first() {
            if features.iter().any(|r| r.len() != first.len()) {
                return Err(DataError::RaggedRows);
            }
        }
        if labels.iter().any(|&l| l >= n_classes) {
            return Err(DataError::LabelOutOfRange);
        }
        Ok(Dataset {
            features,
            labels,
            n_classes,
        })
    }

    /// Number of examples.
    pub fn len(&self) -> usize {
        self.features.len()
    }

    /// Whether the dataset has no examples.
    pub fn is_empty(&self) -> bool {
        self.features.is_empty()
    }

    /// Number of features per example (0 for an empty dataset).
    pub fn n_features(&self) -> usize {
        self.features.first().map_or(0, Vec::len)
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Feature row of example `i`.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.features[i]
    }

    /// Label of example `i`.
    pub fn label(&self, i: usize) -> usize {
        self.labels[i]
    }

    /// All labels.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// The subset of examples at `indices` (cloned).
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        Dataset {
            features: indices.iter().map(|&i| self.features[i].clone()).collect(),
            labels: indices.iter().map(|&i| self.labels[i]).collect(),
            n_classes: self.n_classes,
        }
    }

    /// Class histogram of the dataset.
    pub fn class_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.n_classes];
        for &l in &self.labels {
            counts[l] += 1;
        }
        counts
    }

    /// The most frequent class (ties broken towards the smaller label).
    pub fn majority_class(&self) -> usize {
        let counts = self.class_counts();
        counts
            .iter()
            .enumerate()
            .max_by_key(|(i, &c)| (c, usize::MAX - i))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    /// Per-feature mean and standard deviation (σ of 0 is reported as 1 so
    /// standardisation is always well-defined).
    pub fn feature_stats(&self) -> Vec<(f64, f64)> {
        let n = self.len().max(1) as f64;
        let d = self.n_features();
        let mut stats = vec![(0.0, 0.0); d];
        for row in &self.features {
            for (j, &v) in row.iter().enumerate() {
                stats[j].0 += v;
            }
        }
        for s in &mut stats {
            s.0 /= n;
        }
        for row in &self.features {
            for (j, &v) in row.iter().enumerate() {
                let dlt = v - stats[j].0;
                stats[j].1 += dlt * dlt;
            }
        }
        for s in &mut stats {
            s.1 = (s.1 / n).sqrt();
            if s.1 < 1e-12 {
                s.1 = 1.0;
            }
        }
        stats
    }

    /// Returns the dataset standardised with the given per-feature stats
    /// (compute stats on the training split; apply to both splits).
    pub fn standardized(&self, stats: &[(f64, f64)]) -> Dataset {
        let features = self
            .features
            .iter()
            .map(|row| {
                row.iter()
                    .zip(stats)
                    .map(|(&v, &(m, s))| (v - m) / s)
                    .collect()
            })
            .collect();
        Dataset {
            features,
            labels: self.labels.clone(),
            n_classes: self.n_classes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        Dataset::new(
            vec![vec![0.0, 2.0], vec![1.0, 4.0], vec![2.0, 6.0], vec![3.0, 8.0]],
            vec![0, 0, 1, 1],
            2,
        )
        .unwrap()
    }

    #[test]
    fn construction_validates() {
        assert_eq!(
            Dataset::new(vec![vec![1.0], vec![1.0, 2.0]], vec![0, 0], 1),
            Err(DataError::RaggedRows)
        );
        assert_eq!(
            Dataset::new(vec![vec![1.0]], vec![0, 1], 2),
            Err(DataError::LengthMismatch)
        );
        assert_eq!(
            Dataset::new(vec![vec![1.0]], vec![3], 2),
            Err(DataError::LabelOutOfRange)
        );
    }

    #[test]
    fn accessors() {
        let d = toy();
        assert_eq!(d.len(), 4);
        assert_eq!(d.n_features(), 2);
        assert_eq!(d.row(2), &[2.0, 6.0]);
        assert_eq!(d.label(2), 1);
        assert_eq!(d.class_counts(), vec![2, 2]);
    }

    #[test]
    fn subset_selects_rows() {
        let d = toy().subset(&[3, 0]);
        assert_eq!(d.len(), 2);
        assert_eq!(d.row(0), &[3.0, 8.0]);
        assert_eq!(d.label(1), 0);
    }

    #[test]
    fn majority_class_breaks_ties_low() {
        let d = toy();
        assert_eq!(d.majority_class(), 0);
        let e = Dataset::new(vec![vec![0.0]; 3], vec![1, 1, 0], 3).unwrap();
        assert_eq!(e.majority_class(), 1);
    }

    #[test]
    fn standardization_centers_and_scales() {
        let d = toy();
        let stats = d.feature_stats();
        let z = d.standardized(&stats);
        // Column means ≈ 0.
        for j in 0..2 {
            let mean: f64 = (0..z.len()).map(|i| z.row(i)[j]).sum::<f64>() / z.len() as f64;
            assert!(mean.abs() < 1e-12);
        }
    }

    #[test]
    fn zero_variance_feature_is_safe() {
        let d = Dataset::new(vec![vec![5.0], vec![5.0]], vec![0, 1], 2).unwrap();
        let stats = d.feature_stats();
        let z = d.standardized(&stats);
        assert!(z.row(0)[0].is_finite());
    }
}
