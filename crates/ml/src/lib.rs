//! # fegen-ml — the machine-learning substrate
//!
//! The paper uses two learners, both re-implemented here from scratch:
//!
//! - a **C4.5-style decision tree** ([`tree::DecisionTree`]) — "selected for
//!   its speed" as the fitness oracle of the feature search (§VI) and as the
//!   shared model of the Figure 15 comparison;
//! - a **support-vector machine** ([`svm::Svm`]) with a Gaussian RBF kernel
//!   (σ = 1, C = 10) trained one-vs-all — the state-of-the-art comparison
//!   scheme of Stephenson & Amarasinghe (§VII-B.2).
//!
//! Plus the supporting machinery:
//!
//! - [`data::Dataset`] — fixed-length feature vectors with class labels;
//! - [`cv::KFold`] — seeded k-fold cross-validation splits (the paper uses
//!   ten folds, with loops used for learning *never* used for evaluation);
//! - [`metrics`] — accuracy and the paper's headline metric, *percentage of
//!   the maximum available speedup*.
//!
//! ```
//! use fegen_ml::data::Dataset;
//! use fegen_ml::tree::{DecisionTree, TreeConfig};
//!
//! // y = x0 > 0.5, learnable by a depth-1 tree.
//! let xs: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64 / 20.0]).collect();
//! let ys: Vec<usize> = (0..20).map(|i| usize::from(i >= 10)).collect();
//! let data = Dataset::new(xs, ys, 2)?;
//! let tree = DecisionTree::train(&data, &TreeConfig::default());
//! assert_eq!(tree.predict(&[0.1]), 0);
//! assert_eq!(tree.predict(&[0.9]), 1);
//! # Ok::<(), fegen_ml::data::DataError>(())
//! ```


// Library code must report through telemetry events or typed errors,
// never by printing; binaries are exempt (their crate roots are in bin/).
#![deny(clippy::print_stdout, clippy::print_stderr)]

pub mod cv;
pub mod data;
pub mod metrics;
pub mod svm;
pub mod tree;

pub use cv::{KFold, TooFewExamples};
pub use data::Dataset;
pub use svm::{Svm, SvmConfig};
pub use tree::{DecisionTree, Presorted, TreeConfig};
