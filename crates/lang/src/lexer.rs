//! Hand-written scanner for Tiny-C.

use crate::token::{Token, TokenKind};
use crate::{Error, Phase};

/// Lexes `source` into a token stream terminated by [`TokenKind::Eof`].
///
/// Supports `//` line comments and `/* ... */` block comments.
///
/// # Errors
///
/// Returns an error on unknown characters, malformed numbers and unterminated
/// block comments.
///
/// ```
/// let toks = fegen_lang::lexer::lex("x = 1; // set x")?;
/// assert_eq!(toks.len(), 5); // ident, '=', 1, ';', eof
/// # Ok::<(), fegen_lang::Error>(())
/// ```
pub fn lex(source: &str) -> Result<Vec<Token>, Error> {
    Lexer::new(source).run()
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    out: Vec<Token>,
}

impl<'a> Lexer<'a> {
    fn new(source: &'a str) -> Self {
        Lexer {
            src: source.as_bytes(),
            pos: 0,
            line: 1,
            out: Vec::new(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn err(&self, message: impl Into<String>) -> Error {
        Error::new(Phase::Lex, message, Some(self.line))
    }

    fn push(&mut self, kind: TokenKind) {
        self.out.push(Token {
            kind,
            line: self.line,
        });
    }

    fn run(mut self) -> Result<Vec<Token>, Error> {
        while let Some(c) = self.peek() {
            match c {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.bump();
                }
                b'/' if self.peek2() == Some(b'/') => {
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                b'/' if self.peek2() == Some(b'*') => {
                    self.bump();
                    self.bump();
                    let mut closed = false;
                    while let Some(c) = self.bump() {
                        if c == b'*' && self.peek() == Some(b'/') {
                            self.bump();
                            closed = true;
                            break;
                        }
                    }
                    if !closed {
                        return Err(self.err("unterminated block comment"));
                    }
                }
                b'0'..=b'9' => self.number()?,
                b'a'..=b'z' | b'A'..=b'Z' | b'_' => self.ident(),
                _ => self.symbol()?,
            }
        }
        self.push(TokenKind::Eof);
        Ok(self.out)
    }

    fn number(&mut self) -> Result<(), Error> {
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.bump();
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') && matches!(self.peek2(), Some(b'0'..=b'9')) {
            is_float = true;
            self.bump();
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.bump();
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            let save = self.pos;
            self.bump();
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.bump();
            }
            if matches!(self.peek(), Some(b'0'..=b'9')) {
                is_float = true;
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.bump();
                }
            } else {
                // Not an exponent after all (e.g. identifier follows).
                self.pos = save;
            }
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).expect("ascii digits");
        if is_float {
            let v: f64 = text
                .parse()
                .map_err(|_| self.err(format!("malformed float literal `{text}`")))?;
            self.push(TokenKind::FloatLit(v));
        } else {
            let v: i64 = text
                .parse()
                .map_err(|_| self.err(format!("integer literal out of range `{text}`")))?;
            self.push(TokenKind::IntLit(v));
        }
        Ok(())
    }

    fn ident(&mut self) {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'_')
        ) {
            self.bump();
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).expect("ascii ident");
        let kind = match text {
            "int" => TokenKind::KwInt,
            "float" => TokenKind::KwFloat,
            "void" => TokenKind::KwVoid,
            "if" => TokenKind::KwIf,
            "else" => TokenKind::KwElse,
            "while" => TokenKind::KwWhile,
            "for" => TokenKind::KwFor,
            "return" => TokenKind::KwReturn,
            _ => TokenKind::Ident(text.to_owned()),
        };
        self.push(kind);
    }

    fn symbol(&mut self) -> Result<(), Error> {
        let c = self.bump().expect("caller checked peek");
        let two = |l: &mut Self, second: u8, long: TokenKind, short: TokenKind| {
            if l.peek() == Some(second) {
                l.bump();
                long
            } else {
                short
            }
        };
        let kind = match c {
            b'(' => TokenKind::LParen,
            b')' => TokenKind::RParen,
            b'{' => TokenKind::LBrace,
            b'}' => TokenKind::RBrace,
            b'[' => TokenKind::LBracket,
            b']' => TokenKind::RBracket,
            b';' => TokenKind::Semi,
            b',' => TokenKind::Comma,
            b'+' => TokenKind::Plus,
            b'-' => TokenKind::Minus,
            b'*' => TokenKind::Star,
            b'/' => TokenKind::Slash,
            b'%' => TokenKind::Percent,
            b'^' => TokenKind::Caret,
            b'=' => two(self, b'=', TokenKind::EqEq, TokenKind::Assign),
            b'!' => two(self, b'=', TokenKind::Ne, TokenKind::Bang),
            b'&' => two(self, b'&', TokenKind::AndAnd, TokenKind::Amp),
            b'|' => two(self, b'|', TokenKind::OrOr, TokenKind::Pipe),
            b'<' => {
                if self.peek() == Some(b'<') {
                    self.bump();
                    TokenKind::Shl
                } else {
                    two(self, b'=', TokenKind::Le, TokenKind::Lt)
                }
            }
            b'>' => {
                if self.peek() == Some(b'>') {
                    self.bump();
                    TokenKind::Shr
                } else {
                    two(self, b'=', TokenKind::Ge, TokenKind::Gt)
                }
            }
            other => {
                return Err(self.err(format!("unexpected character `{}`", other as char)));
            }
        };
        self.push(kind);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token::TokenKind::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_simple_assignment() {
        assert_eq!(
            kinds("x = 1;"),
            vec![Ident("x".into()), Assign, IntLit(1), Semi, Eof]
        );
    }

    #[test]
    fn lexes_keywords_and_idents() {
        assert_eq!(
            kinds("int floaty for while"),
            vec![KwInt, Ident("floaty".into()), KwFor, KwWhile, Eof]
        );
    }

    #[test]
    fn lexes_float_literals() {
        assert_eq!(kinds("1.5"), vec![FloatLit(1.5), Eof]);
        assert_eq!(kinds("2.5e3"), vec![FloatLit(2500.0), Eof]);
        assert_eq!(kinds("1e2"), vec![FloatLit(100.0), Eof]);
    }

    #[test]
    fn integer_followed_by_ident_not_exponent() {
        assert_eq!(kinds("3else"), vec![IntLit(3), KwElse, Eof]);
    }

    #[test]
    fn lexes_two_char_operators() {
        assert_eq!(
            kinds("<= >= == != && || << >>"),
            vec![Le, Ge, EqEq, Ne, AndAnd, OrOr, Shl, Shr, Eof]
        );
    }

    #[test]
    fn distinguishes_single_and_double_chars() {
        assert_eq!(kinds("< <= & &&"), vec![Lt, Le, Amp, AndAnd, Eof]);
    }

    #[test]
    fn skips_line_comments() {
        assert_eq!(kinds("a // comment\n b"), vec![
            Ident("a".into()),
            Ident("b".into()),
            Eof
        ]);
    }

    #[test]
    fn skips_block_comments() {
        assert_eq!(kinds("a /* x\ny */ b"), vec![
            Ident("a".into()),
            Ident("b".into()),
            Eof
        ]);
    }

    #[test]
    fn unterminated_block_comment_is_error() {
        assert!(lex("/* never ends").is_err());
    }

    #[test]
    fn unknown_character_is_error() {
        let err = lex("a $ b").unwrap_err();
        assert!(err.message.contains('$'));
    }

    #[test]
    fn tracks_line_numbers() {
        let toks = lex("a\nb\n\nc").unwrap();
        let lines: Vec<u32> = toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4, 4]);
    }

    #[test]
    fn huge_integer_is_error() {
        assert!(lex("99999999999999999999999").is_err());
    }
}
