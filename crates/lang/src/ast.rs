//! Abstract syntax tree for Tiny-C, plus ergonomic builders.
//!
//! The AST is deliberately close to a subset of C: scalar `int`/`float`
//! variables, fixed-size one- and two-dimensional arrays, structured control
//! flow (`if`, `while`, `for`), assignments and function calls. This is the
//! vocabulary the MediaBench/MiBench/UTDSP-style kernels in `fegen-suite`
//! are written in.

/// Scalar element type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scalar {
    /// 32-bit signed integer semantics (stored as `i64` in the interpreter).
    Int,
    /// 64-bit float semantics.
    Float,
}

/// A Tiny-C type.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Type {
    /// `int`
    Int,
    /// `float`
    Float,
    /// `void` — only valid as a function return type.
    Void,
    /// Fixed-size array; `dims` has one or two extents.
    Array {
        /// Element type.
        elem: Scalar,
        /// Extents; `dims.len()` is 1 or 2.
        dims: Vec<usize>,
    },
}

impl Type {
    /// One-dimensional `int` array type.
    pub fn int_array(n: usize) -> Type {
        Type::Array {
            elem: Scalar::Int,
            dims: vec![n],
        }
    }

    /// One-dimensional `float` array type.
    pub fn float_array(n: usize) -> Type {
        Type::Array {
            elem: Scalar::Float,
            dims: vec![n],
        }
    }

    /// Two-dimensional array type.
    pub fn array2(elem: Scalar, rows: usize, cols: usize) -> Type {
        Type::Array {
            elem,
            dims: vec![rows, cols],
        }
    }

    /// Whether this is a scalar (`int` or `float`) type.
    pub fn is_scalar(&self) -> bool {
        matches!(self, Type::Int | Type::Float)
    }

    /// The scalar kind of this type (element type for arrays).
    ///
    /// Returns `None` for `void`.
    pub fn scalar(&self) -> Option<Scalar> {
        match self {
            Type::Int => Some(Scalar::Int),
            Type::Float => Some(Scalar::Float),
            Type::Void => None,
            Type::Array { elem, .. } => Some(*elem),
        }
    }
}

/// A complete program: global variables and functions.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    /// Global variable declarations (zero-initialised).
    pub globals: Vec<VarDecl>,
    /// Function definitions, in source order.
    pub functions: Vec<Function>,
}

impl Program {
    /// Creates an empty program.
    pub fn new() -> Self {
        Self::default()
    }

    /// Looks up a function by name.
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.functions.iter().find(|f| f.name == name)
    }
}

/// A variable declaration (global or local).
#[derive(Debug, Clone, PartialEq)]
pub struct VarDecl {
    /// Variable name.
    pub name: String,
    /// Declared type.
    pub ty: Type,
}

/// A function parameter. Arrays are passed by reference.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// Parameter name.
    pub name: String,
    /// Declared type.
    pub ty: Type,
}

/// A function definition.
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    /// Function name (unique within the program).
    pub name: String,
    /// Return type (`int`, `float` or `void`).
    pub ret: Type,
    /// Parameters in declaration order.
    pub params: Vec<Param>,
    /// Function body.
    pub body: Block,
}

/// A `{ ... }` block of statements.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Block {
    /// Statements in order.
    pub stmts: Vec<Stmt>,
}

impl Block {
    /// Creates a block from statements.
    pub fn new(stmts: Vec<Stmt>) -> Self {
        Block { stmts }
    }
}

impl FromIterator<Stmt> for Block {
    fn from_iter<T: IntoIterator<Item = Stmt>>(iter: T) -> Self {
        Block {
            stmts: iter.into_iter().collect(),
        }
    }
}

/// A statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// Local variable declaration.
    Decl(VarDecl),
    /// `target = value;`
    Assign {
        /// Assignment target.
        target: LValue,
        /// Right-hand side.
        value: Expr,
    },
    /// `if (cond) { .. } else { .. }`
    If {
        /// Condition (int-valued; non-zero is true).
        cond: Expr,
        /// Then branch.
        then_blk: Block,
        /// Optional else branch.
        else_blk: Option<Block>,
    },
    /// `while (cond) { .. }`
    While {
        /// Loop condition.
        cond: Expr,
        /// Loop body.
        body: Block,
    },
    /// `for (init; cond; step) { .. }` — `init` and `step` are assignments.
    For {
        /// Optional initialisation assignment.
        init: Option<Box<Stmt>>,
        /// Loop condition.
        cond: Expr,
        /// Optional step assignment.
        step: Option<Box<Stmt>>,
        /// Loop body.
        body: Block,
    },
    /// `return;` or `return expr;`
    Return(Option<Expr>),
    /// Expression evaluated for side effects (a call).
    ExprStmt(Expr),
    /// Nested block.
    Block(Block),
}

/// An assignable location: a variable or an array element.
#[derive(Debug, Clone, PartialEq)]
pub struct LValue {
    /// Variable name.
    pub name: String,
    /// Zero, one or two index expressions.
    pub indices: Vec<Expr>,
}

impl LValue {
    /// Scalar variable lvalue.
    pub fn var(name: impl Into<String>) -> Self {
        LValue {
            name: name.into(),
            indices: Vec::new(),
        }
    }

    /// One-dimensional array element lvalue.
    pub fn index(name: impl Into<String>, idx: Expr) -> Self {
        LValue {
            name: name.into(),
            indices: vec![idx],
        }
    }

    /// Two-dimensional array element lvalue.
    pub fn index2(name: impl Into<String>, i: Expr, j: Expr) -> Self {
        LValue {
            name: name.into(),
            indices: vec![i, j],
        }
    }
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%` (ints only)
    Rem,
    /// `<<` (ints only)
    Shl,
    /// `>>` (ints only)
    Shr,
    /// `&` (ints only)
    BitAnd,
    /// `|` (ints only)
    BitOr,
    /// `^` (ints only)
    BitXor,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `&&` (short-circuit)
    And,
    /// `||` (short-circuit)
    Or,
}

impl BinOp {
    /// Whether this operator produces an `int` regardless of operand type.
    pub fn is_comparison(&self) -> bool {
        use BinOp::*;
        matches!(self, Lt | Le | Gt | Ge | Eq | Ne | And | Or)
    }

    /// Whether this operator only accepts integer operands.
    pub fn int_only(&self) -> bool {
        use BinOp::*;
        matches!(self, Rem | Shl | Shr | BitAnd | BitOr | BitXor)
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Logical not (result is `int` 0/1).
    Not,
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal.
    IntLit(i64),
    /// Float literal.
    FloatLit(f64),
    /// Scalar variable reference.
    Var(String),
    /// Array element read.
    Index {
        /// Array name.
        name: String,
        /// One or two index expressions.
        indices: Vec<Expr>,
    },
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnOp,
        /// Operand.
        expr: Box<Expr>,
    },
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Function call.
    Call {
        /// Callee name.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
    },
}

/// Expression-builder sugar. The arithmetic method names mirror the C
/// operators they build (`add` builds `+`), which reads better at call
/// sites than operator overloading on AST nodes would.
#[allow(clippy::should_implement_trait)]
impl Expr {
    /// Integer literal builder.
    pub fn int(v: i64) -> Expr {
        Expr::IntLit(v)
    }

    /// Float literal builder.
    pub fn float(v: f64) -> Expr {
        Expr::FloatLit(v)
    }

    /// Variable reference builder.
    pub fn var(name: impl Into<String>) -> Expr {
        Expr::Var(name.into())
    }

    /// One-dimensional array read builder.
    pub fn index(name: impl Into<String>, idx: Expr) -> Expr {
        Expr::Index {
            name: name.into(),
            indices: vec![idx],
        }
    }

    /// Two-dimensional array read builder.
    pub fn index2(name: impl Into<String>, i: Expr, j: Expr) -> Expr {
        Expr::Index {
            name: name.into(),
            indices: vec![i, j],
        }
    }

    /// Call expression builder.
    pub fn call(name: impl Into<String>, args: Vec<Expr>) -> Expr {
        Expr::Call {
            name: name.into(),
            args,
        }
    }

    /// Binary expression builder.
    pub fn bin(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Binary {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        }
    }

    /// `self + rhs`
    pub fn add(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Add, self, rhs)
    }

    /// `self - rhs`
    pub fn sub(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Sub, self, rhs)
    }

    /// `self * rhs`
    pub fn mul(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Mul, self, rhs)
    }

    /// `self / rhs`
    pub fn div(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Div, self, rhs)
    }

    /// `self % rhs`
    pub fn rem(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Rem, self, rhs)
    }

    /// `self < rhs`
    pub fn lt(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Lt, self, rhs)
    }

    /// `self <= rhs`
    pub fn le(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Le, self, rhs)
    }

    /// `self > rhs`
    pub fn gt(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Gt, self, rhs)
    }

    /// `self == rhs`
    pub fn eq(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Eq, self, rhs)
    }

    /// `self != rhs`
    pub fn ne(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Ne, self, rhs)
    }

    /// `-self`
    pub fn neg(self) -> Expr {
        Expr::Unary {
            op: UnOp::Neg,
            expr: Box::new(self),
        }
    }
}

/// Statement builders used heavily by the benchmark generator.
impl Stmt {
    /// `name = value;`
    pub fn assign(name: impl Into<String>, value: Expr) -> Stmt {
        Stmt::Assign {
            target: LValue::var(name),
            value,
        }
    }

    /// `name[idx] = value;`
    pub fn assign_index(name: impl Into<String>, idx: Expr, value: Expr) -> Stmt {
        Stmt::Assign {
            target: LValue::index(name, idx),
            value,
        }
    }

    /// A canonical counted loop `for (var = from; var < to; var = var + 1) body`.
    pub fn for_range(var: &str, from: Expr, to: Expr, body: Block) -> Stmt {
        Stmt::For {
            init: Some(Box::new(Stmt::assign(var, from))),
            cond: Expr::var(var).lt(to),
            step: Some(Box::new(Stmt::assign(
                var,
                Expr::var(var).add(Expr::int(1)),
            ))),
            body,
        }
    }

    /// Local declaration `int name;` / `float name;`.
    pub fn decl(name: impl Into<String>, ty: Type) -> Stmt {
        Stmt::Decl(VarDecl {
            name: name.into(),
            ty,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_helpers() {
        assert!(Type::Int.is_scalar());
        assert!(!Type::int_array(4).is_scalar());
        assert_eq!(Type::float_array(8).scalar(), Some(Scalar::Float));
        assert_eq!(Type::Void.scalar(), None);
        assert_eq!(
            Type::array2(Scalar::Int, 2, 3),
            Type::Array {
                elem: Scalar::Int,
                dims: vec![2, 3]
            }
        );
    }

    #[test]
    fn expr_builders_compose() {
        let e = Expr::var("a").add(Expr::int(1)).mul(Expr::var("b"));
        match e {
            Expr::Binary {
                op: BinOp::Mul, ..
            } => {}
            other => panic!("expected mul at root, got {other:?}"),
        }
    }

    #[test]
    fn for_range_builder_shape() {
        let s = Stmt::for_range("i", Expr::int(0), Expr::int(10), Block::default());
        match s {
            Stmt::For {
                init: Some(_),
                step: Some(_),
                cond: Expr::Binary { op: BinOp::Lt, .. },
                ..
            } => {}
            other => panic!("unexpected shape {other:?}"),
        }
    }

    #[test]
    fn binop_classification() {
        assert!(BinOp::Lt.is_comparison());
        assert!(!BinOp::Add.is_comparison());
        assert!(BinOp::Shl.int_only());
        assert!(!BinOp::Div.int_only());
    }
}
