//! Pretty printer for Tiny-C programs.
//!
//! Output of [`print_program`] re-parses to an equal AST (round-trip property
//! tested in the crate's property tests).

use crate::ast::*;
use std::fmt::Write;

/// Renders a program as Tiny-C source text.
///
/// ```
/// let p = fegen_lang::parse_program("int f(int x){return x;}")?;
/// let text = fegen_lang::print_program(&p);
/// assert!(text.contains("int f(int x)"));
/// # Ok::<(), fegen_lang::Error>(())
/// ```
pub fn print_program(program: &Program) -> String {
    let mut out = String::new();
    for g in &program.globals {
        print_decl(&mut out, g, 0);
    }
    if !program.globals.is_empty() {
        out.push('\n');
    }
    for (i, f) in program.functions.iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        print_function(&mut out, f);
    }
    out
}

fn type_prefix(ty: &Type) -> &'static str {
    match ty {
        Type::Int => "int",
        Type::Float => "float",
        Type::Void => "void",
        Type::Array { elem, .. } => match elem {
            Scalar::Int => "int",
            Scalar::Float => "float",
        },
    }
}

fn type_suffix(ty: &Type) -> String {
    match ty {
        Type::Array { dims, .. } => dims.iter().map(|d| format!("[{d}]")).collect(),
        _ => String::new(),
    }
}

fn print_decl(out: &mut String, d: &VarDecl, indent: usize) {
    let pad = "    ".repeat(indent);
    let _ = writeln!(
        out,
        "{pad}{} {}{};",
        type_prefix(&d.ty),
        d.name,
        type_suffix(&d.ty)
    );
}

fn print_function(out: &mut String, f: &Function) {
    let params: Vec<String> = f
        .params
        .iter()
        .map(|p| format!("{} {}{}", type_prefix(&p.ty), p.name, type_suffix(&p.ty)))
        .collect();
    let _ = writeln!(
        out,
        "{} {}({}) {{",
        type_prefix(&f.ret),
        f.name,
        params.join(", ")
    );
    for s in &f.body.stmts {
        print_stmt(out, s, 1);
    }
    out.push_str("}\n");
}

fn print_block(out: &mut String, b: &Block, indent: usize) {
    out.push_str("{\n");
    for s in &b.stmts {
        print_stmt(out, s, indent + 1);
    }
    let pad = "    ".repeat(indent);
    let _ = write!(out, "{pad}}}");
}

fn print_stmt(out: &mut String, s: &Stmt, indent: usize) {
    let pad = "    ".repeat(indent);
    match s {
        Stmt::Decl(d) => print_decl(out, d, indent),
        Stmt::Assign { target, value } => {
            let _ = writeln!(
                out,
                "{pad}{} = {};",
                lvalue_str(target),
                expr_str(value, 0)
            );
        }
        Stmt::If {
            cond,
            then_blk,
            else_blk,
        } => {
            let _ = write!(out, "{pad}if ({}) ", expr_str(cond, 0));
            print_block(out, then_blk, indent);
            if let Some(e) = else_blk {
                out.push_str(" else ");
                print_block(out, e, indent);
            }
            out.push('\n');
        }
        Stmt::While { cond, body } => {
            let _ = write!(out, "{pad}while ({}) ", expr_str(cond, 0));
            print_block(out, body, indent);
            out.push('\n');
        }
        Stmt::For {
            init,
            cond,
            step,
            body,
        } => {
            let clause = |s: &Option<Box<Stmt>>| -> String {
                match s {
                    Some(b) => match b.as_ref() {
                        Stmt::Assign { target, value } => {
                            format!("{} = {}", lvalue_str(target), expr_str(value, 0))
                        }
                        _ => String::new(),
                    },
                    None => String::new(),
                }
            };
            let _ = write!(
                out,
                "{pad}for ({}; {}; {}) ",
                clause(init),
                expr_str(cond, 0),
                clause(step)
            );
            print_block(out, body, indent);
            out.push('\n');
        }
        Stmt::Return(None) => {
            let _ = writeln!(out, "{pad}return;");
        }
        Stmt::Return(Some(e)) => {
            let _ = writeln!(out, "{pad}return {};", expr_str(e, 0));
        }
        Stmt::ExprStmt(e) => {
            let _ = writeln!(out, "{pad}{};", expr_str(e, 0));
        }
        Stmt::Block(b) => {
            let _ = write!(out, "{pad}");
            print_block(out, b, indent);
            out.push('\n');
        }
    }
}

fn lvalue_str(lv: &LValue) -> String {
    let mut s = lv.name.clone();
    for idx in &lv.indices {
        let _ = write!(s, "[{}]", expr_str(idx, 0));
    }
    s
}

fn binop_str(op: BinOp) -> &'static str {
    use BinOp::*;
    match op {
        Add => "+",
        Sub => "-",
        Mul => "*",
        Div => "/",
        Rem => "%",
        Shl => "<<",
        Shr => ">>",
        BitAnd => "&",
        BitOr => "|",
        BitXor => "^",
        Lt => "<",
        Le => "<=",
        Gt => ">",
        Ge => ">=",
        Eq => "==",
        Ne => "!=",
        And => "&&",
        Or => "||",
    }
}

fn binop_prec(op: BinOp) -> u8 {
    use BinOp::*;
    match op {
        Or => 1,
        And => 2,
        BitOr => 3,
        BitXor => 4,
        BitAnd => 5,
        Eq | Ne => 6,
        Lt | Le | Gt | Ge => 7,
        Shl | Shr => 8,
        Add | Sub => 9,
        Mul | Div | Rem => 10,
    }
}

/// Renders `e`, parenthesising when the operator binds no tighter than the
/// enclosing precedence `min_prec`.
fn expr_str(e: &Expr, min_prec: u8) -> String {
    match e {
        Expr::IntLit(v) => v.to_string(),
        Expr::FloatLit(v) => {
            let s = format!("{v}");
            if s.contains('.') || s.contains('e') || s.contains("inf") || s.contains("NaN") {
                s
            } else {
                format!("{s}.0")
            }
        }
        Expr::Var(name) => name.clone(),
        Expr::Index { name, indices } => {
            let mut s = name.clone();
            for idx in indices {
                let _ = write!(s, "[{}]", expr_str(idx, 0));
            }
            s
        }
        Expr::Unary { op, expr } => {
            let sym = match op {
                UnOp::Neg => "-",
                UnOp::Not => "!",
            };
            format!("{sym}{}", expr_str(expr, 11))
        }
        Expr::Binary { op, lhs, rhs } => {
            let prec = binop_prec(*op);
            let body = format!(
                "{} {} {}",
                expr_str(lhs, prec),
                binop_str(*op),
                // +1: left associativity, right operand needs higher binding.
                expr_str(rhs, prec + 1)
            );
            if prec < min_prec {
                format!("({body})")
            } else {
                body
            }
        }
        Expr::Call { name, args } => {
            let args: Vec<String> = args.iter().map(|a| expr_str(a, 0)).collect();
            format!("{name}({})", args.join(", "))
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::{parse_program, print_program};

    fn roundtrip(src: &str) {
        let p1 = parse_program(src).unwrap();
        let printed = print_program(&p1);
        let p2 = parse_program(&printed)
            .unwrap_or_else(|e| panic!("reparse failed: {e}\n{printed}"));
        assert_eq!(p1, p2, "roundtrip mismatch:\n{printed}");
    }

    #[test]
    fn roundtrips_simple_function() {
        roundtrip("int f(int x) { return x + 1; }");
    }

    #[test]
    fn roundtrips_control_flow() {
        roundtrip(
            "int f(int n, int a[16]) {\n\
               int i; int s;\n\
               s = 0;\n\
               for (i = 0; i < n; i = i + 1) {\n\
                 if (a[i] > 0) { s = s + a[i]; } else { s = s - 1; }\n\
               }\n\
               while (s > 100) { s = s >> 1; }\n\
               return s;\n\
             }",
        );
    }

    #[test]
    fn roundtrips_precedence_needing_parens() {
        roundtrip("int f(int a, int b, int c) { return (a + b) * c - a * (b - c); }");
    }

    #[test]
    fn roundtrips_globals_and_2d_arrays() {
        roundtrip("float m[4][4]; void f() { m[1][2] = 3.5; }");
    }

    #[test]
    fn roundtrips_float_without_fraction() {
        roundtrip("float f() { return 2.0; }");
    }

    #[test]
    fn roundtrips_logical_operators() {
        roundtrip("int f(int a, int b) { return a > 0 && b > 0 || !(a == b); }");
    }
}
