//! Semantic analysis: name resolution and type checking.
//!
//! Tiny-C's rules are a simplified C:
//!
//! - every variable must be declared before use; no shadowing of a name
//!   within one function scope (declarations are function-scoped, like C89
//!   locals hoisted to the top);
//! - arrays must be indexed with exactly their declared dimensionality and
//!   `int` indices;
//! - `int` and `float` mix implicitly in arithmetic (result is `float`), as
//!   in C, but int-only operators (`%`, shifts, bitwise) demand `int`
//!   operands;
//! - conditions are `int`;
//! - calls must match arity and parameter kinds (scalar vs array, element
//!   type and dimensionality for arrays);
//! - non-`void` functions must return a value on the paths that return;
//!   `void` functions must not return a value.

use crate::ast::*;
use crate::{Error, Phase};
use std::collections::HashMap;

/// Checks the whole program.
///
/// # Errors
///
/// Returns the first semantic error found.
pub fn check(program: &Program) -> Result<(), Error> {
    let mut funcs: HashMap<&str, &Function> = HashMap::new();
    for f in &program.functions {
        if funcs.insert(f.name.as_str(), f).is_some() {
            return Err(err(format!("duplicate function `{}`", f.name)));
        }
        if !matches!(f.ret, Type::Int | Type::Float | Type::Void) {
            return Err(err(format!(
                "function `{}` must return a scalar or void",
                f.name
            )));
        }
    }
    let mut globals: HashMap<&str, &Type> = HashMap::new();
    for g in &program.globals {
        if g.ty == Type::Void {
            return Err(err(format!("global `{}` cannot have type void", g.name)));
        }
        if globals.insert(g.name.as_str(), &g.ty).is_some() {
            return Err(err(format!("duplicate global `{}`", g.name)));
        }
    }
    for f in &program.functions {
        Checker {
            funcs: &funcs,
            globals: &globals,
            locals: HashMap::new(),
            func: f,
        }
        .check_function()?;
    }
    Ok(())
}

fn err(message: impl Into<String>) -> Error {
    Error::new(Phase::Sema, message, None)
}

struct Checker<'a> {
    funcs: &'a HashMap<&'a str, &'a Function>,
    globals: &'a HashMap<&'a str, &'a Type>,
    locals: HashMap<String, Type>,
    func: &'a Function,
}

impl<'a> Checker<'a> {
    fn check_function(&mut self) -> Result<(), Error> {
        for p in &self.func.params {
            if self
                .locals
                .insert(p.name.clone(), p.ty.clone())
                .is_some()
            {
                return Err(err(format!(
                    "duplicate parameter `{}` in `{}`",
                    p.name, self.func.name
                )));
            }
        }
        self.check_block(&self.func.body)
    }

    fn lookup(&self, name: &str) -> Result<Type, Error> {
        if let Some(ty) = self.locals.get(name) {
            return Ok(ty.clone());
        }
        if let Some(ty) = self.globals.get(name) {
            return Ok((*ty).clone());
        }
        Err(err(format!(
            "unknown variable `{name}` in `{}`",
            self.func.name
        )))
    }

    fn check_block(&mut self, block: &Block) -> Result<(), Error> {
        for stmt in &block.stmts {
            self.check_stmt(stmt)?;
        }
        Ok(())
    }

    fn check_stmt(&mut self, stmt: &Stmt) -> Result<(), Error> {
        match stmt {
            Stmt::Decl(d) => {
                if d.ty == Type::Void {
                    return Err(err(format!("local `{}` cannot have type void", d.name)));
                }
                if self.locals.insert(d.name.clone(), d.ty.clone()).is_some() {
                    return Err(err(format!(
                        "duplicate local `{}` in `{}`",
                        d.name, self.func.name
                    )));
                }
                Ok(())
            }
            Stmt::Assign { target, value } => {
                let target_ty = self.check_lvalue(target)?;
                let value_ty = self.check_expr(value)?;
                // Implicit int<->float conversion on assignment, as in C.
                let _ = value_ty;
                let _ = target_ty;
                Ok(())
            }
            Stmt::If {
                cond,
                then_blk,
                else_blk,
            } => {
                self.check_condition(cond)?;
                self.check_block(then_blk)?;
                if let Some(e) = else_blk {
                    self.check_block(e)?;
                }
                Ok(())
            }
            Stmt::While { cond, body } => {
                self.check_condition(cond)?;
                self.check_block(body)
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
            } => {
                if let Some(s) = init {
                    self.check_stmt(s)?;
                }
                self.check_condition(cond)?;
                if let Some(s) = step {
                    self.check_stmt(s)?;
                }
                self.check_block(body)
            }
            Stmt::Return(value) => match (&self.func.ret, value) {
                (Type::Void, None) => Ok(()),
                (Type::Void, Some(_)) => Err(err(format!(
                    "`{}` is void but returns a value",
                    self.func.name
                ))),
                (_, None) => Err(err(format!(
                    "`{}` must return a value",
                    self.func.name
                ))),
                (_, Some(e)) => {
                    let ty = self.check_expr(e)?;
                    if !ty.is_scalar() {
                        return Err(err(format!(
                            "`{}` must return a scalar value",
                            self.func.name
                        )));
                    }
                    Ok(())
                }
            },
            Stmt::ExprStmt(e) => {
                match e {
                    Expr::Call { .. } => {
                        self.check_expr(e)?;
                        Ok(())
                    }
                    _ => Err(err("only call expressions may be used as statements")),
                }
            }
            Stmt::Block(b) => self.check_block(b),
        }
    }

    fn check_condition(&mut self, cond: &Expr) -> Result<(), Error> {
        let ty = self.check_expr(cond)?;
        if !ty.is_scalar() {
            return Err(err("condition must be scalar"));
        }
        Ok(())
    }

    fn check_lvalue(&mut self, lv: &LValue) -> Result<Type, Error> {
        let ty = self.lookup(&lv.name)?;
        self.check_indexing(&lv.name, &ty, &lv.indices)
    }

    fn check_indexing(
        &mut self,
        name: &str,
        ty: &Type,
        indices: &[Expr],
    ) -> Result<Type, Error> {
        match ty {
            Type::Array { elem, dims } => {
                if indices.len() != dims.len() {
                    return Err(err(format!(
                        "array `{name}` has {} dimension(s) but {} index(es) given",
                        dims.len(),
                        indices.len()
                    )));
                }
                for idx in indices {
                    let idx_ty = self.check_expr(idx)?;
                    if idx_ty != Type::Int {
                        return Err(err(format!("index into `{name}` must be int")));
                    }
                }
                Ok(match elem {
                    Scalar::Int => Type::Int,
                    Scalar::Float => Type::Float,
                })
            }
            scalar if indices.is_empty() => Ok(scalar.clone()),
            _ => Err(err(format!("`{name}` is scalar and cannot be indexed"))),
        }
    }

    fn check_expr(&mut self, expr: &Expr) -> Result<Type, Error> {
        match expr {
            Expr::IntLit(_) => Ok(Type::Int),
            Expr::FloatLit(_) => Ok(Type::Float),
            Expr::Var(name) => {
                let ty = self.lookup(name)?;
                if !ty.is_scalar() {
                    return Err(err(format!(
                        "array `{name}` used without indices"
                    )));
                }
                Ok(ty)
            }
            Expr::Index { name, indices } => {
                let ty = self.lookup(name)?;
                self.check_indexing(name, &ty.clone(), indices)
            }
            Expr::Unary { op, expr } => {
                let ty = self.check_expr(expr)?;
                if !ty.is_scalar() {
                    return Err(err("unary operand must be scalar"));
                }
                Ok(match op {
                    UnOp::Neg => ty,
                    UnOp::Not => Type::Int,
                })
            }
            Expr::Binary { op, lhs, rhs } => {
                let lt = self.check_expr(lhs)?;
                let rt = self.check_expr(rhs)?;
                if !lt.is_scalar() || !rt.is_scalar() {
                    return Err(err("binary operands must be scalar"));
                }
                if op.int_only() && (lt != Type::Int || rt != Type::Int) {
                    return Err(err(format!("operator {op:?} requires int operands")));
                }
                if op.is_comparison() {
                    Ok(Type::Int)
                } else if lt == Type::Float || rt == Type::Float {
                    Ok(Type::Float)
                } else {
                    Ok(Type::Int)
                }
            }
            Expr::Call { name, args } => {
                let f = *self
                    .funcs
                    .get(name.as_str())
                    .ok_or_else(|| err(format!("unknown function `{name}`")))?;
                if f.params.len() != args.len() {
                    return Err(err(format!(
                        "call to `{name}` expects {} argument(s), got {}",
                        f.params.len(),
                        args.len()
                    )));
                }
                for (param, arg) in f.params.iter().zip(args) {
                    match &param.ty {
                        Type::Array { elem, dims } => {
                            // Array arguments must be bare array names with
                            // matching element type and dimensionality.
                            let Expr::Var(arg_name) = arg else {
                                return Err(err(format!(
                                    "argument for array parameter `{}` must be an array name",
                                    param.name
                                )));
                            };
                            let arg_ty = self.lookup(arg_name)?;
                            match arg_ty {
                                Type::Array {
                                    elem: ae,
                                    dims: ad,
                                } if ae == *elem && ad.len() == dims.len() => {}
                                _ => {
                                    return Err(err(format!(
                                        "argument `{arg_name}` does not match array \
                                         parameter `{}`",
                                        param.name
                                    )))
                                }
                            }
                        }
                        _ => {
                            let ty = self.check_expr(arg)?;
                            if !ty.is_scalar() {
                                return Err(err(format!(
                                    "argument for scalar parameter `{}` must be scalar",
                                    param.name
                                )));
                            }
                        }
                    }
                }
                if f.ret == Type::Void {
                    // A void call can only appear as a statement; give it a
                    // placeholder scalar type checked at the statement level.
                    Ok(Type::Void)
                } else {
                    Ok(f.ret.clone())
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::parse_program;

    fn ok(src: &str) {
        parse_program(src).unwrap();
    }

    fn fails_with(src: &str, needle: &str) {
        let e = parse_program(src).unwrap_err();
        assert!(
            e.message.contains(needle),
            "expected error containing `{needle}`, got `{}`",
            e.message
        );
    }

    #[test]
    fn accepts_well_typed_program() {
        ok("int g;\n\
            float k[16];\n\
            int f(int n, float a[16]) {\n\
              int i; float s;\n\
              s = 0.0;\n\
              for (i = 0; i < n; i = i + 1) { s = s + a[i] * k[i]; }\n\
              g = g + 1;\n\
              return n;\n\
            }");
    }

    #[test]
    fn rejects_unknown_variable() {
        fails_with("int f() { return x; }", "unknown variable `x`");
    }

    #[test]
    fn rejects_unknown_function() {
        fails_with("int f() { return g(); }", "unknown function `g`");
    }

    #[test]
    fn rejects_duplicate_local() {
        fails_with("int f() { int x; int x; return 0; }", "duplicate local");
    }

    #[test]
    fn rejects_duplicate_function() {
        fails_with("int f() { return 0; } int f() { return 1; }", "duplicate function");
    }

    #[test]
    fn rejects_arity_mismatch() {
        fails_with(
            "int g(int x) { return x; } int f() { return g(); }",
            "expects 1 argument(s)",
        );
    }

    #[test]
    fn rejects_wrong_index_count() {
        fails_with(
            "int a[4][4]; int f() { return a[1]; }",
            "2 dimension(s) but 1 index(es)",
        );
    }

    #[test]
    fn rejects_float_index() {
        fails_with("int a[4]; int f() { return a[1.5]; }", "must be int");
    }

    #[test]
    fn rejects_indexing_scalar() {
        fails_with("int x; int f() { return x[0]; }", "cannot be indexed");
    }

    #[test]
    fn rejects_bare_array_expression() {
        fails_with("int a[4]; int f() { return a; }", "without indices");
    }

    #[test]
    fn rejects_modulo_on_float() {
        fails_with("int f(float x) { return x % 2; }", "requires int operands");
    }

    #[test]
    fn rejects_void_return_with_value() {
        fails_with("void f() { return 1; }", "void but returns a value");
    }

    #[test]
    fn rejects_value_return_missing() {
        fails_with("int f() { return; }", "must return a value");
    }

    #[test]
    fn rejects_array_argument_mismatch() {
        fails_with(
            "int g(float a[4]) { return 0; } int b[4]; int f() { return g(b); }",
            "does not match array parameter",
        );
    }

    #[test]
    fn accepts_array_argument_pass_through() {
        ok("int g(int a[8]) { return a[0]; }\n\
            int f(int a[8]) { return g(a); }");
    }

    #[test]
    fn rejects_non_call_expression_statement() {
        // Parser routes `1 + 2;` away, so build via call-looking form only.
        // Assignment without `=` is a parse error; check the sema path with a
        // call used in expression position of a statement context instead.
        let e = crate::parse_program("void f() { }").map(|_| ());
        assert!(e.is_ok());
    }

    #[test]
    fn implicit_int_float_mixing_is_allowed() {
        ok("float f(int n) { return n * 1.5; }");
    }
}
