//! Recursive-descent parser for Tiny-C.
//!
//! Grammar (iteratively, with standard C precedence for expressions):
//!
//! ```text
//! program   := (global | function)*
//! global    := type ident array-dims? ';'
//! function  := type ident '(' params? ')' block
//! params    := param (',' param)*
//! param     := type ident array-dims?
//! block     := '{' stmt* '}'
//! stmt      := decl | assign ';' | if | while | for | return | call ';' | block
//! ```

use crate::ast::*;
use crate::token::{Token, TokenKind};
use crate::{Error, Phase};

/// Recursive-descent parser over a token stream produced by
/// [`crate::lexer::lex`].
#[derive(Debug)]
pub struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    /// Creates a parser over `tokens` (which must end with `Eof`).
    pub fn new(tokens: Vec<Token>) -> Self {
        Parser { tokens, pos: 0 }
    }

    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos.min(self.tokens.len() - 1)].kind
    }

    fn peek2(&self) -> &TokenKind {
        &self.tokens[(self.pos + 1).min(self.tokens.len() - 1)].kind
    }

    fn line(&self) -> u32 {
        self.tokens[self.pos.min(self.tokens.len() - 1)].line
    }

    fn bump(&mut self) -> TokenKind {
        let t = self.tokens[self.pos.min(self.tokens.len() - 1)].kind.clone();
        if self.pos < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, message: impl Into<String>) -> Error {
        Error::new(Phase::Parse, message, Some(self.line()))
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<(), Error> {
        if self.peek() == kind {
            self.bump();
            Ok(())
        } else {
            Err(self.err(format!("expected `{kind}`, found `{}`", self.peek())))
        }
    }

    fn expect_ident(&mut self) -> Result<String, Error> {
        match self.bump() {
            TokenKind::Ident(s) => Ok(s),
            other => Err(self.err(format!("expected identifier, found `{other}`"))),
        }
    }

    /// Parses a whole program. Consumes the parser.
    ///
    /// # Errors
    ///
    /// Returns the first syntax error encountered.
    pub fn parse_program(mut self) -> Result<Program, Error> {
        let mut program = Program::new();
        while *self.peek() != TokenKind::Eof {
            let base = self.parse_base_type()?;
            let name = self.expect_ident()?;
            if *self.peek() == TokenKind::LParen {
                program
                    .functions
                    .push(self.parse_function_rest(base, name)?);
            } else {
                let ty = self.parse_array_suffix(base)?;
                self.expect(&TokenKind::Semi)?;
                program.globals.push(VarDecl { name, ty });
            }
        }
        Ok(program)
    }

    fn parse_base_type(&mut self) -> Result<Type, Error> {
        match self.bump() {
            TokenKind::KwInt => Ok(Type::Int),
            TokenKind::KwFloat => Ok(Type::Float),
            TokenKind::KwVoid => Ok(Type::Void),
            other => Err(self.err(format!("expected type, found `{other}`"))),
        }
    }

    /// After a scalar base type, parse optional `[N]` / `[N][M]` suffixes.
    fn parse_array_suffix(&mut self, base: Type) -> Result<Type, Error> {
        let mut dims = Vec::new();
        while *self.peek() == TokenKind::LBracket {
            self.bump();
            match self.bump() {
                TokenKind::IntLit(n) if n > 0 => dims.push(n as usize),
                other => {
                    return Err(
                        self.err(format!("expected positive array extent, found `{other}`"))
                    )
                }
            }
            self.expect(&TokenKind::RBracket)?;
        }
        if dims.is_empty() {
            return Ok(base);
        }
        if dims.len() > 2 {
            return Err(self.err("arrays are limited to two dimensions"));
        }
        let elem = match base {
            Type::Int => Scalar::Int,
            Type::Float => Scalar::Float,
            _ => return Err(self.err("array element type must be `int` or `float`")),
        };
        Ok(Type::Array { elem, dims })
    }

    fn parse_function_rest(&mut self, ret: Type, name: String) -> Result<Function, Error> {
        self.expect(&TokenKind::LParen)?;
        let mut params = Vec::new();
        if *self.peek() != TokenKind::RParen {
            loop {
                let base = self.parse_base_type()?;
                let pname = self.expect_ident()?;
                let ty = self.parse_array_suffix(base)?;
                if ty == Type::Void {
                    return Err(self.err("parameter cannot have type `void`"));
                }
                params.push(Param { name: pname, ty });
                if *self.peek() == TokenKind::Comma {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.expect(&TokenKind::RParen)?;
        let body = self.parse_block()?;
        Ok(Function {
            name,
            ret,
            params,
            body,
        })
    }

    fn parse_block(&mut self) -> Result<Block, Error> {
        self.expect(&TokenKind::LBrace)?;
        let mut stmts = Vec::new();
        while *self.peek() != TokenKind::RBrace {
            if *self.peek() == TokenKind::Eof {
                return Err(self.err("unexpected end of input inside block"));
            }
            stmts.push(self.parse_stmt()?);
        }
        self.bump();
        Ok(Block::new(stmts))
    }

    fn parse_stmt(&mut self) -> Result<Stmt, Error> {
        match self.peek() {
            TokenKind::KwInt | TokenKind::KwFloat => {
                let base = self.parse_base_type()?;
                let name = self.expect_ident()?;
                let ty = self.parse_array_suffix(base)?;
                self.expect(&TokenKind::Semi)?;
                Ok(Stmt::Decl(VarDecl { name, ty }))
            }
            TokenKind::KwIf => self.parse_if(),
            TokenKind::KwWhile => self.parse_while(),
            TokenKind::KwFor => self.parse_for(),
            TokenKind::KwReturn => {
                self.bump();
                let value = if *self.peek() == TokenKind::Semi {
                    None
                } else {
                    Some(self.parse_expr()?)
                };
                self.expect(&TokenKind::Semi)?;
                Ok(Stmt::Return(value))
            }
            TokenKind::LBrace => Ok(Stmt::Block(self.parse_block()?)),
            TokenKind::Ident(_) => {
                // Either `name(args);` (call statement) or an assignment.
                if *self.peek2() == TokenKind::LParen {
                    let expr = self.parse_expr()?;
                    self.expect(&TokenKind::Semi)?;
                    Ok(Stmt::ExprStmt(expr))
                } else {
                    let stmt = self.parse_assignment()?;
                    self.expect(&TokenKind::Semi)?;
                    Ok(stmt)
                }
            }
            other => Err(self.err(format!("expected statement, found `{other}`"))),
        }
    }

    /// Parses `lvalue = expr` without the trailing semicolon (shared by
    /// plain assignment statements and `for` init/step clauses).
    fn parse_assignment(&mut self) -> Result<Stmt, Error> {
        let name = self.expect_ident()?;
        let mut indices = Vec::new();
        while *self.peek() == TokenKind::LBracket {
            self.bump();
            indices.push(self.parse_expr()?);
            self.expect(&TokenKind::RBracket)?;
        }
        if indices.len() > 2 {
            return Err(self.err("at most two array indices are supported"));
        }
        self.expect(&TokenKind::Assign)?;
        let value = self.parse_expr()?;
        Ok(Stmt::Assign {
            target: LValue { name, indices },
            value,
        })
    }

    fn parse_if(&mut self) -> Result<Stmt, Error> {
        self.expect(&TokenKind::KwIf)?;
        self.expect(&TokenKind::LParen)?;
        let cond = self.parse_expr()?;
        self.expect(&TokenKind::RParen)?;
        let then_blk = self.parse_block()?;
        let else_blk = if *self.peek() == TokenKind::KwElse {
            self.bump();
            if *self.peek() == TokenKind::KwIf {
                // `else if` sugar: wrap the nested if in a block.
                let nested = self.parse_if()?;
                Some(Block::new(vec![nested]))
            } else {
                Some(self.parse_block()?)
            }
        } else {
            None
        };
        Ok(Stmt::If {
            cond,
            then_blk,
            else_blk,
        })
    }

    fn parse_while(&mut self) -> Result<Stmt, Error> {
        self.expect(&TokenKind::KwWhile)?;
        self.expect(&TokenKind::LParen)?;
        let cond = self.parse_expr()?;
        self.expect(&TokenKind::RParen)?;
        let body = self.parse_block()?;
        Ok(Stmt::While { cond, body })
    }

    fn parse_for(&mut self) -> Result<Stmt, Error> {
        self.expect(&TokenKind::KwFor)?;
        self.expect(&TokenKind::LParen)?;
        let init = if *self.peek() == TokenKind::Semi {
            None
        } else {
            Some(Box::new(self.parse_assignment()?))
        };
        self.expect(&TokenKind::Semi)?;
        let cond = if *self.peek() == TokenKind::Semi {
            // Empty condition means "always true".
            Expr::int(1)
        } else {
            self.parse_expr()?
        };
        self.expect(&TokenKind::Semi)?;
        let step = if *self.peek() == TokenKind::RParen {
            None
        } else {
            Some(Box::new(self.parse_assignment()?))
        };
        self.expect(&TokenKind::RParen)?;
        let body = self.parse_block()?;
        Ok(Stmt::For {
            init,
            cond,
            step,
            body,
        })
    }

    /// Expression parsing with precedence climbing.
    pub(crate) fn parse_expr(&mut self) -> Result<Expr, Error> {
        self.parse_bin(0)
    }

    fn parse_bin(&mut self, min_prec: u8) -> Result<Expr, Error> {
        let mut lhs = self.parse_unary()?;
        while let Some((op, prec)) = binop_of(self.peek()) {
            if prec < min_prec {
                break;
            }
            self.bump();
            let rhs = self.parse_bin(prec + 1)?;
            lhs = Expr::bin(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn parse_unary(&mut self) -> Result<Expr, Error> {
        match self.peek() {
            TokenKind::Minus => {
                self.bump();
                // Fold `-literal` into a negative literal so negative
                // constants round-trip through the printer unchanged.
                match self.peek() {
                    TokenKind::IntLit(v) => {
                        let v = *v;
                        self.bump();
                        Ok(Expr::IntLit(-v))
                    }
                    TokenKind::FloatLit(v) => {
                        let v = *v;
                        self.bump();
                        Ok(Expr::FloatLit(-v))
                    }
                    _ => Ok(self.parse_unary()?.neg()),
                }
            }
            TokenKind::Bang => {
                self.bump();
                let expr = self.parse_unary()?;
                Ok(Expr::Unary {
                    op: UnOp::Not,
                    expr: Box::new(expr),
                })
            }
            _ => self.parse_primary(),
        }
    }

    fn parse_primary(&mut self) -> Result<Expr, Error> {
        let line = self.line();
        match self.bump() {
            TokenKind::IntLit(v) => Ok(Expr::IntLit(v)),
            TokenKind::FloatLit(v) => Ok(Expr::FloatLit(v)),
            TokenKind::LParen => {
                let e = self.parse_expr()?;
                self.expect(&TokenKind::RParen)?;
                Ok(e)
            }
            TokenKind::Ident(name) => {
                if *self.peek() == TokenKind::LParen {
                    self.bump();
                    let mut args = Vec::new();
                    if *self.peek() != TokenKind::RParen {
                        loop {
                            args.push(self.parse_expr()?);
                            if *self.peek() == TokenKind::Comma {
                                self.bump();
                            } else {
                                break;
                            }
                        }
                    }
                    self.expect(&TokenKind::RParen)?;
                    Ok(Expr::Call { name, args })
                } else if *self.peek() == TokenKind::LBracket {
                    let mut indices = Vec::new();
                    while *self.peek() == TokenKind::LBracket {
                        self.bump();
                        indices.push(self.parse_expr()?);
                        self.expect(&TokenKind::RBracket)?;
                    }
                    if indices.len() > 2 {
                        return Err(self.err("at most two array indices are supported"));
                    }
                    Ok(Expr::Index { name, indices })
                } else {
                    Ok(Expr::Var(name))
                }
            }
            other => Err(Error::new(
                Phase::Parse,
                format!("expected expression, found `{other}`"),
                Some(line),
            )),
        }
    }
}

/// Binding power for binary operators (higher binds tighter).
fn binop_of(kind: &TokenKind) -> Option<(BinOp, u8)> {
    use TokenKind::*;
    Some(match kind {
        OrOr => (BinOp::Or, 1),
        AndAnd => (BinOp::And, 2),
        Pipe => (BinOp::BitOr, 3),
        Caret => (BinOp::BitXor, 4),
        Amp => (BinOp::BitAnd, 5),
        EqEq => (BinOp::Eq, 6),
        Ne => (BinOp::Ne, 6),
        Lt => (BinOp::Lt, 7),
        Le => (BinOp::Le, 7),
        Gt => (BinOp::Gt, 7),
        Ge => (BinOp::Ge, 7),
        Shl => (BinOp::Shl, 8),
        Shr => (BinOp::Shr, 8),
        Plus => (BinOp::Add, 9),
        Minus => (BinOp::Sub, 9),
        Star => (BinOp::Mul, 10),
        Slash => (BinOp::Div, 10),
        Percent => (BinOp::Rem, 10),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse(src: &str) -> Program {
        Parser::new(lex(src).unwrap()).parse_program().unwrap()
    }

    fn parse_err(src: &str) -> Error {
        Parser::new(lex(src).unwrap()).parse_program().unwrap_err()
    }

    #[test]
    fn parses_empty_function() {
        let p = parse("void f() { }");
        assert_eq!(p.functions.len(), 1);
        assert_eq!(p.functions[0].ret, Type::Void);
        assert!(p.functions[0].body.stmts.is_empty());
    }

    #[test]
    fn parses_globals_and_params() {
        let p = parse("int g; float buf[64]; int f(int n, float a[8][4]) { return n; }");
        assert_eq!(p.globals.len(), 2);
        assert_eq!(p.globals[1].ty, Type::float_array(64));
        assert_eq!(
            p.functions[0].params[1].ty,
            Type::Array {
                elem: Scalar::Float,
                dims: vec![8, 4]
            }
        );
    }

    #[test]
    fn precedence_mul_over_add() {
        let p = parse("int f() { int x; x = 1 + 2 * 3; return x; }");
        let Stmt::Assign { value, .. } = &p.functions[0].body.stmts[1] else {
            panic!("expected assign");
        };
        // 1 + (2 * 3)
        match value {
            Expr::Binary {
                op: BinOp::Add,
                rhs,
                ..
            } => match rhs.as_ref() {
                Expr::Binary { op: BinOp::Mul, .. } => {}
                other => panic!("expected mul rhs, got {other:?}"),
            },
            other => panic!("expected add, got {other:?}"),
        }
    }

    #[test]
    fn precedence_comparison_below_arith() {
        let p = parse("int f() { int x; x = 1 + 2 < 3 * 4; return x; }");
        let Stmt::Assign { value, .. } = &p.functions[0].body.stmts[1] else {
            panic!("expected assign");
        };
        assert!(matches!(value, Expr::Binary { op: BinOp::Lt, .. }));
    }

    #[test]
    fn left_associativity_of_sub() {
        let p = parse("int f() { int x; x = 10 - 3 - 2; return x; }");
        let Stmt::Assign { value, .. } = &p.functions[0].body.stmts[1] else {
            panic!("expected assign");
        };
        // (10 - 3) - 2
        match value {
            Expr::Binary {
                op: BinOp::Sub,
                lhs,
                rhs,
            } => {
                assert!(matches!(lhs.as_ref(), Expr::Binary { op: BinOp::Sub, .. }));
                assert!(matches!(rhs.as_ref(), Expr::IntLit(2)));
            }
            other => panic!("expected sub, got {other:?}"),
        }
    }

    #[test]
    fn parses_for_loop() {
        let p = parse("void f(int n) { int i; for (i = 0; i < n; i = i + 1) { } }");
        assert!(matches!(
            p.functions[0].body.stmts[1],
            Stmt::For {
                init: Some(_),
                step: Some(_),
                ..
            }
        ));
    }

    #[test]
    fn parses_for_with_empty_clauses() {
        let p = parse("void f() { for (;;) { } }");
        let Stmt::For {
            init, cond, step, ..
        } = &p.functions[0].body.stmts[0]
        else {
            panic!("expected for");
        };
        assert!(init.is_none() && step.is_none());
        assert_eq!(*cond, Expr::int(1));
    }

    #[test]
    fn parses_else_if_chain() {
        let p = parse(
            "int f(int x) { if (x > 1) { return 1; } else if (x > 0) { return 2; } \
             else { return 3; } }",
        );
        let Stmt::If { else_blk, .. } = &p.functions[0].body.stmts[0] else {
            panic!("expected if");
        };
        let inner = &else_blk.as_ref().unwrap().stmts[0];
        assert!(matches!(inner, Stmt::If { else_blk: Some(_), .. }));
    }

    #[test]
    fn parses_while_and_array_assign() {
        let p = parse("void f(int a[4]) { int i; i = 0; while (i < 4) { a[i] = i; i = i + 1; } }");
        assert!(matches!(p.functions[0].body.stmts[2], Stmt::While { .. }));
    }

    #[test]
    fn parses_call_statement_and_expression() {
        let p = parse("int g(int x) { return x; } void f() { int y; g(1); y = g(2) + 1; }");
        assert!(matches!(p.functions[1].body.stmts[1], Stmt::ExprStmt(_)));
    }

    #[test]
    fn parses_unary_operators() {
        let p = parse("int f(int x) { return -x + !x; }");
        let Stmt::Return(Some(e)) = &p.functions[0].body.stmts[0] else {
            panic!("expected return");
        };
        assert!(matches!(e, Expr::Binary { op: BinOp::Add, .. }));
    }

    #[test]
    fn rejects_three_dimensional_arrays() {
        let err = parse_err("int a[2][2][2];");
        assert!(err.message.contains("two dimensions"));
    }

    #[test]
    fn rejects_void_parameter() {
        assert!(parse_err("int f(void x) { return 0; }")
            .message
            .contains("void"));
    }

    #[test]
    fn rejects_zero_extent_array() {
        assert!(parse_err("int a[0];").message.contains("positive"));
    }

    #[test]
    fn rejects_missing_semicolon() {
        let err = parse_err("int f() { int x x = 1; return x; }");
        assert_eq!(err.phase, crate::Phase::Parse);
    }

    #[test]
    fn error_reports_line_number() {
        let err = parse_err("int f() {\n  int x;\n  x = ;\n}");
        assert_eq!(err.line, Some(3));
    }
}
