//! # fegen-lang — the Tiny-C source language
//!
//! The CGO 2009 paper studies loop unrolling over GCC's RTL representation of
//! C benchmarks from MediaBench, MiBench and UTDSP. This crate provides the
//! source-language substrate of the reproduction: **Tiny-C**, a small,
//! C-like imperative language that is rich enough to express the kinds of
//! kernels those suites contain (array-walking DSP filters, codecs, image
//! processing, checksums) while remaining small enough to lower and execute
//! deterministically.
//!
//! The crate contains a complete front end:
//!
//! - [`lexer`] — a hand-written scanner producing [`token::Token`]s,
//! - [`parser`] — a recursive-descent parser producing an [`ast::Program`],
//! - [`sema`] — name resolution and type checking,
//! - [`printer`] — a pretty printer that round-trips with the parser,
//! - [`ast`] — the abstract syntax tree plus ergonomic builders used by the
//!   synthetic benchmark generator in `fegen-suite`.
//!
//! # Example
//!
//! ```
//! use fegen_lang::parse_program;
//!
//! let src = r#"
//!     int acc(int n, int a[256]) {
//!         int s; int i;
//!         s = 0;
//!         for (i = 0; i < n; i = i + 1) { s = s + a[i]; }
//!         return s;
//!     }
//! "#;
//! let program = parse_program(src)?;
//! assert_eq!(program.functions.len(), 1);
//! # Ok::<(), fegen_lang::Error>(())
//! ```


// Library code must report through telemetry events or typed errors,
// never by printing; binaries are exempt (their crate roots are in bin/).
#![deny(clippy::print_stdout, clippy::print_stderr)]

pub mod ast;
pub mod lexer;
pub mod parser;
pub mod printer;
pub mod sema;
pub mod token;

pub use ast::{
    BinOp, Block, Expr, Function, LValue, Param, Program, Stmt, Type, UnOp, VarDecl,
};
pub use parser::Parser;
pub use printer::print_program;

use std::fmt;

/// Error produced by the Tiny-C front end (lexing, parsing or semantic
/// analysis).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    /// Which phase rejected the input.
    pub phase: Phase,
    /// Human-readable message, lowercase, no trailing punctuation.
    pub message: String,
    /// Line of the offending construct (1-based), if known.
    pub line: Option<u32>,
}

/// Front-end phase that produced an [`Error`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Tokenisation.
    Lex,
    /// Parsing.
    Parse,
    /// Semantic analysis.
    Sema,
}

impl Error {
    pub(crate) fn new(phase: Phase, message: impl Into<String>, line: Option<u32>) -> Self {
        Error {
            phase,
            message: message.into(),
            line,
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let phase = match self.phase {
            Phase::Lex => "lex",
            Phase::Parse => "parse",
            Phase::Sema => "sema",
        };
        match self.line {
            Some(line) => write!(f, "{phase} error at line {line}: {}", self.message),
            None => write!(f, "{phase} error: {}", self.message),
        }
    }
}

impl std::error::Error for Error {}

/// Parses and semantically checks a complete Tiny-C program.
///
/// This is the main entry point of the crate: it lexes, parses and runs
/// semantic analysis, returning a checked [`Program`].
///
/// # Errors
///
/// Returns an [`Error`] describing the first problem found in any phase.
///
/// ```
/// let p = fegen_lang::parse_program("int f() { return 1; }")?;
/// assert_eq!(p.functions[0].name, "f");
/// # Ok::<(), fegen_lang::Error>(())
/// ```
pub fn parse_program(source: &str) -> Result<Program, Error> {
    let tokens = lexer::lex(source)?;
    let program = Parser::new(tokens).parse_program()?;
    sema::check(&program)?;
    Ok(program)
}
