//! Tokens of the Tiny-C language.

use std::fmt;

/// A lexical token with its source line.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token kind and payload.
    pub kind: TokenKind,
    /// 1-based source line the token starts on.
    pub line: u32,
}

/// The kind of a [`Token`].
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Integer literal, e.g. `42`.
    IntLit(i64),
    /// Floating-point literal, e.g. `1.5`.
    FloatLit(f64),
    /// Identifier or keyword candidate.
    Ident(String),
    /// Keyword `int`.
    KwInt,
    /// Keyword `float`.
    KwFloat,
    /// Keyword `void`.
    KwVoid,
    /// Keyword `if`.
    KwIf,
    /// Keyword `else`.
    KwElse,
    /// Keyword `while`.
    KwWhile,
    /// Keyword `for`.
    KwFor,
    /// Keyword `return`.
    KwReturn,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `;`
    Semi,
    /// `,`
    Comma,
    /// `=`
    Assign,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `&`
    Amp,
    /// `|`
    Pipe,
    /// `^`
    Caret,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    EqEq,
    /// `!=`
    Ne,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `!`
    Bang,
    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use TokenKind::*;
        match self {
            IntLit(v) => write!(f, "{v}"),
            FloatLit(v) => write!(f, "{v}"),
            Ident(s) => write!(f, "{s}"),
            KwInt => write!(f, "int"),
            KwFloat => write!(f, "float"),
            KwVoid => write!(f, "void"),
            KwIf => write!(f, "if"),
            KwElse => write!(f, "else"),
            KwWhile => write!(f, "while"),
            KwFor => write!(f, "for"),
            KwReturn => write!(f, "return"),
            LParen => write!(f, "("),
            RParen => write!(f, ")"),
            LBrace => write!(f, "{{"),
            RBrace => write!(f, "}}"),
            LBracket => write!(f, "["),
            RBracket => write!(f, "]"),
            Semi => write!(f, ";"),
            Comma => write!(f, ","),
            Assign => write!(f, "="),
            Plus => write!(f, "+"),
            Minus => write!(f, "-"),
            Star => write!(f, "*"),
            Slash => write!(f, "/"),
            Percent => write!(f, "%"),
            Shl => write!(f, "<<"),
            Shr => write!(f, ">>"),
            Amp => write!(f, "&"),
            Pipe => write!(f, "|"),
            Caret => write!(f, "^"),
            Lt => write!(f, "<"),
            Le => write!(f, "<="),
            Gt => write!(f, ">"),
            Ge => write!(f, ">="),
            EqEq => write!(f, "=="),
            Ne => write!(f, "!="),
            AndAnd => write!(f, "&&"),
            OrOr => write!(f, "||"),
            Bang => write!(f, "!"),
            Eof => write!(f, "<eof>"),
        }
    }
}
