//! The motivating example of the paper's Figure 2: a loop from the `mesa`
//! benchmark in MediaBench.
//!
//! ```c
//! for (i = 0; i < EXP_TABLE_SIZE - 1; i++) {
//!     l->SpotExpTable[i][1] =
//!         l->SpotExpTable[i+1][0] - l->SpotExpTable[i][0];
//! }
//! ```
//!
//! Here `SpotExpTable` is a 2-column float table; the loop computes forward
//! differences of column 0 into column 1. The trip count
//! (`EXP_TABLE_SIZE - 1`) is passed in by the harness, so the compile-time
//! trip count is unknown — exactly the situation in Mesa, where the
//! constant lives in another translation unit's `#define` as far as the
//! RTL unroller is concerned.

use crate::{ArgDesc, Benchmark, CallDesc, SuiteName};
use fegen_lang::parse_program;

/// Size of the simulated `SpotExpTable` (Mesa's `EXP_TABLE_SIZE` is 512;
/// the loop runs `EXP_TABLE_SIZE - 1` iterations).
pub const EXP_TABLE_SIZE: usize = 512;

/// Builds the `mesa_spotexp` benchmark around the Figure 2 loop.
///
/// The kernel function is `spot_exp` and contains exactly one loop —
/// loop id 0 — which is the loop of the motivating example.
pub fn mesa_example() -> Benchmark {
    let src = format!(
        "float spot_exp_table[{n}][2];\n\
         void init() {{\n\
           int i;\n\
           for (i = 0; i < {n}; i = i + 1) {{\n\
             spot_exp_table[i][0] = (i % 37) * 0.25 + i * 0.125;\n\
             spot_exp_table[i][1] = 0.0;\n\
           }}\n\
         }}\n\
         void spot_exp(int n) {{\n\
           int i;\n\
           for (i = 0; i < n; i = i + 1) {{\n\
             spot_exp_table[i][1] = spot_exp_table[i + 1][0] - spot_exp_table[i][0];\n\
           }}\n\
         }}\n",
        n = EXP_TABLE_SIZE
    );
    let program = parse_program(&src).expect("mesa example parses");
    Benchmark {
        name: "mesa_spotexp".into(),
        suite: SuiteName::MediaBench,
        program,
        init: vec![CallDesc {
            func: "init".into(),
            args: vec![],
        }],
        kernels: vec![CallDesc {
            func: "spot_exp".into(),
            args: vec![ArgDesc::Int(EXP_TABLE_SIZE as i64 - 1)],
        }],
        n_loops: 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn example_is_valid_and_has_one_kernel_loop() {
        let b = mesa_example();
        assert_eq!(b.kernels.len(), 1);
        assert_eq!(b.n_loops, 1);
        assert!(b.program.function("spot_exp").is_some());
    }

    #[test]
    fn trip_count_matches_figure_2() {
        let b = mesa_example();
        let CallDesc { args, .. } = &b.kernels[0];
        assert_eq!(args[0], ArgDesc::Int(511));
    }
}
