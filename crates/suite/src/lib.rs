//! # fegen-suite — the synthetic benchmark suite
//!
//! The paper evaluates on "57 benchmarks from the MediaBench, MiBench and
//! UTDSP benchmark suites" containing 2,778 measured loops (§V). Those
//! suites cannot be shipped here, so this crate generates a synthetic
//! equivalent: 57 deterministic Tiny-C benchmarks — named after the
//! original programs — whose kernels are drawn from the loop archetypes
//! those suites actually contain (DSP filters, reductions, gathers,
//! histograms, bit-twiddling codec loops, short-trip nested loops,
//! data-dependent trip counts, …).
//!
//! What matters for the reproduction is the *distribution of loop
//! behaviours*: some loops gain substantially from unrolling (long
//! streaming reductions), some are ruined by it (short-trip inner loops
//! entered thousands of times), and the best factor correlates with
//! properties discoverable from the IR. The generator controls exactly
//! this diversity; seeds make every benchmark reproducible.
//!
//! ```
//! use fegen_suite::{SuiteConfig, generate_suite};
//!
//! let suite = generate_suite(&SuiteConfig::tiny());
//! assert!(!suite.is_empty());
//! // Every generated program parses its own pretty-printed source and
//! // passes semantic checks.
//! for b in &suite {
//!     let printed = fegen_lang::print_program(&b.program);
//!     fegen_lang::parse_program(&printed).expect("roundtrip");
//! }
//! ```


// Library code must report through telemetry events or typed errors,
// never by printing; binaries are exempt (their crate roots are in bin/).
#![deny(clippy::print_stdout, clippy::print_stderr)]

mod gen;
mod mesa;
mod names;
pub mod templates;

pub use gen::{generate_benchmark, generate_suite};
pub use mesa::mesa_example;
pub use names::{benchmark_names, SuiteName};

use fegen_lang::ast::Program;

/// A scalar or array argument of a benchmark call (mirrors
/// `fegen_sim::Arg` without depending on the simulator crate).
#[derive(Debug, Clone, PartialEq)]
pub enum ArgDesc {
    /// Integer scalar.
    Int(i64),
    /// Float scalar.
    Float(f64),
    /// Array by (global) name.
    Array(String),
}

/// One call the benchmark performs.
#[derive(Debug, Clone, PartialEq)]
pub struct CallDesc {
    /// Callee name.
    pub func: String,
    /// Arguments.
    pub args: Vec<ArgDesc>,
}

/// A generated benchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct Benchmark {
    /// Benchmark name (mirrors a MediaBench/MiBench/UTDSP program).
    pub name: String,
    /// Which suite the name comes from.
    pub suite: SuiteName,
    /// The Tiny-C program (init + kernels).
    pub program: Program,
    /// Initialisation calls (fill input arrays).
    pub init: Vec<CallDesc>,
    /// Kernel calls, in order.
    pub kernels: Vec<CallDesc>,
    /// Number of loops in kernel functions (the measured loops).
    pub n_loops: usize,
}

/// Suite generation parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct SuiteConfig {
    /// Number of benchmarks (paper: 57).
    pub n_benchmarks: usize,
    /// Target measured loops per benchmark, sampled around this mean
    /// (paper total: 2,778 ≈ 49 per benchmark).
    pub loops_per_benchmark: usize,
    /// Master seed.
    pub seed: u64,
    /// Data-size scale factor (1.0 = paper-like working sets).
    pub scale: f64,
}

impl SuiteConfig {
    /// Full paper-scale suite: 57 benchmarks, ≈2,778 loops.
    pub fn paper() -> Self {
        SuiteConfig {
            n_benchmarks: 57,
            loops_per_benchmark: 49,
            seed: 0x5017e,
            scale: 1.0,
        }
    }

    /// Reduced suite for laptop-scale experiments and tests.
    pub fn quick() -> Self {
        SuiteConfig {
            n_benchmarks: 57,
            loops_per_benchmark: 26,
            seed: 0x5017e,
            scale: 0.5,
        }
    }

    /// A minimal suite for unit tests.
    pub fn tiny() -> Self {
        SuiteConfig {
            n_benchmarks: 3,
            loops_per_benchmark: 5,
            seed: 0x5017e,
            scale: 0.25,
        }
    }
}

impl Default for SuiteConfig {
    fn default() -> Self {
        SuiteConfig::quick()
    }
}
