//! Benchmark assembly: templates → complete Tiny-C programs.

use crate::names::{benchmark_names, SuiteName};
use crate::templates::{all_templates, KernelCtx};
use crate::{Benchmark, CallDesc, SuiteConfig};
use fegen_lang::ast::{Block, Function, Program, Stmt, Type};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generates the whole suite (see [`SuiteConfig`]).
pub fn generate_suite(config: &SuiteConfig) -> Vec<Benchmark> {
    let names = benchmark_names();
    (0..config.n_benchmarks)
        .map(|i| {
            let (name, suite) = names[i % names.len()];
            let name = if i < names.len() {
                name.to_owned()
            } else {
                format!("{name}_{}", i / names.len())
            };
            generate_benchmark(&name, suite, i, config)
        })
        .collect()
}

/// Generates one benchmark deterministically from `(config.seed, index)`.
pub fn generate_benchmark(
    name: &str,
    suite: SuiteName,
    index: usize,
    config: &SuiteConfig,
) -> Benchmark {
    let mut rng = StdRng::seed_from_u64(
        config
            .seed
            .wrapping_mul(0x9e3779b97f4a7c15)
            .wrapping_add(index as u64),
    );
    let mut ctx = KernelCtx::new(config.scale);
    let templates = all_templates();
    let suite_col = match suite {
        SuiteName::MediaBench => 0,
        SuiteName::MiBench => 1,
        SuiteName::Utdsp => 2,
    };
    let total_weight: u32 = templates.iter().map(|(_, _, w)| w[suite_col]).sum();

    // Vary the per-benchmark loop count around the configured mean.
    let lo = (config.loops_per_benchmark * 6 / 10).max(2);
    let hi = config.loops_per_benchmark * 14 / 10 + 1;
    let target_loops = rng.gen_range(lo..=hi);

    let mut kernels = Vec::new();
    let mut calls: Vec<CallDesc> = Vec::new();
    let mut n_loops = 0usize;
    while n_loops < target_loops {
        let mut pick = rng.gen_range(0..total_weight);
        let template = templates
            .iter()
            .find(|(_, _, w)| {
                if pick < w[suite_col] {
                    true
                } else {
                    pick -= w[suite_col];
                    false
                }
            })
            .map(|(_, t, _)| *t)
            .expect("weighted pick in range");
        let k = template(&mut ctx, &mut rng);
        n_loops += k.n_loops;
        calls.push(k.call.clone());
        kernels.push(k);
    }

    // Assemble the program: globals, init, helpers, kernels.
    let mut program = Program::new();
    program.globals = ctx.globals.clone();
    let init = Function {
        name: "init".into(),
        ret: Type::Void,
        params: vec![],
        body: Block::new(
            std::iter::once(Stmt::decl("i", Type::Int))
                .chain(ctx.init_stmts.clone())
                .collect(),
        ),
    };
    program.functions.push(init);
    for k in &kernels {
        program.functions.extend(k.helpers.iter().cloned());
    }
    for k in &kernels {
        program.functions.push(k.func.clone());
    }

    debug_assert!(
        fegen_lang::sema::check(&program).is_ok(),
        "generated benchmark `{name}` fails sema: {}",
        fegen_lang::print_program(&program)
    );

    Benchmark {
        name: name.to_owned(),
        suite,
        program,
        init: vec![CallDesc {
            func: "init".into(),
            args: vec![],
        }],
        kernels: calls,
        n_loops,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_configured_size() {
        let cfg = SuiteConfig::tiny();
        let suite = generate_suite(&cfg);
        assert_eq!(suite.len(), cfg.n_benchmarks);
    }

    #[test]
    fn benchmarks_are_semantically_valid() {
        for b in generate_suite(&SuiteConfig::tiny()) {
            fegen_lang::sema::check(&b.program)
                .unwrap_or_else(|e| panic!("{}: {e}", b.name));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate_suite(&SuiteConfig::tiny());
        let b = generate_suite(&SuiteConfig::tiny());
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let mut cfg = SuiteConfig::tiny();
        let a = generate_suite(&cfg);
        cfg.seed += 1;
        let b = generate_suite(&cfg);
        assert_ne!(a, b);
    }

    #[test]
    fn loop_counts_near_target() {
        let cfg = SuiteConfig::quick();
        for b in generate_suite(&cfg) {
            assert!(
                b.n_loops >= cfg.loops_per_benchmark / 2
                    && b.n_loops <= cfg.loops_per_benchmark * 2,
                "{}: {} loops vs target {}",
                b.name,
                b.n_loops,
                cfg.loops_per_benchmark
            );
        }
    }

    #[test]
    fn paper_scale_loop_total_is_close_to_2778() {
        let cfg = SuiteConfig::paper();
        let total: usize = generate_suite(&cfg).iter().map(|b| b.n_loops).sum();
        assert!(
            (2_300..=3_300).contains(&total),
            "total loops {total} too far from 2,778"
        );
    }

    #[test]
    fn every_kernel_call_targets_an_existing_function() {
        for b in generate_suite(&SuiteConfig::tiny()) {
            for c in b.init.iter().chain(&b.kernels) {
                assert!(
                    b.program.function(&c.func).is_some(),
                    "{} calls missing `{}`",
                    b.name,
                    c.func
                );
            }
        }
    }

    #[test]
    fn names_follow_the_paper_suites() {
        let suite = generate_suite(&SuiteConfig::paper());
        assert_eq!(suite.len(), 57);
        assert!(suite.iter().any(|b| b.name == "security_sha"));
        assert!(suite.iter().any(|b| b.name == "histogram_arrays"));
        assert!(suite.iter().any(|b| b.name == "adpcm_encode"));
    }
}
