//! Kernel templates: the loop archetypes the generated benchmarks draw on.
//!
//! Each template emits one kernel function (plus occasional helpers), the
//! call that drives it, and the global arrays it needs — registering
//! deterministic initialisation code for those arrays. Templates cover the
//! behavioural spectrum that makes unroll factors interesting:
//!
//! | archetype | examples | unrolling behaviour |
//! |---|---|---|
//! | streaming | copy, saxpy, fir, reduce | gains, saturating with factor |
//! | loop-carried | iir, prefix sum | little gain (dependence-bound) |
//! | irregular memory | gather, histogram | gains capped by D-cache misses |
//! | expensive ops | divmod | division-bound, unrolling irrelevant |
//! | short-trip nested | short_inner, nested2d | *slowdowns* when over-unrolled |
//! | data-dependent trip | var_trip, while_scan | runtime unrolling, risky |

use crate::{ArgDesc, CallDesc};
use fegen_lang::ast::*;
use rand::rngs::StdRng;
use rand::Rng;

/// A generated kernel: function(s) + the call that drives it.
#[derive(Debug, Clone, PartialEq)]
pub struct Kernel {
    /// The kernel function.
    pub func: Function,
    /// Helper functions the kernel calls (may be empty).
    pub helpers: Vec<Function>,
    /// The call the workload performs.
    pub call: CallDesc,
    /// Number of loops in the kernel function.
    pub n_loops: usize,
}

/// Accumulates a benchmark's globals and initialisation code while
/// templates are instantiated.
#[derive(Debug, Default)]
pub struct KernelCtx {
    /// Global declarations collected so far.
    pub globals: Vec<VarDecl>,
    /// Statements of the `init` function (array fills).
    pub init_stmts: Vec<Stmt>,
    /// Data-size scale factor.
    pub scale: f64,
    next_id: usize,
}

impl KernelCtx {
    /// Creates a context with the given data-size scale.
    pub fn new(scale: f64) -> Self {
        KernelCtx {
            scale,
            ..Default::default()
        }
    }

    /// A fresh, unique name with the given prefix.
    pub fn fresh(&mut self, prefix: &str) -> String {
        let id = self.next_id;
        self.next_id += 1;
        format!("{prefix}_{id}")
    }

    /// Base array length for this benchmark scale (always with 16 cells of
    /// slack so compound conditions may read one element past `n`).
    pub fn array_len(&self, rng: &mut StdRng) -> usize {
        let base = [256usize, 512, 1024][rng.gen_range(0..3usize)];
        ((base as f64 * self.scale) as usize).max(64) + 16
    }

    /// Allocates an int array filled with `(i*a + b) % m`.
    pub fn int_array(&mut self, rng: &mut StdRng, len: usize) -> String {
        let name = self.fresh("ibuf");
        self.globals.push(VarDecl {
            name: name.clone(),
            ty: Type::int_array(len),
        });
        let a = rng.gen_range(3i64..23) * 2 + 1;
        let b = rng.gen_range(0..17);
        let m = rng.gen_range(13..251);
        self.push_fill(
            &name,
            len,
            Expr::var("i")
                .mul(Expr::int(a))
                .add(Expr::int(b))
                .rem(Expr::int(m)),
        );
        name
    }

    /// Allocates a float array filled with a small polynomial of `i`.
    pub fn float_array(&mut self, rng: &mut StdRng, len: usize) -> String {
        let name = self.fresh("fbuf");
        self.globals.push(VarDecl {
            name: name.clone(),
            ty: Type::float_array(len),
        });
        let m = rng.gen_range(7..63);
        let c = rng.gen_range(1..9) as f64 / 8.0;
        self.push_fill(
            &name,
            len,
            Expr::var("i").rem(Expr::int(m)).mul(Expr::float(c)),
        );
        name
    }

    /// Allocates an int array of valid indices `< bound`.
    pub fn index_array(&mut self, rng: &mut StdRng, len: usize, bound: usize) -> String {
        let name = self.fresh("idx");
        self.globals.push(VarDecl {
            name: name.clone(),
            ty: Type::int_array(len),
        });
        let a = rng.gen_range(3i64..29) * 2 + 1;
        self.push_fill(
            &name,
            len,
            Expr::var("i")
                .mul(Expr::int(a))
                .rem(Expr::int(bound as i64)),
        );
        name
    }

    /// Allocates an *output* array (zero-initialised by the machine; no
    /// fill code needed).
    pub fn out_array(&mut self, elem: Scalar, len: usize) -> String {
        let name = self.fresh(match elem {
            Scalar::Int => "iout",
            Scalar::Float => "fout",
        });
        self.globals.push(VarDecl {
            name: name.clone(),
            ty: Type::Array {
                elem,
                dims: vec![len],
            },
        });
        name
    }

    /// Allocates a 2-D int array (zeroed).
    pub fn int_array_2d(&mut self, rows: usize, cols: usize) -> String {
        let name = self.fresh("m2d");
        self.globals.push(VarDecl {
            name: name.clone(),
            ty: Type::array2(Scalar::Int, rows, cols),
        });
        name
    }

    fn push_fill(&mut self, name: &str, len: usize, value: Expr) {
        self.init_stmts.push(Stmt::for_range(
            "i",
            Expr::int(0),
            Expr::int(len as i64),
            Block::new(vec![Stmt::assign_index(name, Expr::var("i"), value)]),
        ));
    }
}

/// A kernel template.
pub type Template = fn(&mut KernelCtx, &mut StdRng) -> Kernel;

/// All templates with their names and per-suite weight profile
/// `(mediabench, mibench, utdsp)`.
pub fn all_templates() -> Vec<(&'static str, Template, [u32; 3])> {
    vec![
        ("copy", t_copy as Template, [2, 2, 2]),
        ("scale_add", t_scale_add, [2, 2, 3]),
        ("reduce", t_reduce, [1, 2, 3]),
        ("dot", t_dot, [1, 1, 4]),
        ("saxpy", t_saxpy, [1, 1, 3]),
        ("fir", t_fir, [1, 1, 4]),
        ("iir", t_iir, [1, 1, 3]),
        ("prefix", t_prefix, [1, 2, 2]),
        ("gather", t_gather, [3, 2, 1]),
        ("histogram", t_histogram, [2, 2, 2]),
        ("bitops", t_bitops, [4, 3, 1]),
        ("cond_accum", t_cond_accum, [2, 3, 1]),
        ("saturate", t_saturate, [3, 2, 2]),
        ("strided", t_strided, [1, 2, 2]),
        ("nested2d", t_nested2d, [2, 2, 3]),
        ("short_inner", t_short_inner, [3, 2, 2]),
        ("var_trip", t_var_trip, [2, 2, 1]),
        ("while_scan", t_while_scan, [1, 3, 1]),
        ("float_poly", t_float_poly, [1, 1, 3]),
        ("divmod", t_divmod, [1, 2, 1]),
        ("helper_call", t_helper_call, [2, 2, 1]),
        ("helper_call_big", t_helper_call_big, [1, 2, 1]),
        ("mat_vec", t_mat_vec, [1, 1, 3]),
        ("triangular", t_triangular, [1, 2, 2]),
        ("sort_pass", t_sort_pass, [1, 2, 1]),
        ("codec_table", t_codec_table, [3, 2, 1]),
    ]
}

fn kernel_fn(name: &str, body: Vec<Stmt>) -> Function {
    Function {
        name: name.to_owned(),
        ret: Type::Void,
        params: vec![Param {
            name: "n".into(),
            ty: Type::Int,
        }],
        body: Block::new(body),
    }
}

fn int_kernel_fn(name: &str, body: Vec<Stmt>) -> Function {
    Function {
        name: name.to_owned(),
        ret: Type::Int,
        params: vec![Param {
            name: "n".into(),
            ty: Type::Int,
        }],
        body: Block::new(body),
    }
}

fn call_n(func: &str, n: usize) -> CallDesc {
    CallDesc {
        func: func.to_owned(),
        args: vec![ArgDesc::Int(n as i64)],
    }
}

/// Picks a trip count favouring long-but-bounded loops, sometimes short.
fn trip(rng: &mut StdRng, len: usize) -> usize {
    let max = len - 16;
    match rng.gen_range(0..10) {
        0..=1 => rng.gen_range(4usize..24).min(max),
        2..=4 => rng.gen_range(24usize..128).min(max),
        _ => rng.gen_range(max / 2..=max),
    }
}


/// Loop bound expression: mostly a compile-time constant (as in the DSP
/// suites, where sizes are `#define`s the compiler sees), sometimes the
/// runtime parameter `n` (codec-style data-dependent trip counts). Constant
/// bounds make the trip count visible in the exported IR — the learnable
/// case; runtime bounds are the irreducible-uncertainty case.
fn bound_expr(rng: &mut StdRng, n: usize) -> Expr {
    if rng.gen_bool(0.8) {
        Expr::int(n as i64)
    } else {
        Expr::var("n")
    }
}

fn t_copy(ctx: &mut KernelCtx, rng: &mut StdRng) -> Kernel {
    let len = ctx.array_len(rng);
    let a = ctx.int_array(rng, len);
    let out = ctx.out_array(Scalar::Int, len);
    let name = ctx.fresh("copy");
    let n = trip(rng, len);
    let bound = bound_expr(rng, n);
    let body = vec![
        Stmt::decl("i", Type::Int),
        Stmt::for_range(
            "i",
            Expr::int(0),
            bound.clone(),
            Block::new(vec![Stmt::assign_index(
                &out,
                Expr::var("i"),
                Expr::index(&a, Expr::var("i")),
            )]),
        ),
    ];
    Kernel {
        func: kernel_fn(&name, body),
        helpers: vec![],
        call: call_n(&name, n),
        n_loops: 1,
    }
}

fn t_scale_add(ctx: &mut KernelCtx, rng: &mut StdRng) -> Kernel {
    let len = ctx.array_len(rng);
    let a = ctx.int_array(rng, len);
    let out = ctx.out_array(Scalar::Int, len);
    let c = rng.gen_range(2..9);
    let d = rng.gen_range(1..100);
    let name = ctx.fresh("scale_add");
    let n = trip(rng, len);
    let bound = bound_expr(rng, n);
    let body = vec![
        Stmt::decl("i", Type::Int),
        Stmt::for_range(
            "i",
            Expr::int(0),
            bound.clone(),
            Block::new(vec![Stmt::assign_index(
                &out,
                Expr::var("i"),
                Expr::index(&a, Expr::var("i"))
                    .mul(Expr::int(c))
                    .add(Expr::int(d)),
            )]),
        ),
    ];
    Kernel {
        func: kernel_fn(&name, body),
        helpers: vec![],
        call: call_n(&name, n),
        n_loops: 1,
    }
}

fn t_reduce(ctx: &mut KernelCtx, rng: &mut StdRng) -> Kernel {
    let len = ctx.array_len(rng);
    let a = ctx.int_array(rng, len);
    let c = rng.gen_range(2..7);
    let name = ctx.fresh("reduce");
    let n = trip(rng, len);
    let bound = bound_expr(rng, n);
    let body = vec![
        Stmt::decl("i", Type::Int),
        Stmt::decl("s", Type::Int),
        Stmt::assign("s", Expr::int(0)),
        Stmt::for_range(
            "i",
            Expr::int(0),
            bound.clone(),
            Block::new(vec![Stmt::assign(
                "s",
                Expr::var("s").add(Expr::index(&a, Expr::var("i")).mul(Expr::int(c))),
            )]),
        ),
        Stmt::Return(Some(Expr::var("s"))),
    ];
    Kernel {
        func: int_kernel_fn(&name, body),
        helpers: vec![],
        call: call_n(&name, n),
        n_loops: 1,
    }
}

fn t_dot(ctx: &mut KernelCtx, rng: &mut StdRng) -> Kernel {
    let len = ctx.array_len(rng);
    let a = ctx.float_array(rng, len);
    let b = ctx.float_array(rng, len);
    let name = ctx.fresh("dot");
    let n = trip(rng, len);
    let bound = bound_expr(rng, n);
    let sink_name = ctx.fresh("fsink");
    let body = vec![
        Stmt::decl("i", Type::Int),
        Stmt::decl("s", Type::Float),
        Stmt::assign("s", Expr::float(0.0)),
        Stmt::for_range(
            "i",
            Expr::int(0),
            bound.clone(),
            Block::new(vec![Stmt::assign(
                "s",
                Expr::var("s").add(
                    Expr::index(&a, Expr::var("i")).mul(Expr::index(&b, Expr::var("i"))),
                ),
            )]),
        ),
        Stmt::Return(Some(Expr::call(&sink_name, vec![Expr::var("s")]))),
    ];
    // Sink keeps the reduction observable (and exercises calls).
    let sink = Function {
        name: sink_name.clone(),
        ret: Type::Int,
        params: vec![Param {
            name: "x".into(),
            ty: Type::Float,
        }],
        body: Block::new(vec![Stmt::Return(Some(Expr::bin(
            BinOp::Gt,
            Expr::var("x"),
            Expr::float(0.0),
        )))]),
    };
    Kernel {
        func: int_kernel_fn(&name, body),
        helpers: vec![sink],
        call: call_n(&name, n),
        n_loops: 1,
    }
}

fn t_saxpy(ctx: &mut KernelCtx, rng: &mut StdRng) -> Kernel {
    let len = ctx.array_len(rng);
    let a = ctx.float_array(rng, len);
    let b = ctx.float_array(rng, len);
    let out = ctx.out_array(Scalar::Float, len);
    let c = rng.gen_range(1..16) as f64 / 4.0;
    let name = ctx.fresh("saxpy");
    let n = trip(rng, len);
    let bound = bound_expr(rng, n);
    let body = vec![
        Stmt::decl("i", Type::Int),
        Stmt::for_range(
            "i",
            Expr::int(0),
            bound.clone(),
            Block::new(vec![Stmt::assign_index(
                &out,
                Expr::var("i"),
                Expr::index(&a, Expr::var("i"))
                    .mul(Expr::float(c))
                    .add(Expr::index(&b, Expr::var("i"))),
            )]),
        ),
    ];
    Kernel {
        func: kernel_fn(&name, body),
        helpers: vec![],
        call: call_n(&name, n),
        n_loops: 1,
    }
}

fn t_fir(ctx: &mut KernelCtx, rng: &mut StdRng) -> Kernel {
    let len = ctx.array_len(rng);
    let a = ctx.float_array(rng, len);
    let out = ctx.out_array(Scalar::Float, len);
    let taps = rng.gen_range(3..6);
    let name = ctx.fresh("fir");
    let n = trip(rng, len);
    let bound = bound_expr(rng, n);
    let mut sum = Expr::index(&a, Expr::var("i")).mul(Expr::float(0.5));
    for t in 1..taps {
        let c = 1.0 / (t as f64 + 2.0);
        sum = sum.add(
            Expr::index(&a, Expr::var("i").add(Expr::int(t as i64))).mul(Expr::float(c)),
        );
    }
    let body = vec![
        Stmt::decl("i", Type::Int),
        Stmt::for_range(
            "i",
            Expr::int(0),
            bound.clone(),
            Block::new(vec![Stmt::assign_index(&out, Expr::var("i"), sum)]),
        ),
    ];
    Kernel {
        func: kernel_fn(&name, body),
        helpers: vec![],
        call: call_n(&name, n),
        n_loops: 1,
    }
}

fn t_iir(ctx: &mut KernelCtx, rng: &mut StdRng) -> Kernel {
    let len = ctx.array_len(rng);
    let a = ctx.float_array(rng, len);
    let out = ctx.out_array(Scalar::Float, len);
    let c = rng.gen_range(1..8) as f64 / 8.0;
    let name = ctx.fresh("iir");
    let n = trip(rng, len);
    let bound = bound_expr(rng, n);
    let body = vec![
        Stmt::decl("i", Type::Int),
        Stmt::for_range(
            "i",
            Expr::int(1),
            bound.clone(),
            Block::new(vec![Stmt::assign_index(
                &out,
                Expr::var("i"),
                Expr::index(&a, Expr::var("i"))
                    .mul(Expr::float(c))
                    .add(
                        Expr::index(&out, Expr::var("i").sub(Expr::int(1)))
                            .mul(Expr::float(1.0 - c)),
                    ),
            )]),
        ),
    ];
    Kernel {
        func: kernel_fn(&name, body),
        helpers: vec![],
        call: call_n(&name, n),
        n_loops: 1,
    }
}

fn t_prefix(ctx: &mut KernelCtx, rng: &mut StdRng) -> Kernel {
    let len = ctx.array_len(rng);
    let a = ctx.int_array(rng, len);
    let out = ctx.out_array(Scalar::Int, len);
    let name = ctx.fresh("prefix");
    let n = trip(rng, len);
    let bound = bound_expr(rng, n);
    let body = vec![
        Stmt::decl("i", Type::Int),
        Stmt::assign_index(&out, Expr::int(0), Expr::index(&a, Expr::int(0))),
        Stmt::for_range(
            "i",
            Expr::int(1),
            bound.clone(),
            Block::new(vec![Stmt::assign_index(
                &out,
                Expr::var("i"),
                Expr::index(&out, Expr::var("i").sub(Expr::int(1)))
                    .add(Expr::index(&a, Expr::var("i"))),
            )]),
        ),
    ];
    Kernel {
        func: kernel_fn(&name, body),
        helpers: vec![],
        call: call_n(&name, n),
        n_loops: 1,
    }
}

fn t_gather(ctx: &mut KernelCtx, rng: &mut StdRng) -> Kernel {
    let len = ctx.array_len(rng);
    let a = ctx.int_array(rng, len);
    let idx = ctx.index_array(rng, len, len - 16);
    let out = ctx.out_array(Scalar::Int, len);
    let name = ctx.fresh("gather");
    let n = trip(rng, len);
    let bound = bound_expr(rng, n);
    let body = vec![
        Stmt::decl("i", Type::Int),
        Stmt::for_range(
            "i",
            Expr::int(0),
            bound.clone(),
            Block::new(vec![Stmt::assign_index(
                &out,
                Expr::var("i"),
                Expr::index(&a, Expr::index(&idx, Expr::var("i"))),
            )]),
        ),
    ];
    Kernel {
        func: kernel_fn(&name, body),
        helpers: vec![],
        call: call_n(&name, n),
        n_loops: 1,
    }
}

fn t_histogram(ctx: &mut KernelCtx, rng: &mut StdRng) -> Kernel {
    let len = ctx.array_len(rng);
    let a = ctx.int_array(rng, len);
    let bins = [16usize, 32, 64][rng.gen_range(0..3usize)];
    let tab = ctx.out_array(Scalar::Int, bins);
    let name = ctx.fresh("histogram");
    let n = trip(rng, len);
    let bound = bound_expr(rng, n);
    let bin = Expr::index(&a, Expr::var("i")).rem(Expr::int(bins as i64));
    let body = vec![
        Stmt::decl("i", Type::Int),
        Stmt::decl("b", Type::Int),
        Stmt::for_range(
            "i",
            Expr::int(0),
            bound.clone(),
            Block::new(vec![
                Stmt::assign("b", bin),
                Stmt::assign_index(
                    &tab,
                    Expr::var("b"),
                    Expr::index(&tab, Expr::var("b")).add(Expr::int(1)),
                ),
            ]),
        ),
    ];
    Kernel {
        func: kernel_fn(&name, body),
        helpers: vec![],
        call: call_n(&name, n),
        n_loops: 1,
    }
}

fn t_bitops(ctx: &mut KernelCtx, rng: &mut StdRng) -> Kernel {
    let len = ctx.array_len(rng);
    let a = ctx.int_array(rng, len);
    let out = ctx.out_array(Scalar::Int, len);
    let s1 = rng.gen_range(1..6);
    let s2 = rng.gen_range(1..5);
    let mask = [255i64, 1023, 65535][rng.gen_range(0..3usize)];
    let name = ctx.fresh("bitops");
    let n = trip(rng, len);
    let bound = bound_expr(rng, n);
    let x = Expr::index(&a, Expr::var("i"));
    let expr = Expr::bin(
        BinOp::BitAnd,
        Expr::bin(
            BinOp::BitXor,
            Expr::bin(BinOp::Shl, x.clone(), Expr::int(s1)),
            Expr::bin(BinOp::Shr, x, Expr::int(s2)),
        ),
        Expr::int(mask),
    );
    let body = vec![
        Stmt::decl("i", Type::Int),
        Stmt::for_range(
            "i",
            Expr::int(0),
            bound.clone(),
            Block::new(vec![Stmt::assign_index(&out, Expr::var("i"), expr)]),
        ),
    ];
    Kernel {
        func: kernel_fn(&name, body),
        helpers: vec![],
        call: call_n(&name, n),
        n_loops: 1,
    }
}

fn t_cond_accum(ctx: &mut KernelCtx, rng: &mut StdRng) -> Kernel {
    let len = ctx.array_len(rng);
    let a = ctx.int_array(rng, len);
    let c = rng.gen_range(5..40);
    let name = ctx.fresh("cond_accum");
    let n = trip(rng, len);
    let bound = bound_expr(rng, n);
    let body = vec![
        Stmt::decl("i", Type::Int),
        Stmt::decl("s", Type::Int),
        Stmt::assign("s", Expr::int(0)),
        Stmt::for_range(
            "i",
            Expr::int(0),
            bound.clone(),
            Block::new(vec![Stmt::If {
                cond: Expr::index(&a, Expr::var("i")).gt(Expr::int(c)),
                then_blk: Block::new(vec![Stmt::assign(
                    "s",
                    Expr::var("s").add(Expr::index(&a, Expr::var("i"))),
                )]),
                else_blk: Some(Block::new(vec![Stmt::assign(
                    "s",
                    Expr::var("s").add(Expr::int(1)),
                )])),
            }]),
        ),
        Stmt::Return(Some(Expr::var("s"))),
    ];
    Kernel {
        func: int_kernel_fn(&name, body),
        helpers: vec![],
        call: call_n(&name, n),
        n_loops: 1,
    }
}

fn t_saturate(ctx: &mut KernelCtx, rng: &mut StdRng) -> Kernel {
    let len = ctx.array_len(rng);
    let a = ctx.int_array(rng, len);
    let out = ctx.out_array(Scalar::Int, len);
    let c = rng.gen_range(2..6);
    let hi = rng.gen_range(100..240);
    let name = ctx.fresh("saturate");
    let n = trip(rng, len);
    let bound = bound_expr(rng, n);
    let body = vec![
        Stmt::decl("i", Type::Int),
        Stmt::decl("v", Type::Int),
        Stmt::for_range(
            "i",
            Expr::int(0),
            bound.clone(),
            Block::new(vec![
                Stmt::assign("v", Expr::index(&a, Expr::var("i")).mul(Expr::int(c))),
                Stmt::If {
                    cond: Expr::var("v").gt(Expr::int(hi)),
                    then_blk: Block::new(vec![Stmt::assign("v", Expr::int(hi))]),
                    else_blk: None,
                },
                Stmt::If {
                    cond: Expr::bin(BinOp::Lt, Expr::var("v"), Expr::int(0)),
                    then_blk: Block::new(vec![Stmt::assign("v", Expr::int(0))]),
                    else_blk: None,
                },
                Stmt::assign_index(&out, Expr::var("i"), Expr::var("v")),
            ]),
        ),
    ];
    Kernel {
        func: kernel_fn(&name, body),
        helpers: vec![],
        call: call_n(&name, n),
        n_loops: 1,
    }
}

fn t_strided(ctx: &mut KernelCtx, rng: &mut StdRng) -> Kernel {
    let len = ctx.array_len(rng);
    let a = ctx.int_array(rng, len);
    let out = ctx.out_array(Scalar::Int, len);
    let stride = [2i64, 3, 4][rng.gen_range(0..3usize)];
    let name = ctx.fresh("strided");
    let n = trip(rng, len);
    let bound = bound_expr(rng, n);
    let body = vec![
        Stmt::decl("i", Type::Int),
        Stmt::For {
            init: Some(Box::new(Stmt::assign("i", Expr::int(0)))),
            cond: Expr::var("i").lt(bound),
            step: Some(Box::new(Stmt::assign(
                "i",
                Expr::var("i").add(Expr::int(stride)),
            ))),
            body: Block::new(vec![Stmt::assign_index(
                &out,
                Expr::var("i"),
                Expr::index(&a, Expr::var("i")).add(Expr::int(1)),
            )]),
        },
    ];
    Kernel {
        func: kernel_fn(&name, body),
        helpers: vec![],
        call: call_n(&name, n),
        n_loops: 1,
    }
}

fn t_nested2d(ctx: &mut KernelCtx, rng: &mut StdRng) -> Kernel {
    let rows = rng.gen_range(16..48);
    let cols = rng.gen_range(4..32);
    let m = ctx.int_array_2d(rows, cols);
    let name = ctx.fresh("nested2d");
    let body = vec![
        Stmt::decl("i", Type::Int),
        Stmt::decl("j", Type::Int),
        Stmt::for_range(
            "i",
            Expr::int(0),
            Expr::int(rows as i64),
            Block::new(vec![Stmt::for_range(
                "j",
                Expr::int(0),
                Expr::int(cols as i64),
                Block::new(vec![Stmt::Assign {
                    target: LValue::index2(&m, Expr::var("i"), Expr::var("j")),
                    value: Expr::var("i").mul(Expr::var("j")).add(Expr::var("n")),
                }]),
            )]),
        ),
    ];
    Kernel {
        func: kernel_fn(&name, body),
        helpers: vec![],
        call: call_n(&name, rng.gen_range(1..10)),
        n_loops: 2,
    }
}

fn t_short_inner(ctx: &mut KernelCtx, rng: &mut StdRng) -> Kernel {
    let len = ctx.array_len(rng);
    let a = ctx.int_array(rng, len);
    let out = ctx.out_array(Scalar::Int, len);
    let inner = rng.gen_range(2..7);
    let name = ctx.fresh("short_inner");
    let n = rng.gen_range(100..400);
    let bound = bound_expr(rng, n);
    let body = vec![
        Stmt::decl("i", Type::Int),
        Stmt::decl("j", Type::Int),
        Stmt::for_range(
            "j",
            Expr::int(0),
            bound.clone(),
            Block::new(vec![Stmt::for_range(
                "i",
                Expr::int(0),
                Expr::int(inner),
                Block::new(vec![Stmt::assign_index(
                    &out,
                    Expr::var("i"),
                    Expr::index(&a, Expr::var("i")).add(Expr::var("j")),
                )]),
            )]),
        ),
    ];
    Kernel {
        func: kernel_fn(&name, body),
        helpers: vec![],
        call: call_n(&name, n),
        n_loops: 2,
    }
}

fn t_var_trip(ctx: &mut KernelCtx, rng: &mut StdRng) -> Kernel {
    let len = ctx.array_len(rng);
    let a = ctx.int_array(rng, len);
    let k = rng.gen_range(3..9);
    let name = ctx.fresh("var_trip");
    let n = rng.gen_range(60..200);
    let bound = bound_expr(rng, n);
    let body = vec![
        Stmt::decl("i", Type::Int),
        Stmt::decl("j", Type::Int),
        Stmt::decl("t", Type::Int),
        Stmt::decl("s", Type::Int),
        Stmt::assign("s", Expr::int(0)),
        Stmt::for_range(
            "j",
            Expr::int(0),
            bound.clone(),
            Block::new(vec![
                Stmt::assign(
                    "t",
                    Expr::var("j").rem(Expr::int(k)).add(Expr::int(1)),
                ),
                Stmt::for_range(
                    "i",
                    Expr::int(0),
                    Expr::var("t"),
                    Block::new(vec![Stmt::assign(
                        "s",
                        Expr::var("s").add(Expr::index(&a, Expr::var("i"))),
                    )]),
                ),
            ]),
        ),
        Stmt::Return(Some(Expr::var("s"))),
    ];
    Kernel {
        func: int_kernel_fn(&name, body),
        helpers: vec![],
        call: call_n(&name, n),
        n_loops: 2,
    }
}

fn t_while_scan(ctx: &mut KernelCtx, rng: &mut StdRng) -> Kernel {
    let len = ctx.array_len(rng);
    let a = ctx.int_array(rng, len);
    let key = rng.gen_range(0..7);
    let name = ctx.fresh("while_scan");
    let n = trip(rng, len);
    let bound = bound_expr(rng, n);
    let body = vec![
        Stmt::decl("i", Type::Int),
        Stmt::assign("i", Expr::int(0)),
        Stmt::While {
            // Non-short-circuit && is safe: arrays carry 16 cells of slack.
            cond: Expr::bin(
                BinOp::And,
                Expr::var("i").lt(bound),
                Expr::index(&a, Expr::var("i")).ne(Expr::int(key)),
            ),
            body: Block::new(vec![Stmt::assign(
                "i",
                Expr::var("i").add(Expr::int(1)),
            )]),
        },
        Stmt::Return(Some(Expr::var("i"))),
    ];
    Kernel {
        func: int_kernel_fn(&name, body),
        helpers: vec![],
        call: call_n(&name, n),
        n_loops: 1,
    }
}

fn t_float_poly(ctx: &mut KernelCtx, rng: &mut StdRng) -> Kernel {
    let len = ctx.array_len(rng);
    let a = ctx.float_array(rng, len);
    let out = ctx.out_array(Scalar::Float, len);
    let (c1, c2, c3) = (
        rng.gen_range(1..8) as f64 / 8.0,
        rng.gen_range(1..8) as f64 / 4.0,
        rng.gen_range(1..8) as f64 / 2.0,
    );
    let name = ctx.fresh("float_poly");
    let n = trip(rng, len);
    let bound = bound_expr(rng, n);
    let x = Expr::index(&a, Expr::var("i"));
    let poly = x
        .clone()
        .mul(Expr::float(c1))
        .add(Expr::float(c2))
        .mul(x)
        .add(Expr::float(c3));
    let body = vec![
        Stmt::decl("i", Type::Int),
        Stmt::for_range(
            "i",
            Expr::int(0),
            bound.clone(),
            Block::new(vec![Stmt::assign_index(&out, Expr::var("i"), poly)]),
        ),
    ];
    Kernel {
        func: kernel_fn(&name, body),
        helpers: vec![],
        call: call_n(&name, n),
        n_loops: 1,
    }
}

fn t_divmod(ctx: &mut KernelCtx, rng: &mut StdRng) -> Kernel {
    let len = ctx.array_len(rng);
    let a = ctx.int_array(rng, len);
    let out = ctx.out_array(Scalar::Int, len);
    let d = rng.gen_range(3..17);
    let e = rng.gen_range(5..23);
    let name = ctx.fresh("divmod");
    let n = trip(rng, len);
    let bound = bound_expr(rng, n);
    let x = Expr::index(&a, Expr::var("i"));
    let body = vec![
        Stmt::decl("i", Type::Int),
        Stmt::for_range(
            "i",
            Expr::int(0),
            bound.clone(),
            Block::new(vec![Stmt::assign_index(
                &out,
                Expr::var("i"),
                x.clone()
                    .div(Expr::int(d))
                    .add(x.rem(Expr::int(e))),
            )]),
        ),
    ];
    Kernel {
        func: kernel_fn(&name, body),
        helpers: vec![],
        call: call_n(&name, n),
        n_loops: 1,
    }
}

fn t_helper_call(ctx: &mut KernelCtx, rng: &mut StdRng) -> Kernel {
    let len = ctx.array_len(rng);
    let a = ctx.int_array(rng, len);
    let out = ctx.out_array(Scalar::Int, len);
    let hi = rng.gen_range(50..200);
    let helper_name = ctx.fresh("clamp");
    let helper = Function {
        name: helper_name.clone(),
        ret: Type::Int,
        params: vec![Param {
            name: "x".into(),
            ty: Type::Int,
        }],
        body: Block::new(vec![
            Stmt::If {
                cond: Expr::var("x").gt(Expr::int(hi)),
                then_blk: Block::new(vec![Stmt::Return(Some(Expr::int(hi)))]),
                else_blk: None,
            },
            Stmt::Return(Some(Expr::var("x"))),
        ]),
    };
    let name = ctx.fresh("helper_call");
    let n = trip(rng, len);
    let bound = bound_expr(rng, n);
    let body = vec![
        Stmt::decl("i", Type::Int),
        Stmt::for_range(
            "i",
            Expr::int(0),
            bound.clone(),
            Block::new(vec![Stmt::assign_index(
                &out,
                Expr::var("i"),
                Expr::call(
                    &helper_name,
                    vec![Expr::index(&a, Expr::var("i")).mul(Expr::int(3))],
                ),
            )]),
        ),
    ];
    Kernel {
        func: kernel_fn(&name, body),
        helpers: vec![helper],
        call: call_n(&name, n),
        n_loops: 1,
    }
}

/// A register-heavy straight-line helper called per iteration: inlining
/// it saves the call overhead but floods the caller's loop block with live
/// registers (spills) — the case where inlining hurts.
fn t_helper_call_big(ctx: &mut KernelCtx, rng: &mut StdRng) -> Kernel {
    let len = ctx.array_len(rng);
    let a = ctx.int_array(rng, len);
    let out = ctx.out_array(Scalar::Int, len);
    let helper_name = ctx.fresh("mixdown");
    let n_temps = rng.gen_range(10..14);
    let mut body = vec![];
    let mut sum = Expr::var("x");
    for k in 0..n_temps {
        let t = format!("t{k}");
        body.push(Stmt::decl(&t, Type::Int));
        let c = (k as i64 % 7) + 2;
        body.push(Stmt::assign(
            &t,
            Expr::var("x").mul(Expr::int(c)).add(Expr::int(k as i64)),
        ));
        sum = sum.add(Expr::var(t));
    }
    body.push(Stmt::Return(Some(sum)));
    let helper = Function {
        name: helper_name.clone(),
        ret: Type::Int,
        params: vec![Param {
            name: "x".into(),
            ty: Type::Int,
        }],
        body: Block::new(body),
    };
    let name = ctx.fresh("helper_call_big");
    let n = trip(rng, len);
    let bound = bound_expr(rng, n);
    let body = vec![
        Stmt::decl("i", Type::Int),
        Stmt::for_range(
            "i",
            Expr::int(0),
            bound,
            Block::new(vec![Stmt::assign_index(
                &out,
                Expr::var("i"),
                Expr::call(&helper_name, vec![Expr::index(&a, Expr::var("i"))]),
            )]),
        ),
    ];
    Kernel {
        func: kernel_fn(&name, body),
        helpers: vec![helper],
        call: call_n(&name, n),
        n_loops: 1,
    }
}

fn t_mat_vec(ctx: &mut KernelCtx, rng: &mut StdRng) -> Kernel {
    let rows = rng.gen_range(16..40);
    let cols = rng.gen_range(8..40);
    let m = ctx.int_array_2d(rows, cols);
    let len = ctx.array_len(rng);
    let v = ctx.int_array(rng, len.max(cols + 16));
    let out = ctx.out_array(Scalar::Int, rows + 16);
    let name = ctx.fresh("mat_vec");
    let body = vec![
        Stmt::decl("i", Type::Int),
        Stmt::decl("j", Type::Int),
        Stmt::decl("s", Type::Int),
        Stmt::for_range(
            "i",
            Expr::int(0),
            Expr::int(rows as i64),
            Block::new(vec![
                Stmt::assign("s", Expr::int(0)),
                Stmt::for_range(
                    "j",
                    Expr::int(0),
                    Expr::int(cols as i64),
                    Block::new(vec![Stmt::assign(
                        "s",
                        Expr::var("s").add(
                            Expr::index2(&m, Expr::var("i"), Expr::var("j"))
                                .mul(Expr::index(&v, Expr::var("j"))),
                        ),
                    )]),
                ),
                Stmt::assign_index(&out, Expr::var("i"), Expr::var("s").add(Expr::var("n"))),
            ]),
        ),
    ];
    Kernel {
        func: kernel_fn(&name, body),
        helpers: vec![],
        call: call_n(&name, rng.gen_range(1..8)),
        n_loops: 2,
    }
}

/// Triangular nest: the inner trip grows with the outer index — the
/// classic case where the average trip is half the bound and unrolling
/// pays a per-entry cost many times.
fn t_triangular(ctx: &mut KernelCtx, rng: &mut StdRng) -> Kernel {
    let len = ctx.array_len(rng);
    let a = ctx.int_array(rng, len);
    let name = ctx.fresh("triangular");
    let n = rng.gen_range(16..48);
    let body = vec![
        Stmt::decl("i", Type::Int),
        Stmt::decl("j", Type::Int),
        Stmt::decl("s", Type::Int),
        Stmt::assign("s", Expr::int(0)),
        Stmt::for_range(
            "i",
            Expr::int(1),
            Expr::int(n),
            Block::new(vec![Stmt::for_range(
                "j",
                Expr::int(0),
                Expr::var("i"),
                Block::new(vec![Stmt::assign(
                    "s",
                    Expr::var("s").add(Expr::index(&a, Expr::var("j"))),
                )]),
            )]),
        ),
        Stmt::Return(Some(Expr::var("s"))),
    ];
    Kernel {
        func: int_kernel_fn(&name, body),
        helpers: vec![],
        call: call_n(&name, n as usize),
        n_loops: 2,
    }
}

/// One bubble-sort pass: compare-and-swap with data-dependent branches
/// that defeat the predictor — unrolling buys little here.
fn t_sort_pass(ctx: &mut KernelCtx, rng: &mut StdRng) -> Kernel {
    let len = ctx.array_len(rng);
    let a = ctx.int_array(rng, len);
    let name = ctx.fresh("sort_pass");
    let n = trip(rng, len);
    let bound = bound_expr(rng, n);
    let body = vec![
        Stmt::decl("i", Type::Int),
        Stmt::decl("t", Type::Int),
        Stmt::for_range(
            "i",
            Expr::int(1),
            bound,
            Block::new(vec![Stmt::If {
                cond: Expr::index(&a, Expr::var("i").sub(Expr::int(1)))
                    .gt(Expr::index(&a, Expr::var("i"))),
                then_blk: Block::new(vec![
                    Stmt::assign("t", Expr::index(&a, Expr::var("i"))),
                    Stmt::assign_index(
                        &a,
                        Expr::var("i"),
                        Expr::index(&a, Expr::var("i").sub(Expr::int(1))),
                    ),
                    Stmt::assign_index(&a, Expr::var("i").sub(Expr::int(1)), Expr::var("t")),
                ]),
                else_blk: None,
            }]),
        ),
    ];
    Kernel {
        func: kernel_fn(&name, body),
        helpers: vec![],
        call: call_n(&name, n),
        n_loops: 1,
    }
}

/// Codec-style double table lookup: quantise through one table, expand
/// through another — two dependent loads per element.
fn t_codec_table(ctx: &mut KernelCtx, rng: &mut StdRng) -> Kernel {
    let len = ctx.array_len(rng);
    let a = ctx.int_array(rng, len);
    let quant = ctx.index_array(rng, 64, 48);
    let expand = ctx.int_array(rng, 64);
    let out = ctx.out_array(Scalar::Int, len);
    let name = ctx.fresh("codec_table");
    let n = trip(rng, len);
    let bound = bound_expr(rng, n);
    let body = vec![
        Stmt::decl("i", Type::Int),
        Stmt::decl("q", Type::Int),
        Stmt::for_range(
            "i",
            Expr::int(0),
            bound,
            Block::new(vec![
                Stmt::assign(
                    "q",
                    Expr::index(&quant, Expr::index(&a, Expr::var("i")).rem(Expr::int(64))),
                ),
                Stmt::assign_index(
                    &out,
                    Expr::var("i"),
                    Expr::index(&expand, Expr::var("q")),
                ),
            ]),
        ),
    ];
    Kernel {
        func: kernel_fn(&name, body),
        helpers: vec![],
        call: call_n(&name, n),
        n_loops: 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn every_template_produces_valid_kernels() {
        for (name, template, _) in all_templates() {
            let mut ctx = KernelCtx::new(0.5);
            let mut rng = StdRng::seed_from_u64(7);
            let k = template(&mut ctx, &mut rng);
            assert!(k.n_loops >= 1, "{name} reports no loops");
            // Assemble a minimal program and check it.
            let mut program = Program::new();
            program.globals = ctx.globals.clone();
            let init = Function {
                name: "init".into(),
                ret: Type::Void,
                params: vec![],
                body: Block::new(
                    std::iter::once(Stmt::decl("i", Type::Int))
                        .chain(ctx.init_stmts.clone())
                        .collect(),
                ),
            };
            program.functions.push(init);
            program.functions.extend(k.helpers.clone());
            program.functions.push(k.func.clone());
            fegen_lang::sema::check(&program)
                .unwrap_or_else(|e| panic!("{name}: {e}\n{}", fegen_lang::print_program(&program)));
            // And it must lower.
            fegen_rtl_smoke(&program, name);
        }
    }

    // The suite crate does not depend on fegen-rtl; smoke-test lowering via
    // re-parse (structure) only. Full lowering is covered by integration
    // tests at the workspace level.
    fn fegen_rtl_smoke(program: &Program, name: &str) {
        let printed = fegen_lang::print_program(program);
        fegen_lang::parse_program(&printed)
            .unwrap_or_else(|e| panic!("{name} roundtrip: {e}\n{printed}"));
    }

    #[test]
    fn templates_are_deterministic() {
        let (_, template, _) = all_templates()[0];
        let mk = || {
            let mut ctx = KernelCtx::new(1.0);
            let mut rng = StdRng::seed_from_u64(99);
            template(&mut ctx, &mut rng)
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn fresh_names_are_unique() {
        let mut ctx = KernelCtx::new(1.0);
        let a = ctx.fresh("x");
        let b = ctx.fresh("x");
        assert_ne!(a, b);
    }

    #[test]
    fn weights_cover_all_suites() {
        for (name, _, w) in all_templates() {
            assert!(w.iter().all(|&x| x > 0), "{name} has a zero weight");
        }
    }
}
