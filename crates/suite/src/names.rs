//! The 57 benchmark names, mirroring the programs of the three suites the
//! paper draws from.

use std::fmt;

/// Which original suite a benchmark name comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SuiteName {
    /// MediaBench (codecs, media processing).
    MediaBench,
    /// MiBench (embedded: security, network, automotive, consumer).
    MiBench,
    /// UTDSP (DSP kernels and applications).
    Utdsp,
}

impl fmt::Display for SuiteName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SuiteName::MediaBench => write!(f, "MediaBench"),
            SuiteName::MiBench => write!(f, "MiBench"),
            SuiteName::Utdsp => write!(f, "UTDSP"),
        }
    }
}

/// The 57 benchmark names with their suite of origin; index order is the
/// canonical benchmark order of every experiment.
pub fn benchmark_names() -> Vec<(&'static str, SuiteName)> {
    use SuiteName::*;
    vec![
        // MediaBench (13)
        ("adpcm_encode", MediaBench),
        ("adpcm_decode", MediaBench),
        ("epic_encode", MediaBench),
        ("epic_decode", MediaBench),
        ("g721_encode", MediaBench),
        ("g721_decode", MediaBench),
        ("gsm_toast", MediaBench),
        ("gsm_untoast", MediaBench),
        ("jpeg_encode", MediaBench),
        ("jpeg_decode", MediaBench),
        ("mesa_mipmap", MediaBench),
        ("mpeg2_encode", MediaBench),
        ("pegwit", MediaBench),
        // MiBench (21)
        ("security_sha", MiBench),
        ("security_blowfish", MiBench),
        ("security_rijndael", MiBench),
        ("telecomm_crc32", MiBench),
        ("network_dijkstra", MiBench),
        ("network_patricia", MiBench),
        ("automotive_qsort", MiBench),
        ("automotive_susan_c", MiBench),
        ("automotive_susan_e", MiBench),
        ("automotive_susan_s", MiBench),
        ("automotive_basicmath", MiBench),
        ("automotive_bitcount", MiBench),
        ("office_stringsearch", MiBench),
        ("telecomm_fft", MiBench),
        ("telecomm_ifft", MiBench),
        ("telecomm_adpcm_c", MiBench),
        ("telecomm_adpcm_d", MiBench),
        ("telecomm_gsm", MiBench),
        ("consumer_jpeg_c", MiBench),
        ("consumer_lame", MiBench),
        ("consumer_typeset", MiBench),
        // UTDSP (23)
        ("histogram_arrays", Utdsp),
        ("histogram_ptrs", Utdsp),
        ("lmsfir_arrays", Utdsp),
        ("lmsfir_ptrs", Utdsp),
        ("iir_arrays", Utdsp),
        ("iir_ptrs", Utdsp),
        ("latnrm_arrays", Utdsp),
        ("latnrm_ptrs", Utdsp),
        ("mult_arrays", Utdsp),
        ("mult_ptrs", Utdsp),
        ("fir_arrays", Utdsp),
        ("fir_ptrs", Utdsp),
        ("fft_1024", Utdsp),
        ("fft_256", Utdsp),
        ("adpcm_utdsp", Utdsp),
        ("compress_utdsp", Utdsp),
        ("edge_detect", Utdsp),
        ("spectral", Utdsp),
        ("trellis", Utdsp),
        ("v32_modem", Utdsp),
        ("g722_utdsp", Utdsp),
        ("jpeg_utdsp", Utdsp),
        ("lpc_utdsp", Utdsp),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exactly_57_unique_names() {
        let names = benchmark_names();
        assert_eq!(names.len(), 57);
        let set: std::collections::HashSet<&str> = names.iter().map(|(n, _)| *n).collect();
        assert_eq!(set.len(), 57);
    }

    #[test]
    fn all_three_suites_represented() {
        let names = benchmark_names();
        for suite in [SuiteName::MediaBench, SuiteName::MiBench, SuiteName::Utdsp] {
            assert!(names.iter().any(|(_, s)| *s == suite));
        }
    }

    #[test]
    fn security_sha_present() {
        // Called out repeatedly in the paper's results discussion.
        assert!(benchmark_names().iter().any(|(n, _)| *n == "security_sha"));
    }
}
