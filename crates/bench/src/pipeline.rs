//! The shared experiment pipeline: compile the suite, generate training
//! data (per-loop cycle tables), export loop IR and hand-feature vectors.
//!
//! Every stage has a fallible `try_*` entry point returning
//! [`PipelineError`], which names the stage, the benchmark and — where it
//! applies — the loop site or cross-validation fold that failed. The
//! original panicking functions remain as thin wrappers for the figure
//! binaries, where dying with a precise message *is* the error handling.

use fegen_core::ir::IrNode;
use fegen_rtl::export::export_loop;
use fegen_rtl::heuristic::{gcc_default_factor, gcc_features};
use fegen_rtl::lower::lower_program;
use fegen_rtl::stateml::stateml_features;
use fegen_rtl::RtlProgram;
use fegen_sim::oracle::{
    kernel_functions, loop_sites, program_with_factors, relevant_kernel_calls, run_workload,
    CallSpec, LoopMeasurement, LoopSite, OracleConfig, OracleError, ProgramSnapshot,
    SnapshotStats, Workload,
};
use fegen_sim::{Arg, SimConfig};
use fegen_suite::{ArgDesc, Benchmark, SuiteConfig};
use std::collections::HashMap;
use std::fmt;

/// A typed failure of the experiment pipeline, naming the stage and the
/// benchmark (and loop site / CV fold where applicable) that failed.
#[derive(Debug, Clone, PartialEq)]
pub enum PipelineError {
    /// A generated benchmark failed to lower to RTL.
    Compile {
        /// Benchmark name.
        bench: String,
        /// Lowering error text.
        detail: String,
    },
    /// Measuring one loop site's cycle table failed.
    Measure {
        /// Benchmark name.
        bench: String,
        /// Loop site (`func#loop`).
        site: String,
        /// Measurement error text.
        detail: String,
    },
    /// A loop site reported by discovery no longer resolves in the program.
    MissingSite {
        /// Benchmark name.
        bench: String,
        /// Loop site (`func#loop`).
        site: String,
    },
    /// The baseline (no-unrolling) workload run failed.
    Baseline {
        /// Benchmark name.
        bench: String,
        /// Simulator error text.
        detail: String,
    },
    /// Deploying a factor assignment (unrolling or re-running the
    /// workload) failed.
    Deploy {
        /// Benchmark name.
        bench: String,
        /// Unroll/simulator error text.
        detail: String,
    },
    /// The feature search of one cross-validation fold failed.
    Search {
        /// Fold index (0-based).
        fold: usize,
        /// The underlying search error (names the candidate situation:
        /// e.g. no viable candidate after N generations).
        source: fegen_core::SearchError,
    },
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Compile { bench, detail } => {
                write!(f, "compile stage: benchmark `{bench}` fails to lower: {detail}")
            }
            PipelineError::Measure {
                bench,
                site,
                detail,
            } => write!(
                f,
                "measure stage: benchmark `{bench}`, site {site}: {detail}"
            ),
            PipelineError::MissingSite { bench, site } => write!(
                f,
                "measure stage: benchmark `{bench}` has no loop at site {site}"
            ),
            PipelineError::Baseline { bench, detail } => {
                write!(f, "baseline stage: benchmark `{bench}`: {detail}")
            }
            PipelineError::Deploy { bench, detail } => {
                write!(f, "deploy stage: benchmark `{bench}`: {detail}")
            }
            PipelineError::Search { fold, source } => {
                write!(f, "search stage: fold {fold}: {source}")
            }
        }
    }
}

impl std::error::Error for PipelineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PipelineError::Search { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// A suite benchmark lowered to RTL with its executable workload.
#[derive(Debug, Clone)]
pub struct CompiledBenchmark {
    /// Benchmark name.
    pub name: String,
    /// Suite of origin.
    pub suite: fegen_suite::SuiteName,
    /// The lowered program.
    pub rtl: RtlProgram,
    /// The workload (init + kernel calls).
    pub workload: Workload,
}

/// Converts a suite argument descriptor into a simulator argument.
pub fn to_sim_arg(a: &ArgDesc) -> Arg {
    match a {
        ArgDesc::Int(v) => Arg::Int(*v),
        ArgDesc::Float(v) => Arg::Float(*v),
        ArgDesc::Array(n) => Arg::Array(n.clone()),
    }
}

/// Lowers a suite benchmark and builds its workload.
///
/// # Panics
///
/// Panics when the generated benchmark fails to lower — that would be a
/// suite-generator bug, not a user error. Use [`try_compile`] to handle it.
pub fn compile(b: &Benchmark) -> CompiledBenchmark {
    match try_compile(b) {
        Ok(cb) => cb,
        Err(e) => panic!("{e}"),
    }
}

/// Fallible form of [`compile`].
pub fn try_compile(b: &Benchmark) -> Result<CompiledBenchmark, PipelineError> {
    let rtl = lower_program(&b.program).map_err(|e| PipelineError::Compile {
        bench: b.name.clone(),
        detail: e.to_string(),
    })?;
    let to_calls = |calls: &[fegen_suite::CallDesc]| -> Vec<CallSpec> {
        calls
            .iter()
            .map(|c| CallSpec {
                func: c.func.clone(),
                args: c.args.iter().map(to_sim_arg).collect(),
            })
            .collect()
    };
    Ok(CompiledBenchmark {
        name: b.name.clone(),
        suite: b.suite,
        rtl,
        workload: Workload {
            init: to_calls(&b.init),
            kernels: to_calls(&b.kernels),
        },
    })
}

/// Fork-once compile state for one benchmark: parse → lower → loop
/// discovery → baseline warmup performed exactly once, plus the shared
/// [`ProgramSnapshot`] every per-factor measurement forks from.
///
/// The pre-unroll RTL is immutable once built; its [`content
/// digest`](RtlProgram::content_digest) is folded into the campaign
/// fingerprint so a dataset records exactly which compile state produced
/// it. [`BenchmarkSnapshot::fork`] measures one `(site, factor)` cell by
/// cloning only the mutable state of that cell — the site function's
/// unrolled body and a fresh machine — and is bit-identical to the scratch
/// path ([`fegen_sim::oracle::measure_site`] on the pre-unroll RTL).
#[derive(Debug)]
pub struct BenchmarkSnapshot {
    /// The compiled benchmark (name, suite, pre-unroll RTL, workload).
    pub cb: CompiledBenchmark,
    /// Functions reachable from the workload's kernel calls (sorted).
    pub kernel_funcs: Vec<String>,
    /// Loop sites of the kernel functions, in discovery order.
    pub sites: Vec<LoopSite>,
    /// Baseline (no unrolling anywhere) total workload cycles.
    pub baseline_cycles: f64,
    /// Content digest of the pre-unroll RTL.
    pub digest: u64,
    snapshot: ProgramSnapshot,
    /// Kernel calls reaching each kernel function, precomputed once.
    relevant: HashMap<String, Vec<CallSpec>>,
}

impl BenchmarkSnapshot {
    /// Compiles `b` and builds its fork-once state.
    ///
    /// # Errors
    ///
    /// Returns the same errors, with the same messages, that the scratch
    /// pipeline's setup stage (compile → discovery → baseline) raises.
    pub fn try_build(b: &Benchmark, oracle: &OracleConfig) -> Result<Self, PipelineError> {
        Self::try_from_compiled(try_compile(b)?, oracle)
    }

    /// Builds the fork-once state for an already-compiled benchmark.
    ///
    /// # Errors
    ///
    /// As [`BenchmarkSnapshot::try_build`], minus compilation.
    pub fn try_from_compiled(
        cb: CompiledBenchmark,
        oracle: &OracleConfig,
    ) -> Result<Self, PipelineError> {
        let kernel_funcs = kernel_functions(&cb.rtl, &cb.workload);
        let sites = loop_sites(&cb.rtl, &cb.workload);
        let baseline_cycles = run_workload(&cb.rtl, &cb.workload, &oracle.sim).map_err(|e| {
            PipelineError::Baseline {
                bench: cb.name.clone(),
                detail: e.to_string(),
            }
        })? as f64;
        let snapshot = ProgramSnapshot::build(&cb.rtl, &kernel_funcs, &cb.workload, oracle)
            .map_err(|e| PipelineError::Compile {
                bench: cb.name.clone(),
                detail: format!("snapshot: {e}"),
            })?;
        let relevant = kernel_funcs
            .iter()
            .map(|f| (f.clone(), relevant_kernel_calls(&cb.rtl, &cb.workload, f)))
            .collect();
        let digest = cb.rtl.content_digest();
        Ok(BenchmarkSnapshot {
            cb,
            kernel_funcs,
            sites,
            baseline_cycles,
            digest,
            snapshot,
            relevant,
        })
    }

    /// Forks one `(site, factor)` cell off the shared compile state and
    /// returns the site function's exclusive cycles.
    ///
    /// # Errors
    ///
    /// Exactly the errors the scratch path raises for this cell.
    pub fn fork(&self, site: &LoopSite, factor: usize) -> Result<f64, OracleError> {
        let relevant = self
            .relevant
            .get(&site.func)
            .map(Vec::as_slice)
            .unwrap_or(&[]);
        self.snapshot
            .fork(site, factor, relevant)
            .map(|c| c as f64)
    }

    /// One site's full cycle table over factors `0..=max_factor`, by
    /// forking each factor.
    ///
    /// # Errors
    ///
    /// As [`BenchmarkSnapshot::fork`]; the error type matches the scratch
    /// path's so failure messages (and therefore quarantine records) are
    /// identical in both modes.
    pub fn measure_site(&self, site: &LoopSite) -> Result<LoopMeasurement, OracleError> {
        let max_factor = self.snapshot.config().max_factor;
        let mut cycles = Vec::with_capacity(max_factor + 1);
        for factor in 0..=max_factor {
            cycles.push(self.fork(site, factor)?);
        }
        Ok(LoopMeasurement {
            site: site.clone(),
            cycles,
        })
    }

    /// [`BenchmarkSnapshot::measure_site`] with the error wrapped as a
    /// [`PipelineError::Measure`] naming the benchmark and site.
    ///
    /// # Errors
    ///
    /// As [`BenchmarkSnapshot::measure_site`].
    pub fn try_measure_site(&self, site: &LoopSite) -> Result<LoopMeasurement, PipelineError> {
        self.measure_site(site).map_err(|e| PipelineError::Measure {
            bench: self.cb.name.clone(),
            site: site.to_string(),
            detail: e.to_string(),
        })
    }

    /// Cumulative fork accounting.
    pub fn stats(&self) -> SnapshotStats {
        self.snapshot.stats()
    }

    /// Releases the snapshot, keeping the compiled benchmark.
    pub fn into_compiled(self) -> CompiledBenchmark {
        self.cb
    }
}

/// One measured loop with everything every method needs.
#[derive(Debug, Clone)]
pub struct LoopRecord {
    /// Index of the owning benchmark in [`SuiteData::benchmarks`].
    pub bench: usize,
    /// Loop site.
    pub site: LoopSite,
    /// Cycle table over factors `0..=15`.
    pub cycles: Vec<f64>,
    /// Exported IR (input of the feature generator).
    pub ir: IrNode,
    /// GCC heuristic features (Figure 3).
    pub gcc_feats: Vec<f64>,
    /// stateML features (Figure 14).
    pub stateml_feats: Vec<f64>,
    /// GCC's default unroll decision for this loop.
    pub gcc_default_factor: usize,
}

impl LoopRecord {
    /// The oracle-best factor (exact argmin; used for oracle speedups).
    pub fn best_factor(&self) -> usize {
        fegen_ml::metrics::oracle_choice(&self.cycles)
    }

    /// The training label: smallest factor within the noise-floor
    /// tolerance of the minimum (see
    /// [`fegen_ml::metrics::oracle_choice_tolerant`]).
    pub fn label_factor(&self) -> usize {
        fegen_ml::metrics::oracle_choice_tolerant(
            &self.cycles,
            fegen_core::search::LABEL_TOLERANCE,
        )
    }
}

/// Everything the experiments consume.
#[derive(Debug)]
pub struct SuiteData {
    /// Compiled benchmarks, in canonical order.
    pub benchmarks: Vec<CompiledBenchmark>,
    /// All measured loops across the suite.
    pub loops: Vec<LoopRecord>,
    /// Baseline (no unrolling anywhere) total cycles per benchmark.
    pub baseline_cycles: Vec<f64>,
}

/// Experiment configuration shared by all figure binaries.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentConfig {
    /// Suite generation.
    pub suite: SuiteConfig,
    /// Data-generation (oracle) settings.
    pub oracle: OracleConfig,
    /// Feature-search settings.
    pub search: fegen_core::SearchConfig,
    /// Outer cross-validation folds (paper: 10).
    pub folds: usize,
    /// Master seed.
    pub seed: u64,
}

impl ExperimentConfig {
    /// Paper-scale configuration (57 benchmarks, 10 folds, full GP
    /// budgets). Expect hours of wall clock on one core.
    pub fn paper() -> Self {
        ExperimentConfig {
            suite: SuiteConfig::paper(),
            oracle: OracleConfig::default(),
            search: fegen_core::SearchConfig::paper(),
            folds: 10,
            seed: 0xca11ab1e,
        }
    }

    /// Quick configuration: the same protocol at laptop scale (minutes).
    pub fn quick() -> Self {
        ExperimentConfig {
            suite: SuiteConfig::quick(),
            oracle: OracleConfig::default(),
            search: fegen_core::SearchConfig::quick(),
            folds: 5,
            seed: 0xca11ab1e,
        }
    }
}

/// Generates the suite, compiles it and measures every loop (§V data
/// generation). This is the expensive step every binary starts with.
///
/// # Panics
///
/// Panics on any stage failure; use [`try_build_suite_data`] for a typed
/// error naming the benchmark and loop site.
pub fn build_suite_data(config: &ExperimentConfig) -> SuiteData {
    match try_build_suite_data(config) {
        Ok(data) => data,
        Err(e) => panic!("{e}"),
    }
}

/// Fallible form of [`build_suite_data`].
pub fn try_build_suite_data(config: &ExperimentConfig) -> Result<SuiteData, PipelineError> {
    let suite = fegen_suite::generate_suite(&config.suite);
    let mut benchmarks = Vec::with_capacity(suite.len());
    let mut loops = Vec::new();
    let mut baseline_cycles = Vec::with_capacity(suite.len());
    for (bench_idx, b) in suite.iter().enumerate() {
        let snap = BenchmarkSnapshot::try_build(b, &config.oracle)?;
        for site in &snap.sites {
            let m = snap.try_measure_site(site)?;
            let missing = || PipelineError::MissingSite {
                bench: snap.cb.name.clone(),
                site: site.to_string(),
            };
            let func = snap.cb.rtl.function(&site.func).ok_or_else(missing)?;
            let region = func
                .loops
                .iter()
                .find(|l| l.id == site.loop_id)
                .ok_or_else(missing)?;
            loops.push(LoopRecord {
                bench: bench_idx,
                site: site.clone(),
                cycles: m.cycles,
                ir: export_loop(func, region, &snap.cb.rtl.layout),
                gcc_feats: gcc_features(func, region),
                stateml_feats: stateml_features(func, region),
                gcc_default_factor: gcc_default_factor(func, region, &config.oracle.gcc),
            });
        }
        baseline_cycles.push(snap.baseline_cycles);
        benchmarks.push(snap.into_compiled());
    }
    Ok(SuiteData {
        benchmarks,
        loops,
        baseline_cycles,
    })
}

impl SuiteData {
    /// Runs benchmark `bench_idx` with the given per-loop factor choices
    /// (`factors[i]` for `self.loops[i]`, only this benchmark's entries are
    /// used) and returns its whole-workload speedup over no unrolling.
    pub fn benchmark_speedup(
        &self,
        bench_idx: usize,
        factors: &[usize],
        sim: &SimConfig,
    ) -> f64 {
        match self.try_benchmark_speedup(bench_idx, factors, sim) {
            Ok(s) => s,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible form of [`SuiteData::benchmark_speedup`].
    pub fn try_benchmark_speedup(
        &self,
        bench_idx: usize,
        factors: &[usize],
        sim: &SimConfig,
    ) -> Result<f64, PipelineError> {
        let cb = &self.benchmarks[bench_idx];
        let mut per_func: HashMap<String, HashMap<usize, usize>> = HashMap::new();
        for (rec, &f) in self.loops.iter().zip(factors) {
            if rec.bench == bench_idx {
                per_func
                    .entry(rec.site.func.clone())
                    .or_default()
                    .insert(rec.site.loop_id, f);
            }
        }
        let kernel_funcs = kernel_functions(&cb.rtl, &cb.workload);
        let deploy = |detail: String| PipelineError::Deploy {
            bench: cb.name.clone(),
            detail,
        };
        let program = program_with_factors(&cb.rtl, &kernel_funcs, &per_func)
            .map_err(|e| deploy(format!("unrolling: {e}")))?;
        let cycles = run_workload(&program, &cb.workload, sim)
            .map_err(|e| deploy(format!("running: {e}")))? as f64;
        Ok(self.baseline_cycles[bench_idx] / cycles)
    }

    /// Per-benchmark speedups for a full factor assignment.
    pub fn all_benchmark_speedups(&self, factors: &[usize], sim: &SimConfig) -> Vec<f64> {
        (0..self.benchmarks.len())
            .map(|b| self.benchmark_speedup(b, factors, sim))
            .collect()
    }

    /// Fallible form of [`SuiteData::all_benchmark_speedups`].
    pub fn try_all_benchmark_speedups(
        &self,
        factors: &[usize],
        sim: &SimConfig,
    ) -> Result<Vec<f64>, PipelineError> {
        (0..self.benchmarks.len())
            .map(|b| self.try_benchmark_speedup(b, factors, sim))
            .collect()
    }

    /// The factor assignment of the oracle (per-loop argmin).
    pub fn oracle_factors(&self) -> Vec<usize> {
        self.loops.iter().map(LoopRecord::best_factor).collect()
    }

    /// The factor assignment of GCC's default heuristic.
    pub fn gcc_factors(&self) -> Vec<usize> {
        self.loops.iter().map(|l| l.gcc_default_factor).collect()
    }

    /// Training examples (IR + cycle tables) for the feature search.
    pub fn training_examples(&self) -> Vec<fegen_core::TrainingExample> {
        self.loops
            .iter()
            .map(|l| fegen_core::TrainingExample {
                ir: l.ir.clone(),
                cycles: l.cycles.clone(),
            })
            .collect()
    }
}

/// Builds the motivating-example data (paper Figure 2): the mesa
/// `SpotExpTable` loop, compiled once into a [`BenchmarkSnapshot`],
/// measured over all factors by forking, with its exported IR and hand
/// features — everything the Figure 2/3/4 binaries need. Returning the
/// snapshot (the compiled benchmark is `snapshot.cb`) lets callers reuse
/// the compile state for further measurements instead of recompiling.
pub fn mesa_record(config: &ExperimentConfig) -> (BenchmarkSnapshot, LoopRecord) {
    match try_mesa_record(config) {
        Ok(r) => r,
        Err(e) => panic!("{e}"),
    }
}

/// Fallible form of [`mesa_record`].
pub fn try_mesa_record(
    config: &ExperimentConfig,
) -> Result<(BenchmarkSnapshot, LoopRecord), PipelineError> {
    let bench = fegen_suite::mesa_example();
    let snap = BenchmarkSnapshot::try_build(&bench, &config.oracle)?;
    let site = LoopSite {
        func: "spot_exp".into(),
        loop_id: 0,
    };
    let m = snap.try_measure_site(&site)?;
    let missing = || PipelineError::MissingSite {
        bench: snap.cb.name.clone(),
        site: site.to_string(),
    };
    let func = snap.cb.rtl.function("spot_exp").ok_or_else(missing)?;
    let region = func.loops.first().ok_or_else(missing)?;
    let record = LoopRecord {
        bench: 0,
        site,
        cycles: m.cycles,
        ir: export_loop(func, region, &snap.cb.rtl.layout),
        gcc_feats: gcc_features(func, region),
        stateml_feats: stateml_features(func, region),
        gcc_default_factor: gcc_default_factor(func, region, &config.oracle.gcc),
    };
    Ok((snap, record))
}

/// Arithmetic mean over the finite entries; `0.0` when none remain.
///
/// A non-finite entry is a caller bug (a quarantined, never-measured cell
/// leaking into an aggregate) — debug builds assert on it, release builds
/// filter it so one poisoned cell cannot turn a whole figure into NaN.
pub fn mean(xs: &[f64]) -> f64 {
    debug_assert!(
        xs.iter().all(|x| x.is_finite()),
        "non-finite input to mean: {xs:?}"
    );
    let (sum, n) = xs
        .iter()
        .filter(|x| x.is_finite())
        .fold((0.0, 0usize), |(s, n), x| (s + x, n + 1));
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_data() -> SuiteData {
        let mut config = ExperimentConfig::quick();
        config.suite = SuiteConfig::tiny();
        build_suite_data(&config)
    }

    #[test]
    fn builds_data_for_tiny_suite() {
        let data = tiny_data();
        assert_eq!(data.benchmarks.len(), 3);
        assert!(!data.loops.is_empty());
        for l in &data.loops {
            assert_eq!(l.cycles.len(), 16);
            assert_eq!(l.gcc_feats.len(), 6);
            assert_eq!(l.stateml_feats.len(), 22);
            assert!(l.ir.size() > 3, "exported IR too small for {}", l.site);
        }
    }

    #[test]
    fn oracle_beats_or_equals_everyone_per_benchmark() {
        let data = tiny_data();
        let sim = SimConfig::default();
        let oracle = data.all_benchmark_speedups(&data.oracle_factors(), &sim);
        let zero = vec![0usize; data.loops.len()];
        let baseline = data.all_benchmark_speedups(&zero, &sim);
        for (i, (&o, &b)) in oracle.iter().zip(&baseline).enumerate() {
            assert!((b - 1.0).abs() < 1e-9, "baseline speedup must be 1.0, got {b}");
            // The per-loop oracle may compose imperfectly across loops of a
            // shared function (I-cache interactions), but must not lose
            // noticeably.
            assert!(o > 0.95, "oracle regressed on benchmark {i}: {o}");
        }
    }

    #[test]
    fn snapshot_fork_matches_scratch_measurement() {
        let config = ExperimentConfig::quick();
        let suite = fegen_suite::generate_suite(&SuiteConfig::tiny());
        for b in &suite {
            let snap = BenchmarkSnapshot::try_build(b, &config.oracle).unwrap();
            for site in &snap.sites {
                let scratch = fegen_sim::oracle::measure_site(
                    &snap.cb.rtl,
                    &snap.cb.workload,
                    &snap.kernel_funcs,
                    site,
                    &config.oracle,
                )
                .unwrap();
                let forked = snap.measure_site(site).unwrap();
                assert_eq!(
                    scratch
                        .cycles
                        .iter()
                        .map(|c| c.to_bits())
                        .collect::<Vec<_>>(),
                    forked
                        .cycles
                        .iter()
                        .map(|c| c.to_bits())
                        .collect::<Vec<_>>(),
                    "fork diverged from scratch at {}:{site}",
                    b.name
                );
            }
        }
    }

    #[test]
    fn snapshot_fork_is_deterministic() {
        let config = ExperimentConfig::quick();
        let suite = fegen_suite::generate_suite(&SuiteConfig::tiny());
        let snap = BenchmarkSnapshot::try_build(&suite[0], &config.oracle).unwrap();
        let site = snap.sites.first().expect("tiny suite has loops").clone();
        let a = snap.fork(&site, 7).unwrap();
        let b = snap.fork(&site, 7).unwrap();
        assert_eq!(a.to_bits(), b.to_bits());
        assert_eq!(snap.stats().forks, 2);
        assert!(snap.stats().reuse_rate() > 0.0);
    }

    #[test]
    fn snapshot_digest_is_content_stable() {
        let config = ExperimentConfig::quick();
        let suite = fegen_suite::generate_suite(&SuiteConfig::tiny());
        let a = BenchmarkSnapshot::try_build(&suite[0], &config.oracle).unwrap();
        let b = BenchmarkSnapshot::try_build(&suite[0], &config.oracle).unwrap();
        let c = BenchmarkSnapshot::try_build(&suite[1], &config.oracle).unwrap();
        assert_eq!(a.digest, b.digest);
        assert_ne!(a.digest, c.digest);
    }

    #[test]
    fn mean_is_total() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
    }

    #[test]
    fn benchmark_speedup_is_deterministic() {
        let data = tiny_data();
        let sim = SimConfig::default();
        let f = data.oracle_factors();
        assert_eq!(
            data.benchmark_speedup(0, &f, &sim),
            data.benchmark_speedup(0, &f, &sim)
        );
    }
}
