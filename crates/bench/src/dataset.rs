//! The persistent, integrity-checked dataset store behind the measurement
//! campaign.
//!
//! A dataset directory holds one *shard* per benchmark plus a tiny meta
//! file:
//!
//! ```text
//! <dataset-dir>/
//!   dataset.json                 { version, fingerprint }
//!   shards/
//!     <benchmark>.shard.json     { checksum, shard: { ... } }
//! ```
//!
//! Three disciplines make the store safe to kill, corrupt and resume:
//!
//! - **Identity.** Every shard (and the meta file) carries a fingerprint of
//!   everything that determines the measured values — suite configuration,
//!   oracle configuration, noise model, sampling policy and master seed —
//!   computed with the same stable hash as `fegen-core`'s checkpoint
//!   identities. A dataset produced under one configuration can never be
//!   silently consumed by an experiment running another.
//! - **Atomicity.** Shards are written to a temp file and renamed into
//!   place, so a kill mid-write leaves either the previous shard or no
//!   shard — never a half-written one.
//! - **Integrity.** Each shard file wraps its payload with an FNV-1a
//!   checksum over the payload's canonical JSON. A corrupted shard (torn
//!   write, bitrot, injected [`FaultKind::CorruptWrite`]) is detected at
//!   load and reported as [`DatasetError::Corrupt`]; the campaign re-
//!   measures it instead of loading garbage.
//!
//! Only *measured* data lives in shards: per-site cycle tables, run
//! counts, the baseline, and quarantine records. Everything derivable from
//! the configuration (the programs, exported IR, hand features) is
//! recomputed on load, exactly as `fegen-core::checkpoint` refuses to
//! store derived state — small files, and nothing to de-synchronise.

use fegen_core::{stable_hash, FaultInjector, FaultKind, Telemetry};
use fegen_sim::OracleConfig;
use fegen_suite::SuiteConfig;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::path::{Path, PathBuf};

/// Format version written to and expected from dataset files.
pub const DATASET_VERSION: u32 = 1;

/// Meta file name inside a dataset directory.
pub const META_FILE: &str = "dataset.json";

/// Subdirectory holding the per-benchmark shards.
pub const SHARD_DIR: &str = "shards";

/// Suffix of every shard file.
pub const SHARD_SUFFIX: &str = ".shard.json";

/// A typed failure of the dataset store.
#[derive(Debug, Clone, PartialEq)]
pub enum DatasetError {
    /// A file or directory could not be read or written.
    Io {
        /// Offending path.
        path: PathBuf,
        /// Operating-system error text.
        detail: String,
    },
    /// A file exists but fails decoding or checksum verification.
    Corrupt {
        /// Offending path.
        path: PathBuf,
        /// What failed.
        detail: String,
    },
    /// A file was written by an incompatible format version.
    VersionMismatch {
        /// Offending path.
        path: PathBuf,
        /// Version recorded in the file.
        found: u32,
        /// Version this build understands.
        expected: u32,
    },
    /// The dataset belongs to a different campaign configuration; loading
    /// it would silently mix incompatible measurements.
    FingerprintMismatch {
        /// Offending path.
        path: PathBuf,
        /// Fingerprint recorded in the file.
        found: u64,
        /// Fingerprint of the requesting configuration.
        expected: u64,
    },
    /// A benchmark required by the experiment has no shard yet (the
    /// campaign was interrupted before measuring it).
    Incomplete {
        /// Benchmarks without a valid shard.
        missing: Vec<String>,
    },
}

impl fmt::Display for DatasetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatasetError::Io { path, detail } => {
                write!(f, "dataset i/o error at {}: {detail}", path.display())
            }
            DatasetError::Corrupt { path, detail } => {
                write!(f, "corrupt dataset file {}: {detail}", path.display())
            }
            DatasetError::VersionMismatch {
                path,
                found,
                expected,
            } => write!(
                f,
                "dataset file {} has format version {found}, this build expects {expected}",
                path.display()
            ),
            DatasetError::FingerprintMismatch {
                path,
                found,
                expected,
            } => write!(
                f,
                "dataset file {} belongs to a different campaign \
                 (fingerprint {found:#x}, expected {expected:#x})",
                path.display()
            ),
            DatasetError::Incomplete { missing } => write!(
                f,
                "dataset is incomplete: {} benchmark(s) unmeasured ({}); \
                 run `fegen measure --resume` to finish the campaign",
                missing.len(),
                missing.join(", ")
            ),
        }
    }
}

impl std::error::Error for DatasetError {}

/// One measured loop site inside a shard.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SiteData {
    /// Containing function.
    pub func: String,
    /// Loop id within the function.
    pub loop_id: usize,
    /// Robust-mean cycle table over factors `0..=15`.
    pub cycles: Vec<f64>,
    /// Noisy runs averaged per factor (adaptive sampling's final counts).
    pub runs: Vec<usize>,
}

/// One quarantined site or benchmark.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuarantineEntry {
    /// Benchmark name.
    pub bench: String,
    /// Quarantined site (`func#loop`), or `None` when the whole benchmark
    /// is quarantined.
    pub site: Option<String>,
    /// Measurement attempts performed before giving up.
    pub attempts: usize,
    /// Why the site/benchmark was quarantined (last error text, or the
    /// deadline that expired).
    pub reason: String,
}

impl fmt::Display for QuarantineEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.site {
            Some(site) => write!(
                f,
                "{}:{site} after {} attempt(s): {}",
                self.bench, self.attempts, self.reason
            ),
            None => write!(
                f,
                "{} (whole benchmark) after {} attempt(s): {}",
                self.bench, self.attempts, self.reason
            ),
        }
    }
}

/// Everything the campaign measured for one benchmark.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchShard {
    /// Format version ([`DATASET_VERSION`]).
    pub version: u32,
    /// Campaign-configuration fingerprint.
    pub fingerprint: u64,
    /// Benchmark name.
    pub bench: String,
    /// Canonical suite index.
    pub index: usize,
    /// Baseline (no unrolling anywhere) total cycles; `None` when the
    /// benchmark is quarantined.
    pub baseline_cycles: Option<f64>,
    /// Measured sites, in discovery order.
    pub sites: Vec<SiteData>,
    /// Sites (or the benchmark itself) excluded by graceful degradation.
    pub quarantined: Vec<QuarantineEntry>,
}

/// On-disk wrapper: payload plus checksum over its canonical JSON.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct ShardFile {
    /// FNV-1a over the compact JSON serialization of `shard`.
    checksum: u64,
    /// The payload.
    shard: BenchShard,
}

/// Dataset meta file: identifies format and campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct DatasetMeta {
    version: u32,
    fingerprint: u64,
}

/// Stable fingerprint of everything that determines the measured values.
/// Execution policy (jobs, retries, quarantine thresholds) is deliberately
/// excluded: it changes how the campaign runs, never what a successful
/// measurement contains.
pub fn dataset_fingerprint(
    suite: &SuiteConfig,
    oracle: &OracleConfig,
    sampling_identity: &str,
    seed: u64,
) -> u64 {
    stable_hash(format!("{suite:?}|{oracle:?}|{sampling_identity}|{seed}").as_bytes())
}

/// A dataset directory opened for a specific campaign identity.
#[derive(Debug, Clone)]
pub struct DatasetStore {
    dir: PathBuf,
    fingerprint: u64,
    telemetry: Telemetry,
}

impl DatasetStore {
    /// Opens (creating if needed) `dir` for a campaign with the given
    /// fingerprint. A meta file is written on first open; a later open
    /// verifies it, so two differently-configured campaigns can never
    /// interleave shards in one directory.
    pub fn open(dir: &Path, fingerprint: u64) -> Result<DatasetStore, DatasetError> {
        let io = |path: &Path, e: std::io::Error| DatasetError::Io {
            path: path.to_path_buf(),
            detail: e.to_string(),
        };
        let shard_dir = dir.join(SHARD_DIR);
        std::fs::create_dir_all(&shard_dir).map_err(|e| io(&shard_dir, e))?;
        let meta_path = dir.join(META_FILE);
        if meta_path.exists() {
            let text =
                std::fs::read_to_string(&meta_path).map_err(|e| io(&meta_path, e))?;
            let meta: DatasetMeta =
                serde_json::from_str(&text).map_err(|e| DatasetError::Corrupt {
                    path: meta_path.clone(),
                    detail: e.to_string(),
                })?;
            if meta.version != DATASET_VERSION {
                return Err(DatasetError::VersionMismatch {
                    path: meta_path,
                    found: meta.version,
                    expected: DATASET_VERSION,
                });
            }
            if meta.fingerprint != fingerprint {
                return Err(DatasetError::FingerprintMismatch {
                    path: meta_path,
                    found: meta.fingerprint,
                    expected: fingerprint,
                });
            }
        } else {
            let meta = DatasetMeta {
                version: DATASET_VERSION,
                fingerprint,
            };
            let text = serde_json::to_string_pretty(&meta).map_err(|e| DatasetError::Io {
                path: meta_path.clone(),
                detail: format!("serialization failed: {e}"),
            })?;
            atomic_write(&meta_path, text.as_bytes())?;
        }
        Ok(DatasetStore {
            dir: dir.to_path_buf(),
            fingerprint,
            telemetry: Telemetry::disabled(),
        })
    }

    /// Attaches a telemetry handle: shard writes emit a `shard_write` event
    /// with latency and size. Telemetry never changes a byte of any shard.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> DatasetStore {
        self.telemetry = telemetry;
        self
    }

    /// The directory this store lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The campaign fingerprint this store was opened with.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The shard path for a benchmark.
    pub fn shard_path(&self, bench: &str) -> PathBuf {
        self.dir.join(SHARD_DIR).join(format!("{bench}{SHARD_SUFFIX}"))
    }

    /// Whether any shard files exist (used to require `--resume` before
    /// continuing into a half-built dataset).
    pub fn has_shards(&self) -> bool {
        std::fs::read_dir(self.dir.join(SHARD_DIR))
            .map(|entries| {
                entries.flatten().any(|e| {
                    e.file_name()
                        .to_string_lossy()
                        .ends_with(SHARD_SUFFIX)
                })
            })
            .unwrap_or(false)
    }

    /// Loads and verifies one benchmark's shard.
    ///
    /// `Ok(None)` means "not measured yet" (no file). Every other defect —
    /// unreadable file, failed checksum, wrong version or fingerprint, a
    /// payload disagreeing with its declared benchmark — is a typed error,
    /// never a silently wrong result.
    pub fn load_shard(&self, bench: &str) -> Result<Option<BenchShard>, DatasetError> {
        let path = self.shard_path(bench);
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => {
                return Err(DatasetError::Io {
                    path,
                    detail: e.to_string(),
                })
            }
        };
        let file: ShardFile = serde_json::from_str(&text).map_err(|e| DatasetError::Corrupt {
            path: path.clone(),
            detail: e.to_string(),
        })?;
        let canonical = serde_json::to_string(&file.shard).map_err(|e| DatasetError::Corrupt {
            path: path.clone(),
            detail: format!("re-serialization failed: {e}"),
        })?;
        let computed = stable_hash(canonical.as_bytes());
        if computed != file.checksum {
            return Err(DatasetError::Corrupt {
                path,
                detail: format!(
                    "checksum mismatch: file declares {:#x}, payload hashes to {computed:#x}",
                    file.checksum
                ),
            });
        }
        if file.shard.version != DATASET_VERSION {
            return Err(DatasetError::VersionMismatch {
                path,
                found: file.shard.version,
                expected: DATASET_VERSION,
            });
        }
        if file.shard.fingerprint != self.fingerprint {
            return Err(DatasetError::FingerprintMismatch {
                path,
                found: file.shard.fingerprint,
                expected: self.fingerprint,
            });
        }
        if file.shard.bench != bench {
            return Err(DatasetError::Corrupt {
                path,
                detail: format!(
                    "shard declares benchmark `{}`, expected `{bench}`",
                    file.shard.bench
                ),
            });
        }
        Ok(Some(file.shard))
    }

    /// Writes one benchmark's shard atomically (temp file + rename).
    ///
    /// When a fault injector is supplied, a [`FaultKind::CorruptWrite`]
    /// plan firing on `shard-write:<bench>` scribbles over the committed
    /// bytes — the deterministic stand-in for bitrot that the corruption-
    /// detection tests rely on — and a [`FaultKind::Delay`] stalls the
    /// write.
    pub fn write_shard(
        &self,
        shard: &BenchShard,
        faults: Option<&FaultInjector>,
    ) -> Result<PathBuf, DatasetError> {
        let path = self.shard_path(&shard.bench);
        let canonical = serde_json::to_string(shard).map_err(|e| DatasetError::Io {
            path: path.clone(),
            detail: format!("serialization failed: {e}"),
        })?;
        let file = ShardFile {
            checksum: stable_hash(canonical.as_bytes()),
            shard: shard.clone(),
        };
        let text = serde_json::to_string_pretty(&file).map_err(|e| DatasetError::Io {
            path: path.clone(),
            detail: format!("serialization failed: {e}"),
        })?;
        let fault = faults.and_then(|f| f.fire(&format!("shard-write:{}", shard.bench)));
        if let Some(FaultKind::Delay(ms)) = fault {
            std::thread::sleep(std::time::Duration::from_millis(ms));
        }
        let started = std::time::Instant::now();
        atomic_write(&path, text.as_bytes())?;
        let dur_us = started.elapsed().as_micros() as u64;
        self.telemetry.observe("dataset.shard_write_us", dur_us as f64);
        self.telemetry
            .event("shard_write")
            .str("bench", &shard.bench)
            .u64("dur_us", dur_us)
            .u64("bytes", text.len() as u64)
            .emit();
        if let Some(FaultKind::CorruptWrite) = fault {
            // Scribble over the middle of the committed file: the length
            // stays plausible, the checksum no longer verifies.
            let mut bytes = text.into_bytes();
            let mid = bytes.len() / 2;
            for b in bytes.iter_mut().skip(mid).take(16) {
                *b = b'#';
            }
            std::fs::write(&path, &bytes).map_err(|e| DatasetError::Io {
                path: path.clone(),
                detail: e.to_string(),
            })?;
        }
        Ok(path)
    }
}

/// Temp-file-plus-rename write in the target's directory, made durable:
/// the temp file is fsynced before the rename, and the parent directory
/// is fsynced after it — a crash right after the rename cannot lose the
/// shard to an unflushed directory entry.
fn atomic_write(path: &Path, bytes: &[u8]) -> Result<(), DatasetError> {
    let io_err = |p: &Path| {
        let path = p.to_path_buf();
        move |e: std::io::Error| DatasetError::Io {
            path,
            detail: e.to_string(),
        }
    };
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, bytes).map_err(io_err(&tmp))?;
    std::fs::File::open(&tmp)
        .and_then(|f| f.sync_all())
        .map_err(io_err(&tmp))?;
    std::fs::rename(&tmp, path).map_err(io_err(path))?;
    if let Some(dir) = path.parent() {
        std::fs::File::open(dir)
            .and_then(|d| d.sync_all())
            .map_err(io_err(dir))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_shard(fingerprint: u64) -> BenchShard {
        BenchShard {
            version: DATASET_VERSION,
            fingerprint,
            bench: "adpcm_encode".into(),
            index: 0,
            baseline_cycles: Some(123456.0),
            sites: vec![SiteData {
                func: "kernel0".into(),
                loop_id: 1,
                cycles: (0..16).map(|k| 1000.0 - k as f64).collect(),
                runs: vec![40; 16],
            }],
            quarantined: vec![],
        }
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "fegen-dataset-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn shard_roundtrip_verifies() {
        let dir = temp_dir("roundtrip");
        let store = DatasetStore::open(&dir, 42).unwrap();
        let shard = sample_shard(42);
        store.write_shard(&shard, None).unwrap();
        assert_eq!(store.load_shard("adpcm_encode").unwrap(), Some(shard));
        assert_eq!(store.load_shard("missing_bench").unwrap(), None);
        assert!(store.has_shards());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corruption_is_detected() {
        let dir = temp_dir("corrupt");
        let store = DatasetStore::open(&dir, 42).unwrap();
        let shard = sample_shard(42);
        let path = store.write_shard(&shard, None).unwrap();
        // Flip a digit inside the payload: still valid JSON, wrong data.
        let text = std::fs::read_to_string(&path).unwrap();
        let tampered = text.replacen("1000", "1001", 1);
        assert_ne!(text, tampered, "tamper target not found");
        std::fs::write(&path, tampered).unwrap();
        let err = store.load_shard("adpcm_encode").unwrap_err();
        assert!(
            matches!(err, DatasetError::Corrupt { ref detail, .. } if detail.contains("checksum")),
            "{err}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_shard_is_corrupt_not_fatal() {
        let dir = temp_dir("truncated");
        let store = DatasetStore::open(&dir, 42).unwrap();
        let path = store.write_shard(&sample_shard(42), None).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &text[..text.len() / 2]).unwrap();
        assert!(matches!(
            store.load_shard("adpcm_encode"),
            Err(DatasetError::Corrupt { .. })
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn foreign_fingerprint_is_rejected_at_open() {
        let dir = temp_dir("fingerprint");
        let _store = DatasetStore::open(&dir, 42).unwrap();
        let err = DatasetStore::open(&dir, 43).unwrap_err();
        assert!(
            matches!(
                err,
                DatasetError::FingerprintMismatch {
                    found: 42,
                    expected: 43,
                    ..
                }
            ),
            "{err}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_corrupt_write_defeats_the_checksum() {
        use fegen_core::{FaultPlan, FaultTrigger};
        let dir = temp_dir("injected");
        let store = DatasetStore::open(&dir, 42).unwrap();
        let injector = FaultInjector::new(vec![FaultPlan {
            trigger: FaultTrigger::OnKeyPrefix("shard-write:adpcm_encode".into()),
            kind: FaultKind::CorruptWrite,
        }]);
        store.write_shard(&sample_shard(42), Some(&injector)).unwrap();
        assert_eq!(injector.injected(), 1);
        assert!(matches!(
            store.load_shard("adpcm_encode"),
            Err(DatasetError::Corrupt { .. })
        ));
        // Re-writing without the fault repairs the shard.
        store.write_shard(&sample_shard(42), None).unwrap();
        assert!(store.load_shard("adpcm_encode").unwrap().is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fingerprint_tracks_every_identity_input() {
        let suite = SuiteConfig::tiny();
        let oracle = OracleConfig::default();
        let base = dataset_fingerprint(&suite, &oracle, "sampling-v1", 7);
        assert_eq!(base, dataset_fingerprint(&suite, &oracle, "sampling-v1", 7));
        let mut other_suite = suite.clone();
        other_suite.n_benchmarks += 1;
        assert_ne!(base, dataset_fingerprint(&other_suite, &oracle, "sampling-v1", 7));
        let mut other_oracle = oracle.clone();
        other_oracle.max_factor = 7;
        assert_ne!(base, dataset_fingerprint(&suite, &other_oracle, "sampling-v1", 7));
        assert_ne!(base, dataset_fingerprint(&suite, &oracle, "sampling-v2", 7));
        assert_ne!(base, dataset_fingerprint(&suite, &oracle, "sampling-v1", 8));
    }
}
