//! The competing methods of the evaluation, all under the same outer
//! cross-validation protocol: "Loops that are used for generating features
//! and later learning a model are *never* used to evaluate the model" (§VI).
//!
//! Every method maps the suite's loops to per-loop unroll factors:
//!
//! - [`predict_cv_tree`] — a C4.5 decision tree over a fixed feature set
//!   (GCC's features, stateML's features, or their union — Figure 15);
//! - [`predict_cv_svm`] — the stateML one-vs-all RBF SVM (Figure 13);
//! - [`predict_cv_ours`] — the paper's contribution: per fold, derive the
//!   grammar from the training loops, run the GP feature search, train a
//!   tree over the found features, predict the held-out loops.

use crate::pipeline::{LoopRecord, PipelineError, SuiteData};
use fegen_core::{FeatureSearch, SearchConfig, SearchOutcome};
use fegen_ml::data::Dataset;
use fegen_ml::svm::{Svm, SvmConfig};
use fegen_ml::tree::{DecisionTree, TreeConfig};
use fegen_ml::KFold;

/// Number of unroll-factor classes (factors 0..=15).
pub const N_CLASSES: usize = 16;

fn labels(loops: &[LoopRecord]) -> Vec<usize> {
    loops.iter().map(LoopRecord::label_factor).collect()
}

/// Cross-validated decision-tree predictions over a fixed feature mapping.
pub fn predict_cv_tree(
    data: &SuiteData,
    features: impl Fn(&LoopRecord) -> Vec<f64>,
    folds: usize,
    seed: u64,
    tree: &TreeConfig,
) -> Vec<usize> {
    let loops = &data.loops;
    let xs: Vec<Vec<f64>> = loops.iter().map(&features).collect();
    let ys = labels(loops);
    let fallback = majority(&ys);
    // A ragged feature mapping cannot train a model; fall back to the
    // majority factor rather than aborting the evaluation.
    let Ok(dataset) = Dataset::new(xs, ys, N_CLASSES) else {
        return vec![fallback; loops.len()];
    };
    let mut out = vec![0usize; loops.len()];
    for (train, test) in KFold::new(folds, seed).splits(loops.len()) {
        let model = DecisionTree::train(&dataset.subset(&train), tree);
        for i in test {
            out[i] = model.predict(dataset.row(i));
        }
    }
    out
}

/// Cross-validated one-vs-all RBF SVM predictions (the stateML scheme:
/// σ = 1, C = 10, features standardised on each fold's training split).
pub fn predict_cv_svm(
    data: &SuiteData,
    features: impl Fn(&LoopRecord) -> Vec<f64>,
    folds: usize,
    seed: u64,
    svm: &SvmConfig,
) -> Vec<usize> {
    let loops = &data.loops;
    let xs: Vec<Vec<f64>> = loops.iter().map(&features).collect();
    let ys = labels(loops);
    let fallback = majority(&ys);
    let Ok(dataset) = Dataset::new(xs, ys, N_CLASSES) else {
        return vec![fallback; loops.len()];
    };
    let mut out = vec![0usize; loops.len()];
    for (train, test) in KFold::new(folds, seed).splits(loops.len()) {
        let train_set = dataset.subset(&train);
        let stats = train_set.feature_stats();
        let model = Svm::train(&train_set.standardized(&stats), svm);
        let all_std = dataset.standardized(&stats);
        for i in test {
            out[i] = model.predict(all_std.row(i));
        }
    }
    out
}

/// Result of the full our-method run: predictions plus the per-fold search
/// outcomes (used by the Figure 16 report).
#[derive(Debug)]
pub struct OursResult {
    /// Per-loop factor predictions (each loop predicted by the fold that
    /// held it out).
    pub factors: Vec<usize>,
    /// The feature-search outcome of each fold.
    pub outcomes: Vec<SearchOutcome>,
}

/// Cross-validated run of the paper's technique.
///
/// # Panics
///
/// Panics when a fold's feature search fails; use [`try_predict_cv_ours`]
/// for a typed error naming the fold.
pub fn predict_cv_ours(
    data: &SuiteData,
    folds: usize,
    seed: u64,
    search: &SearchConfig,
) -> OursResult {
    match try_predict_cv_ours(data, folds, seed, search) {
        Ok(r) => r,
        Err(e) => panic!("{e}"),
    }
}

/// Fallible form of [`predict_cv_ours`]: a failing fold surfaces as
/// [`PipelineError::Search`] with the fold index and the underlying
/// [`fegen_core::SearchError`], instead of aborting the whole evaluation
/// with a panic.
pub fn try_predict_cv_ours(
    data: &SuiteData,
    folds: usize,
    seed: u64,
    search: &SearchConfig,
) -> Result<OursResult, PipelineError> {
    let examples = data.training_examples();
    let ys = labels(&data.loops);
    let mut factors = vec![0usize; examples.len()];
    let mut outcomes = Vec::with_capacity(folds);
    for (fold, (train, test)) in KFold::new(folds, seed)
        .splits(examples.len())
        .into_iter()
        .enumerate()
    {
        let train_examples: Vec<_> = train.iter().map(|&i| examples[i].clone()).collect();
        let mut cfg = search.clone();
        cfg.seed = seed ^ (fold as u64).wrapping_mul(0x9e37);
        let fs = FeatureSearch::from_examples(&train_examples, cfg.clone());
        let outcome = fs
            .try_run(&train_examples)
            .map_err(|source| PipelineError::Search { fold, source })?;

        // Deploy: train the final tree over the found features on the
        // training loops, predict the held-out loops. The feature matrix is
        // rectangular by construction; a degenerate one falls back to the
        // majority predictor rather than aborting the evaluation.
        let matrix_train = fs.feature_matrix(&outcome.features, &train_examples);
        let ys_train: Vec<usize> = train.iter().map(|&i| ys[i]).collect();
        let model = if outcome.features.is_empty() {
            None
        } else {
            Dataset::new(matrix_train, ys_train.clone(), N_CLASSES)
                .ok()
                .map(|ds| DecisionTree::train(&ds, &cfg.tree))
        };
        // Fallback when the search found nothing: majority factor.
        let majority = majority(&ys_train);
        let test_examples: Vec<_> = test.iter().map(|&i| examples[i].clone()).collect();
        let matrix_test = fs.feature_matrix(&outcome.features, &test_examples);
        for (row, &i) in matrix_test.iter().zip(&test) {
            factors[i] = match &model {
                Some(m) => m.predict(row),
                None => majority,
            };
        }
        outcomes.push(outcome);
    }
    Ok(OursResult { factors, outcomes })
}

fn majority(ys: &[usize]) -> usize {
    let mut counts = [0usize; N_CLASSES];
    for &y in ys {
        counts[y] += 1;
    }
    counts
        .iter()
        .enumerate()
        .max_by_key(|(i, &c)| (c, usize::MAX - i))
        .map(|(i, _)| i)
        .unwrap_or(0)
}

/// Per-loop mean speedup of a factor assignment (the loop-level metric the
/// feature search optimises; the figures report benchmark-level speedups).
pub fn loop_level_speedup(data: &SuiteData, factors: &[usize]) -> f64 {
    let tables: Vec<Vec<f64>> = data.loops.iter().map(|l| l.cycles.clone()).collect();
    fegen_ml::metrics::mean_speedup(&tables, factors)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{build_suite_data, ExperimentConfig};
    use fegen_suite::SuiteConfig;

    fn tiny() -> SuiteData {
        let mut config = ExperimentConfig::quick();
        config.suite = SuiteConfig::tiny();
        build_suite_data(&config)
    }

    #[test]
    fn tree_and_svm_cv_cover_every_loop() {
        let data = tiny();
        let tree = predict_cv_tree(&data, |l| l.gcc_feats.clone(), 3, 1, &TreeConfig::default());
        assert_eq!(tree.len(), data.loops.len());
        assert!(tree.iter().all(|&f| f < N_CLASSES));
        let svm = predict_cv_svm(
            &data,
            |l| l.stateml_feats.clone(),
            3,
            1,
            &SvmConfig::default(),
        );
        assert_eq!(svm.len(), data.loops.len());
    }

    #[test]
    fn oracle_dominates_loop_level() {
        let data = tiny();
        let oracle = loop_level_speedup(&data, &data.oracle_factors());
        let gcc = loop_level_speedup(&data, &data.gcc_factors());
        let zero = loop_level_speedup(&data, &vec![0; data.loops.len()]);
        assert!((zero - 1.0).abs() < 1e-12);
        assert!(oracle >= gcc, "oracle {oracle} vs gcc {gcc}");
        assert!(oracle >= 1.0);
    }

    #[test]
    fn ours_runs_and_predicts_every_loop() {
        let data = tiny();
        let mut cfg = SearchConfig::quick();
        cfg.max_features = 2;
        cfg.max_total_generations = 20;
        cfg.gp.population = 10;
        cfg.gp.max_generations = 4;
        let r = predict_cv_ours(&data, 3, 7, &cfg);
        assert_eq!(r.factors.len(), data.loops.len());
        assert_eq!(r.outcomes.len(), 3);
    }
}
