//! Terminal reporting: the figures as ASCII bar charts and tables, plus
//! the measurement-campaign summary.

use crate::campaign::CampaignReport;
use crate::pipeline::mean;
use fegen_ml::metrics::percent_of_max;
use std::fmt::Write;

/// Renders a horizontal bar for a speedup value (1.0 = no change), scaled
/// so `max_speedup` fills `width` characters. Slowdowns render as `▒` bars
/// to the left marker.
pub fn speedup_bar(speedup: f64, max_speedup: f64, width: usize) -> String {
    let span = (max_speedup - 1.0).max(1e-9);
    if speedup >= 1.0 {
        let n = (((speedup - 1.0) / span) * width as f64).round() as usize;
        "█".repeat(n.min(width))
    } else {
        let n = (((1.0 - speedup) / span) * width as f64).round() as usize;
        format!("-{}", "▒".repeat(n.min(width)))
    }
}

/// A per-benchmark comparison table with one bar column per method
/// (Figures 12/13/15 are grouped bar charts; the terminal rendering keeps
/// the same information).
pub fn benchmark_table(
    names: &[String],
    methods: &[(&str, &[f64])],
    bar_width: usize,
) -> String {
    let mut out = String::new();
    let max_speedup = methods
        .iter()
        .flat_map(|(_, v)| v.iter().copied())
        .fold(1.0f64, f64::max);
    let name_w = names.iter().map(String::len).max().unwrap_or(8).max(8);
    for (i, name) in names.iter().enumerate() {
        let _ = writeln!(out, "{name:<name_w$}");
        for (m, values) in methods {
            let v = values[i];
            let _ = writeln!(
                out,
                "  {m:<10} {v:6.3}  {}",
                speedup_bar(v, max_speedup, bar_width)
            );
        }
    }
    let _ = writeln!(out, "{}", "-".repeat(name_w + bar_width + 20));
    for (m, values) in methods {
        let _ = writeln!(out, "  {:<10} mean speedup {:.4}", m, mean(values));
    }
    out
}

/// The headline summary: average speedups and percent-of-maximum for each
/// method against the oracle.
pub fn percent_of_max_summary(oracle: &[f64], methods: &[(&str, &[f64])]) -> String {
    let mut out = String::new();
    let oracle_mean = mean(oracle);
    let _ = writeln!(
        out,
        "oracle mean speedup {:.4} (maximum available)",
        oracle_mean
    );
    for (m, values) in methods {
        let s = mean(values);
        let pct = percent_of_max(s, oracle_mean) * 100.0;
        let _ = writeln!(out, "{m:<10} mean speedup {s:.4}  -> {pct:5.1}% of max");
    }
    out
}

/// Renders the outcome of a measurement campaign: what was measured,
/// reused, repaired and quarantined. The quarantine section names every
/// excluded site/benchmark with its attempt count and last error, so a
/// degraded campaign is loud about what the dataset is missing.
pub fn campaign_summary(report: &CampaignReport) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "campaign: {} benchmark(s) — {} measured, {} reused from the dataset",
        report.total, report.measured, report.resumed
    );
    let _ = writeln!(
        out,
        "sites measured: {} ({} retried attempt(s), {} cell(s) escalated sampling)",
        report.sites_measured, report.retries, report.escalated_cells
    );
    if report.snapshot_builds > 0 {
        let _ = writeln!(
            out,
            "fork-once: {} snapshot(s) built, {} cell(s) forked ({} reusing pre-warmed init state)",
            report.snapshot_builds, report.forks, report.init_forks
        );
    }
    if !report.remeasured_corrupt.is_empty() {
        let _ = writeln!(
            out,
            "corrupt shard(s) detected and re-measured: {}",
            report.remeasured_corrupt.join(", ")
        );
    }
    if report.quarantined.is_empty() {
        let _ = writeln!(out, "quarantine: empty");
    } else {
        let _ = writeln!(out, "quarantine ({} entries):", report.quarantined.len());
        for q in &report.quarantined {
            let _ = writeln!(out, "  {q}");
        }
    }
    out
}

/// Formats the Figure 2(b)-style row.
pub fn fig2_row(method: &str, factor: usize, cycles: f64, baseline: f64, oracle: f64) -> String {
    let speedup = baseline / cycles;
    let pct = percent_of_max(speedup, baseline / oracle) * 100.0;
    format!(
        "{method:<14} unroll={factor:<2} cycles={cycles:>10.0} speedup={speedup:.4} ({pct:+.0}% of max)"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bars_scale_with_speedup() {
        let small = speedup_bar(1.05, 1.3, 30);
        let big = speedup_bar(1.3, 1.3, 30);
        assert!(big.chars().count() > small.chars().count());
        assert_eq!(big.chars().count(), 30);
    }

    #[test]
    fn slowdowns_render_distinctly() {
        let bar = speedup_bar(0.8, 1.3, 30);
        assert!(bar.starts_with('-'));
        assert!(bar.contains('▒'));
    }

    #[test]
    fn summary_contains_percentages() {
        let oracle = [1.10, 1.02];
        let ours = [1.08, 1.01];
        let s = percent_of_max_summary(&oracle, &[("ours", &ours)]);
        assert!(s.contains("% of max"));
        assert!(s.contains("1.06")); // oracle mean
    }

    #[test]
    fn campaign_summary_names_the_quarantined() {
        use crate::dataset::QuarantineEntry;
        let report = CampaignReport {
            total: 3,
            measured: 2,
            resumed: 1,
            remeasured_corrupt: vec!["epic_bench".into()],
            quarantined: vec![QuarantineEntry {
                bench: "adpcm_encode".into(),
                site: Some("kernel0#1".into()),
                attempts: 3,
                reason: "panicked: injected".into(),
            }],
            sites_measured: 7,
            retries: 2,
            escalated_cells: 1,
            snapshot_builds: 2,
            forks: 112,
            init_forks: 96,
        };
        let s = campaign_summary(&report);
        assert!(s.contains("2 measured"));
        assert!(s.contains("epic_bench"));
        assert!(s.contains("adpcm_encode:kernel0#1"));
        assert!(s.contains("3 attempt(s)"));
        assert!(s.contains("2 snapshot(s) built"));
        assert!(s.contains("112 cell(s) forked"));
        let clean = campaign_summary(&CampaignReport::default());
        assert!(clean.contains("quarantine: empty"));
        assert!(!clean.contains("fork-once"), "scratch runs stay silent");
    }

    #[test]
    fn table_lists_all_benchmarks_and_methods() {
        let names = vec!["a".to_owned(), "bb".to_owned()];
        let m1 = [1.1, 0.9];
        let m2 = [1.2, 1.0];
        let t = benchmark_table(&names, &[("gcc", &m1), ("ours", &m2)], 20);
        assert!(t.contains("bb"));
        assert!(t.matches("gcc").count() >= 2);
        assert!(t.contains("mean speedup"));
    }
}
