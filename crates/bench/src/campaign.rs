//! The fault-tolerant measurement-campaign runner.
//!
//! The paper's training data is a week-scale campaign — 57 benchmarks × 16
//! unroll factors × ≥100 noisy runs per loop site (§V) — and data
//! generation is the acknowledged bottleneck of compiler-ML work. This
//! module makes that campaign crash-proof, resumable and degradable:
//!
//! - **Panic-isolated parallel workers.** `--jobs` worker threads pull
//!   benchmarks from a shared queue; every measurement attempt runs under
//!   `catch_unwind`, so a panicking stage costs one attempt, never a
//!   worker and never the campaign (the same discipline as the GP engine's
//!   evaluator isolation).
//! - **Retry under bounded backoff and a deadline.** A failing site is
//!   retried up to `retry` times with exponential backoff; a per-site
//!   deadline bounds the total time sunk into a persistently failing or
//!   stalled site.
//! - **Quarantine, not abort.** A site that exhausts its attempts (or its
//!   deadline) is quarantined: recorded in the shard with the last error,
//!   excluded from the dataset, and the campaign continues. A benchmark
//!   accumulating `quarantine_after` quarantined sites (or failing to
//!   compile at all) is quarantined whole. The campaign completes on the
//!   surviving data and reports exactly what was dropped and why.
//! - **Adaptive sampling.** Each (site, factor) cell draws noisy runs from
//!   a stream seeded by the cell's identity — *not* by execution order —
//!   so results are bit-identical at any `--jobs` count and across
//!   resumes. Sampling starts at `base_runs` and doubles while the
//!   log-domain IQR stays above `target_log_iqr`, up to `max_runs`; a cell
//!   that never settles falls back to the paper's fixed ≥100-run protocol.
//! - **Exact resume.** Shards are atomic and checksummed
//!   ([`DatasetStore`]); a killed campaign re-runs only the benchmarks
//!   without a valid shard, and produces a dataset byte-identical to an
//!   uninterrupted run's. A corrupted shard is detected and re-measured,
//!   never loaded.

use crate::dataset::{
    dataset_fingerprint, BenchShard, DatasetError, DatasetStore, QuarantineEntry, SiteData,
    DATASET_VERSION,
};
use crate::pipeline::{
    try_compile, BenchmarkSnapshot, CompiledBenchmark, ExperimentConfig, LoopRecord,
    PipelineError, SuiteData,
};
use fegen_core::{stable_hash, CancelToken, FaultInjector, FaultKind, Telemetry};
use fegen_rtl::export::export_loop;
use fegen_rtl::heuristic::{gcc_default_factor, gcc_features};
use fegen_rtl::stateml::stateml_features;
use fegen_sim::measure::{robust_stats, NoiseModel};
use fegen_sim::oracle::{kernel_functions, loop_sites, measure_site, run_workload, LoopSite};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// How many noisy runs to draw per (site, factor) cell and when to stop.
#[derive(Debug, Clone, PartialEq)]
pub struct SamplingPolicy {
    /// The injected timing-noise model (the simulator itself is exact).
    pub noise: NoiseModel,
    /// Runs drawn before the first dispersion check.
    pub base_runs: usize,
    /// Escalation cap: runs double up to this count while the cell stays
    /// noisy.
    pub max_runs: usize,
    /// Accept the cell once the log-domain IQR is at or below this (≈
    /// relative spread; the default tolerates ~4% before escalating).
    pub target_log_iqr: f64,
}

impl Default for SamplingPolicy {
    fn default() -> Self {
        SamplingPolicy {
            noise: NoiseModel::default(),
            base_runs: 40,
            max_runs: 160,
            target_log_iqr: 0.04,
        }
    }
}

impl SamplingPolicy {
    /// The identity string folded into the dataset fingerprint: every
    /// field changes the measured values, so every field is included.
    pub fn identity(&self) -> String {
        format!("{self:?}")
    }

    /// The paper's fallback when escalation never settles: at least 100
    /// runs (§V), or the cap if it is higher.
    fn fallback_runs(&self) -> usize {
        self.max_runs.max(100)
    }
}

/// How a campaign obtains the ground-truth cycle table of each
/// `(site, factor)` cell. Both modes are bit-identical by construction
/// (the fork path is proved against the scratch path in
/// `tests/campaign_resilience.rs`), so this is pure execution policy —
/// deliberately *not* part of the dataset fingerprint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MeasureMode {
    /// Fork-once: compile, discover and warm up each benchmark exactly
    /// once into a [`BenchmarkSnapshot`], then fork every cell off that
    /// shared state. The fast path, and the default.
    #[default]
    Forked,
    /// Recompile and re-simulate from scratch for every cell — the
    /// original protocol, kept as the cross-check the fork path is
    /// validated against (`fegen bench-measure`).
    Scratch,
}

/// Execution policy of one campaign run. None of these fields affect the
/// measured values — they are deliberately *not* part of the dataset
/// fingerprint.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignConfig {
    /// Parallel measurement workers.
    pub jobs: usize,
    /// Attempts per site (and per benchmark setup) before quarantine.
    pub retry: usize,
    /// Quarantine the whole benchmark once this many of its sites are
    /// quarantined.
    pub quarantine_after: usize,
    /// Base backoff between retries (doubles per attempt, capped at 2 s).
    pub backoff: Duration,
    /// Total time budget per site across all its attempts.
    pub site_deadline: Duration,
    /// Noisy-run sampling policy (part of the dataset identity).
    pub sampling: SamplingPolicy,
    /// Fork-once or from-scratch measurement (never changes a shard byte).
    pub measure: MeasureMode,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            jobs: 1,
            retry: 3,
            quarantine_after: 4,
            backoff: Duration::from_millis(50),
            site_deadline: Duration::from_secs(120),
            sampling: SamplingPolicy::default(),
            measure: MeasureMode::default(),
        }
    }
}

/// Content digest of the suite's pre-unroll RTL: every benchmark is
/// generated and lowered (deterministic and cheap — the simulation, not
/// the compilation, is the expensive part) and its program digest, or its
/// compile-error text, is chained into one value. Folding this into the
/// campaign fingerprint means a dataset records exactly which compile
/// state produced it — a lowering change that alters any benchmark's RTL
/// invalidates the dataset even when no configuration struct changed.
fn suite_rtl_digest(suite: &fegen_suite::SuiteConfig) -> u64 {
    let mut acc = stable_hash(b"suite-rtl");
    for b in fegen_suite::generate_suite(suite) {
        let token = match try_compile(&b) {
            Ok(cb) => format!("{}={:016x}", b.name, cb.rtl.content_digest()),
            Err(e) => format!("{}!{e}", b.name),
        };
        acc = stable_hash(format!("{acc:016x}|{token}").as_bytes());
    }
    acc
}

/// The dataset fingerprint of an experiment + sampling-policy pair:
/// [`dataset_fingerprint`] over the configuration, folded with the suite's
/// pre-unroll RTL [content digest](suite_rtl_digest). Search/fold settings
/// are excluded because they never change what is measured — figures with
/// different fold counts share one dataset. [`MeasureMode`] is excluded
/// because both modes produce bit-identical shards.
pub fn campaign_fingerprint(experiment: &ExperimentConfig, sampling: &SamplingPolicy) -> u64 {
    let config = dataset_fingerprint(
        &experiment.suite,
        &experiment.oracle,
        &sampling.identity(),
        experiment.seed,
    );
    let rtl = suite_rtl_digest(&experiment.suite);
    stable_hash(format!("{config:016x}|rtl:{rtl:016x}").as_bytes())
}

/// What one campaign run did.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CampaignReport {
    /// Benchmarks in the suite.
    pub total: usize,
    /// Benchmarks measured by this run.
    pub measured: usize,
    /// Benchmarks whose valid shard was reused (resume).
    pub resumed: usize,
    /// Shards found corrupt and re-measured.
    pub remeasured_corrupt: Vec<String>,
    /// Quarantined sites and benchmarks.
    pub quarantined: Vec<QuarantineEntry>,
    /// Loop sites measured successfully.
    pub sites_measured: usize,
    /// Failed attempts that were retried.
    pub retries: usize,
    /// (site, factor) cells whose sampling escalated past `base_runs`.
    pub escalated_cells: usize,
    /// Benchmark snapshots built (fork-once mode; 0 in scratch mode).
    pub snapshot_builds: usize,
    /// (site, factor) cells measured by forking a snapshot.
    pub forks: u64,
    /// Forked cells that also reused the snapshot's pre-warmed init state
    /// instead of re-simulating the workload's init calls.
    pub init_forks: u64,
}

/// A typed failure of the campaign driver.
#[derive(Debug, Clone, PartialEq)]
pub enum CampaignError {
    /// The dataset store failed (I/O, corruption of the meta file, foreign
    /// fingerprint).
    Dataset(DatasetError),
    /// The campaign stopped before every benchmark had a valid shard —
    /// cooperative cancellation, or a shard failed the final verification
    /// pass; re-run with resume to continue/repair.
    Interrupted {
        /// Benchmarks with a valid shard at the stop point.
        completed: usize,
        /// Benchmarks in the suite.
        total: usize,
    },
    /// The target directory already holds shards and resume was not
    /// requested.
    DatasetExists {
        /// The dataset directory.
        dir: std::path::PathBuf,
    },
    /// Reconstructing experiment inputs from a stored dataset failed.
    Pipeline(PipelineError),
}

impl fmt::Display for CampaignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CampaignError::Dataset(e) => write!(f, "{e}"),
            CampaignError::Interrupted { completed, total } => write!(
                f,
                "campaign interrupted with {completed}/{total} benchmarks measured; \
                 re-run with --resume to continue"
            ),
            CampaignError::DatasetExists { dir } => write!(
                f,
                "dataset directory {} already holds shards; pass --resume to \
                 continue the campaign or choose an empty directory",
                dir.display()
            ),
            CampaignError::Pipeline(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CampaignError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CampaignError::Dataset(e) => Some(e),
            CampaignError::Pipeline(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DatasetError> for CampaignError {
    fn from(e: DatasetError) -> Self {
        CampaignError::Dataset(e)
    }
}

impl From<PipelineError> for CampaignError {
    fn from(e: PipelineError) -> Self {
        CampaignError::Pipeline(e)
    }
}

/// Extracts a printable message from a caught panic payload.
fn panic_text(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        format!("panicked: {s}")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("panicked: {s}")
    } else {
        "panicked".to_owned()
    }
}

/// Shared campaign state the workers drain.
struct Shared<'a> {
    suite: &'a [fegen_suite::Benchmark],
    experiment: &'a ExperimentConfig,
    campaign: &'a CampaignConfig,
    store: &'a DatasetStore,
    faults: Option<&'a FaultInjector>,
    cancel: &'a CancelToken,
    telemetry: &'a Telemetry,
    next: AtomicUsize,
    /// Set when a worker hits a fatal store error: stop claiming work.
    fatal_stop: AtomicBool,
    fatal: Mutex<Option<DatasetError>>,
    report: Mutex<CampaignReport>,
    /// Cumulative per-function analyses reused across every snapshot this
    /// run built (fork-once mode) — feeds the reuse-rate gauge.
    analyses_reused: AtomicU64,
    /// Cumulative per-function analyses built from scratch.
    analyses_built: AtomicU64,
}

/// Runs (or resumes) a measurement campaign into `store`.
///
/// Benchmarks that already have a valid shard are skipped; corrupt shards
/// are re-measured. On cooperative cancellation the campaign stops at a
/// benchmark boundary and returns [`CampaignError::Interrupted`] — every
/// shard on disk remains valid, and a later run continues exactly where
/// this one stopped.
pub fn run_campaign(
    experiment: &ExperimentConfig,
    campaign: &CampaignConfig,
    store: &DatasetStore,
    faults: Option<&FaultInjector>,
    cancel: &CancelToken,
) -> Result<CampaignReport, CampaignError> {
    run_campaign_with_telemetry(
        experiment,
        campaign,
        store,
        faults,
        cancel,
        &Telemetry::disabled(),
    )
}

/// [`run_campaign`] with a telemetry handle. Telemetry is purely
/// observational: it never changes what is measured, which benchmarks run,
/// or a single byte of any shard — only what is logged about the run.
pub fn run_campaign_with_telemetry(
    experiment: &ExperimentConfig,
    campaign: &CampaignConfig,
    store: &DatasetStore,
    faults: Option<&FaultInjector>,
    cancel: &CancelToken,
    telemetry: &Telemetry,
) -> Result<CampaignReport, CampaignError> {
    let suite = fegen_suite::generate_suite(&experiment.suite);
    let workers = campaign.jobs.max(1).min(suite.len().max(1));
    let _campaign_span = telemetry.span("campaign");
    telemetry
        .event("campaign_start")
        .u64("total", suite.len() as u64)
        .u64("workers", workers as u64)
        .emit();
    telemetry.gauge_set("campaign.workers", workers as f64);
    telemetry.progress(&format!(
        "campaign: {} benchmark(s), {workers} worker(s)",
        suite.len()
    ));
    let shared = Shared {
        suite: &suite,
        experiment,
        campaign,
        store,
        faults,
        cancel,
        telemetry,
        next: AtomicUsize::new(0),
        fatal_stop: AtomicBool::new(false),
        fatal: Mutex::new(None),
        report: Mutex::new(CampaignReport {
            total: suite.len(),
            ..CampaignReport::default()
        }),
        analyses_reused: AtomicU64::new(0),
        analyses_built: AtomicU64::new(0),
    };
    if workers <= 1 {
        worker(&shared);
    } else {
        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| worker(&shared));
            }
        });
    }
    if let Some(e) = shared.fatal.into_inner().expect("fatal lock") {
        return Err(CampaignError::Dataset(e));
    }
    let report = shared.report.into_inner().expect("report lock");
    telemetry.emit_metrics("campaign");
    // Completion is judged by what is actually on disk, not by what this
    // run believes it did: a cancelled campaign may still have finished
    // everything.
    let completed = suite
        .iter()
        .filter(|b| matches!(store.load_shard(&b.name), Ok(Some(_))))
        .count();
    if completed < suite.len() {
        return Err(CampaignError::Interrupted {
            completed,
            total: suite.len(),
        });
    }
    Ok(report)
}

/// One worker: claim benchmarks off the shared queue until the queue is
/// empty, the campaign is cancelled, or a fatal store error stops it.
fn worker(shared: &Shared<'_>) {
    loop {
        if shared.fatal_stop.load(Ordering::SeqCst) || shared.cancel.is_cancelled() {
            return;
        }
        let idx = shared.next.fetch_add(1, Ordering::SeqCst);
        let Some(bench) = shared.suite.get(idx) else {
            return;
        };
        match shared.store.load_shard(&bench.name) {
            Ok(Some(_)) => {
                shared.report.lock().expect("report lock").resumed += 1;
                shared.telemetry.counter_add("campaign.benchmarks_resumed", 1);
                shared
                    .telemetry
                    .event("bench_done")
                    .str("bench", &bench.name)
                    .u64("dur_us", 0)
                    .bool("resumed", true)
                    .emit();
                continue;
            }
            Ok(None) => {}
            Err(DatasetError::Corrupt { .. }) => {
                shared
                    .report
                    .lock()
                    .expect("report lock")
                    .remeasured_corrupt
                    .push(bench.name.clone());
                shared.telemetry.counter_add("campaign.shards_remeasured_corrupt", 1);
            }
            Err(e) => {
                *shared.fatal.lock().expect("fatal lock") = Some(e);
                shared.fatal_stop.store(true, Ordering::SeqCst);
                return;
            }
        }
        let started = Instant::now();
        let Some(shard) = measure_benchmark(shared, bench, idx) else {
            // Cancelled mid-benchmark: no shard is written, resume will
            // re-measure it from scratch.
            return;
        };
        if let Err(e) = shared.store.write_shard(&shard, shared.faults) {
            *shared.fatal.lock().expect("fatal lock") = Some(e);
            shared.fatal_stop.store(true, Ordering::SeqCst);
            return;
        }
        let measured = {
            let mut report = shared.report.lock().expect("report lock");
            report.measured += 1;
            report.measured
        };
        let dur_us = started.elapsed().as_micros() as u64;
        shared.telemetry.counter_add("campaign.benchmarks_measured", 1);
        shared.telemetry.observe("campaign.bench_dur_us", dur_us as f64);
        shared
            .telemetry
            .event("bench_done")
            .str("bench", &bench.name)
            .u64("dur_us", dur_us)
            .bool("resumed", false)
            .emit();
        shared.telemetry.progress(&format!(
            "measured {} ({measured}/{} this run)",
            bench.name,
            shared.suite.len()
        ));
    }
}

/// Outcome of one guarded, retried stage.
enum Attempted<T> {
    Ok(T),
    /// (attempts made, last error)
    Failed(usize, String),
}

/// Runs `stage` under `catch_unwind` with retry, bounded backoff and the
/// per-site deadline. `key` is the fault-injection key prefix; the attempt
/// number is appended so `OnKeyPrefix` plans fire persistently while
/// `OnCall` plans stay countable.
fn attempt_with_retry<T>(
    shared: &Shared<'_>,
    key: &str,
    mut stage: impl FnMut(bool) -> Result<T, String>,
) -> Attempted<T> {
    let config = shared.campaign;
    let deadline = Instant::now();
    let attempts = config.retry.max(1);
    let mut last = String::new();
    for attempt in 1..=attempts {
        let mut poison = false;
        let fault = shared
            .faults
            .and_then(|f| f.fire(&format!("{key}#a{attempt}")));
        let injected: Option<String> = match fault {
            Some(FaultKind::Panic) => {
                // Raised inside the catch_unwind below so the unwind path
                // is the one real panics take.
                None
            }
            Some(FaultKind::ExhaustBudget) => Some("injected budget exhaustion".into()),
            Some(FaultKind::Delay(ms)) => {
                std::thread::sleep(Duration::from_millis(ms));
                Some(format!("stalled for {ms}ms (injected delay); attempt abandoned"))
            }
            Some(FaultKind::NanFitness) => {
                poison = true;
                None
            }
            Some(FaultKind::Cancel) => {
                shared.cancel.cancel();
                None
            }
            // Island-supervision and worker-transport kinds only mean
            // something to the GP island runtimes; campaign stages ignore
            // them.
            Some(
                FaultKind::CorruptWrite
                | FaultKind::IslandKill
                | FaultKind::IslandStall(_)
                | FaultKind::SlowHeartbeat(_)
                | FaultKind::TornFrame
                | FaultKind::DuplicateFrame
                | FaultKind::StallConn(_)
                | FaultKind::KillWorker
                | FaultKind::SlowHandshake(_),
            )
            | None => None,
        };
        let result: Result<T, String> = match injected {
            Some(e) => Err(e),
            None => {
                let panics = matches!(fault, Some(FaultKind::Panic));
                match catch_unwind(AssertUnwindSafe(|| {
                    if panics {
                        panic!("injected fault: measurement panic");
                    }
                    stage(poison)
                })) {
                    Ok(r) => r,
                    Err(payload) => Err(panic_text(payload)),
                }
            }
        };
        match result {
            Ok(v) => return Attempted::Ok(v),
            Err(e) => last = e,
        }
        if deadline.elapsed() > config.site_deadline {
            return Attempted::Failed(
                attempt,
                format!(
                    "deadline of {:?} exceeded after {attempt} attempt(s); last error: {last}",
                    config.site_deadline
                ),
            );
        }
        if attempt < attempts {
            shared.report.lock().expect("report lock").retries += 1;
            shared.telemetry.counter_add("campaign.retries", 1);
            shared
                .telemetry
                .event("retry")
                .str("key", key)
                .u64("attempt", attempt as u64)
                .str("error", &last)
                .emit();
            let backoff = config
                .backoff
                .saturating_mul(1u32 << (attempt - 1).min(5) as u32)
                .min(Duration::from_secs(2));
            std::thread::sleep(backoff);
        }
    }
    Attempted::Failed(attempts, last)
}

/// Emits one quarantine entry to telemetry (the report copy is handled by
/// the callers, which need different locking shapes).
fn emit_quarantine(shared: &Shared<'_>, entry: &QuarantineEntry) {
    shared.telemetry.counter_add("campaign.quarantines", 1);
    let mut ev = shared
        .telemetry
        .event("quarantine")
        .str("bench", &entry.bench)
        .u64("attempts", entry.attempts as u64)
        .str("reason", &entry.reason);
    if let Some(site) = &entry.site {
        ev = ev.str("site", site);
    }
    ev.emit();
    shared.telemetry.progress(&format!("quarantined {entry}"));
}

/// Per-benchmark compile state produced by the setup stage, in either
/// measurement mode. Both variants answer the same questions (sites,
/// baseline); they differ only in how a cell's ground truth is obtained.
enum Prepared {
    /// From-scratch mode: the compiled benchmark, re-unrolled and re-run
    /// per cell by [`measure_site`]. Boxed so the enum stays pointer-sized
    /// either way.
    Scratch(Box<ScratchState>),
    /// Fork-once mode: the shared snapshot every cell forks from.
    Forked(Arc<BenchmarkSnapshot>),
}

struct ScratchState {
    cb: CompiledBenchmark,
    kernel_funcs: Vec<String>,
    sites: Vec<LoopSite>,
    baseline: f64,
}

impl Prepared {
    fn sites(&self) -> &[LoopSite] {
        match self {
            Prepared::Scratch(s) => &s.sites,
            Prepared::Forked(snap) => &snap.sites,
        }
    }

    fn baseline(&self) -> f64 {
        match self {
            Prepared::Scratch(s) => s.baseline,
            Prepared::Forked(snap) => snap.baseline_cycles,
        }
    }
}

/// Measures one benchmark into a shard, quarantining what persistently
/// fails. Returns `None` only when the campaign was cancelled before the
/// shard was complete.
fn measure_benchmark(
    shared: &Shared<'_>,
    bench: &fegen_suite::Benchmark,
    index: usize,
) -> Option<BenchShard> {
    let experiment = shared.experiment;
    let fingerprint = shared.store.fingerprint();
    let mut shard = BenchShard {
        version: DATASET_VERSION,
        fingerprint,
        bench: bench.name.clone(),
        index,
        baseline_cycles: None,
        sites: Vec::new(),
        quarantined: Vec::new(),
    };

    // Stage 1: compile + baseline + site discovery (retried as one unit —
    // all deterministic, so retries only matter under injected faults).
    // In fork-once mode this is the *only* compile of the benchmark: every
    // (site, factor) cell is forked off the snapshot built here.
    let setup = attempt_with_retry(shared, &format!("setup:{}", bench.name), |_poison| {
        let cb = try_compile(bench).map_err(|e| e.to_string())?;
        match shared.campaign.measure {
            MeasureMode::Forked => {
                let snap = BenchmarkSnapshot::try_from_compiled(cb, &experiment.oracle)
                    .map_err(|e| e.to_string())?;
                Ok(Prepared::Forked(Arc::new(snap)))
            }
            MeasureMode::Scratch => {
                let kernel_funcs = kernel_functions(&cb.rtl, &cb.workload);
                let sites = loop_sites(&cb.rtl, &cb.workload);
                let baseline = run_workload(&cb.rtl, &cb.workload, &experiment.oracle.sim)
                    .map_err(|e| {
                        // Wrapped exactly as the snapshot path wraps it, so
                        // the quarantine record is byte-identical in both
                        // modes.
                        PipelineError::Baseline {
                            bench: cb.name.clone(),
                            detail: e.to_string(),
                        }
                        .to_string()
                    })? as f64;
                Ok(Prepared::Scratch(Box::new(ScratchState {
                    cb,
                    kernel_funcs,
                    sites,
                    baseline,
                })))
            }
        }
    });
    let setup = match setup {
        Attempted::Ok(s) => s,
        Attempted::Failed(attempts, reason) => {
            shard.quarantined.push(QuarantineEntry {
                bench: bench.name.clone(),
                site: None,
                attempts,
                reason: format!("benchmark setup failed: {reason}"),
            });
            for entry in &shard.quarantined {
                emit_quarantine(shared, entry);
            }
            let mut report = shared.report.lock().expect("report lock");
            report.quarantined.extend(shard.quarantined.iter().cloned());
            return Some(shard);
        }
    };
    shard.baseline_cycles = Some(setup.baseline());

    // Stage 2: every site, with per-site retry/quarantine. Cancellation is
    // honoured between sites: the shard is abandoned un-written, so resume
    // re-measures the whole benchmark.
    for site in setup.sites() {
        if shared.cancel.is_cancelled() || shared.fatal_stop.load(Ordering::SeqCst) {
            return None;
        }
        let key = format!("measure:{}:{}", bench.name, site);
        let site_span = shared
            .telemetry
            .span(&format!("site:{}:{site}", bench.name));
        let measured = attempt_with_retry(shared, &key, |poison| {
            measure_site_sampled(&setup, site, shared, &bench.name, poison)
        });
        drop(site_span);
        match measured {
            Attempted::Ok((data, escalated)) => {
                let mut report = shared.report.lock().expect("report lock");
                report.sites_measured += 1;
                report.escalated_cells += escalated;
                drop(report);
                shard.sites.push(data);
            }
            Attempted::Failed(attempts, reason) => {
                let entry = QuarantineEntry {
                    bench: bench.name.clone(),
                    site: Some(site.to_string()),
                    attempts,
                    reason,
                };
                emit_quarantine(shared, &entry);
                shared
                    .report
                    .lock()
                    .expect("report lock")
                    .quarantined
                    .push(entry.clone());
                shard.quarantined.push(entry);
            }
        }
        let site_quarantines = shard.quarantined.iter().filter(|q| q.site.is_some()).count();
        if site_quarantines >= shared.campaign.quarantine_after {
            let entry = QuarantineEntry {
                bench: bench.name.clone(),
                site: None,
                attempts: site_quarantines,
                reason: format!(
                    "{site_quarantines} of {} sites quarantined (threshold {})",
                    setup.sites().len(),
                    shared.campaign.quarantine_after
                ),
            };
            emit_quarantine(shared, &entry);
            shared
                .report
                .lock()
                .expect("report lock")
                .quarantined
                .push(entry.clone());
            shard.quarantined.push(entry);
            break;
        }
    }
    if let Prepared::Forked(snap) = &setup {
        account_snapshot(shared, snap);
    }
    Some(shard)
}

/// Folds one completed snapshot's fork accounting into the report, the
/// telemetry counters and the cumulative reuse-rate gauge. Observational
/// only — called after the shard's contents are final.
fn account_snapshot(shared: &Shared<'_>, snap: &BenchmarkSnapshot) {
    let stats = snap.stats();
    {
        let mut report = shared.report.lock().expect("report lock");
        report.snapshot_builds += 1;
        report.forks += stats.forks;
        report.init_forks += stats.init_forks;
    }
    shared.telemetry.counter_add("campaign.snapshot_builds", 1);
    shared.telemetry.counter_add("campaign.forks", stats.forks);
    shared.telemetry.counter_add("campaign.init_forks", stats.init_forks);
    let reused = stats.analyses_reused
        + shared
            .analyses_reused
            .fetch_add(stats.analyses_reused, Ordering::SeqCst);
    let built = stats.analyses_built
        + shared
            .analyses_built
            .fetch_add(stats.analyses_built, Ordering::SeqCst);
    if reused + built > 0 {
        shared.telemetry.gauge_set(
            "campaign.snapshot_reuse_rate",
            reused as f64 / (reused + built) as f64,
        );
    }
}

/// Measures one site's cycle table through the paper's noisy-measurement
/// protocol: exact simulation per factor, seeded noise injection, robust
/// averaging with adaptive run-count escalation. Returns the site data and
/// how many factor cells escalated.
///
/// Every random draw is seeded by `(master seed, benchmark, site, factor)`
/// — never by execution order — so the result is bit-identical at any
/// worker count, attempt number and resume point.
fn measure_site_sampled(
    prepared: &Prepared,
    site: &LoopSite,
    shared: &Shared<'_>,
    bench_name: &str,
    poison: bool,
) -> Result<(SiteData, usize), String> {
    let experiment = shared.experiment;
    let policy = &shared.campaign.sampling;
    // Ground truth: both arms return the same `LoopMeasurement` through
    // the same `OracleError`, so success bytes *and* failure strings are
    // identical between the modes.
    let truth = match prepared {
        Prepared::Scratch(s) => measure_site(
            &s.cb.rtl,
            &s.cb.workload,
            &s.kernel_funcs,
            site,
            &experiment.oracle,
        ),
        Prepared::Forked(snap) => snap.measure_site(site),
    }
    .map_err(|e| e.to_string())?;
    let mut cycles = Vec::with_capacity(truth.cycles.len());
    let mut runs = Vec::with_capacity(truth.cycles.len());
    let mut escalated = 0usize;
    for (factor, &true_cycles) in truth.cycles.iter().enumerate() {
        let seed = stable_hash(
            format!(
                "{}|{bench_name}|{site}|{factor}",
                experiment.seed
            )
            .as_bytes(),
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let mut samples = policy.noise.samples(&mut rng, true_cycles, policy.base_runs.max(1));
        if poison {
            // An injected NaN fault models a corrupted measurement
            // channel: every reading is garbage, the robust statistics
            // must refuse to produce a mean, and the attempt fails.
            samples.fill(f64::NAN);
        }
        loop {
            let stats = robust_stats(&samples)
                .ok_or_else(|| format!("factor {factor}: no finite samples"))?;
            if stats.log_iqr <= policy.target_log_iqr {
                break;
            }
            if samples.len() >= policy.max_runs {
                // Never settled: the paper's fixed ≥100-run protocol.
                let fallback = policy.fallback_runs();
                if samples.len() < fallback {
                    let extra = policy.noise.samples(
                        &mut rng,
                        true_cycles,
                        fallback - samples.len(),
                    );
                    samples.extend(extra);
                }
                break;
            }
            let extra_n = samples.len().min(policy.max_runs - samples.len());
            let extra = policy.noise.samples(&mut rng, true_cycles, extra_n.max(1));
            samples.extend(extra);
        }
        if samples.len() > policy.base_runs {
            escalated += 1;
        }
        let mean = robust_stats(&samples)
            .ok_or_else(|| format!("factor {factor}: no finite samples"))?
            .mean;
        cycles.push(mean);
        runs.push(samples.len());
    }
    Ok((
        SiteData {
            func: site.func.clone(),
            loop_id: site.loop_id,
            cycles,
            runs,
        },
        escalated,
    ))
}

/// Reconstructs [`SuiteData`] from a complete dataset: benchmarks are
/// regenerated and recompiled (deterministic, cheap), measured cycle
/// tables come from the shards, quarantined sites and benchmarks are
/// excluded. Returns the surviving data plus every quarantine entry so
/// callers can report what the figures are missing.
pub fn load_suite_data(
    experiment: &ExperimentConfig,
    store: &DatasetStore,
) -> Result<(SuiteData, Vec<QuarantineEntry>), CampaignError> {
    let suite = fegen_suite::generate_suite(&experiment.suite);
    let mut missing = Vec::new();
    let mut shards = Vec::with_capacity(suite.len());
    for b in &suite {
        match store.load_shard(&b.name)? {
            Some(shard) => shards.push(shard),
            None => missing.push(b.name.clone()),
        }
    }
    if !missing.is_empty() {
        return Err(CampaignError::Dataset(DatasetError::Incomplete { missing }));
    }
    let mut benchmarks = Vec::new();
    let mut loops = Vec::new();
    let mut baseline_cycles = Vec::new();
    let mut quarantined = Vec::new();
    for (b, shard) in suite.iter().zip(shards) {
        quarantined.extend(shard.quarantined.iter().cloned());
        if shard.quarantined.iter().any(|q| q.site.is_none()) {
            // Whole-benchmark quarantine: measured sites (if any) stay on
            // disk but are excluded from the experiments.
            continue;
        }
        let corrupt = |detail: String| {
            CampaignError::Dataset(DatasetError::Corrupt {
                path: store.shard_path(&b.name),
                detail,
            })
        };
        let cb = try_compile(b)?;
        let discovered = loop_sites(&cb.rtl, &cb.workload);
        let accounted = shard.sites.len()
            + shard.quarantined.iter().filter(|q| q.site.is_some()).count();
        if discovered.len() != accounted {
            return Err(corrupt(format!(
                "shard accounts for {accounted} sites, program has {}",
                discovered.len()
            )));
        }
        let baseline = shard
            .baseline_cycles
            .ok_or_else(|| corrupt("missing baseline cycles".into()))?;
        let bench_idx = benchmarks.len();
        for data in &shard.sites {
            let func = cb
                .rtl
                .function(&data.func)
                .ok_or_else(|| corrupt(format!("no function `{}`", data.func)))?;
            let region = func
                .loops
                .iter()
                .find(|l| l.id == data.loop_id)
                .ok_or_else(|| {
                    corrupt(format!("no loop #{} in `{}`", data.loop_id, data.func))
                })?;
            loops.push(LoopRecord {
                bench: bench_idx,
                site: LoopSite {
                    func: data.func.clone(),
                    loop_id: data.loop_id,
                },
                cycles: data.cycles.clone(),
                ir: export_loop(func, region, &cb.rtl.layout),
                gcc_feats: gcc_features(func, region),
                stateml_feats: stateml_features(func, region),
                gcc_default_factor: gcc_default_factor(func, region, &experiment.oracle.gcc),
            });
        }
        baseline_cycles.push(baseline);
        benchmarks.push(cb);
    }
    Ok((
        SuiteData {
            benchmarks,
            loops,
            baseline_cycles,
        },
        quarantined,
    ))
}
