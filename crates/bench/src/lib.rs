//! # fegen-bench — the experiment harness
//!
//! Reproduces every table and figure of the paper's evaluation. The crate
//! is a library (shared pipeline + methods + reporting) plus one binary per
//! paper artefact:
//!
//! | binary | artefact |
//! |---|---|
//! | `fig02_motivating` | Figure 2(b): the mesa loop, Baseline/Oracle/GCC/GCC-Tree/Ours |
//! | `fig03_04_tree_paths` | Figures 3–4: decision paths of the learned trees |
//! | `fig12_oracle_vs_gcc` | Figure 12: per-benchmark oracle vs GCC speedups (§VII-A limit study) |
//! | `fig13_comparison` | Figure 13: GCC vs stateML vs Ours, 10-fold CV |
//! | `fig14_stateml_features` | Figure 14: the 22 stateML features |
//! | `fig15_tree_comparison` | Figure 15: same learner (C4.5), different feature sets |
//! | `fig16_best_features` | Figure 16: the greedy feature list of one fold |
//! | `run_all` | everything, in order |
//!
//! All binaries accept `--paper` for paper-scale budgets (hours) and
//! default to a `--quick` preset (minutes) that preserves the experimental
//! protocol at reduced scale. Pass `--seed N` to change the master seed,
//! and `--dataset-dir DIR` to measure through the persistent dataset store
//! (see [`campaign`]) instead of re-measuring in memory.


// Library code must report through telemetry events or typed errors,
// never by printing; binaries are exempt (their crate roots are in bin/).
#![deny(clippy::print_stdout, clippy::print_stderr)]

pub mod campaign;
pub mod dataset;
pub mod methods;
pub mod pipeline;
pub mod report;

pub use campaign::{
    campaign_fingerprint, load_suite_data, run_campaign, run_campaign_with_telemetry,
    CampaignConfig, CampaignError, CampaignReport, MeasureMode, SamplingPolicy,
};
pub use dataset::{DatasetError, DatasetStore, QuarantineEntry};
pub use pipeline::{
    build_suite_data, try_build_suite_data, BenchmarkSnapshot, ExperimentConfig, LoopRecord,
    PipelineError, SuiteData,
};

/// Parses the common CLI flags (`--paper`, `--quick`, `--seed N`,
/// `--folds N`, plus the undocumented `--tiny` smoke preset: the 3-program
/// suite at 2 folds, for tests that only need well-formed output fast).
pub fn config_from_args() -> ExperimentConfig {
    let args: Vec<String> = std::env::args().collect();
    let mut config = if args.iter().any(|a| a == "--paper") {
        ExperimentConfig::paper()
    } else {
        ExperimentConfig::quick()
    };
    if args.iter().any(|a| a == "--tiny") {
        config.suite = fegen_suite::SuiteConfig::tiny();
        config.folds = 2;
    }
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seed" => {
                if let Some(v) = it.next().and_then(|v| v.parse().ok()) {
                    config.seed = v;
                }
            }
            "--folds" => {
                if let Some(v) = it.next().and_then(|v| v.parse().ok()) {
                    config.folds = v;
                }
            }
            _ => {}
        }
    }
    config
}

/// Parses the optional `--dataset-dir DIR` flag shared by the figure
/// binaries.
pub fn dataset_dir_from_args() -> Option<std::path::PathBuf> {
    let args: Vec<String> = std::env::args().collect();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--dataset-dir" {
            return it.next().map(std::path::PathBuf::from);
        }
    }
    None
}

/// Builds a telemetry handle from the shared CLI flags `--telemetry-dir
/// DIR`, `--log-json` and `--progress`. Returns the disabled handle when
/// none are given; exits with a diagnostic when the sink cannot be opened.
pub fn telemetry_from_args() -> fegen_core::Telemetry {
    let args: Vec<String> = std::env::args().collect();
    let mut config = fegen_core::TelemetryConfig::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--telemetry-dir" => config.dir = it.next().map(std::path::PathBuf::from),
            "--log-json" => config.log_json = true,
            "--progress" => config.progress = true,
            _ => {}
        }
    }
    match config.build() {
        Ok(t) => t,
        Err(e) => {
            use std::io::Write;
            let _ = writeln!(std::io::stderr(), "error: cannot open telemetry sink: {e}");
            std::process::exit(2);
        }
    }
}

/// Builds [`SuiteData`] either in memory (no dataset directory: the
/// original `try_build_suite_data` path, exact simulation, no noise) or
/// through the persistent dataset store: open (or create) the dataset,
/// run the campaign for any benchmark not yet measured, then load the
/// stored cycle tables. Returns the data plus the quarantine entries
/// excluded from it (always empty on the in-memory path).
pub fn load_or_build_suite_data(
    config: &ExperimentConfig,
    dataset_dir: Option<&std::path::Path>,
) -> Result<(SuiteData, Vec<QuarantineEntry>), CampaignError> {
    load_or_build_suite_data_with_telemetry(config, dataset_dir, &fegen_core::Telemetry::disabled())
}

/// [`load_or_build_suite_data`] with a telemetry handle threaded into the
/// campaign and the dataset store. Telemetry never changes a shard byte.
pub fn load_or_build_suite_data_with_telemetry(
    config: &ExperimentConfig,
    dataset_dir: Option<&std::path::Path>,
    telemetry: &fegen_core::Telemetry,
) -> Result<(SuiteData, Vec<QuarantineEntry>), CampaignError> {
    let Some(dir) = dataset_dir else {
        let data = try_build_suite_data(config)?;
        return Ok((data, Vec::new()));
    };
    let sampling = SamplingPolicy::default();
    let store = DatasetStore::open(dir, campaign_fingerprint(config, &sampling))?
        .with_telemetry(telemetry.clone());
    let campaign = CampaignConfig {
        sampling,
        ..CampaignConfig::default()
    };
    let cancel = fegen_core::CancelToken::new();
    let report =
        run_campaign_with_telemetry(config, &campaign, &store, None, &cancel, telemetry)?;
    if report.measured > 0 {
        use std::io::Write;
        let _ = writeln!(
            std::io::stderr(),
            "# dataset: measured {} benchmark(s), reused {}",
            report.measured,
            report.resumed
        );
    }
    load_suite_data(config, &store)
}
