//! Figure 13: comparison of GCC's heuristic, the state-of-the-art ML
//! scheme (stateML: SVM over the Figure 14 hand features) and our
//! technique (GP-generated features + decision tree), all per benchmark,
//! plus the headline percent-of-maximum summary.
//!
//! Paper result shape: GCC ≈ 3% of max, stateML ≈ 59%, Ours ≈ 76%.
//!
//! With `--dataset-dir DIR` the cycle tables come from (and missing ones
//! are measured into) the persistent dataset store instead of being
//! re-measured in memory.

use fegen_bench::methods::{predict_cv_ours, predict_cv_svm};
use fegen_bench::{
    config_from_args, dataset_dir_from_args, load_or_build_suite_data_with_telemetry, report,
    telemetry_from_args,
};
use fegen_ml::svm::SvmConfig;
use std::process::ExitCode;

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("fig13: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), Box<dyn std::error::Error>> {
    let config = config_from_args();
    let telemetry = telemetry_from_args();
    eprintln!("# generating suite + training data ({} benchmarks)...", config.suite.n_benchmarks);
    let (data, quarantined) = load_or_build_suite_data_with_telemetry(
        &config,
        dataset_dir_from_args().as_deref(),
        &telemetry,
    )?;
    eprintln!("# {} loops measured", data.loops.len());
    for q in &quarantined {
        eprintln!("# quarantined: {q}");
    }
    let sim = &config.oracle.sim;

    let oracle = data.try_all_benchmark_speedups(&data.oracle_factors(), sim)?;
    let gcc = data.try_all_benchmark_speedups(&data.gcc_factors(), sim)?;

    eprintln!("# training stateML SVM ({} folds)...", config.folds);
    let svm_factors = predict_cv_svm(
        &data,
        |l| l.stateml_feats.clone(),
        config.folds,
        config.seed,
        &SvmConfig::default(),
    );
    let stateml = data.try_all_benchmark_speedups(&svm_factors, sim)?;

    eprintln!("# running feature search ({} folds)...", config.folds);
    let ours_result = predict_cv_ours(&data, config.folds, config.seed, &config.search);
    let ours = data.try_all_benchmark_speedups(&ours_result.factors, sim)?;

    let names: Vec<String> = data.benchmarks.iter().map(|b| b.name.clone()).collect();
    println!("== Figure 13: per-benchmark speedups ==");
    print!(
        "{}",
        report::benchmark_table(
            &names,
            &[
                ("oracle", &oracle),
                ("GCC", &gcc),
                ("stateML", &stateml),
                ("Our", &ours),
            ],
            36,
        )
    );
    println!();
    println!("== Summary (percent of maximum available speedup) ==");
    print!(
        "{}",
        report::percent_of_max_summary(
            &oracle,
            &[("GCC", &gcc), ("stateML", &stateml), ("Our", &ours)],
        )
    );
    Ok(())
}
