//! Figure 16: the features found by the search in one fold — each with the
//! internal-validation speedup the model attains once the feature is added,
//! the translation into percent of the maximum available, and the marginal
//! improvement the feature contributed.

use fegen_bench::{build_suite_data, config_from_args};
use fegen_core::FeatureSearch;
use fegen_ml::metrics::percent_of_max;
use fegen_ml::KFold;

fn main() {
    let config = config_from_args();
    eprintln!(
        "# generating suite + training data ({} benchmarks)...",
        config.suite.n_benchmarks
    );
    let data = build_suite_data(&config);
    let examples = data.training_examples();

    // One fold: train on (folds-1)/folds of the loops, exactly as one fold
    // of the Figure 13/15 cross-validation does.
    let (train, _test) = KFold::new(config.folds, config.seed)
        .splits(examples.len())
        .remove(0);
    let train_examples: Vec<_> = train.iter().map(|&i| examples[i].clone()).collect();
    eprintln!("# feature search over {} training loops...", train_examples.len());
    let fs = FeatureSearch::from_examples(&train_examples, config.search.clone());
    let outcome = fs.run(&train_examples);

    println!("== Figure 16: best features found in one fold ==");
    println!(
        "baseline (no features): internal speedup {:.5}; oracle ceiling {:.5}",
        outcome.baseline_speedup, outcome.oracle_speedup
    );
    println!();
    println!(
        "{:>3}  {:>8}  {:>8}  {:>11}  feature",
        "#", "speedup", "% of max", "improvement"
    );
    let mut prev_pct = percent_of_max(outcome.baseline_speedup, outcome.oracle_speedup) * 100.0;
    for (k, step) in outcome.steps.iter().enumerate() {
        let pct = percent_of_max(step.speedup, outcome.oracle_speedup) * 100.0;
        println!(
            "{:>3}  {:>8.5}  {:>7.2}%  {:>10.2}%  {}",
            k + 1,
            step.speedup,
            pct,
            pct - prev_pct,
            step.feature
        );
        prev_pct = pct;
    }
    println!();
    println!(
        "{} features in {} total GP generations",
        outcome.features.len(),
        outcome.total_generations
    );
    println!();
    println!("expression-element legend (paper §VII-C):");
    println!("  count(s)     number of elements in sequence s");
    println!("  filter(s,m)  s without the elements not matching m");
    println!("  sum(s,e)     sum of e over each member of s");
    println!("  is-type(t)   the current node has type t");
    println!("  /*, //*, /[n][p]   children, descendants, n-th-child test");
}
