//! Figure 12 + §VII-A limit study: per-benchmark speedup of GCC's default
//! heuristic vs the oracle (best possible unroll factors).
//!
//! Paper result shape: oracle average ≈ 1.05 with large variance across
//! benchmarks (up to 1.28 on security_sha); GCC gains on a few benchmarks
//! but **slows down 12 of 57**, the worst to 0.55.
//!
//! With `--dataset-dir DIR` the cycle tables come from (and missing ones
//! are measured into) the persistent dataset store instead of being
//! re-measured in memory.

use fegen_bench::pipeline::mean;
use fegen_bench::{
    config_from_args, dataset_dir_from_args, load_or_build_suite_data_with_telemetry, report,
    telemetry_from_args,
};
use std::process::ExitCode;

fn main() -> ExitCode {
    let config = config_from_args();
    let telemetry = telemetry_from_args();
    eprintln!(
        "# generating suite + training data ({} benchmarks)...",
        config.suite.n_benchmarks
    );
    let dataset_dir = dataset_dir_from_args();
    let (data, quarantined) =
        match load_or_build_suite_data_with_telemetry(&config, dataset_dir.as_deref(), &telemetry) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("fig12: {e}");
                return ExitCode::FAILURE;
            }
        };
    eprintln!("# {} loops measured", data.loops.len());
    for q in &quarantined {
        eprintln!("# quarantined: {q}");
    }
    let sim = &config.oracle.sim;

    let speedups = |factors: &[usize]| data.try_all_benchmark_speedups(factors, sim);
    let (oracle, gcc) = match (
        speedups(&data.oracle_factors()),
        speedups(&data.gcc_factors()),
    ) {
        (Ok(o), Ok(g)) => (o, g),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("fig12: {e}");
            return ExitCode::FAILURE;
        }
    };
    let names: Vec<String> = data.benchmarks.iter().map(|b| b.name.clone()).collect();

    println!("== Figure 12: oracle vs GCC default heuristic, per benchmark ==");
    print!(
        "{}",
        report::benchmark_table(&names, &[("oracle", &oracle), ("GCC", &gcc)], 40)
    );

    println!();
    println!("== Limit study (paper §VII-A) ==");
    println!("average oracle speedup: {:.4}", mean(&oracle));
    println!("average GCC speedup:    {:.4}", mean(&gcc));
    let slowdowns: Vec<(&String, f64)> = names
        .iter()
        .zip(&gcc)
        .filter(|(_, &s)| s < 0.9995)
        .map(|(n, &s)| (n, s))
        .collect();
    println!("GCC slows down {} of {} benchmarks", slowdowns.len(), names.len());
    if let Some((n, s)) = slowdowns.iter().min_by(|a, b| a.1.total_cmp(&b.1)) {
        println!("worst GCC slowdown: {n} at {s:.4}");
    }
    if let Some((i, s)) = oracle
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
    {
        println!("largest potential: {} at {s:.4}", names[i]);
    }
    let flat = oracle.iter().filter(|&&s| s < 1.005).count();
    println!("benchmarks where unrolling barely matters (<0.5%): {flat}");
    ExitCode::SUCCESS
}
