//! Figure 12 + §VII-A limit study: per-benchmark speedup of GCC's default
//! heuristic vs the oracle (best possible unroll factors).
//!
//! Paper result shape: oracle average ≈ 1.05 with large variance across
//! benchmarks (up to 1.28 on security_sha); GCC gains on a few benchmarks
//! but **slows down 12 of 57**, the worst to 0.55.

use fegen_bench::{build_suite_data, config_from_args, report};
use fegen_bench::pipeline::mean;

fn main() {
    let config = config_from_args();
    eprintln!(
        "# generating suite + training data ({} benchmarks)...",
        config.suite.n_benchmarks
    );
    let data = build_suite_data(&config);
    eprintln!("# {} loops measured", data.loops.len());
    let sim = &config.oracle.sim;

    let oracle = data.all_benchmark_speedups(&data.oracle_factors(), sim);
    let gcc = data.all_benchmark_speedups(&data.gcc_factors(), sim);
    let names: Vec<String> = data.benchmarks.iter().map(|b| b.name.clone()).collect();

    println!("== Figure 12: oracle vs GCC default heuristic, per benchmark ==");
    print!(
        "{}",
        report::benchmark_table(&names, &[("oracle", &oracle), ("GCC", &gcc)], 40)
    );

    println!();
    println!("== Limit study (paper §VII-A) ==");
    println!("average oracle speedup: {:.4}", mean(&oracle));
    println!("average GCC speedup:    {:.4}", mean(&gcc));
    let slowdowns: Vec<(&String, f64)> = names
        .iter()
        .zip(&gcc)
        .filter(|(_, &s)| s < 0.9995)
        .map(|(n, &s)| (n, s))
        .collect();
    println!("GCC slows down {} of {} benchmarks", slowdowns.len(), names.len());
    if let Some((n, s)) = slowdowns
        .iter()
        .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
    {
        println!("worst GCC slowdown: {n} at {s:.4}");
    }
    if let Some((i, s)) = oracle
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
    {
        println!("largest potential: {} at {s:.4}", names[i]);
    }
    let flat = oracle.iter().filter(|&&s| s < 1.005).count();
    println!("benchmarks where unrolling barely matters (<0.5%): {flat}");
}
