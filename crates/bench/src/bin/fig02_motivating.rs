//! Figure 2: the motivating example. A forward-difference loop from mesa
//! (MediaBench); the table compares Baseline, Oracle, GCC's default
//! heuristic, a decision tree over GCC's own features, and our technique.
//!
//! Paper result shape: GCC's default picks a factor causing a *slowdown*;
//! the GCC-feature tree recovers a small gain; our technique finds the
//! oracle factor.

use fegen_bench::methods::N_CLASSES;
use fegen_bench::pipeline::mesa_record;
use fegen_bench::{build_suite_data, config_from_args, report};
use fegen_core::FeatureSearch;
use fegen_ml::tree::DecisionTree;
use fegen_ml::Dataset;

fn main() {
    let config = config_from_args();
    let (_, mesa) = mesa_record(&config);

    eprintln!("# generating training suite...");
    let data = build_suite_data(&config);
    let labels: Vec<usize> = data.loops.iter().map(|l| l.label_factor()).collect();

    // GCC-feature decision tree trained on the whole suite (the mesa loop
    // itself is, of course, not in the suite).
    let gcc_xs: Vec<Vec<f64>> = data.loops.iter().map(|l| l.gcc_feats.clone()).collect();
    let gcc_ds = Dataset::new(gcc_xs, labels.clone(), N_CLASSES).expect("rectangular");
    let gcc_tree = DecisionTree::train(&gcc_ds, &config.search.tree);
    let gcc_tree_factor = gcc_tree.predict(&mesa.gcc_feats);

    // Our technique: feature search over the suite, tree over the found
    // features, prediction for the mesa loop.
    eprintln!("# running feature search...");
    let examples = data.training_examples();
    let fs = FeatureSearch::from_examples(&examples, config.search.clone());
    let outcome = fs.run(&examples);
    let ours_factor = if outcome.features.is_empty() {
        0
    } else {
        let matrix = fs.feature_matrix(&outcome.features, &examples);
        let ds = Dataset::new(matrix, labels, N_CLASSES).expect("rectangular");
        let tree = DecisionTree::train(&ds, &config.search.tree);
        let mesa_example = fegen_core::TrainingExample {
            ir: mesa.ir.clone(),
            cycles: mesa.cycles.clone(),
        };
        let row = &fs.feature_matrix(&outcome.features, &[mesa_example])[0];
        tree.predict(row)
    };

    let baseline = mesa.cycles[0];
    let oracle_factor = mesa.best_factor();
    let oracle = mesa.cycles[oracle_factor];

    println!("== Figure 2: loop from mesa (MediaBench) ==");
    println!("for (i = 0; i < EXP_TABLE_SIZE - 1; i++)");
    println!("    l->SpotExpTable[i][1] = l->SpotExpTable[i+1][0] - l->SpotExpTable[i][0];");
    println!();
    for (method, factor) in [
        ("Baseline", 0usize),
        ("Oracle", oracle_factor),
        ("GCC Default", mesa.gcc_default_factor),
        ("GCC Tree", gcc_tree_factor),
        ("Our Technique", ours_factor),
    ] {
        println!(
            "{}",
            report::fig2_row(method, factor, mesa.cycles[factor], baseline, oracle)
        );
    }
    println!();
    println!("cycle table (factors 0..=15):");
    for (k, c) in mesa.cycles.iter().enumerate() {
        println!("  factor {k:>2}: {c:>10.0} cycles  speedup {:.4}", baseline / c);
    }
}
