//! Extension experiment (the paper's §IX future work): applying the same
//! feature-generation system to a *second* optimization — per-call-site
//! function inlining.
//!
//! Nothing in `fegen-core` changes: call sites are exported as IR trees,
//! the heuristic value is binary (0 = keep the call, 1 = inline), the cycle
//! table has two entries, and the identical pipeline (grammar derivation,
//! GP search, decision tree) learns the heuristic. Compared against the
//! never-inline, always-inline and GCC-style callee-size-threshold policies.

use fegen_bench::config_from_args;
use fegen_core::{FeatureSearch, TrainingExample};
use fegen_ml::metrics;
use fegen_ml::tree::DecisionTree;
use fegen_ml::{Dataset, KFold};
use fegen_rtl::inline::{call_sites, export_call_site, inline_call, size_heuristic, CallSite};
use fegen_rtl::lower::lower_program;
use fegen_sim::oracle::{kernel_functions, CallSpec, Workload};
use fegen_sim::{Machine, SimConfig};
use fegen_suite::{generate_suite, ArgDesc};

struct SiteRecord {
    example: TrainingExample,
    callee_small: bool,
}

/// Cycles of `init` + the whole kernel call set, minus init (the init code
/// is identical in both variants).
fn kernel_cycles(program: &fegen_rtl::RtlProgram, workload: &Workload, sim: &SimConfig) -> f64 {
    let mut m = Machine::new(program, sim.clone());
    for c in workload.init.iter().chain(&workload.kernels) {
        m.call(&c.func, &c.args)
            .unwrap_or_else(|e| panic!("running {}: {e}", c.func));
    }
    (m.total_cycles() - workload.init.iter().map(|c| m.cycles_of(&c.func)).sum::<u64>()) as f64
}

fn main() {
    let config = config_from_args();
    let sim = &config.oracle.sim;
    let suite = generate_suite(&config.suite);
    eprintln!("# scanning {} benchmarks for call sites...", suite.len());

    let mut records: Vec<SiteRecord> = Vec::new();
    for b in &suite {
        let rtl = lower_program(&b.program).expect("suite lowers");
        let to_args = |a: &ArgDesc| match a {
            ArgDesc::Int(v) => fegen_sim::Arg::Int(*v),
            ArgDesc::Float(v) => fegen_sim::Arg::Float(*v),
            ArgDesc::Array(n) => fegen_sim::Arg::Array(n.clone()),
        };
        let workload = Workload {
            init: b
                .init
                .iter()
                .map(|c| CallSpec {
                    func: c.func.clone(),
                    args: c.args.iter().map(to_args).collect(),
                })
                .collect(),
            kernels: b
                .kernels
                .iter()
                .map(|c| CallSpec {
                    func: c.func.clone(),
                    args: c.args.iter().map(to_args).collect(),
                })
                .collect(),
        };
        for caller_name in kernel_functions(&rtl, &workload) {
            let caller = rtl.function(&caller_name).expect("kernel function");
            let sites: Vec<CallSite> = call_sites(caller);
            for site in sites {
                let Ok(inlined) = inline_call(&rtl, &caller_name, &site) else {
                    continue; // recursive or otherwise un-inlinable
                };
                let keep = kernel_cycles(&rtl, &workload, sim);
                let inl = kernel_cycles(&inlined, &workload, sim);
                let callee = rtl.function(&site.callee).expect("callee");
                records.push(SiteRecord {
                    example: TrainingExample {
                        ir: export_call_site(&rtl, caller, &site),
                        cycles: vec![keep, inl],
                    },
                    callee_small: size_heuristic(callee, 12),
                });
            }
        }
    }
    eprintln!("# {} call sites measured", records.len());
    if records.len() < 10 {
        println!("too few call sites in this suite configuration for a meaningful experiment");
        return;
    }

    let tables: Vec<Vec<f64>> = records.iter().map(|r| r.example.cycles.clone()).collect();
    // Exact argmin labels: with two classes the plateau problem that the
    // unrolling labels need tolerance for does not arise, and ties already
    // break towards "keep the call".
    let labels: Vec<usize> = tables.iter().map(|t| metrics::oracle_choice(t)).collect();
    let n_inline_best = labels.iter().filter(|&&l| l == 1).count();
    eprintln!(
        "# inlining is best at {n_inline_best}/{} sites",
        records.len()
    );

    // Static policies.
    let never: Vec<usize> = vec![0; records.len()];
    let always: Vec<usize> = vec![1; records.len()];
    let size: Vec<usize> = records
        .iter()
        .map(|r| usize::from(r.callee_small))
        .collect();
    let oracle: Vec<usize> = tables.iter().map(|t| metrics::oracle_choice(t)).collect();

    // Learned policy: the paper's pipeline, unchanged, on call-site IR.
    let examples: Vec<TrainingExample> = records.iter().map(|r| r.example.clone()).collect();
    let folds = config.folds.min(records.len() / 4).max(2);
    let mut learned = vec![0usize; records.len()];
    let mut found_features: Vec<String> = Vec::new();
    for (fold, (train, test)) in KFold::new(folds, config.seed)
        .splits(examples.len())
        .into_iter()
        .enumerate()
    {
        let train_examples: Vec<_> = train.iter().map(|&i| examples[i].clone()).collect();
        let mut search_cfg = config.search.clone();
        search_cfg.seed = config.seed ^ fold as u64;
        search_cfg.max_features = search_cfg.max_features.min(4);
        let fs = FeatureSearch::from_examples(&train_examples, search_cfg.clone());
        let outcome = fs.run(&train_examples);
        if fold == 0 {
            found_features = outcome.features.iter().map(|f| f.to_string()).collect();
        }
        let ys: Vec<usize> = train.iter().map(|&i| labels[i]).collect();
        if outcome.features.is_empty() {
            // Majority policy fallback.
            let majority = usize::from(ys.iter().filter(|&&y| y == 1).count() * 2 > ys.len());
            for &i in &test {
                learned[i] = majority;
            }
            continue;
        }
        let matrix = fs.feature_matrix(&outcome.features, &train_examples);
        let ds = Dataset::new(matrix, ys, 2).expect("rectangular");
        let tree = DecisionTree::train(&ds, &search_cfg.tree);
        let test_examples: Vec<_> = test.iter().map(|&i| examples[i].clone()).collect();
        for (row, &i) in fs
            .feature_matrix(&outcome.features, &test_examples)
            .iter()
            .zip(&test)
        {
            learned[i] = tree.predict(row);
        }
    }

    println!("== Extension: learned inlining heuristic (paper §IX future work) ==");
    let oracle_speedup = metrics::mean_speedup(&tables, &oracle);
    println!(
        "{:<16} {:>9} {:>9} {:>9}",
        "policy", "speedup", "% of max", "accuracy"
    );
    for (name, policy) in [
        ("oracle", &oracle),
        ("never-inline", &never),
        ("always-inline", &always),
        ("size<=12", &size),
        ("learned", &learned),
    ] {
        let s = metrics::mean_speedup(&tables, policy);
        println!(
            "{name:<16} {s:>9.4} {:>8.1}% {:>9.2}",
            metrics::percent_of_max(s, oracle_speedup) * 100.0,
            metrics::accuracy(policy, &oracle)
        );
    }
    if !found_features.is_empty() {
        println!();
        println!("features found (fold 0):");
        for f in &found_features {
            println!("  {f}");
        }
    }
}
