//! Diagnostics: loop-level quality of each method (scratch tool).

use fegen_bench::methods::{
    loop_level_speedup, predict_cv_ours, predict_cv_svm, predict_cv_tree,
};
use fegen_bench::{build_suite_data, config_from_args};
use fegen_ml::metrics::accuracy;
use fegen_ml::svm::SvmConfig;
use fegen_ml::tree::TreeConfig;

fn main() {
    let config = config_from_args();
    let data = build_suite_data(&config);
    eprintln!("loops: {}", data.loops.len());

    // Tolerant label histograms.
    for tol in [0.0, 0.005, 0.02, 0.05] {
        let mut hist = vec![0usize; 16];
        for l in &data.loops {
            hist[fegen_ml::metrics::oracle_choice_tolerant(&l.cycles, tol)] += 1;
        }
        eprintln!("tol {tol:<5}: {hist:?}");
    }
    // Train-fit check: can the tree fit the training data at all?
    {
        let ys: Vec<usize> = data.loops.iter().map(|l| l.label_factor()).collect();
        let xs: Vec<Vec<f64>> = data.loops.iter().map(|l| l.gcc_feats.clone()).collect();
        let ds = fegen_ml::Dataset::new(xs, ys.clone(), 16).unwrap();
        for prune in [false, true] {
            let cfg = fegen_ml::tree::TreeConfig { prune, ..Default::default() };
            let t = fegen_ml::DecisionTree::train(&ds, &cfg);
            let preds: Vec<usize> = (0..ds.len()).map(|i| t.predict(ds.row(i))).collect();
            eprintln!("gcc-feat tree prune={prune}: train-acc {:.2} leaves {} depth {}",
                fegen_ml::metrics::accuracy(&preds, &ys), t.n_leaves(), t.depth());
        }
    }

    // IR ceiling: overfit tree on train=test with rich hand features.
    {
        let ys: Vec<usize> = data.loops.iter().map(|l| l.label_factor()).collect();
        let xs: Vec<Vec<f64>> = data.loops.iter().map(|l| {
            let mut v = l.gcc_feats.clone();
            v.extend(l.stateml_feats.iter());
            v
        }).collect();
        let ds = fegen_ml::Dataset::new(xs, ys.clone(), 16).unwrap();
        let cfg = fegen_ml::tree::TreeConfig { prune: false, max_depth: 24, min_split: 2, ..Default::default() };
        let t = fegen_ml::DecisionTree::train(&ds, &cfg);
        let preds: Vec<usize> = (0..ds.len()).map(|i| t.predict(ds.row(i))).collect();
        let tables: Vec<Vec<f64>> = data.loops.iter().map(|l| l.cycles.clone()).collect();
        eprintln!("IR-ceiling overfit tree: train-acc {:.2}, train loop-speedup {:.4}",
            fegen_ml::metrics::accuracy(&preds, &ys),
            fegen_ml::metrics::mean_speedup(&tables, &preds));
        // Also: speedup if every loop used its label (tolerant argmin):
        eprintln!("label-choice speedup {:.4}",
            fegen_ml::metrics::mean_speedup(&tables, &ys));
    }

    // Label distribution.
    let labels: Vec<usize> = data.loops.iter().map(|l| l.best_factor()).collect();
    let mut hist = vec![0usize; 16];
    for &l in &labels {
        hist[l] += 1;
    }
    eprintln!("label histogram: {hist:?}");

    // Sensitivity: how much does the choice matter per loop?
    let mut sensitive = 0;
    for l in &data.loops {
        let max = l.cycles.iter().cloned().fold(0.0f64, f64::max);
        let min = l.cycles.iter().cloned().fold(f64::INFINITY, f64::min);
        if max / min > 1.02 {
            sensitive += 1;
        }
    }
    eprintln!("sensitive loops (>2% spread): {sensitive}/{}", data.loops.len());

    let oracle = data.oracle_factors();
    let gcc = data.gcc_factors();
    let tree_gcc = predict_cv_tree(&data, |l| l.gcc_feats.clone(), config.folds, config.seed, &TreeConfig::default());
    let tree_sml = predict_cv_tree(&data, |l| l.stateml_feats.clone(), config.folds, config.seed, &TreeConfig::default());
    let svm = predict_cv_svm(&data, |l| l.stateml_feats.clone(), config.folds, config.seed, &SvmConfig::default());
    let ours = predict_cv_ours(&data, config.folds, config.seed, &config.search);

    for (name, f) in [
        ("oracle", &oracle),
        ("gcc", &gcc),
        ("tree_gcc", &tree_gcc),
        ("tree_sml", &tree_sml),
        ("svm_sml", &svm),
        ("ours", &ours.factors),
    ] {
        eprintln!(
            "{name:<9} loop-speedup {:.4}  acc {:.2}  zero-frac {:.2}",
            loop_level_speedup(&data, f),
            accuracy(f, &labels),
            f.iter().filter(|&&x| x <= 1).count() as f64 / f.len() as f64,
        );
    }
    for (i, o) in ours.outcomes.iter().enumerate() {
        eprintln!(
            "fold {i}: {} features, baseline {:.4}, final {:.4}, gens {}",
            o.features.len(),
            o.baseline_speedup,
            o.steps.last().map_or(o.baseline_speedup, |s| s.speedup),
            o.total_generations
        );
        for s in &o.steps {
            eprintln!("   {:.4} <- {}", s.speedup, s.feature);
        }
    }
}

#[cfg(test)]
mod never {}
