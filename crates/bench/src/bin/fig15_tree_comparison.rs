//! Figure 15: the same learner (the C4.5 decision tree) trained over the
//! four competing feature sets — GCC's heuristic features, the stateML
//! hand features, their union, and our generated features. Holding the
//! model fixed isolates the merit of the features.
//!
//! Paper result shape: GCC-features tree ≈ 48% of max, stateML-features
//! tree ≈ 53%, combining the two adds nothing, ours ≈ 76%.

use fegen_bench::methods::{predict_cv_ours, predict_cv_tree};
use fegen_bench::{build_suite_data, config_from_args, report};

fn main() {
    let config = config_from_args();
    eprintln!(
        "# generating suite + training data ({} benchmarks)...",
        config.suite.n_benchmarks
    );
    let data = build_suite_data(&config);
    eprintln!("# {} loops measured", data.loops.len());
    let sim = &config.oracle.sim;
    let tree_cfg = &config.search.tree;

    let oracle = data.all_benchmark_speedups(&data.oracle_factors(), sim);

    eprintln!("# GCC-feature tree...");
    let gcc_tree = predict_cv_tree(
        &data,
        |l| l.gcc_feats.clone(),
        config.folds,
        config.seed,
        tree_cfg,
    );
    let gcc_tree_sp = data.all_benchmark_speedups(&gcc_tree, sim);

    eprintln!("# stateML-feature tree...");
    let sml_tree = predict_cv_tree(
        &data,
        |l| l.stateml_feats.clone(),
        config.folds,
        config.seed,
        tree_cfg,
    );
    let sml_tree_sp = data.all_benchmark_speedups(&sml_tree, sim);

    eprintln!("# combined GCC+stateML tree...");
    let combined = predict_cv_tree(
        &data,
        |l| {
            let mut v = l.gcc_feats.clone();
            v.extend(l.stateml_feats.iter());
            v
        },
        config.folds,
        config.seed,
        tree_cfg,
    );
    let combined_sp = data.all_benchmark_speedups(&combined, sim);

    eprintln!("# our generated features ({} folds of feature search)...", config.folds);
    let ours = predict_cv_ours(&data, config.folds, config.seed, &config.search);
    let ours_sp = data.all_benchmark_speedups(&ours.factors, sim);

    let names: Vec<String> = data.benchmarks.iter().map(|b| b.name.clone()).collect();
    println!("== Figure 15: same model (C4.5 tree), different feature sets ==");
    print!(
        "{}",
        report::benchmark_table(
            &names,
            &[
                ("oracle", &oracle),
                ("GCCTree", &gcc_tree_sp),
                ("sMLTree", &sml_tree_sp),
                ("G+S", &combined_sp),
                ("Our", &ours_sp),
            ],
            32,
        )
    );
    println!();
    println!("== Summary (percent of maximum available speedup) ==");
    print!(
        "{}",
        report::percent_of_max_summary(
            &oracle,
            &[
                ("GCC Tree", &gcc_tree_sp),
                ("stateML Tree", &sml_tree_sp),
                ("GCC+stateML", &combined_sp),
                ("Our", &ours_sp),
            ],
        )
    );
}
