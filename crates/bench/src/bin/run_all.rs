//! Runs every figure binary in paper order, forwarding the CLI flags
//! (`--paper`, `--seed N`, `--folds N`, `--dataset-dir DIR`).

use std::process::{Command, ExitCode};

const BINARIES: [&str; 7] = [
    "fig02_motivating",
    "fig03_04_tree_paths",
    "fig12_oracle_vs_gcc",
    "fig13_comparison",
    "fig14_stateml_features",
    "fig15_tree_comparison",
    "fig16_best_features",
];

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let dir = match std::env::current_exe() {
        Ok(exe) => match exe.parent() {
            Some(d) => d.to_path_buf(),
            None => {
                eprintln!("run_all: executable path has no parent directory");
                return ExitCode::FAILURE;
            }
        },
        Err(e) => {
            eprintln!("run_all: cannot locate the current executable: {e}");
            return ExitCode::FAILURE;
        }
    };
    for bin in BINARIES {
        // Stage banners are diagnostics: stderr, so stdout stays a clean
        // concatenation of the figures' own (self-describing) output.
        eprintln!();
        eprintln!("########################################################");
        eprintln!("## {bin}");
        eprintln!("########################################################");
        let status = match Command::new(dir.join(bin)).args(&args).status() {
            Ok(s) => s,
            Err(e) => {
                eprintln!("run_all: failed to launch {bin}: {e}");
                return ExitCode::FAILURE;
            }
        };
        if !status.success() {
            eprintln!("{bin} exited with {status}");
            return ExitCode::from(status.code().unwrap_or(1).clamp(0, 255) as u8);
        }
    }
    ExitCode::SUCCESS
}
