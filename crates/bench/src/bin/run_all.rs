//! Runs every figure binary in paper order, forwarding the CLI flags
//! (`--paper`, `--seed N`, `--folds N`).

use std::process::Command;

const BINARIES: [&str; 7] = [
    "fig02_motivating",
    "fig03_04_tree_paths",
    "fig12_oracle_vs_gcc",
    "fig13_comparison",
    "fig14_stateml_features",
    "fig15_tree_comparison",
    "fig16_best_features",
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let dir = std::env::current_exe()
        .expect("current executable path")
        .parent()
        .expect("executable has a parent directory")
        .to_path_buf();
    for bin in BINARIES {
        println!();
        println!("########################################################");
        println!("## {bin}");
        println!("########################################################");
        let status = Command::new(dir.join(bin))
            .args(&args)
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {bin}: {e}"));
        if !status.success() {
            eprintln!("{bin} exited with {status}");
            std::process::exit(status.code().unwrap_or(1));
        }
    }
}
