//! Figure 14: the hand-crafted features of the state-of-the-art scheme
//! (Stephenson & Amarasinghe), printed with their values on a few sample
//! loops of the suite — verifying the re-implementation produces sensible,
//! discriminative values.

use fegen_bench::{build_suite_data, config_from_args};
use fegen_rtl::stateml::STATEML_FEATURE_NAMES;
use fegen_suite::SuiteConfig;

fn main() {
    let mut config = config_from_args();
    // The feature listing only needs a handful of loops.
    config.suite = SuiteConfig::tiny();
    let data = build_suite_data(&config);

    println!("== Figure 14: the stateML features ==");
    let sample: Vec<&fegen_bench::LoopRecord> = data.loops.iter().take(4).collect();
    print!("{:<32}", "feature");
    for l in &sample {
        print!(" {:>14}", l.site.to_string().chars().take(14).collect::<String>());
    }
    println!();
    for (k, name) in STATEML_FEATURE_NAMES.iter().enumerate() {
        print!("{name:<32}");
        for l in &sample {
            print!(" {:>14.2}", l.stateml_feats[k]);
        }
        println!();
    }

    // Cross-loop variance check: a feature that never varies carries no
    // information; report how many are discriminative across the suite.
    let mut varying = 0;
    for k in 0..STATEML_FEATURE_NAMES.len() {
        let first = data.loops[0].stateml_feats[k];
        if data.loops.iter().any(|l| l.stateml_feats[k] != first) {
            varying += 1;
        }
    }
    println!();
    println!(
        "{varying} of {} features vary across the {} sampled loops",
        STATEML_FEATURE_NAMES.len(),
        data.loops.len()
    );
}
