//! Figures 3 and 4: the decision paths followed by the learned heuristics
//! for the motivating-example loop.
//!
//! Figure 3: the features GCC's heuristic consults (`ninsns`, `niter`, …)
//! and the path through a decision tree learned over them. Figure 4: the
//! generated features our technique found, their values on the loop, and
//! the path through the tree learned over them.

use fegen_bench::methods::N_CLASSES;
use fegen_bench::pipeline::mesa_record;
use fegen_bench::{build_suite_data, config_from_args};
use fegen_core::FeatureSearch;
use fegen_ml::tree::DecisionTree;
use fegen_ml::Dataset;
use fegen_rtl::heuristic::GCC_FEATURE_NAMES;

fn print_path(
    tree: &DecisionTree,
    row: &[f64],
    names: &[String],
) {
    let (label, path) = tree.predict_traced(row);
    let mut indent = 0;
    for step in &path {
        let name = names
            .get(step.feature)
            .cloned()
            .unwrap_or_else(|| format!("f{}", step.feature));
        let op = if step.went_left { "<=" } else { ">" };
        println!("{}if( {} {} {} )", "  ".repeat(indent), name, op, step.threshold);
        indent += 1;
    }
    println!("{}unrollFactor = {};", "  ".repeat(indent), label);
}

fn main() {
    let config = config_from_args();
    let (_, mesa) = mesa_record(&config);
    eprintln!("# generating training suite...");
    let data = build_suite_data(&config);
    let labels: Vec<usize> = data.loops.iter().map(|l| l.label_factor()).collect();

    // ---- Figure 3: GCC features + tree path. ----
    println!("== Figure 3(a): GCC heuristic features of the mesa loop ==");
    for (name, value) in GCC_FEATURE_NAMES.iter().zip(&mesa.gcc_feats) {
        println!("  {name:<26} {value}");
    }
    let gcc_xs: Vec<Vec<f64>> = data.loops.iter().map(|l| l.gcc_feats.clone()).collect();
    let gcc_ds = Dataset::new(gcc_xs, labels.clone(), N_CLASSES).expect("rectangular");
    let gcc_tree = DecisionTree::train(&gcc_ds, &config.search.tree);
    let gcc_names: Vec<String> = GCC_FEATURE_NAMES.iter().map(|s| s.to_string()).collect();
    println!();
    println!("== Figure 3(b): path through the GCC-feature tree ==");
    print_path(&gcc_tree, &mesa.gcc_feats, &gcc_names);

    // ---- Figure 4: generated features + tree path. ----
    eprintln!("# running feature search...");
    let examples = data.training_examples();
    let fs = FeatureSearch::from_examples(&examples, config.search.clone());
    let outcome = fs.run(&examples);
    if outcome.features.is_empty() {
        println!();
        println!("(feature search found no improving features at this budget)");
        return;
    }
    let mesa_example = fegen_core::TrainingExample {
        ir: mesa.ir.clone(),
        cycles: mesa.cycles.clone(),
    };
    let mesa_row = fs.feature_matrix(&outcome.features, &[mesa_example]).remove(0);

    println!();
    println!("== Figure 4(a): generated features and their values on the mesa loop ==");
    for (k, (f, v)) in outcome.features.iter().zip(&mesa_row).enumerate() {
        println!("  f{k} = {v:<12} {f}");
    }

    let matrix = fs.feature_matrix(&outcome.features, &examples);
    let ds = Dataset::new(matrix, labels, N_CLASSES).expect("rectangular");
    let our_tree = DecisionTree::train(&ds, &config.search.tree);
    let our_names: Vec<String> = (0..outcome.features.len()).map(|k| format!("f{k}")).collect();
    println!();
    println!("== Figure 4(b): path through the generated-feature tree ==");
    print_path(&our_tree, &mesa_row, &our_names);
}
