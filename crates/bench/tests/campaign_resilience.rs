//! Fault-injection proof of the measurement campaign's resilience
//! guarantees:
//!
//! - a killed campaign resumes into a dataset byte-identical to an
//!   uninterrupted run's, at any `--jobs` count;
//! - a corrupted shard is detected, reported and re-measured — never
//!   silently loaded;
//! - a persistently failing site (or benchmark) is quarantined and the
//!   campaign still completes, naming it in the report;
//! - transient faults are retried away without changing the measured
//!   values;
//! - the fork-once measurement path produces shards byte-identical to the
//!   recompile-per-cell scratch path, at any worker count and across any
//!   kill/resume point (property-tested).

use fegen_bench::campaign::{
    campaign_fingerprint, load_suite_data, run_campaign, CampaignConfig, CampaignError,
    CampaignReport, MeasureMode, SamplingPolicy,
};
use fegen_bench::dataset::DatasetStore;
use fegen_bench::pipeline::{try_compile, ExperimentConfig};
use fegen_core::{CancelToken, FaultInjector, FaultKind, FaultPlan, FaultTrigger};
use fegen_sim::measure::NoiseModel;
use fegen_sim::oracle::loop_sites;
use fegen_suite::SuiteConfig;
use std::path::PathBuf;
use std::time::Duration;

fn tiny_experiment() -> ExperimentConfig {
    let mut config = ExperimentConfig::quick();
    config.suite = SuiteConfig::tiny();
    config
}

fn tiny_campaign_mode(jobs: usize, measure: MeasureMode) -> CampaignConfig {
    CampaignConfig {
        jobs,
        retry: 2,
        quarantine_after: 2,
        backoff: Duration::from_millis(1),
        site_deadline: Duration::from_secs(30),
        sampling: SamplingPolicy {
            noise: NoiseModel::default(),
            base_runs: 8,
            max_runs: 16,
            target_log_iqr: 0.1,
        },
        measure,
    }
}

fn tiny_campaign(jobs: usize) -> CampaignConfig {
    tiny_campaign_mode(jobs, MeasureMode::default())
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "fegen-campaign-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn open_store(dir: &std::path::Path, experiment: &ExperimentConfig, jobs: usize) -> DatasetStore {
    let fp = campaign_fingerprint(experiment, &tiny_campaign(jobs).sampling);
    DatasetStore::open(dir, fp).expect("open store")
}

fn bench_names(experiment: &ExperimentConfig) -> Vec<String> {
    fegen_suite::generate_suite(&experiment.suite)
        .iter()
        .map(|b| b.name.clone())
        .collect()
}

/// First loop site of benchmark `idx`, as its `func#loop` display string.
fn first_site_of(experiment: &ExperimentConfig, idx: usize) -> String {
    let suite = fegen_suite::generate_suite(&experiment.suite);
    let cb = try_compile(&suite[idx]).expect("tiny suite compiles");
    loop_sites(&cb.rtl, &cb.workload)
        .first()
        .expect("tiny benchmarks have loops")
        .to_string()
}

fn shard_bytes(store: &DatasetStore, names: &[String]) -> Vec<Vec<u8>> {
    names
        .iter()
        .map(|n| std::fs::read(store.shard_path(n)).expect("shard exists"))
        .collect()
}

fn run_clean(
    experiment: &ExperimentConfig,
    dir: &std::path::Path,
    jobs: usize,
) -> (DatasetStore, CampaignReport) {
    let store = open_store(dir, experiment, jobs);
    let report = run_campaign(
        experiment,
        &tiny_campaign(jobs),
        &store,
        None,
        &CancelToken::new(),
    )
    .expect("campaign completes");
    (store, report)
}

#[test]
fn uninterrupted_campaign_completes_and_loads() {
    let experiment = tiny_experiment();
    let dir = temp_dir("clean");
    let (store, report) = run_clean(&experiment, &dir, 1);
    assert_eq!(report.total, 3);
    assert_eq!(report.measured, 3);
    assert_eq!(report.resumed, 0);
    assert!(report.quarantined.is_empty(), "{:?}", report.quarantined);
    assert!(report.sites_measured > 0);

    let (data, quarantined) = load_suite_data(&experiment, &store).expect("loads");
    assert!(quarantined.is_empty());
    assert_eq!(data.benchmarks.len(), 3);
    assert_eq!(data.loops.len(), report.sites_measured);
    for l in &data.loops {
        assert_eq!(l.cycles.len(), 16);
        assert!(l.cycles.iter().all(|c| c.is_finite() && *c > 0.0));
        assert_eq!(l.gcc_feats.len(), 6);
        assert_eq!(l.stateml_feats.len(), 22);
    }
    // Re-running is a pure resume: nothing re-measured, bytes untouched.
    let names = bench_names(&experiment);
    let before = shard_bytes(&store, &names);
    let report2 = run_campaign(
        &experiment,
        &tiny_campaign(1),
        &store,
        None,
        &CancelToken::new(),
    )
    .expect("resume of a complete dataset");
    assert_eq!(report2.measured, 0);
    assert_eq!(report2.resumed, 3);
    assert_eq!(shard_bytes(&store, &names), before);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn kill_and_resume_is_byte_identical_at_any_job_count() {
    let experiment = tiny_experiment();
    let names = bench_names(&experiment);

    // Reference: uninterrupted, single worker.
    let ref_dir = temp_dir("ref");
    let (ref_store, _) = run_clean(&experiment, &ref_dir, 1);
    let reference = shard_bytes(&ref_store, &names);

    // Victim: cancelled while setting up the second benchmark ("the
    // process was killed here"), then resumed with three workers.
    let dir = temp_dir("killed");
    let store = open_store(&dir, &experiment, 1);
    let injector = FaultInjector::new(vec![FaultPlan {
        trigger: FaultTrigger::OnKeyPrefix(format!("setup:{}", names[1])),
        kind: FaultKind::Cancel,
    }]);
    let cancel = injector.cancel_token();
    let err = run_campaign(
        &experiment,
        &tiny_campaign(1),
        &store,
        Some(&injector),
        &cancel,
    )
    .expect_err("cancellation interrupts the campaign");
    match err {
        CampaignError::Interrupted { completed, total } => {
            assert_eq!(total, 3);
            assert_eq!(completed, 1, "only the first benchmark finished");
        }
        other => panic!("expected Interrupted, got {other}"),
    }

    let report = run_campaign(
        &experiment,
        &tiny_campaign(3),
        &store,
        None,
        &CancelToken::new(),
    )
    .expect("resume completes");
    assert_eq!(report.resumed, 1);
    assert_eq!(report.measured, 2);
    assert_eq!(
        shard_bytes(&store, &names),
        reference,
        "resumed dataset must be byte-identical to the uninterrupted run"
    );
    let _ = std::fs::remove_dir_all(&ref_dir);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupted_shard_is_detected_and_remeasured() {
    let experiment = tiny_experiment();
    let names = bench_names(&experiment);
    let dir = temp_dir("bitrot");
    let (store, _) = run_clean(&experiment, &dir, 1);
    let pristine = shard_bytes(&store, &names);

    // Bitrot: flip one digit inside the first shard's payload.
    let path = store.shard_path(&names[0]);
    let text = std::fs::read_to_string(&path).unwrap();
    let first_digit = text
        .char_indices()
        .find(|(i, c)| c.is_ascii_digit() && text[*i + 1..].starts_with(|d: char| d.is_ascii_digit()))
        .map(|(i, _)| i)
        .expect("shard contains numbers");
    let mut bytes = text.into_bytes();
    bytes[first_digit] = if bytes[first_digit] == b'9' { b'8' } else { b'9' };
    std::fs::write(&path, &bytes).unwrap();

    // Loading refuses the corrupt shard...
    let err = load_suite_data(&experiment, &store).expect_err("corruption must not load");
    assert!(
        matches!(
            err,
            CampaignError::Dataset(fegen_bench::DatasetError::Corrupt { .. })
        ),
        "{err}"
    );

    // ...and the campaign re-measures exactly that benchmark, restoring
    // byte-identical data.
    let report = run_campaign(
        &experiment,
        &tiny_campaign(1),
        &store,
        None,
        &CancelToken::new(),
    )
    .expect("repair run completes");
    assert_eq!(report.remeasured_corrupt, vec![names[0].clone()]);
    assert_eq!(report.measured, 1);
    assert_eq!(report.resumed, 2);
    assert_eq!(shard_bytes(&store, &names), pristine);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn injected_corrupt_write_is_caught_on_the_next_pass() {
    let experiment = tiny_experiment();
    let names = bench_names(&experiment);
    let dir = temp_dir("corrupt-write");
    let store = open_store(&dir, &experiment, 1);
    let injector = FaultInjector::new(vec![FaultPlan {
        trigger: FaultTrigger::OnKeyPrefix(format!("shard-write:{}", names[2])),
        kind: FaultKind::CorruptWrite,
    }]);
    // The final verification pass re-reads every shard, catches the
    // corrupted one, and refuses to report success.
    let err = run_campaign(
        &experiment,
        &tiny_campaign(1),
        &store,
        Some(&injector),
        &CancelToken::new(),
    )
    .expect_err("a corrupted write must not count as completion");
    assert!(
        matches!(err, CampaignError::Interrupted { completed: 2, total: 3 }),
        "{err}"
    );
    assert_eq!(injector.injected(), 1);

    let report = run_campaign(
        &experiment,
        &tiny_campaign(1),
        &store,
        None,
        &CancelToken::new(),
    )
    .expect("repair run completes");
    assert_eq!(report.remeasured_corrupt, vec![names[2].clone()]);
    assert!(load_suite_data(&experiment, &store).is_ok());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn persistently_failing_site_is_quarantined_and_campaign_completes() {
    let experiment = tiny_experiment();
    let names = bench_names(&experiment);
    let site = first_site_of(&experiment, 0);
    let dir = temp_dir("quarantine-site");
    let store = open_store(&dir, &experiment, 1);
    let injector = FaultInjector::new(vec![FaultPlan {
        trigger: FaultTrigger::OnKeyPrefix(format!("measure:{}:{site}", names[0])),
        kind: FaultKind::Panic,
    }]);
    let report = run_campaign(
        &experiment,
        &tiny_campaign(1),
        &store,
        Some(&injector),
        &CancelToken::new(),
    )
    .expect("the campaign must complete on the surviving data");
    assert_eq!(report.measured, 3, "every benchmark still gets a shard");
    let entry = report
        .quarantined
        .iter()
        .find(|q| q.site.as_deref() == Some(site.as_str()))
        .expect("the failing site is named in the report");
    assert_eq!(entry.bench, names[0]);
    assert_eq!(entry.attempts, 2, "retry budget was spent");
    assert!(entry.reason.contains("panicked"), "{}", entry.reason);

    // The dataset loads; the quarantined site is excluded, its benchmark
    // survives.
    let (data, quarantined) = load_suite_data(&experiment, &store).expect("loads");
    assert_eq!(data.benchmarks.len(), 3);
    assert!(quarantined.iter().any(|q| q.site.as_deref() == Some(site.as_str())));
    assert!(
        !data
            .loops
            .iter()
            .any(|l| data.benchmarks[l.bench].name == names[0] && l.site.to_string() == site),
        "quarantined site leaked into the dataset"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn failing_benchmark_is_quarantined_whole_and_report_names_it() {
    let experiment = tiny_experiment();
    let names = bench_names(&experiment);
    let dir = temp_dir("quarantine-bench");
    let store = open_store(&dir, &experiment, 1);
    let injector = FaultInjector::new(vec![FaultPlan {
        trigger: FaultTrigger::OnKeyPrefix(format!("setup:{}", names[2])),
        kind: FaultKind::Panic,
    }]);
    let report = run_campaign(
        &experiment,
        &tiny_campaign(1),
        &store,
        Some(&injector),
        &CancelToken::new(),
    )
    .expect("campaign completes");
    let entry = report
        .quarantined
        .iter()
        .find(|q| q.bench == names[2] && q.site.is_none())
        .expect("whole-benchmark quarantine reported");
    assert!(entry.reason.contains("setup"), "{}", entry.reason);

    let (data, quarantined) = load_suite_data(&experiment, &store).expect("loads");
    assert_eq!(data.benchmarks.len(), 2, "quarantined benchmark excluded");
    assert!(data.benchmarks.iter().all(|b| b.name != names[2]));
    assert!(quarantined.iter().any(|q| q.bench == names[2]));
    // Surviving records reference the surviving benchmarks only.
    for l in &data.loops {
        assert!(l.bench < data.benchmarks.len());
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn delay_fault_exhausts_the_deadline_and_quarantines() {
    let experiment = tiny_experiment();
    let names = bench_names(&experiment);
    let site = first_site_of(&experiment, 1);
    let dir = temp_dir("deadline");
    let store = open_store(&dir, &experiment, 1);
    let injector = FaultInjector::new(vec![FaultPlan {
        trigger: FaultTrigger::OnKeyPrefix(format!("measure:{}:{site}", names[1])),
        kind: FaultKind::Delay(40),
    }]);
    let mut campaign = tiny_campaign(1);
    campaign.site_deadline = Duration::from_millis(20);
    let report = run_campaign(&experiment, &campaign, &store, Some(&injector), &CancelToken::new())
        .expect("campaign completes");
    let entry = report
        .quarantined
        .iter()
        .find(|q| q.site.as_deref() == Some(site.as_str()))
        .expect("stalled site quarantined");
    assert!(entry.reason.contains("deadline"), "{}", entry.reason);
    assert!(entry.reason.contains("stalled"), "{}", entry.reason);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn transient_nan_fault_is_retried_without_changing_the_data() {
    let experiment = tiny_experiment();
    let names = bench_names(&experiment);
    let site = first_site_of(&experiment, 0);

    let ref_dir = temp_dir("nan-ref");
    let (ref_store, _) = run_clean(&experiment, &ref_dir, 1);
    let reference = shard_bytes(&ref_store, &names);

    // The NaN fault hits only attempt #1 of one site: every reading of
    // that attempt is garbage, the robust statistics refuse it, and the
    // retry measures clean — the stored bytes must not change at all.
    let dir = temp_dir("nan");
    let store = open_store(&dir, &experiment, 1);
    let injector = FaultInjector::new(vec![FaultPlan {
        trigger: FaultTrigger::OnKeyPrefix(format!("measure:{}:{site}#a1", names[0])),
        kind: FaultKind::NanFitness,
    }]);
    let report = run_campaign(
        &experiment,
        &tiny_campaign(1),
        &store,
        Some(&injector),
        &CancelToken::new(),
    )
    .expect("campaign completes");
    assert_eq!(injector.injected(), 1);
    assert!(report.retries >= 1, "the poisoned attempt was retried");
    assert!(report.quarantined.is_empty(), "{:?}", report.quarantined);
    assert_eq!(
        shard_bytes(&store, &names),
        reference,
        "retries must not perturb the measured values"
    );
    let _ = std::fs::remove_dir_all(&ref_dir);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Shard bytes of one uninterrupted scratch-mode (recompile-per-cell) run
/// of the tiny suite — the ground truth the fork-once path must reproduce
/// bit-for-bit. Computed once and shared by every fork-vs-scratch test.
fn scratch_reference(experiment: &ExperimentConfig) -> &'static [Vec<u8>] {
    static REFERENCE: std::sync::OnceLock<Vec<Vec<u8>>> = std::sync::OnceLock::new();
    REFERENCE.get_or_init(|| {
        let names = bench_names(experiment);
        let dir = temp_dir("scratch-ref");
        let store = open_store(&dir, experiment, 1);
        run_campaign(
            experiment,
            &tiny_campaign_mode(1, MeasureMode::Scratch),
            &store,
            None,
            &CancelToken::new(),
        )
        .expect("scratch campaign completes");
        let bytes = shard_bytes(&store, &names);
        let _ = std::fs::remove_dir_all(&dir);
        bytes
    })
}

#[test]
fn forked_campaign_is_byte_identical_to_scratch() {
    let experiment = tiny_experiment();
    let names = bench_names(&experiment);
    let reference = scratch_reference(&experiment);
    for jobs in [1usize, 3] {
        let dir = temp_dir(&format!("forked-{jobs}"));
        let store = open_store(&dir, &experiment, jobs);
        let report = run_campaign(
            &experiment,
            &tiny_campaign_mode(jobs, MeasureMode::Forked),
            &store,
            None,
            &CancelToken::new(),
        )
        .expect("forked campaign completes");
        assert_eq!(report.snapshot_builds, 3, "one snapshot per benchmark");
        assert!(report.forks > 0, "cells were forked, not recompiled");
        assert_eq!(
            shard_bytes(&store, &names),
            reference,
            "forked shards diverged from scratch at jobs={jobs}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

proptest::proptest! {
    #![proptest_config(proptest::prelude::ProptestConfig { cases: 6 })]

    /// The fork-once path is byte-identical to the scratch path under any
    /// worker count, kill point and resume worker count: a forked campaign
    /// cancelled while setting up benchmark `kill_idx`, then resumed with
    /// a different number of workers, yields the scratch reference bytes.
    #[test]
    fn fork_scratch_identical_under_kill_and_resume(
        jobs in 1usize..4,
        resume_jobs in 1usize..4,
        kill_idx in 0usize..3,
    ) {
        let experiment = tiny_experiment();
        let names = bench_names(&experiment);
        let reference = scratch_reference(&experiment);
        let dir = temp_dir(&format!("prop-{jobs}-{resume_jobs}-{kill_idx}"));
        let store = open_store(&dir, &experiment, jobs);
        let injector = FaultInjector::new(vec![FaultPlan {
            trigger: FaultTrigger::OnKeyPrefix(format!("setup:{}", names[kill_idx])),
            kind: FaultKind::Cancel,
        }]);
        let cancel = injector.cancel_token();
        let first = run_campaign(
            &experiment,
            &tiny_campaign_mode(jobs, MeasureMode::Forked),
            &store,
            Some(&injector),
            &cancel,
        );
        proptest::prop_assert!(first.is_err(), "cancellation interrupts the campaign");
        let report = run_campaign(
            &experiment,
            &tiny_campaign_mode(resume_jobs, MeasureMode::Forked),
            &store,
            None,
            &CancelToken::new(),
        )
        .expect("resume completes");
        proptest::prop_assert_eq!(report.measured + report.resumed, 3);
        proptest::prop_assert_eq!(
            &shard_bytes(&store, &names)[..],
            reference,
            "resumed forked dataset diverged from the scratch reference"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
