//! Output-discipline smoke test for the figure binaries: stdout carries
//! only the machine-consumable result stream (section headers, the table,
//! the summary numbers), every diagnostic goes to stderr. A script piping
//! `fig12 > results.txt` must get a file that parses.

use std::process::Command;

/// Every stdout line of a figure binary must be one of: blank, a `==`
/// section header, a table rule, a table row whose trailing columns are
/// finite numbers, or a `label: value` summary line.
fn assert_stdout_line_parses(line: &str) {
    if line.is_empty() || line.starts_with("== ") {
        return;
    }
    assert!(
        !line.starts_with('#'),
        "diagnostic leaked onto stdout: {line:?}"
    );
    if line.chars().all(|c| c == '-' || c == ' ' || c == '+') {
        return; // table rule
    }
    // `label: value` summary lines ("average oracle speedup: 1.0123",
    // "GCC slows down 0 of 3 benchmarks", "worst GCC slowdown: b at 0.9").
    if line.contains(':') {
        return;
    }
    let fields: Vec<&str> = line.split_whitespace().collect();
    // Benchmark-name header row of the table: a single bare identifier.
    if !line.starts_with(' ') && fields.len() == 1 {
        return;
    }
    // Method rows: a name column then at least one finite numeric column.
    assert!(
        fields.len() >= 2,
        "unparseable stdout line: {line:?}"
    );
    let numeric = fields[1..]
        .iter()
        .filter(|f| f.parse::<f64>().map(f64::is_finite).unwrap_or(false))
        .count();
    assert!(
        numeric > 0,
        "table row has no numeric column: {line:?}"
    );
}

#[test]
fn fig12_stdout_is_pure_parseable_results() {
    let out = Command::new(env!("CARGO_BIN_EXE_fig12_oracle_vs_gcc"))
        .arg("--tiny")
        .output()
        .expect("fig12 launches");
    let stdout = String::from_utf8(out.stdout).expect("stdout is UTF-8");
    let stderr = String::from_utf8(out.stderr).expect("stderr is UTF-8");
    assert!(
        out.status.success(),
        "fig12 failed: {stderr}\n--- stdout:\n{stdout}"
    );

    // Diagnostics live on stderr...
    assert!(
        stderr.contains("# generating suite"),
        "progress diagnostic missing from stderr: {stderr:?}"
    );
    // ...and the result stream is complete and parseable.
    assert!(stdout.contains("== Figure 12"), "missing figure header");
    assert!(stdout.contains("average oracle speedup:"), "missing summary");
    for line in stdout.lines() {
        assert_stdout_line_parses(line);
    }
    // The headline numbers parse back out of the summary lines.
    for label in ["average oracle speedup:", "average GCC speedup:"] {
        let line = stdout
            .lines()
            .find(|l| l.starts_with(label))
            .unwrap_or_else(|| panic!("missing `{label}` line"));
        let value: f64 = line[label.len()..].trim().parse().expect("summary parses");
        assert!(value.is_finite() && value > 0.0, "{label} {value}");
    }
}
