//! Micro-benchmark: the compiled feature-evaluation engine against the
//! tree-walking interpreter, on the exact workload the GP search runs —
//! one feature evaluated over every training loop — plus decision-tree
//! training, the other half of a fitness evaluation.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use fegen_core::ir::{IrArena, IrNode};
use fegen_core::lang::parse_feature;
use fegen_core::{EvalEngine, EvalPool, Program};
use fegen_ml::data::Dataset;
use fegen_ml::tree::{DecisionTree, Presorted, TreeConfig};
use fegen_rtl::export::export_loop;
use fegen_rtl::lower::lower_program;

const BUDGET: u64 = 200_000;

fn exported_loops() -> Vec<IrNode> {
    let suite = fegen_suite::generate_suite(&fegen_suite::SuiteConfig::tiny());
    let mut out = Vec::new();
    for b in &suite {
        let rtl = lower_program(&b.program).expect("suite lowers");
        for f in &rtl.functions {
            for region in &f.loops {
                out.push(export_loop(f, region, &rtl.layout));
            }
        }
    }
    out
}

fn feature_set() -> Vec<(&'static str, &'static str)> {
    vec![
        ("count_desc", "count(//*)"),
        ("count_filter_type", "count(filter(//*, is-type(reg)))"),
        (
            "negated_filter",
            "count(filter(//*, !(is-type(wide-int) || is-type(const_double))))",
        ),
        (
            "nested_aggregate",
            "max(filter(/*, is-type(basic-block)), count(filter(//*, is-type(insn))))",
        ),
        (
            "arith_over_aggregates",
            "count(filter(//*, is-type(insn))) / (1 + count(filter(//*, is-type(basic-block))))",
        ),
    ]
}

/// Interpreter vs compiled VM on the same features over the same loops.
/// The VM side measures pure execution: programs are compiled and loops
/// flattened outside the timed region, exactly as the search amortises
/// them (one compile per candidate, one flatten per loop).
fn bench_engines(c: &mut Criterion) {
    let loops = exported_loops();
    let arenas: Vec<IrArena> = loops.iter().map(IrArena::from_tree).collect();
    let mut group = c.benchmark_group("eval");
    for (name, src) in feature_set() {
        let f = parse_feature(src).expect("valid feature");
        let program = Program::compile(&f);
        group.bench_function(format!("interp/{name}"), |b| {
            b.iter(|| {
                let mut acc = 0.0;
                for ir in &loops {
                    acc += f.eval_with_budget(black_box(ir), BUDGET).unwrap_or(0.0);
                }
                acc
            })
        });
        group.bench_function(format!("vm/{name}"), |b| {
            b.iter(|| {
                let mut acc = 0.0;
                for arena in &arenas {
                    acc += program.eval(black_box(arena), BUDGET).unwrap_or(0.0);
                }
                acc
            })
        });
    }
    // The pool as the search uses it: compiled programs and per-loop results
    // are cached, so steady-state candidates re-encountered by the GP (via
    // the structural memo missing but the CSE cache hitting) replay cheaply.
    let pool = EvalPool::new(loops.iter(), EvalEngine::Compiled);
    let features: Vec<_> = feature_set()
        .iter()
        .map(|(_, src)| parse_feature(src).expect("valid feature"))
        .collect();
    group.bench_function("pool_warm/all_features", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for f in &features {
                for v in pool.column(black_box(f), BUDGET).unwrap_or_default() {
                    acc += v;
                }
            }
            acc
        })
    });
    group.finish();
}

/// Shapes the loop-nest planner and columnar sweep specialize: leaf
/// aggregates over postings, nested children-base aggregates gathered as
/// columns, leaf-comparison counts, child-probe counts and predicate
/// covers. One bench per shape, both engines, so a regression in any
/// single lowering tier is visible in isolation.
fn shape_set() -> Vec<(&'static str, &'static str)> {
    vec![
        ("leaf_sum_attr", "sum(//*, get-attr(@n-insns))"),
        ("leaf_sum_childcount", "sum(//*, count(/*))"),
        ("count_leaf_cmp", "count(filter(//*, 2 < count(/*)))"),
        (
            "count_child_probe",
            "count(filter(//*, /[1][is-type(insn)]))",
        ),
        (
            "nested_columnar",
            "min(//*, sum(/*, avg(/*, count(/*)) + sum(/*, get-attr(@n-insns))))",
        ),
        (
            "cover_filtered_min",
            "min(filter(filter(//*, is-type(mem)), is-type(reg) || has-attr(@n-insns)), count(/*))",
        ),
    ]
}

/// Per-shape engine comparison over the deep/nested aggregate forms the
/// generated-feature mix is dominated by.
fn bench_shapes(c: &mut Criterion) {
    let loops = exported_loops();
    let arenas: Vec<IrArena> = loops.iter().map(IrArena::from_tree).collect();
    let mut group = c.benchmark_group("eval_shapes");
    for (name, src) in shape_set() {
        let f = parse_feature(src).expect("valid feature");
        let program = Program::compile(&f);
        group.bench_function(format!("interp/{name}"), |b| {
            b.iter(|| {
                let mut acc = 0.0;
                for ir in &loops {
                    acc += f.eval_with_budget(black_box(ir), BUDGET).unwrap_or(0.0);
                }
                acc
            })
        });
        group.bench_function(format!("vm/{name}"), |b| {
            b.iter(|| {
                let mut acc = 0.0;
                for arena in &arenas {
                    acc += program.eval(black_box(arena), BUDGET).unwrap_or(0.0);
                }
                acc
            })
        });
    }
    group.finish();
}

/// Decision-tree training: one-shot training (presort amortised inside)
/// and fold-style training where one `Presorted` serves many subsets — the
/// shape of the search's internal cross-validation.
fn bench_tree_training(c: &mut Criterion) {
    let n = 120;
    let xs: Vec<Vec<f64>> = (0..n)
        .map(|i| (0..6).map(|j| ((i * (7 + j) % 31) as f64) / 3.0).collect())
        .collect();
    let ys: Vec<usize> = (0..n).map(|i| (i * 13 + 5) % 4).collect();
    let data = Dataset::new(xs, ys, 4).unwrap();
    let config = TreeConfig::default();

    c.bench_function("tree/train_full", |b| {
        b.iter(|| DecisionTree::train(black_box(&data), &config))
    });

    let presorted = Presorted::new(&data);
    let folds: Vec<Vec<usize>> = (0..3)
        .map(|k| (0..n).filter(|i| i % 3 != k).collect())
        .collect();
    c.bench_function("tree/train_folds_presorted", |b| {
        b.iter(|| {
            folds
                .iter()
                .map(|idx| {
                    DecisionTree::train_on(black_box(&data), &presorted, idx, &config).n_leaves()
                })
                .sum::<usize>()
        })
    });
    c.bench_function("tree/train_folds_subset_copy", |b| {
        b.iter(|| {
            folds
                .iter()
                .map(|idx| DecisionTree::train(&data.subset(black_box(idx)), &config).n_leaves())
                .sum::<usize>()
        })
    });
}

criterion_group!(benches, bench_engines, bench_shapes, bench_tree_training);
criterion_main!(benches);
