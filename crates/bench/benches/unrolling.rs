//! Micro-benchmark: front-end and transformation costs — parsing,
//! lowering, CFG construction, loop export, and the unroll transform at
//! several factors.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use fegen_rtl::cfg::Cfg;
use fegen_rtl::export::export_loop;
use fegen_rtl::lower::lower_program;
use fegen_rtl::unroll::unroll_loop;

const SRC: &str = "\
    int data[1024]; int out[1024]; int m[32][32];\n\
    void init() { int i; for (i = 0; i < 1024; i = i + 1) { data[i] = i % 251; } }\n\
    void kernel(int n) {\n\
      int i; int j; int v;\n\
      for (i = 0; i < n; i = i + 1) {\n\
        v = data[i] * 3;\n\
        if (v > 200) { v = 200; }\n\
        out[i] = v;\n\
      }\n\
      for (i = 0; i < 32; i = i + 1) {\n\
        for (j = 0; j < 32; j = j + 1) { m[i][j] = i * j + n; }\n\
      }\n\
    }\n";

fn bench_frontend(c: &mut Criterion) {
    c.bench_function("parse_program", |b| {
        b.iter(|| fegen_lang::parse_program(black_box(SRC)).expect("parses"))
    });
    let ast = fegen_lang::parse_program(SRC).expect("parses");
    c.bench_function("lower_program", |b| {
        b.iter(|| lower_program(black_box(&ast)).expect("lowers"))
    });
}

fn bench_analysis(c: &mut Criterion) {
    let ast = fegen_lang::parse_program(SRC).expect("parses");
    let rtl = lower_program(&ast).expect("lowers");
    let kernel = rtl.function("kernel").expect("kernel");
    c.bench_function("cfg_build", |b| b.iter(|| Cfg::build(black_box(kernel))));
    c.bench_function("export_loop", |b| {
        b.iter(|| export_loop(black_box(kernel), &kernel.loops[0], &rtl.layout))
    });
    c.bench_function("stateml_features", |b| {
        b.iter(|| fegen_rtl::stateml::stateml_features(black_box(kernel), &kernel.loops[0]))
    });
}

fn bench_unroll(c: &mut Criterion) {
    let ast = fegen_lang::parse_program(SRC).expect("parses");
    let rtl = lower_program(&ast).expect("lowers");
    let kernel = rtl.function("kernel").expect("kernel");
    let mut group = c.benchmark_group("unroll");
    for factor in [2usize, 8, 15] {
        group.bench_function(format!("factor_{factor}"), |b| {
            b.iter(|| unroll_loop(black_box(kernel), 0, factor).expect("unrolls"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_frontend, bench_analysis, bench_unroll);
criterion_main!(benches);
