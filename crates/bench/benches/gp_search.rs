//! Micro-benchmark: GP machinery — random generation, mutation, crossover
//! and a bounded engine run over the grammar derived from real exports.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use fegen_core::gp::{crossover, mutate, GpConfig, GpEngine};
use fegen_core::ir::IrNode;
use fegen_core::lang::FeatureExpr;
use fegen_core::Grammar;
use fegen_rtl::export::export_loop;
use fegen_rtl::lower::lower_program;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn grammar_and_ir() -> (Grammar, Vec<IrNode>) {
    let suite = fegen_suite::generate_suite(&fegen_suite::SuiteConfig::tiny());
    let mut irs = Vec::new();
    for b in &suite {
        let rtl = lower_program(&b.program).expect("suite lowers");
        for f in &rtl.functions {
            for region in &f.loops {
                irs.push(export_loop(f, region, &rtl.layout));
            }
        }
    }
    (Grammar::derive(irs.iter()), irs)
}

fn bench_operators(c: &mut Criterion) {
    let (grammar, _) = grammar_and_ir();
    let mut rng = StdRng::seed_from_u64(1);
    let parents: Vec<FeatureExpr> = (0..64).map(|_| grammar.gen_feature(&mut rng, 6)).collect();

    c.bench_function("gen_feature_depth6", |b| {
        let mut rng = StdRng::seed_from_u64(2);
        b.iter(|| grammar.gen_feature(&mut rng, black_box(6)))
    });
    c.bench_function("mutate", |b| {
        let mut rng = StdRng::seed_from_u64(3);
        let mut k = 0usize;
        b.iter(|| {
            k = (k + 1) % parents.len();
            mutate(&grammar, black_box(&parents[k]), &mut rng, 4)
        })
    });
    c.bench_function("crossover", |b| {
        let mut rng = StdRng::seed_from_u64(4);
        let mut k = 0usize;
        b.iter(|| {
            k = (k + 1) % (parents.len() - 1);
            crossover(black_box(&parents[k]), black_box(&parents[k + 1]), &mut rng)
        })
    });
}

fn bench_engine_generation(c: &mut Criterion) {
    let (grammar, irs) = grammar_and_ir();
    // Fitness: cheap but real — evaluate the feature over all exported IR.
    let fitness = move |e: &FeatureExpr| -> Option<f64> {
        let mut acc = 0.0;
        for ir in &irs {
            acc += e.eval_with_budget(ir, 50_000).ok()?;
        }
        Some(-acc.abs())
    };
    let cfg = GpConfig {
        population: 24,
        max_generations: 5,
        stagnation_limit: 10,
        ..GpConfig::quick()
    };
    let mut group = c.benchmark_group("gp_engine");
    group.sample_size(10);
    group.bench_function("run_pop24_gen5", |b| {
        b.iter(|| {
            let engine = GpEngine::new(&grammar, cfg.clone());
            let mut rng = StdRng::seed_from_u64(7);
            engine.run(&fitness, &mut rng)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_operators, bench_engine_generation);
criterion_main!(benches);
