//! Ablation: parsimony pressure on vs off.
//!
//! The paper (§III): "Genetic programming can quickly generate very long
//! feature expressions. If two features have the same quality we prefer the
//! shorter one. This selection pressure prevents expressions becoming
//! needlessly long." This bench runs the same GP search with the pressure
//! enabled and disabled, timing both; it also prints (once) the resulting
//! best-expression sizes, which is the quantity the ablation is about.

use criterion::{criterion_group, criterion_main, Criterion};
use fegen_core::gp::{GpConfig, GpEngine};
use fegen_core::ir::IrNode;
use fegen_core::lang::FeatureExpr;
use fegen_core::Grammar;
use fegen_rtl::export::export_loop;
use fegen_rtl::lower::lower_program;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Once;

fn grammar_and_ir() -> (Grammar, Vec<IrNode>) {
    let suite = fegen_suite::generate_suite(&fegen_suite::SuiteConfig::tiny());
    let mut irs = Vec::new();
    for b in &suite {
        let rtl = lower_program(&b.program).expect("suite lowers");
        for f in &rtl.functions {
            for region in &f.loops {
                irs.push(export_loop(f, region, &rtl.layout));
            }
        }
    }
    (Grammar::derive(irs.iter()), irs)
}

/// A deliberately plateau-heavy fitness: many expressions achieve the same
/// quality, so parsimony (not quality) decides — the regime where bloat
/// happens.
fn fitness(irs: &[IrNode]) -> impl Fn(&FeatureExpr) -> Option<f64> + Sync + '_ {
    move |e: &FeatureExpr| {
        let v = e.eval_with_budget(&irs[0], 50_000).ok()?;
        // Bucketised objective: a plateau of equal-quality solutions.
        Some(-((v - 10.0).abs() / 5.0).floor())
    }
}

fn report_sizes_once(grammar: &Grammar, irs: &[IrNode]) {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        for parsimony in [true, false] {
            let cfg = GpConfig {
                parsimony,
                max_generations: 30,
                stagnation_limit: 30,
                ..GpConfig::quick()
            };
            let mut sizes = Vec::new();
            for seed in 0..5u64 {
                let engine = GpEngine::new(grammar, cfg.clone());
                let mut rng = StdRng::seed_from_u64(seed);
                let run = engine.run(&fitness(irs), &mut rng);
                if let Some(best) = run.best {
                    sizes.push(best.size);
                }
            }
            eprintln!(
                "[ablation] parsimony={parsimony}: best-expression sizes {sizes:?} (mean {:.1})",
                sizes.iter().sum::<usize>() as f64 / sizes.len().max(1) as f64
            );
        }
    });
}

fn bench_parsimony(c: &mut Criterion) {
    let (grammar, irs) = grammar_and_ir();
    report_sizes_once(&grammar, &irs);
    let mut group = c.benchmark_group("ablation_parsimony");
    group.sample_size(10);
    for parsimony in [true, false] {
        let cfg = GpConfig {
            parsimony,
            max_generations: 10,
            stagnation_limit: 10,
            ..GpConfig::quick()
        };
        group.bench_function(format!("parsimony_{parsimony}"), |b| {
            b.iter(|| {
                let engine = GpEngine::new(&grammar, cfg.clone());
                let mut rng = StdRng::seed_from_u64(11);
                engine.run(&fitness(&irs), &mut rng)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_parsimony);
criterion_main!(benches);
