//! Micro-benchmark: feature-expression evaluation throughput over real
//! exported loop IR — the hot path of the GP search (every candidate is
//! evaluated over every training loop, every generation).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use fegen_core::ir::IrNode;
use fegen_core::lang::parse_feature;
use fegen_rtl::export::export_loop;
use fegen_rtl::lower::lower_program;

fn exported_loops() -> Vec<IrNode> {
    let suite = fegen_suite::generate_suite(&fegen_suite::SuiteConfig::tiny());
    let mut out = Vec::new();
    for b in &suite {
        let rtl = lower_program(&b.program).expect("suite lowers");
        for f in &rtl.functions {
            for region in &f.loops {
                out.push(export_loop(f, region, &rtl.layout));
            }
        }
    }
    out
}

fn bench_feature_eval(c: &mut Criterion) {
    let loops = exported_loops();
    let features = [
        ("get_attr", "get-attr(@num-iter)"),
        ("count_desc", "count(//*)"),
        ("count_filter_type", "count(filter(//*, is-type(reg)))"),
        (
            "paper_fig16_style",
            "count(filter(//*, !(is-type(wide-int) || is-type(const_double))))",
        ),
        (
            "nested_aggregate",
            "max(filter(/*, is-type(basic-block)), count(filter(//*, is-type(insn))))",
        ),
    ];
    let mut group = c.benchmark_group("feature_eval");
    for (name, src) in features {
        let f = parse_feature(src).expect("valid feature");
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut acc = 0.0;
                for ir in &loops {
                    acc += f.eval_default(black_box(ir)).unwrap_or(0.0);
                }
                acc
            })
        });
    }
    group.finish();
}

fn bench_parse_print(c: &mut Criterion) {
    let src = "count(filter(/*, is-type(basic-block) && (!@loop-depth==2 || (0.0 > \
               (count(filter(//*, is-type(var_decl))) / count(filter(/*, is-type(code_label))))))))";
    c.bench_function("parse_long_feature", |b| {
        b.iter(|| parse_feature(black_box(src)).expect("parses"))
    });
    let f = parse_feature(src).expect("parses");
    c.bench_function("print_long_feature", |b| b.iter(|| black_box(&f).to_string()));
}

criterion_group!(benches, bench_feature_eval, bench_parse_print);
criterion_main!(benches);
