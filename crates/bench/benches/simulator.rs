//! Micro-benchmark: simulator throughput — machine preparation (CFG +
//! static block costs) and execution (instructions per second), which
//! bound the §V data-generation time (2,778 loops × 16 factors at paper
//! scale).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use fegen_rtl::lower::lower_program;
use fegen_rtl::RtlProgram;
use fegen_sim::{Arg, Machine, SimConfig};

fn kernel_program() -> RtlProgram {
    let src = "\
        int data[2048]; int out[2048];\n\
        void init() { int i; for (i = 0; i < 2048; i = i + 1) { data[i] = i * 7 % 31; } }\n\
        int reduce(int n) { int i; int s; s = 0;\n\
          for (i = 0; i < n; i = i + 1) { s = s + data[i] * 3; } return s; }\n\
        void stencil(int n) { int i;\n\
          for (i = 2; i < n; i = i + 1) { out[i] = data[i] + data[i-1] + data[i-2]; } }\n";
    let ast = fegen_lang::parse_program(src).expect("parses");
    lower_program(&ast).expect("lowers")
}

fn bench_machine_new(c: &mut Criterion) {
    let program = kernel_program();
    c.bench_function("machine_new", |b| {
        b.iter(|| Machine::new(black_box(&program), SimConfig::default()))
    });
}

fn bench_execution(c: &mut Criterion) {
    let program = kernel_program();
    let mut group = c.benchmark_group("execution");
    // Count the instructions once so throughput is per simulated insn.
    let insns = {
        let mut m = Machine::new(&program, SimConfig::default());
        m.call("init", &[]).unwrap();
        m.call("reduce", &[Arg::Int(2000)]).unwrap();
        m.insns_executed()
    };
    group.throughput(Throughput::Elements(insns));
    group.bench_function("init_plus_reduce_2000", |b| {
        b.iter(|| {
            let mut m = Machine::new(&program, SimConfig::default());
            m.call("init", &[]).unwrap();
            m.call("reduce", &[Arg::Int(black_box(2000))]).unwrap()
        })
    });
    group.bench_function("stencil_2000", |b| {
        b.iter(|| {
            let mut m = Machine::new(&program, SimConfig::default());
            m.call("init", &[]).unwrap();
            m.call("stencil", &[Arg::Int(black_box(2000))]).unwrap()
        })
    });
    group.finish();
}

fn bench_measure_site(c: &mut Criterion) {
    use fegen_sim::oracle::{kernel_functions, measure_site, CallSpec, LoopSite, OracleConfig, Workload};
    let program = kernel_program();
    let workload = Workload {
        init: vec![CallSpec { func: "init".into(), args: vec![] }],
        kernels: vec![CallSpec { func: "reduce".into(), args: vec![Arg::Int(1500)] }],
    };
    let kernel_funcs = kernel_functions(&program, &workload);
    let site = LoopSite { func: "reduce".into(), loop_id: 0 };
    let mut group = c.benchmark_group("oracle");
    group.sample_size(10);
    group.bench_function("measure_site_16_factors", |b| {
        b.iter(|| {
            measure_site(
                black_box(&program),
                &workload,
                &kernel_funcs,
                &site,
                &OracleConfig::default(),
            )
            .unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_machine_new, bench_execution, bench_measure_site);
criterion_main!(benches);
