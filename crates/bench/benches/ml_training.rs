//! Micro-benchmark: learner training and prediction costs. The decision
//! tree is trained inside every GP fitness evaluation, so its training
//! time bounds the whole search throughput (the paper chose C4.5 "for its
//! speed" for exactly this reason).

use criterion::{black_box, criterion_group, criterion_main, BatchSize, Criterion};
use fegen_ml::data::Dataset;
use fegen_ml::svm::{Svm, SvmConfig};
use fegen_ml::tree::{DecisionTree, TreeConfig};

/// Synthetic but structured dataset: labels depend on thresholds of a few
/// features plus noise, similar in shape to the unroll-factor task.
fn dataset(n: usize, d: usize, classes: usize) -> Dataset {
    let mut xs = Vec::with_capacity(n);
    let mut ys = Vec::with_capacity(n);
    let mut state = 0x12345678u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for _ in 0..n {
        let row: Vec<f64> = (0..d).map(|_| (next() % 1000) as f64 / 10.0).collect();
        let label = ((row[0] / 25.0) as usize + (row[1] > 50.0) as usize) % classes;
        xs.push(row);
        ys.push(label);
    }
    Dataset::new(xs, ys, classes).expect("rectangular")
}

fn bench_tree(c: &mut Criterion) {
    let mut group = c.benchmark_group("tree");
    for n in [200usize, 800] {
        let data = dataset(n, 8, 16);
        group.bench_function(format!("train_n{n}"), |b| {
            b.iter(|| DecisionTree::train(black_box(&data), &TreeConfig::default()))
        });
    }
    let data = dataset(800, 8, 16);
    let tree = DecisionTree::train(&data, &TreeConfig::default());
    group.bench_function("predict_800", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for i in 0..data.len() {
                acc += tree.predict(black_box(data.row(i)));
            }
            acc
        })
    });
    group.finish();
}

fn bench_svm(c: &mut Criterion) {
    let mut group = c.benchmark_group("svm");
    group.sample_size(10);
    let data = dataset(150, 8, 4);
    let stats = data.feature_stats();
    let std = data.standardized(&stats);
    group.bench_function("train_150x8_4class", |b| {
        b.iter_batched(
            || std.clone(),
            |d| Svm::train(&d, &SvmConfig::default()),
            BatchSize::SmallInput,
        )
    });
    let svm = Svm::train(&std, &SvmConfig::default());
    group.bench_function("predict_150", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for i in 0..std.len() {
                acc += svm.predict(black_box(std.row(i)));
            }
            acc
        })
    });
    group.finish();
}

criterion_group!(benches, bench_tree, bench_svm);
criterion_main!(benches);
