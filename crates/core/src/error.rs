//! Structured errors for the search runtime.
//!
//! Library paths in [`crate::search`] and [`crate::gp`] never panic on
//! recoverable conditions: empty inputs, populations where every candidate
//! timed out, interrupted runs and checkpoint problems all surface as typed
//! variants so callers (the bench pipeline, the CLI) can report exactly what
//! failed and decide whether to retry, resume or skip.

use std::fmt;
use std::path::PathBuf;

/// Errors from reading or writing search checkpoints.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// The checkpoint file could not be read or written.
    Io {
        /// Path of the offending file or directory.
        path: PathBuf,
        /// Operating-system error text.
        detail: String,
    },
    /// The file exists but does not decode to a valid snapshot.
    Corrupt {
        /// Path of the offending file.
        path: PathBuf,
        /// What failed to decode.
        detail: String,
    },
    /// The snapshot was written by an incompatible format version.
    VersionMismatch {
        /// Path of the offending file.
        path: PathBuf,
        /// Version recorded in the file.
        found: u32,
        /// Version this build understands.
        expected: u32,
    },
    /// The snapshot belongs to a different search (other configuration or
    /// other training examples); resuming from it would silently produce
    /// wrong results.
    StateMismatch {
        /// Path of the offending file.
        path: PathBuf,
        /// Which identity check failed.
        detail: String,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io { path, detail } => {
                write!(f, "checkpoint i/o error at {}: {detail}", path.display())
            }
            CheckpointError::Corrupt { path, detail } => {
                write!(f, "corrupt checkpoint {}: {detail}", path.display())
            }
            CheckpointError::VersionMismatch {
                path,
                found,
                expected,
            } => write!(
                f,
                "checkpoint {} has format version {found}, this build expects {expected}",
                path.display()
            ),
            CheckpointError::StateMismatch { path, detail } => write!(
                f,
                "checkpoint {} belongs to a different search: {detail}",
                path.display()
            ),
        }
    }
}

impl std::error::Error for CheckpointError {}

/// Errors from the feature-search runtime.
#[derive(Debug, Clone, PartialEq)]
pub enum SearchError {
    /// The search was given no training examples.
    EmptyTrainingSet,
    /// The configuration cannot be run as given.
    InvalidConfig {
        /// Human-readable description of the offending setting.
        detail: String,
    },
    /// Every individual of a GP run was invalid — each candidate timed out,
    /// produced a non-finite value, or panicked — so there is no best
    /// feature to report.
    NoViableCandidate {
        /// Generations the run executed before giving up.
        generations: usize,
        /// Fitness evaluations performed (excluding memo hits).
        evaluations: usize,
    },
    /// The run was cancelled cooperatively (Ctrl-C handler, injected fault,
    /// shutdown request). If checkpointing was enabled, `checkpoint` names
    /// the snapshot to resume from.
    Interrupted {
        /// Snapshot written at the interruption point, if any.
        checkpoint: Option<PathBuf>,
        /// Total GP generations executed when the run stopped.
        total_generations: usize,
    },
    /// A checkpoint operation failed.
    Checkpoint(CheckpointError),
}

impl fmt::Display for SearchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SearchError::EmptyTrainingSet => {
                write!(f, "feature search needs at least one training example")
            }
            SearchError::InvalidConfig { detail } => {
                write!(f, "invalid search configuration: {detail}")
            }
            SearchError::NoViableCandidate {
                generations,
                evaluations,
            } => write!(
                f,
                "no viable candidate: every individual was invalid after \
                 {generations} generations and {evaluations} evaluations"
            ),
            SearchError::Interrupted {
                checkpoint,
                total_generations,
            } => match checkpoint {
                Some(path) => write!(
                    f,
                    "search interrupted after {total_generations} generations; \
                     resume from {}",
                    path.display()
                ),
                None => write!(
                    f,
                    "search interrupted after {total_generations} generations \
                     (no checkpoint was written)"
                ),
            },
            SearchError::Checkpoint(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SearchError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SearchError::Checkpoint(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CheckpointError> for SearchError {
    fn from(e: CheckpointError) -> Self {
        SearchError::Checkpoint(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_the_essentials() {
        let e = SearchError::NoViableCandidate {
            generations: 7,
            evaluations: 91,
        };
        let text = e.to_string();
        assert!(text.contains('7') && text.contains("91"), "{text}");

        let e = SearchError::Interrupted {
            checkpoint: Some(PathBuf::from("/tmp/ck/search.ckpt.json")),
            total_generations: 40,
        };
        assert!(e.to_string().contains("search.ckpt.json"));

        let e: SearchError = CheckpointError::VersionMismatch {
            path: PathBuf::from("x.json"),
            found: 9,
            expected: 1,
        }
        .into();
        assert!(e.to_string().contains("version 9"));
    }
}
