//! The exported-IR data model.
//!
//! The paper's system "extracts the RTL representation of the loops,
//! augmenting it to include the structure of the basic blocks … \[and\] any
//! information GCC can compute at that time" (§VI). The export format here is
//! deliberately compiler-agnostic: a tree of nodes, each with an interned
//! *kind* (`insn`, `basic-block`, `reg`, `plus`, …), a set of named
//! *attributes* (`@num-iter`, `@loop-depth`, `@mode`, …) and ordered
//! children. Feature expressions (see [`crate::lang`]) navigate these trees.
//!
//! Kinds, attribute names and enum attribute values are interned in a global
//! [`Symbol`] table so that feature evaluation — the hot path of the GP
//! search — compares `u32`s, never strings.

use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;
use std::sync::OnceLock;

/// An interned string. Two symbols are equal iff their strings are equal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(u32);

struct Interner {
    // Interned names are leaked once and live for the process lifetime, so
    // resolution hands out `&'static str` without allocating or holding the
    // lock. The table only ever grows (grammar vocabularies are tiny), so the
    // leak is bounded by the number of distinct symbols.
    names: Vec<&'static str>,
    map: HashMap<&'static str, Symbol>,
}

fn interner() -> &'static RwLock<Interner> {
    static INTERNER: OnceLock<RwLock<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| {
        RwLock::new(Interner {
            names: Vec::new(),
            map: HashMap::new(),
        })
    })
}

impl Symbol {
    /// Interns `name`, returning its unique symbol.
    ///
    /// ```
    /// use fegen_core::Symbol;
    /// assert_eq!(Symbol::intern("insn"), Symbol::intern("insn"));
    /// assert_ne!(Symbol::intern("insn"), Symbol::intern("reg"));
    /// ```
    pub fn intern(name: &str) -> Symbol {
        {
            let guard = interner().read();
            if let Some(sym) = guard.map.get(name) {
                return *sym;
            }
        }
        let mut guard = interner().write();
        if let Some(sym) = guard.map.get(name) {
            return *sym;
        }
        let sym = Symbol(guard.names.len() as u32);
        let leaked: &'static str = Box::leak(name.to_owned().into_boxed_str());
        guard.names.push(leaked);
        guard.map.insert(leaked, sym);
        sym
    }

    /// Returns the string this symbol was interned from.
    ///
    /// Resolution is allocation-free: the interner leaks each distinct name
    /// once, so the returned `&'static str` is just a table lookup under a
    /// briefly-held read lock.
    pub fn as_str(&self) -> &'static str {
        interner().read().names[self.0 as usize]
    }

    /// Index of this symbol in the intern table. Useful as a dense array key;
    /// note the index depends on interning order and is not stable across
    /// processes (hash the string for stable keys).
    pub fn index(&self) -> usize {
        self.0 as usize
    }

    /// Looks `name` up *without* interning it. Interned names live for the
    /// process lifetime, so code that handles untrusted input (the serve
    /// daemon's IR ingestion) uses this to count how many genuinely new
    /// strings a request would pin before deciding to admit it.
    pub fn lookup(name: &str) -> Option<Symbol> {
        interner().read().map.get(name).copied()
    }
}

/// Number of distinct symbols interned so far. The interner leaks each
/// distinct string once by design; long-lived processes facing untrusted
/// input watch this to keep the leak bounded (see `serve`).
pub fn symbol_count() -> usize {
    interner().read().names.len()
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl From<&str> for Symbol {
    fn from(s: &str) -> Symbol {
        Symbol::intern(s)
    }
}

impl Serialize for Symbol {
    fn serialize<S: serde::Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_str(self.as_str())
    }
}

impl<'de> Deserialize<'de> for Symbol {
    fn deserialize<D: serde::Deserializer<'de>>(d: D) -> Result<Symbol, D::Error> {
        let s = String::deserialize(d)?;
        Ok(Symbol::intern(&s))
    }
}

/// The value of a node attribute.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AttrValue {
    /// Numeric attribute, e.g. `@num-iter`, `@freq`.
    Num(f64),
    /// Boolean flag, e.g. `@may-be-hot`, `@unchanging`.
    Bool(bool),
    /// Enumerated attribute, e.g. `@mode == SI`.
    Enum(Symbol),
}

impl AttrValue {
    /// Numeric view of the attribute (booleans are 0/1; enums have no
    /// numeric view and return `None`).
    pub fn as_num(&self) -> Option<f64> {
        match self {
            AttrValue::Num(v) => Some(*v),
            AttrValue::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
            AttrValue::Enum(_) => None,
        }
    }
}

impl fmt::Display for AttrValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttrValue::Num(v) => write!(f, "{v}"),
            AttrValue::Bool(b) => write!(f, "{b}"),
            AttrValue::Enum(s) => write!(f, "{s}"),
        }
    }
}

/// A node of exported compiler IR.
///
/// Attribute lists are kept sorted by attribute-name symbol so lookup is a
/// binary search and construction order does not affect equality.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IrNode {
    kind: Symbol,
    attrs: Vec<(Symbol, AttrValue)>,
    children: Vec<IrNode>,
}

impl IrNode {
    /// Creates a leaf node of the given kind.
    pub fn new(kind: impl Into<Symbol>) -> IrNode {
        IrNode {
            kind: kind.into(),
            attrs: Vec::new(),
            children: Vec::new(),
        }
    }

    /// Builder-style construction used by exporters and tests.
    ///
    /// ```
    /// use fegen_core::ir::IrNode;
    /// let n = IrNode::build("insn", |i| {
    ///     i.attr_num("cost", 2.0);
    ///     i.child("reg", |r| { r.attr_enum("mode", "SI"); });
    /// });
    /// assert_eq!(n.children().len(), 1);
    /// ```
    pub fn build<R>(kind: impl Into<Symbol>, f: impl FnOnce(&mut IrNode) -> R) -> IrNode {
        let mut node = IrNode::new(kind);
        let _ = f(&mut node);
        node
    }

    /// The node kind.
    pub fn kind(&self) -> Symbol {
        self.kind
    }

    /// The node's children, in order.
    pub fn children(&self) -> &[IrNode] {
        &self.children
    }

    /// The node's attributes, sorted by name symbol.
    pub fn attrs(&self) -> &[(Symbol, AttrValue)] {
        &self.attrs
    }

    /// Looks up an attribute by name.
    pub fn attr(&self, name: Symbol) -> Option<AttrValue> {
        self.attrs
            .binary_search_by_key(&name, |(n, _)| *n)
            .ok()
            .map(|i| self.attrs[i].1)
    }

    /// Sets (or replaces) an attribute.
    pub fn set_attr(&mut self, name: impl Into<Symbol>, value: AttrValue) -> &mut IrNode {
        let name = name.into();
        match self.attrs.binary_search_by_key(&name, |(n, _)| *n) {
            Ok(i) => self.attrs[i].1 = value,
            Err(i) => self.attrs.insert(i, (name, value)),
        }
        self
    }

    /// Sets a numeric attribute.
    pub fn attr_num(&mut self, name: impl Into<Symbol>, value: f64) -> &mut IrNode {
        self.set_attr(name, AttrValue::Num(value))
    }

    /// Sets a boolean attribute.
    pub fn attr_bool(&mut self, name: impl Into<Symbol>, value: bool) -> &mut IrNode {
        self.set_attr(name, AttrValue::Bool(value))
    }

    /// Sets an enumerated attribute.
    pub fn attr_enum(&mut self, name: impl Into<Symbol>, value: impl Into<Symbol>) -> &mut IrNode {
        self.set_attr(name, AttrValue::Enum(value.into()))
    }

    /// Appends a child built with `f` and returns `self` for chaining.
    pub fn child<R>(
        &mut self,
        kind: impl Into<Symbol>,
        f: impl FnOnce(&mut IrNode) -> R,
    ) -> &mut IrNode {
        let mut node = IrNode::new(kind);
        let _ = f(&mut node);
        self.children.push(node);
        self
    }

    /// Appends an already-built child.
    pub fn push_child(&mut self, node: IrNode) -> &mut IrNode {
        self.children.push(node);
        self
    }

    /// Number of nodes in this subtree (including `self`).
    pub fn size(&self) -> usize {
        1 + self.children.iter().map(IrNode::size).sum::<usize>()
    }

    /// Maximum depth of this subtree (a leaf has depth 1).
    pub fn depth(&self) -> usize {
        1 + self.children.iter().map(IrNode::depth).max().unwrap_or(0)
    }

    /// Iterates over this node and all descendants, pre-order.
    pub fn iter(&self) -> Iter<'_> {
        Iter { stack: vec![self] }
    }

    /// Renders the tree as an indented S-expression-like dump (for debugging
    /// and golden tests).
    pub fn dump(&self) -> String {
        let mut out = String::new();
        self.dump_into(&mut out, 0);
        out
    }

    fn dump_into(&self, out: &mut String, indent: usize) {
        use std::fmt::Write;
        let pad = "  ".repeat(indent);
        let _ = write!(out, "{pad}({}", self.kind);
        for (name, value) in &self.attrs {
            let _ = write!(out, " @{name}={value}");
        }
        if self.children.is_empty() {
            out.push_str(")\n");
        } else {
            out.push('\n');
            for c in &self.children {
                c.dump_into(out, indent + 1);
            }
            let _ = writeln!(out, "{pad})");
        }
    }
}

/// Pre-order iterator over an [`IrNode`] tree. Created by [`IrNode::iter`].
#[derive(Debug)]
pub struct Iter<'a> {
    stack: Vec<&'a IrNode>,
}

impl<'a> Iterator for Iter<'a> {
    type Item = &'a IrNode;

    fn next(&mut self) -> Option<&'a IrNode> {
        let node = self.stack.pop()?;
        // Push children in reverse so iteration is left-to-right pre-order.
        self.stack.extend(node.children.iter().rev());
        Some(node)
    }
}

/// A preorder arena flattening of an [`IrNode`] tree.
///
/// The feature-evaluation hot path (see [`crate::lang::vm`]) never walks the
/// pointer tree: the arena stores one structure-of-arrays entry per node in
/// preorder, so
///
/// - the **descendants** of node `i` are the contiguous index range
///   `i + 1 .. subtree_end(i)` (the `//*` sequence is a slice scan),
/// - the **children** of node `i` are reached by sibling jumps:
///   `j = i + 1`, then `j = subtree_end(j)` while `j < subtree_end(i)`
///   (the `/*` and `[n]` sequences touch only child headers),
/// - per-kind and per-attribute **postings lists** (sorted node indices)
///   answer "how many `insn` nodes under `i`" with two binary searches.
///
/// Attributes stay sorted by name symbol per node, so lookup is a binary
/// search over a flat slice, exactly as on [`IrNode`].
#[derive(Debug, Clone)]
pub struct IrArena {
    kinds: Vec<Symbol>,
    /// Exclusive end (in preorder indices) of each node's subtree.
    subtree_end: Vec<u32>,
    /// `attr_off[i] .. attr_off[i + 1]` indexes `attrs` for node `i`.
    attr_off: Vec<u32>,
    attrs: Vec<(Symbol, AttrValue)>,
    child_count: Vec<u32>,
    /// Preorder index of each node's parent (the root maps to itself).
    parents: Vec<u32>,
    kind_postings: HashMap<Symbol, Vec<u32>>,
    attr_postings: HashMap<Symbol, Vec<u32>>,
}

impl IrArena {
    /// Flattens `root` into a preorder arena. The tree is walked exactly
    /// once; the arena holds copies of the (Copy) kinds and attribute values.
    pub fn from_tree(root: &IrNode) -> IrArena {
        let n = root.size();
        let mut arena = IrArena {
            kinds: Vec::with_capacity(n),
            subtree_end: Vec::with_capacity(n),
            attr_off: Vec::with_capacity(n + 1),
            attrs: Vec::new(),
            child_count: Vec::with_capacity(n),
            parents: Vec::with_capacity(n),
            kind_postings: HashMap::new(),
            attr_postings: HashMap::new(),
        };
        arena.push_subtree(root, 0);
        arena.attr_off.push(arena.attrs.len() as u32);
        arena
    }

    fn push_subtree(&mut self, node: &IrNode, parent: u32) {
        let idx = self.kinds.len() as u32;
        self.kinds.push(node.kind);
        self.subtree_end.push(0); // patched below
        self.attr_off.push(self.attrs.len() as u32);
        self.attrs.extend_from_slice(&node.attrs);
        self.child_count.push(node.children.len() as u32);
        self.parents.push(parent);
        self.kind_postings.entry(node.kind).or_default().push(idx);
        for (name, _) in &node.attrs {
            self.attr_postings.entry(*name).or_default().push(idx);
        }
        for child in &node.children {
            self.push_subtree(child, idx);
        }
        self.subtree_end[idx as usize] = self.kinds.len() as u32;
    }

    /// Number of nodes in the arena.
    pub fn len(&self) -> usize {
        self.kinds.len()
    }

    /// True when the arena holds no nodes (never for `from_tree`).
    pub fn is_empty(&self) -> bool {
        self.kinds.is_empty()
    }

    /// Kind of node `i`.
    #[inline]
    pub fn kind(&self, i: u32) -> Symbol {
        self.kinds[i as usize]
    }

    /// Exclusive preorder end of node `i`'s subtree; descendants of `i` are
    /// `i + 1 .. subtree_end(i)`.
    #[inline]
    pub fn subtree_end(&self, i: u32) -> u32 {
        self.subtree_end[i as usize]
    }

    /// Number of direct children of node `i`.
    #[inline]
    pub fn child_count(&self, i: u32) -> u32 {
        self.child_count[i as usize]
    }

    /// Number of (strict) descendants of node `i`.
    #[inline]
    pub fn descendant_count(&self, i: u32) -> u32 {
        self.subtree_end[i as usize] - i - 1
    }

    /// Preorder index of node `i`'s parent; the root maps to itself. The
    /// columnar aggregate sweep scatters child values bottom-up with it.
    #[inline]
    pub fn parent(&self, i: u32) -> u32 {
        self.parents[i as usize]
    }

    /// Attributes of node `i`, sorted by name symbol.
    #[inline]
    pub fn attrs(&self, i: u32) -> &[(Symbol, AttrValue)] {
        let lo = self.attr_off[i as usize] as usize;
        let hi = self.attr_off[i as usize + 1] as usize;
        &self.attrs[lo..hi]
    }

    /// Looks up an attribute of node `i` by name (binary search).
    #[inline]
    pub fn attr(&self, i: u32, name: Symbol) -> Option<AttrValue> {
        let attrs = self.attrs(i);
        attrs
            .binary_search_by_key(&name, |(n, _)| *n)
            .ok()
            .map(|k| attrs[k].1)
    }

    /// Iterates the direct children of node `i` (their arena indices), in
    /// order, via sibling jumps over subtree spans.
    #[inline]
    pub fn children(&self, i: u32) -> ChildIndices<'_> {
        ChildIndices {
            arena: self,
            next: i + 1,
            end: self.subtree_end[i as usize],
        }
    }

    /// Index of the `n`-th (0-based) child of node `i`, if it exists.
    pub fn nth_child(&self, i: u32, n: usize) -> Option<u32> {
        self.children(i).nth(n)
    }

    /// Number of nodes of `kind` with preorder index in `lo..hi` (two binary
    /// searches over the kind's postings list).
    pub fn count_kind_in(&self, kind: Symbol, lo: u32, hi: u32) -> u32 {
        Self::count_in(self.kind_postings.get(&kind), lo, hi)
    }

    /// Number of nodes carrying attribute `name` with preorder index in
    /// `lo..hi`.
    pub fn count_attr_in(&self, name: Symbol, lo: u32, hi: u32) -> u32 {
        Self::count_in(self.attr_postings.get(&name), lo, hi)
    }

    /// Preorder indices in `lo..hi` of the nodes carrying attribute `name`
    /// (a contiguous slice of the attribute's postings list).
    pub fn attr_nodes_in(&self, name: Symbol, lo: u32, hi: u32) -> &[u32] {
        let Some(p) = self.attr_postings.get(&name) else {
            return &[];
        };
        let a = p.partition_point(|&i| i < lo);
        let b = p.partition_point(|&i| i < hi);
        &p[a..b]
    }

    /// Preorder indices in `lo..hi` of the nodes of `kind` (a contiguous
    /// slice of the kind's postings list).
    pub fn kind_nodes_in(&self, kind: Symbol, lo: u32, hi: u32) -> &[u32] {
        let Some(p) = self.kind_postings.get(&kind) else {
            return &[];
        };
        let a = p.partition_point(|&i| i < lo);
        let b = p.partition_point(|&i| i < hi);
        &p[a..b]
    }

    fn count_in(postings: Option<&Vec<u32>>, lo: u32, hi: u32) -> u32 {
        let Some(p) = postings else { return 0 };
        let a = p.partition_point(|&i| i < lo);
        let b = p.partition_point(|&i| i < hi);
        (b - a) as u32
    }
}

/// Iterator over the direct children (arena indices) of a node. Created by
/// [`IrArena::children`].
#[derive(Debug, Clone)]
pub struct ChildIndices<'a> {
    arena: &'a IrArena,
    next: u32,
    end: u32,
}

impl Iterator for ChildIndices<'_> {
    type Item = u32;

    #[inline]
    fn next(&mut self) -> Option<u32> {
        if self.next >= self.end {
            return None;
        }
        let cur = self.next;
        self.next = self.arena.subtree_end[cur as usize];
        Some(cur)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symbols_intern_uniquely() {
        let a = Symbol::intern("alpha-test-symbol");
        let b = Symbol::intern("alpha-test-symbol");
        let c = Symbol::intern("beta-test-symbol");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.as_str(), "alpha-test-symbol");
    }

    #[test]
    fn attrs_sorted_and_replaceable() {
        let mut n = IrNode::new("x");
        n.attr_num("zeta", 1.0);
        n.attr_num("alpha", 2.0);
        n.attr_num("zeta", 3.0);
        assert_eq!(n.attrs().len(), 2);
        assert_eq!(n.attr(Symbol::intern("zeta")), Some(AttrValue::Num(3.0)));
        // Sorted by symbol, whatever the interning order was.
        let mut sorted = n.attrs().to_vec();
        sorted.sort_by_key(|(s, _)| *s);
        assert_eq!(sorted, n.attrs());
    }

    #[test]
    fn attr_value_numeric_views() {
        assert_eq!(AttrValue::Num(2.5).as_num(), Some(2.5));
        assert_eq!(AttrValue::Bool(true).as_num(), Some(1.0));
        assert_eq!(AttrValue::Enum(Symbol::intern("SI")).as_num(), None);
    }

    #[test]
    fn size_and_depth() {
        let n = IrNode::build("a", |a| {
            a.child("b", |b| {
                b.child("c", |_| {});
            });
            a.child("d", |_| {});
        });
        assert_eq!(n.size(), 4);
        assert_eq!(n.depth(), 3);
    }

    #[test]
    fn preorder_iteration_is_left_to_right() {
        let n = IrNode::build("root", |r| {
            r.child("l", |l| {
                l.child("ll", |_| {});
            });
            r.child("r", |_| {});
        });
        let kinds: Vec<&str> = n.iter().map(|x| x.kind().as_str()).collect();
        assert_eq!(kinds, vec!["root", "l", "ll", "r"]);
    }

    #[test]
    fn arena_matches_tree_shape() {
        let n = IrNode::build("root", |r| {
            r.attr_num("num-iter", 5.0);
            r.child("l", |l| {
                l.attr_bool("flag", true);
                l.child("ll", |_| {});
                l.child("lr", |_| {});
            });
            r.child("r", |x| {
                x.attr_enum("mode", "SI");
            });
        });
        let arena = IrArena::from_tree(&n);
        assert_eq!(arena.len(), 5);
        // Preorder: root=0, l=1, ll=2, lr=3, r=4.
        assert_eq!(arena.kind(0), Symbol::intern("root"));
        assert_eq!(arena.subtree_end(0), 5);
        assert_eq!(arena.subtree_end(1), 4);
        assert_eq!(arena.child_count(0), 2);
        assert_eq!(arena.descendant_count(0), 4);
        assert_eq!(arena.children(0).collect::<Vec<_>>(), vec![1, 4]);
        assert_eq!(arena.children(1).collect::<Vec<_>>(), vec![2, 3]);
        assert_eq!(arena.nth_child(0, 1), Some(4));
        assert_eq!(arena.nth_child(0, 2), None);
        assert_eq!(
            arena.attr(0, Symbol::intern("num-iter")),
            Some(AttrValue::Num(5.0))
        );
        assert_eq!(arena.attr(1, Symbol::intern("num-iter")), None);
        assert_eq!(arena.count_kind_in(Symbol::intern("ll"), 1, 4), 1);
        assert_eq!(arena.count_kind_in(Symbol::intern("ll"), 3, 5), 0);
        assert_eq!(arena.count_attr_in(Symbol::intern("flag"), 0, 5), 1);
        assert_eq!(arena.kind_nodes_in(Symbol::intern("ll"), 1, 5), &[2]);
        assert_eq!(
            arena.kind_nodes_in(Symbol::intern("ll"), 3, 5),
            &[] as &[u32]
        );
        assert_eq!(
            arena.kind_nodes_in(Symbol::intern("absent"), 0, 5),
            &[] as &[u32]
        );
        assert_eq!(arena.attr_nodes_in(Symbol::intern("flag"), 0, 5), &[1]);
    }

    #[test]
    fn arena_agrees_with_preorder_iter() {
        let n = IrNode::build("a", |a| {
            a.child("b", |b| {
                b.child("c", |_| {});
                b.child("d", |_| {});
            });
            a.child("e", |e| {
                e.child("f", |_| {});
            });
        });
        let arena = IrArena::from_tree(&n);
        let tree_kinds: Vec<Symbol> = n.iter().map(|x| x.kind()).collect();
        let arena_kinds: Vec<Symbol> = (0..arena.len() as u32).map(|i| arena.kind(i)).collect();
        assert_eq!(tree_kinds, arena_kinds);
        for (i, node) in n.iter().enumerate() {
            let i = i as u32;
            assert_eq!(arena.subtree_end(i) - i, node.size() as u32);
            assert_eq!(arena.child_count(i) as usize, node.children().len());
        }
    }

    #[test]
    fn equality_ignores_attr_insertion_order() {
        let mut a = IrNode::new("n");
        a.attr_num("p", 1.0).attr_num("q", 2.0);
        let mut b = IrNode::new("n");
        b.attr_num("q", 2.0).attr_num("p", 1.0);
        assert_eq!(a, b);
    }

    #[test]
    fn dump_contains_kind_and_attrs() {
        let n = IrNode::build("loop", |l| {
            l.attr_num("num-iter", 5.0);
            l.child("insn", |_| {});
        });
        let d = n.dump();
        assert!(d.contains("(loop @num-iter=5"));
        assert!(d.contains("(insn)"));
    }
}
