//! The exported-IR data model.
//!
//! The paper's system "extracts the RTL representation of the loops,
//! augmenting it to include the structure of the basic blocks … \[and\] any
//! information GCC can compute at that time" (§VI). The export format here is
//! deliberately compiler-agnostic: a tree of nodes, each with an interned
//! *kind* (`insn`, `basic-block`, `reg`, `plus`, …), a set of named
//! *attributes* (`@num-iter`, `@loop-depth`, `@mode`, …) and ordered
//! children. Feature expressions (see [`crate::lang`]) navigate these trees.
//!
//! Kinds, attribute names and enum attribute values are interned in a global
//! [`Symbol`] table so that feature evaluation — the hot path of the GP
//! search — compares `u32`s, never strings.

use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;
use std::sync::OnceLock;

/// An interned string. Two symbols are equal iff their strings are equal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(u32);

struct Interner {
    names: Vec<String>,
    map: HashMap<String, Symbol>,
}

fn interner() -> &'static RwLock<Interner> {
    static INTERNER: OnceLock<RwLock<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| {
        RwLock::new(Interner {
            names: Vec::new(),
            map: HashMap::new(),
        })
    })
}

impl Symbol {
    /// Interns `name`, returning its unique symbol.
    ///
    /// ```
    /// use fegen_core::Symbol;
    /// assert_eq!(Symbol::intern("insn"), Symbol::intern("insn"));
    /// assert_ne!(Symbol::intern("insn"), Symbol::intern("reg"));
    /// ```
    pub fn intern(name: &str) -> Symbol {
        {
            let guard = interner().read();
            if let Some(sym) = guard.map.get(name) {
                return *sym;
            }
        }
        let mut guard = interner().write();
        if let Some(sym) = guard.map.get(name) {
            return *sym;
        }
        let sym = Symbol(guard.names.len() as u32);
        guard.names.push(name.to_owned());
        guard.map.insert(name.to_owned(), sym);
        sym
    }

    /// Returns the string this symbol was interned from.
    pub fn as_str(&self) -> String {
        interner().read().names[self.0 as usize].clone()
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_str())
    }
}

impl From<&str> for Symbol {
    fn from(s: &str) -> Symbol {
        Symbol::intern(s)
    }
}

impl Serialize for Symbol {
    fn serialize<S: serde::Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_str(&self.as_str())
    }
}

impl<'de> Deserialize<'de> for Symbol {
    fn deserialize<D: serde::Deserializer<'de>>(d: D) -> Result<Symbol, D::Error> {
        let s = String::deserialize(d)?;
        Ok(Symbol::intern(&s))
    }
}

/// The value of a node attribute.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AttrValue {
    /// Numeric attribute, e.g. `@num-iter`, `@freq`.
    Num(f64),
    /// Boolean flag, e.g. `@may-be-hot`, `@unchanging`.
    Bool(bool),
    /// Enumerated attribute, e.g. `@mode == SI`.
    Enum(Symbol),
}

impl AttrValue {
    /// Numeric view of the attribute (booleans are 0/1; enums have no
    /// numeric view and return `None`).
    pub fn as_num(&self) -> Option<f64> {
        match self {
            AttrValue::Num(v) => Some(*v),
            AttrValue::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
            AttrValue::Enum(_) => None,
        }
    }
}

impl fmt::Display for AttrValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttrValue::Num(v) => write!(f, "{v}"),
            AttrValue::Bool(b) => write!(f, "{b}"),
            AttrValue::Enum(s) => write!(f, "{s}"),
        }
    }
}

/// A node of exported compiler IR.
///
/// Attribute lists are kept sorted by attribute-name symbol so lookup is a
/// binary search and construction order does not affect equality.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IrNode {
    kind: Symbol,
    attrs: Vec<(Symbol, AttrValue)>,
    children: Vec<IrNode>,
}

impl IrNode {
    /// Creates a leaf node of the given kind.
    pub fn new(kind: impl Into<Symbol>) -> IrNode {
        IrNode {
            kind: kind.into(),
            attrs: Vec::new(),
            children: Vec::new(),
        }
    }

    /// Builder-style construction used by exporters and tests.
    ///
    /// ```
    /// use fegen_core::ir::IrNode;
    /// let n = IrNode::build("insn", |i| {
    ///     i.attr_num("cost", 2.0);
    ///     i.child("reg", |r| { r.attr_enum("mode", "SI"); });
    /// });
    /// assert_eq!(n.children().len(), 1);
    /// ```
    pub fn build<R>(kind: impl Into<Symbol>, f: impl FnOnce(&mut IrNode) -> R) -> IrNode {
        let mut node = IrNode::new(kind);
        let _ = f(&mut node);
        node
    }

    /// The node kind.
    pub fn kind(&self) -> Symbol {
        self.kind
    }

    /// The node's children, in order.
    pub fn children(&self) -> &[IrNode] {
        &self.children
    }

    /// The node's attributes, sorted by name symbol.
    pub fn attrs(&self) -> &[(Symbol, AttrValue)] {
        &self.attrs
    }

    /// Looks up an attribute by name.
    pub fn attr(&self, name: Symbol) -> Option<AttrValue> {
        self.attrs
            .binary_search_by_key(&name, |(n, _)| *n)
            .ok()
            .map(|i| self.attrs[i].1)
    }

    /// Sets (or replaces) an attribute.
    pub fn set_attr(&mut self, name: impl Into<Symbol>, value: AttrValue) -> &mut IrNode {
        let name = name.into();
        match self.attrs.binary_search_by_key(&name, |(n, _)| *n) {
            Ok(i) => self.attrs[i].1 = value,
            Err(i) => self.attrs.insert(i, (name, value)),
        }
        self
    }

    /// Sets a numeric attribute.
    pub fn attr_num(&mut self, name: impl Into<Symbol>, value: f64) -> &mut IrNode {
        self.set_attr(name, AttrValue::Num(value))
    }

    /// Sets a boolean attribute.
    pub fn attr_bool(&mut self, name: impl Into<Symbol>, value: bool) -> &mut IrNode {
        self.set_attr(name, AttrValue::Bool(value))
    }

    /// Sets an enumerated attribute.
    pub fn attr_enum(
        &mut self,
        name: impl Into<Symbol>,
        value: impl Into<Symbol>,
    ) -> &mut IrNode {
        self.set_attr(name, AttrValue::Enum(value.into()))
    }

    /// Appends a child built with `f` and returns `self` for chaining.
    pub fn child<R>(
        &mut self,
        kind: impl Into<Symbol>,
        f: impl FnOnce(&mut IrNode) -> R,
    ) -> &mut IrNode {
        let mut node = IrNode::new(kind);
        let _ = f(&mut node);
        self.children.push(node);
        self
    }

    /// Appends an already-built child.
    pub fn push_child(&mut self, node: IrNode) -> &mut IrNode {
        self.children.push(node);
        self
    }

    /// Number of nodes in this subtree (including `self`).
    pub fn size(&self) -> usize {
        1 + self.children.iter().map(IrNode::size).sum::<usize>()
    }

    /// Maximum depth of this subtree (a leaf has depth 1).
    pub fn depth(&self) -> usize {
        1 + self
            .children
            .iter()
            .map(IrNode::depth)
            .max()
            .unwrap_or(0)
    }

    /// Iterates over this node and all descendants, pre-order.
    pub fn iter(&self) -> Iter<'_> {
        Iter { stack: vec![self] }
    }

    /// Renders the tree as an indented S-expression-like dump (for debugging
    /// and golden tests).
    pub fn dump(&self) -> String {
        let mut out = String::new();
        self.dump_into(&mut out, 0);
        out
    }

    fn dump_into(&self, out: &mut String, indent: usize) {
        use std::fmt::Write;
        let pad = "  ".repeat(indent);
        let _ = write!(out, "{pad}({}", self.kind);
        for (name, value) in &self.attrs {
            let _ = write!(out, " @{name}={value}");
        }
        if self.children.is_empty() {
            out.push_str(")\n");
        } else {
            out.push('\n');
            for c in &self.children {
                c.dump_into(out, indent + 1);
            }
            let _ = writeln!(out, "{pad})");
        }
    }
}

/// Pre-order iterator over an [`IrNode`] tree. Created by [`IrNode::iter`].
#[derive(Debug)]
pub struct Iter<'a> {
    stack: Vec<&'a IrNode>,
}

impl<'a> Iterator for Iter<'a> {
    type Item = &'a IrNode;

    fn next(&mut self) -> Option<&'a IrNode> {
        let node = self.stack.pop()?;
        // Push children in reverse so iteration is left-to-right pre-order.
        self.stack.extend(node.children.iter().rev());
        Some(node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symbols_intern_uniquely() {
        let a = Symbol::intern("alpha-test-symbol");
        let b = Symbol::intern("alpha-test-symbol");
        let c = Symbol::intern("beta-test-symbol");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.as_str(), "alpha-test-symbol");
    }

    #[test]
    fn attrs_sorted_and_replaceable() {
        let mut n = IrNode::new("x");
        n.attr_num("zeta", 1.0);
        n.attr_num("alpha", 2.0);
        n.attr_num("zeta", 3.0);
        assert_eq!(n.attrs().len(), 2);
        assert_eq!(n.attr(Symbol::intern("zeta")), Some(AttrValue::Num(3.0)));
        // Sorted by symbol, whatever the interning order was.
        let mut sorted = n.attrs().to_vec();
        sorted.sort_by_key(|(s, _)| *s);
        assert_eq!(sorted, n.attrs());
    }

    #[test]
    fn attr_value_numeric_views() {
        assert_eq!(AttrValue::Num(2.5).as_num(), Some(2.5));
        assert_eq!(AttrValue::Bool(true).as_num(), Some(1.0));
        assert_eq!(AttrValue::Enum(Symbol::intern("SI")).as_num(), None);
    }

    #[test]
    fn size_and_depth() {
        let n = IrNode::build("a", |a| {
            a.child("b", |b| {
                b.child("c", |_| {});
            });
            a.child("d", |_| {});
        });
        assert_eq!(n.size(), 4);
        assert_eq!(n.depth(), 3);
    }

    #[test]
    fn preorder_iteration_is_left_to_right() {
        let n = IrNode::build("root", |r| {
            r.child("l", |l| {
                l.child("ll", |_| {});
            });
            r.child("r", |_| {});
        });
        let kinds: Vec<String> = n.iter().map(|x| x.kind().as_str()).collect();
        assert_eq!(kinds, vec!["root", "l", "ll", "r"]);
    }

    #[test]
    fn equality_ignores_attr_insertion_order() {
        let mut a = IrNode::new("n");
        a.attr_num("p", 1.0).attr_num("q", 2.0);
        let mut b = IrNode::new("n");
        b.attr_num("q", 2.0).attr_num("p", 1.0);
        assert_eq!(a, b);
    }

    #[test]
    fn dump_contains_kind_and_attrs() {
        let n = IrNode::build("loop", |l| {
            l.attr_num("num-iter", 5.0);
            l.child("insn", |_| {});
        });
        let d = n.dump();
        assert!(d.contains("(loop @num-iter=5"));
        assert!(d.contains("(insn)"));
    }
}
