//! Structured telemetry: hierarchical spans, metrics and a JSONL event sink.
//!
//! The paper's pipeline is a days-long triple loop (GP generations ×
//! candidate features × measured loops); this module is its observability
//! layer. Three design rules govern everything here:
//!
//! 1. **Purely observational.** Telemetry never draws randomness, never
//!    participates in checkpoint or shard serialization, and never changes a
//!    control-flow decision. A run with telemetry enabled produces
//!    byte-identical checkpoints and dataset shards to a run without it
//!    (proved by `tests/telemetry_neutrality.rs`).
//! 2. **Zero new dependencies.** Event emission hand-rolls its JSON so the
//!    hot path allocates one line buffer and takes one short lock; only the
//!    offline [`report`] reader uses `serde_json` (already a dependency).
//! 3. **Resume-safe.** Every event carries a monotonically increasing
//!    sequence number. Opening a sink on an existing `events.jsonl` scans it
//!    and continues numbering after the largest sequence seen, so a
//!    killed-and-resumed run appends a well-formed merged log.
//!
//! The [`Telemetry`] handle is an `Arc` the size of one pointer; cloning is
//! cheap and a disabled handle (the default) makes every operation a no-op
//! without locking or allocation.

use parking_lot::Mutex;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fs::OpenOptions;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Instant, SystemTime, UNIX_EPOCH};

pub mod report;

/// File name of the JSONL event log inside a telemetry directory.
pub const EVENTS_FILE: &str = "events.jsonl";

/// CLI-facing configuration for building a [`Telemetry`] handle.
#[derive(Debug, Clone, Default)]
pub struct TelemetryConfig {
    /// Directory receiving `events.jsonl`; `None` disables the file sink.
    pub dir: Option<PathBuf>,
    /// Mirror every event as a JSON line on stderr (`--log-json`).
    pub log_json: bool,
    /// Emit human-readable progress lines on stderr (`--progress`).
    pub progress: bool,
}

impl TelemetryConfig {
    /// Builds the handle. Returns a disabled handle when nothing is asked
    /// for, so callers can thread the result unconditionally.
    pub fn build(&self) -> io::Result<Telemetry> {
        if self.dir.is_none() && !self.log_json && !self.progress {
            return Ok(Telemetry::disabled());
        }
        let sink = match &self.dir {
            Some(dir) => Some(FileSink::open(dir)?),
            None => None,
        };
        let seq0 = sink.as_ref().map_or(0, |s| s.next_seq);
        Ok(Telemetry {
            inner: Some(Arc::new(Inner {
                seq: AtomicU64::new(seq0),
                sink: sink.map(|s| Mutex::new(SinkKind::File(s.file))),
                mirror_stderr: self.log_json,
                progress: self.progress,
                counters: Mutex::new(BTreeMap::new()),
                gauges: Mutex::new(BTreeMap::new()),
                hists: Mutex::new(BTreeMap::new()),
            })),
        })
    }
}

struct FileSink {
    file: std::fs::File,
    next_seq: u64,
}

impl FileSink {
    /// Opens (append mode) `dir/events.jsonl`, first scanning any existing
    /// content for the largest `"seq"` so numbering continues across resume.
    /// A truncated trailing line (from a hard kill) is simply skipped.
    fn open(dir: &Path) -> io::Result<FileSink> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(EVENTS_FILE);
        let (next_seq, needs_newline) = match std::fs::read(&path) {
            Ok(bytes) => {
                let mut max: Option<u64> = None;
                for line in bytes.split(|&b| b == b'\n') {
                    if let Some(seq) = std::str::from_utf8(line).ok().and_then(scan_seq) {
                        max = Some(max.map_or(seq, |m| m.max(seq)));
                    }
                }
                (
                    max.map_or(0, |m| m + 1),
                    bytes.last().is_some_and(|&b| b != b'\n'),
                )
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => (0, false),
            Err(e) => return Err(e),
        };
        let mut file = OpenOptions::new().create(true).append(true).open(&path)?;
        if needs_newline {
            // A hard kill can leave a truncated tail line; terminate it so
            // the resumed run's first event starts on its own line.
            file.write_all(b"\n")?;
        }
        Ok(FileSink { file, next_seq })
    }
}

/// Extracts the value of a leading `{"seq":N` prefix without a JSON parser.
fn scan_seq(line: &str) -> Option<u64> {
    let rest = line.strip_prefix("{\"seq\":")?;
    let end = rest.find(|c: char| !c.is_ascii_digit())?;
    rest[..end].parse().ok()
}

enum SinkKind {
    File(std::fs::File),
    Memory(Vec<String>),
}

/// Aggregated statistics of one histogram metric.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistStats {
    pub count: u64,
    pub sum: f64,
    pub min: f64,
    pub max: f64,
}

impl HistStats {
    fn observe(&mut self, v: f64) {
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }
}

struct Inner {
    seq: AtomicU64,
    sink: Option<Mutex<SinkKind>>,
    mirror_stderr: bool,
    progress: bool,
    counters: Mutex<BTreeMap<String, u64>>,
    gauges: Mutex<BTreeMap<String, f64>>,
    hists: Mutex<BTreeMap<String, HistStats>>,
}

/// Cloneable, thread-safe telemetry handle. The default handle is disabled
/// and every operation on it is a no-op.
#[derive(Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<Inner>>,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("enabled", &self.inner.is_some())
            .finish()
    }
}

thread_local! {
    static SPAN_STACK: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
}

impl Telemetry {
    /// The no-op handle.
    pub fn disabled() -> Telemetry {
        Telemetry { inner: None }
    }

    /// A handle writing events to an in-memory buffer (for tests).
    pub fn memory() -> Telemetry {
        Telemetry {
            inner: Some(Arc::new(Inner {
                seq: AtomicU64::new(0),
                sink: Some(Mutex::new(SinkKind::Memory(Vec::new()))),
                mirror_stderr: false,
                progress: false,
                counters: Mutex::new(BTreeMap::new()),
                gauges: Mutex::new(BTreeMap::new()),
                hists: Mutex::new(BTreeMap::new()),
            })),
        }
    }

    /// A handle appending JSONL events to `dir/events.jsonl`.
    pub fn to_dir(dir: &Path) -> io::Result<Telemetry> {
        TelemetryConfig {
            dir: Some(dir.to_path_buf()),
            ..TelemetryConfig::default()
        }
        .build()
    }

    /// Whether any sink or mirror is active.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Takes the lines written to an in-memory sink (empty otherwise).
    pub fn drain_memory(&self) -> Vec<String> {
        let Some(inner) = &self.inner else {
            return Vec::new();
        };
        let Some(sink) = &inner.sink else {
            return Vec::new();
        };
        match &mut *sink.lock() {
            SinkKind::Memory(lines) => std::mem::take(lines),
            SinkKind::File(_) => Vec::new(),
        }
    }

    /// Starts building an event of the given kind. Call field methods, then
    /// [`Event::emit`]. Costs nothing when disabled.
    pub fn event(&self, kind: &str) -> Event<'_> {
        match &self.inner {
            Some(inner) => {
                let mut buf = String::with_capacity(96);
                buf.push_str(",\"kind\":\"");
                escape_into(&mut buf, kind);
                buf.push('"');
                Event {
                    inner: Some(inner),
                    buf,
                }
            }
            None => Event {
                inner: None,
                buf: String::new(),
            },
        }
    }

    /// Opens a hierarchical span. The returned guard emits one `span` event
    /// with the full slash-joined path and wall-clock duration when dropped.
    pub fn span(&self, name: &str) -> Span {
        match &self.inner {
            Some(inner) => {
                let path = SPAN_STACK.with(|s| {
                    let mut s = s.borrow_mut();
                    let path = if s.is_empty() {
                        name.to_owned()
                    } else {
                        format!("{}/{name}", s.last().expect("non-empty"))
                    };
                    s.push(path.clone());
                    path
                });
                Span {
                    inner: Some(Arc::clone(inner)),
                    name: name.to_owned(),
                    path,
                    start: Instant::now(),
                }
            }
            None => Span {
                inner: None,
                name: String::new(),
                path: String::new(),
                start: Instant::now(),
            },
        }
    }

    /// Adds `delta` to a named counter.
    pub fn counter_add(&self, name: &str, delta: u64) {
        if let Some(inner) = &self.inner {
            *inner.counters.lock().entry(name.to_owned()).or_insert(0) += delta;
        }
    }

    /// Sets a named gauge to `value`.
    pub fn gauge_set(&self, name: &str, value: f64) {
        if let Some(inner) = &self.inner {
            inner.gauges.lock().insert(name.to_owned(), value);
        }
    }

    /// Records one observation of a named histogram metric.
    pub fn observe(&self, name: &str, value: f64) {
        if let Some(inner) = &self.inner {
            inner
                .hists
                .lock()
                .entry(name.to_owned())
                .or_insert(HistStats {
                    count: 0,
                    sum: 0.0,
                    min: f64::INFINITY,
                    max: f64::NEG_INFINITY,
                })
                .observe(value);
        }
    }

    /// Emits the current value of every registered metric as `metric`
    /// events, tagged with `scope`. Values are cumulative; a reader takes
    /// the last emission per metric name.
    pub fn emit_metrics(&self, scope: &str) {
        let Some(inner) = &self.inner else { return };
        let counters: Vec<(String, u64)> = inner
            .counters
            .lock()
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect();
        for (name, v) in counters {
            self.event("metric")
                .str("scope", scope)
                .str("metric", &name)
                .str("type", "counter")
                .u64("value", v)
                .emit();
        }
        let gauges: Vec<(String, f64)> = inner
            .gauges
            .lock()
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect();
        for (name, v) in gauges {
            self.event("metric")
                .str("scope", scope)
                .str("metric", &name)
                .str("type", "gauge")
                .f64("value", v)
                .emit();
        }
        let hists: Vec<(String, HistStats)> = inner
            .hists
            .lock()
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect();
        for (name, h) in hists {
            self.event("metric")
                .str("scope", scope)
                .str("metric", &name)
                .str("type", "histogram")
                .u64("count", h.count)
                .f64("sum", h.sum)
                .f64("min", h.min)
                .f64("max", h.max)
                .emit();
        }
    }

    /// Snapshot of a counter's current value (0 when absent or disabled).
    pub fn counter_value(&self, name: &str) -> u64 {
        self.inner
            .as_ref()
            .and_then(|i| i.counters.lock().get(name).copied())
            .unwrap_or(0)
    }

    /// Snapshot of a histogram's aggregate stats.
    pub fn hist_stats(&self, name: &str) -> Option<HistStats> {
        self.inner
            .as_ref()
            .and_then(|i| i.hists.lock().get(name).copied())
    }

    /// Writes a human-readable progress line to stderr when `--progress` is
    /// active. Deliberately not a `println!`/`eprintln!` macro call so the
    /// library-crate print lints stay clean.
    pub fn progress(&self, msg: &str) {
        if let Some(inner) = &self.inner {
            if inner.progress {
                let mut err = io::stderr().lock();
                let _ = writeln!(err, "[fegen] {msg}");
            }
        }
    }
}

/// Builder for one JSONL event. Field methods chain; [`Event::emit`] writes
/// the line (sequence number and timestamp are assigned at emit time).
pub struct Event<'a> {
    inner: Option<&'a Arc<Inner>>,
    buf: String,
}

impl Event<'_> {
    /// Adds an unsigned integer field.
    pub fn u64(mut self, key: &str, value: u64) -> Self {
        if self.inner.is_some() {
            self.key(key);
            let _ = write_u64(&mut self.buf, value);
        }
        self
    }

    /// Adds a signed integer field.
    pub fn i64(mut self, key: &str, value: i64) -> Self {
        if self.inner.is_some() {
            self.key(key);
            self.buf.push_str(&value.to_string());
        }
        self
    }

    /// Adds a float field; non-finite values are encoded as `null`.
    pub fn f64(mut self, key: &str, value: f64) -> Self {
        if self.inner.is_some() {
            self.key(key);
            if value.is_finite() {
                self.buf.push_str(&format!("{value}"));
                // `{}` on an integral f64 prints no decimal point, which is
                // still valid JSON (a number token).
            } else {
                self.buf.push_str("null");
            }
        }
        self
    }

    /// Adds a string field (escaped).
    pub fn str(mut self, key: &str, value: &str) -> Self {
        if self.inner.is_some() {
            self.key(key);
            self.buf.push('"');
            escape_into(&mut self.buf, value);
            self.buf.push('"');
        }
        self
    }

    /// Adds a boolean field.
    pub fn bool(mut self, key: &str, value: bool) -> Self {
        if self.inner.is_some() {
            self.key(key);
            self.buf.push_str(if value { "true" } else { "false" });
        }
        self
    }

    fn key(&mut self, key: &str) {
        self.buf.push_str(",\"");
        escape_into(&mut self.buf, key);
        self.buf.push_str("\":");
    }

    /// Assigns the next sequence number and writes the line to the sink
    /// (and, when mirroring, to stderr).
    pub fn emit(self) {
        let Some(inner) = self.inner else { return };
        let seq = inner.seq.fetch_add(1, Ordering::Relaxed);
        let ts = now_ms();
        let line = format!("{{\"seq\":{seq},\"ts_ms\":{ts}{}}}", self.buf);
        if let Some(sink) = &inner.sink {
            match &mut *sink.lock() {
                SinkKind::File(f) => {
                    // One write per line keeps the log well-formed under an
                    // abrupt kill (modulo at most one truncated tail line,
                    // which the resume scan and report reader both skip).
                    let _ = writeln!(f, "{line}");
                    let _ = f.flush();
                }
                SinkKind::Memory(lines) => lines.push(line.clone()),
            }
        }
        if inner.mirror_stderr {
            let mut err = io::stderr().lock();
            let _ = writeln!(err, "{line}");
        }
    }
}

fn write_u64(buf: &mut String, v: u64) -> std::fmt::Result {
    use std::fmt::Write as _;
    write!(buf, "{v}")
}

/// RAII guard of one hierarchical span; see [`Telemetry::span`].
pub struct Span {
    inner: Option<Arc<Inner>>,
    name: String,
    path: String,
    start: Instant,
}

impl Span {
    /// The slash-joined path from the thread's span root.
    pub fn path(&self) -> &str {
        &self.path
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(inner) = self.inner.take() else {
            return;
        };
        SPAN_STACK.with(|s| {
            let mut s = s.borrow_mut();
            // Pop our own entry; nesting is LIFO per thread by construction.
            if let Some(pos) = s.iter().rposition(|p| *p == self.path) {
                s.remove(pos);
            }
        });
        let dur_us = self.start.elapsed().as_micros() as u64;
        Telemetry { inner: Some(inner) }
            .event("span")
            .str("name", &self.name)
            .str("path", &self.path)
            .u64("dur_us", dur_us)
            .emit();
    }
}

/// Milliseconds since the Unix epoch (0 if the clock is before it).
fn now_ms() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

/// Minimal JSON string escaping: quotes, backslashes and control bytes.
fn escape_into(buf: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => buf.push_str("\\\""),
            '\\' => buf.push_str("\\\\"),
            '\n' => buf.push_str("\\n"),
            '\r' => buf.push_str("\\r"),
            '\t' => buf.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write as _;
                let _ = write!(buf, "\\u{:04x}", c as u32);
            }
            c => buf.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_a_no_op() {
        let t = Telemetry::disabled();
        assert!(!t.is_enabled());
        t.event("x").u64("a", 1).emit();
        t.counter_add("c", 3);
        t.observe("h", 1.5);
        let _span = t.span("s");
        assert_eq!(t.counter_value("c"), 0);
        assert!(t.drain_memory().is_empty());
    }

    #[test]
    fn events_are_sequenced_and_parse() {
        use report::{field, field_bool, field_f64, field_str, field_u64};
        let t = Telemetry::memory();
        t.event("alpha").u64("n", 7).str("s", "a\"b\\c\n").emit();
        t.event("beta")
            .f64("x", 1.5)
            .f64("bad", f64::NAN)
            .bool("ok", true)
            .emit();
        let lines = t.drain_memory();
        assert_eq!(lines.len(), 2);
        for (i, line) in lines.iter().enumerate() {
            let v: serde::Value = serde_json::from_str(line).expect("line parses");
            assert_eq!(field_u64(&v, "seq"), Some(i as u64));
        }
        let v: serde::Value = serde_json::from_str(&lines[0]).expect("parses");
        assert_eq!(field_str(&v, "kind"), Some("alpha"));
        assert_eq!(field_str(&v, "s"), Some("a\"b\\c\n"));
        let v: serde::Value = serde_json::from_str(&lines[1]).expect("parses");
        assert_eq!(field_f64(&v, "x"), Some(1.5));
        assert_eq!(field(&v, "bad"), Some(&serde::Value::Unit));
        assert_eq!(field_bool(&v, "ok"), Some(true));
    }

    #[test]
    fn metrics_aggregate_and_emit() {
        let t = Telemetry::memory();
        t.counter_add("evals", 2);
        t.counter_add("evals", 3);
        t.gauge_set("jobs", 4.0);
        t.observe("lat_us", 10.0);
        t.observe("lat_us", 30.0);
        assert_eq!(t.counter_value("evals"), 5);
        let h = t.hist_stats("lat_us").expect("recorded");
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 40.0);
        assert_eq!(h.min, 10.0);
        assert_eq!(h.max, 30.0);
        t.emit_metrics("test");
        let lines = t.drain_memory();
        assert_eq!(lines.len(), 3);
        assert!(lines.iter().all(|l| l.contains("\"metric\"")));
    }

    #[test]
    fn spans_nest_and_time() {
        use report::field_str;
        let t = Telemetry::memory();
        {
            let _outer = t.span("outer");
            let _inner = t.span("inner");
        }
        let lines = t.drain_memory();
        assert_eq!(lines.len(), 2);
        let first: serde::Value = serde_json::from_str(&lines[0]).expect("parses");
        assert_eq!(field_str(&first, "name"), Some("inner"));
        assert_eq!(field_str(&first, "path"), Some("outer/inner"));
        let second: serde::Value = serde_json::from_str(&lines[1]).expect("parses");
        assert_eq!(field_str(&second, "path"), Some("outer"));
    }

    #[test]
    fn file_sink_resumes_sequence_numbers() {
        let dir = std::env::temp_dir().join(format!(
            "fegen-telemetry-test-{}-{}",
            std::process::id(),
            now_ms()
        ));
        let t1 = Telemetry::to_dir(&dir).expect("open");
        t1.event("a").emit();
        t1.event("b").emit();
        drop(t1);
        // Simulate a truncated tail from a hard kill.
        {
            let mut f = OpenOptions::new()
                .append(true)
                .open(dir.join(EVENTS_FILE))
                .expect("open for append");
            let _ = write!(f, "{{\"seq\":2,\"ts_ms\":0,\"kind\":\"tr");
        }
        let t2 = Telemetry::to_dir(&dir).expect("reopen");
        t2.event("c").emit();
        drop(t2);
        let content = std::fs::read_to_string(dir.join(EVENTS_FILE)).expect("read");
        let seqs: Vec<u64> = content.lines().filter_map(scan_seq).collect();
        // 0, 1, the truncated 2, then the resumed event at 3.
        assert_eq!(seqs, vec![0, 1, 2, 3]);
        let last = content.lines().last().expect("non-empty");
        let v: serde::Value = serde_json::from_str(last).expect("parses");
        assert_eq!(report::field_str(&v, "kind"), Some("c"));
        assert_eq!(report::field_u64(&v, "seq"), Some(3));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn scan_seq_rejects_garbage() {
        assert_eq!(scan_seq("{\"seq\":41,\"x\":1}"), Some(41));
        assert_eq!(scan_seq("{\"ts\":41}"), None);
        assert_eq!(scan_seq("not json"), None);
    }
}
