//! Deterministic fault injection for the search and measurement runtimes.
//!
//! The integration tests (and any soak harness) need to *prove* that the
//! engine survives misbehaving evaluators: a fitness function that panics,
//! exhausts its step budget, or returns NaN must cost one candidate, never
//! the search. [`FaultInjector`] wraps any [`FitnessFn`] and injects those
//! failures at seeded, reproducible points:
//!
//! - [`FaultTrigger::OnCall`] fires on the Nth fitness call — exact with
//!   `threads = 1`, approximate (but still bounded) under parallel
//!   evaluation, which is all cooperative cancellation needs.
//! - [`FaultTrigger::OnMatch`] fires on candidates whose expression text
//!   hashes into a residue class — a property of the *candidate*, so the
//!   same individuals fail regardless of thread count or evaluation order.
//!   This is what the determinism tests use.
//! - [`FaultTrigger::OnKeyPrefix`] fires on every event whose key starts
//!   with a given prefix — the natural trigger for non-fitness layers
//!   (measurement workers key events as `measure:<bench>:<site>`, the
//!   dataset store as `shard-write:<bench>`), where a test wants *one
//!   specific* benchmark or site to fail persistently.
//!
//! Beyond the evaluator faults, two kinds model the I/O layer: a
//! [`FaultKind::CorruptWrite`] tells a store to scribble over the bytes it
//! just committed (torn write, bitrot), and a [`FaultKind::Delay`] stalls
//! the stage for a bounded time so deadline/watchdog logic can be driven
//! deterministically. Layers other than the fitness path consult the
//! injector directly through [`FaultInjector::fire`].
//!
//! [`CancelToken`] is the cooperative cancellation primitive the
//! [`crate::search::SearchDriver`] polls between GP generations; a
//! [`FaultKind::Cancel`] plan flips it from inside the evaluator, which is
//! the deterministic stand-in for "the process was killed here".

use crate::gp::FitnessFn;
use crate::lang::FeatureExpr;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Cooperative cancellation flag, shared between the party requesting the
/// stop and the search driver polling for it.
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Requests cancellation. Idempotent.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::SeqCst);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::SeqCst)
    }
}

/// What failure to inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic inside the fitness call (the engine must isolate it).
    Panic,
    /// Behave as if the evaluator ran out of step budget: the candidate is
    /// reported invalid, exactly like `EvalError::BudgetExceeded` surfacing
    /// as a `None` fitness.
    ExhaustBudget,
    /// Return `NaN` fitness (the engine must sanitize it to invalid).
    NanFitness,
    /// Flip the injector's [`CancelToken`] and then evaluate normally, so an
    /// interrupted run's state matches an uninterrupted run's state at the
    /// same point — the property the resume tests rely on.
    Cancel,
    /// Stall the stage for the given number of milliseconds before it
    /// proceeds (or, in layers with a watchdog, before the attempt is
    /// abandoned as hung). Deterministic stand-in for a wedged I/O path or
    /// an overloaded machine.
    Delay(u64),
    /// Corrupt the bytes a store just committed (torn write, bitrot). Only
    /// meaningful to I/O layers; the fitness path treats it as a no-op.
    CorruptWrite,
    /// Kill the island worker attempting the keyed generation step: the
    /// attempt is abandoned before its results commit, exactly as if the
    /// worker crashed mid-step. The island coordinator retries from the
    /// island's last committed state with bounded backoff, and freezes the
    /// island once its restart limit is exhausted. Keys look like
    /// `island:<id>:g<generation>#a<attempt>`, so a plan can fail one
    /// attempt (transient crash) or every attempt (dead island). Benign on
    /// the fitness path.
    IslandKill,
    /// Stall an island worker for the given number of milliseconds *after*
    /// it published its heartbeat — a hung step. Wall-clock only: the
    /// step's results are unchanged, so injected stalls can never alter
    /// the search trajectory (the determinism rule the island tests pin).
    /// Benign on the fitness path.
    IslandStall(u64),
    /// Delay an island worker's heartbeat publication by the given number
    /// of milliseconds — a late check-in. The deadline monitor reports a
    /// missed heartbeat; the step itself proceeds normally. Benign on the
    /// fitness path.
    SlowHeartbeat(u64),
    /// Truncate the next frame the supervisor sends to a process-level
    /// worker mid-header/mid-payload (a torn write). The worker rejects
    /// the torn frame with a typed error and exits; the supervisor sees
    /// the connection close, discards the attempt and respawns from the
    /// last committed round. Keys look like
    /// `worker:<id>:round<r>#a<attempt>`. Benign on the fitness path.
    TornFrame,
    /// Send the next supervisor frame twice with the same sequence number.
    /// The receiver's dedup window drops the replay, so this fault is
    /// *proven* neutral: the run's bytes cannot change. Benign on the
    /// fitness path.
    DuplicateFrame,
    /// Stall the supervisor's connection to a worker for the given number
    /// of milliseconds before the attempt proceeds. Wall-clock only: the
    /// heartbeat monitor may report the worker late, but the step results
    /// are unchanged. Benign on the fitness path.
    StallConn(u64),
    /// Kill the process-level worker owning the keyed attempt before it is
    /// used: the child is terminated (or the loopback channel dropped),
    /// the attempt is discarded, and the supervisor respawns the worker
    /// from the last committed round with bounded backoff — freezing the
    /// worker's islands once the reconnect window is exhausted. Benign on
    /// the fitness path.
    KillWorker,
    /// Delay the supervisor→worker handshake by the given number of
    /// milliseconds (a slow worker start). Wall-clock only. Benign on the
    /// fitness path.
    SlowHandshake(u64),
}

/// When a plan fires.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultTrigger {
    /// Fire on the `n`th fitness call (1-based), once.
    OnCall(u64),
    /// Fire on every candidate whose expression-text hash `h` satisfies
    /// `h % modulus == residue`. Order-independent, thread-count-independent.
    OnMatch {
        /// Hash modulus (0 is treated as "never fires").
        modulus: u64,
        /// Residue class that triggers the fault.
        residue: u64,
    },
    /// Fire on every event whose key starts with the prefix. Keys are the
    /// candidate's expression text on the fitness path, and structured
    /// `stage:detail` strings elsewhere (`measure:<bench>:<site>`,
    /// `shard-write:<bench>`), so a test can target one site or shard.
    OnKeyPrefix(String),
}

/// One injection rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    /// When to fire.
    pub trigger: FaultTrigger,
    /// What to inject.
    pub kind: FaultKind,
}

/// Seeded fault-injection harness wrapping a fitness function.
#[derive(Debug)]
pub struct FaultInjector {
    plans: Vec<FaultPlan>,
    calls: AtomicU64,
    injected: AtomicU64,
    cancel: CancelToken,
}

/// FNV-1a, the stable hash used for [`FaultTrigger::OnMatch`] and the
/// checkpoint identity fingerprints.
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h = (h ^ b as u64).wrapping_mul(0x100000001b3);
    }
    h
}

/// The runtime's stable content hash (FNV-1a), shared by every identity
/// fingerprint and checksum in the workspace: checkpoint identities,
/// dataset-shard checksums, per-site noise seeds. Stable across platforms
/// and releases — files hashed with it remain verifiable forever.
pub fn stable_hash(bytes: &[u8]) -> u64 {
    fnv1a(bytes)
}

impl FaultInjector {
    /// An injector executing `plans` (checked in order; first match wins).
    pub fn new(plans: Vec<FaultPlan>) -> Self {
        FaultInjector {
            plans,
            calls: AtomicU64::new(0),
            injected: AtomicU64::new(0),
            cancel: CancelToken::new(),
        }
    }

    /// The token [`FaultKind::Cancel`] plans flip. Hand a clone to the
    /// search driver so injected cancellations interrupt the run.
    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// Total fitness calls observed so far.
    pub fn calls(&self) -> u64 {
        self.calls.load(Ordering::SeqCst)
    }

    /// Total faults injected so far.
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::SeqCst)
    }

    /// Wraps `inner` so that fitness calls pass through the injector.
    pub fn wrap<'a, F: FitnessFn>(&'a self, inner: &'a F) -> InjectedFitness<'a, F> {
        InjectedFitness {
            injector: self,
            inner,
        }
    }

    /// Reports one event keyed `key` and returns the fault to inject, if
    /// any plan fires (checked in order; first match wins). The fitness
    /// path calls this with the candidate's expression text; measurement
    /// and store layers call it directly with structured keys.
    pub fn fire(&self, key: &str) -> Option<FaultKind> {
        let call = self.calls.fetch_add(1, Ordering::SeqCst) + 1;
        let hash = fnv1a(key.as_bytes());
        for plan in &self.plans {
            if Self::plan_fires(plan, call, hash, key) {
                self.injected.fetch_add(1, Ordering::SeqCst);
                return Some(plan.kind);
            }
        }
        None
    }

    /// Reports one event keyed `key` and returns *every* fault whose plan
    /// fires, in plan (insertion) order. Unlike [`FaultInjector::fire`],
    /// overlapping [`FaultTrigger::OnKeyPrefix`] schedules compose: a
    /// `worker:1:` kill and a `worker:1:round3` stall armed together both
    /// fire on `worker:1:round3#a1`, kill first — deterministically, in
    /// the order the plans were inserted. The transport supervisor uses
    /// this so a single attempt can carry several faults (e.g. a stalled
    /// connection that is then killed).
    pub fn fire_all(&self, key: &str) -> Vec<FaultKind> {
        let call = self.calls.fetch_add(1, Ordering::SeqCst) + 1;
        let hash = fnv1a(key.as_bytes());
        let mut fired = Vec::new();
        for plan in &self.plans {
            if Self::plan_fires(plan, call, hash, key) {
                self.injected.fetch_add(1, Ordering::SeqCst);
                fired.push(plan.kind);
            }
        }
        fired
    }

    fn plan_fires(plan: &FaultPlan, call: u64, hash: u64, key: &str) -> bool {
        match &plan.trigger {
            FaultTrigger::OnCall(n) => call == *n,
            FaultTrigger::OnMatch { modulus, residue } => {
                *modulus > 0 && hash % *modulus == *residue % *modulus
            }
            FaultTrigger::OnKeyPrefix(prefix) => key.starts_with(prefix.as_str()),
        }
    }
}

/// A [`FitnessFn`] with faults injected; produced by [`FaultInjector::wrap`].
pub struct InjectedFitness<'a, F> {
    injector: &'a FaultInjector,
    inner: &'a F,
}

impl<F: FitnessFn> FitnessFn for InjectedFitness<'_, F> {
    fn fitness(&self, expr: &FeatureExpr) -> Option<f64> {
        match self.injector.fire(&expr.to_string()) {
            Some(FaultKind::Panic) => panic!("injected fault: evaluator panic"),
            Some(FaultKind::ExhaustBudget) => None,
            Some(FaultKind::NanFitness) => Some(f64::NAN),
            Some(FaultKind::Cancel) => {
                self.injector.cancel.cancel();
                self.inner.fitness(expr)
            }
            Some(FaultKind::Delay(ms)) => {
                std::thread::sleep(std::time::Duration::from_millis(ms));
                self.inner.fitness(expr)
            }
            // I/O, island-supervision and transport faults have no meaning
            // on the fitness path; evaluate normally.
            Some(
                FaultKind::CorruptWrite
                | FaultKind::IslandKill
                | FaultKind::IslandStall(_)
                | FaultKind::SlowHeartbeat(_)
                | FaultKind::TornFrame
                | FaultKind::DuplicateFrame
                | FaultKind::StallConn(_)
                | FaultKind::KillWorker
                | FaultKind::SlowHandshake(_),
            )
            | None => self.inner.fitness(expr),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lang::parse_feature;

    fn feature(text: &str) -> FeatureExpr {
        parse_feature(text).unwrap()
    }

    #[test]
    fn on_call_fires_exactly_once() {
        let inj = FaultInjector::new(vec![FaultPlan {
            trigger: FaultTrigger::OnCall(2),
            kind: FaultKind::ExhaustBudget,
        }]);
        let inner = |_: &FeatureExpr| Some(1.0);
        let wrapped = inj.wrap(&inner);
        let f = feature("count(//*)");
        assert_eq!(wrapped.fitness(&f), Some(1.0));
        assert_eq!(wrapped.fitness(&f), None);
        assert_eq!(wrapped.fitness(&f), Some(1.0));
        assert_eq!(inj.calls(), 3);
        assert_eq!(inj.injected(), 1);
    }

    #[test]
    fn on_match_depends_only_on_the_candidate() {
        let inj = FaultInjector::new(vec![FaultPlan {
            trigger: FaultTrigger::OnMatch {
                modulus: 1,
                residue: 0,
            },
            kind: FaultKind::NanFitness,
        }]);
        let inner = |_: &FeatureExpr| Some(1.0);
        let wrapped = inj.wrap(&inner);
        // modulus 1 matches everything, in any call order.
        for text in ["count(//*)", "1", "get-attr(@x)"] {
            let got = wrapped.fitness(&feature(text));
            assert!(got.is_some_and(f64::is_nan), "{text}: {got:?}");
        }
    }

    #[test]
    fn cancel_flips_the_token_and_still_evaluates() {
        let inj = FaultInjector::new(vec![FaultPlan {
            trigger: FaultTrigger::OnCall(1),
            kind: FaultKind::Cancel,
        }]);
        let token = inj.cancel_token();
        assert!(!token.is_cancelled());
        let inner = |_: &FeatureExpr| Some(4.0);
        let wrapped = inj.wrap(&inner);
        // The faulting call still returns the inner result: interrupting
        // must not perturb search state relative to an uninterrupted run.
        assert_eq!(wrapped.fitness(&feature("1")), Some(4.0));
        assert!(token.is_cancelled());
    }

    #[test]
    fn key_prefix_targets_specific_events() {
        let inj = FaultInjector::new(vec![FaultPlan {
            trigger: FaultTrigger::OnKeyPrefix("measure:jpeg_encode:".into()),
            kind: FaultKind::CorruptWrite,
        }]);
        assert_eq!(
            inj.fire("measure:jpeg_encode:kernel0#1"),
            Some(FaultKind::CorruptWrite)
        );
        assert_eq!(inj.fire("measure:jpeg_decode:kernel0#1"), None);
        assert_eq!(inj.fire("shard-write:jpeg_encode"), None);
        assert_eq!(inj.injected(), 1);
    }

    #[test]
    fn delay_and_corrupt_are_benign_on_the_fitness_path() {
        let inj = FaultInjector::new(vec![
            FaultPlan {
                trigger: FaultTrigger::OnCall(1),
                kind: FaultKind::Delay(1),
            },
            FaultPlan {
                trigger: FaultTrigger::OnCall(2),
                kind: FaultKind::CorruptWrite,
            },
        ]);
        let inner = |_: &FeatureExpr| Some(2.0);
        let wrapped = inj.wrap(&inner);
        let f = feature("1");
        assert_eq!(wrapped.fitness(&f), Some(2.0));
        assert_eq!(wrapped.fitness(&f), Some(2.0));
        assert_eq!(inj.injected(), 2);
    }

    #[test]
    fn overlapping_prefix_schedules_compose_in_insertion_order() {
        // Three plans whose prefixes all cover the same key: `fire` keeps
        // its historical first-match-wins contract, while `fire_all`
        // returns every match in insertion order so transport schedules
        // can stack a stall and a kill on one attempt.
        let inj = FaultInjector::new(vec![
            FaultPlan {
                trigger: FaultTrigger::OnKeyPrefix("worker:1:".into()),
                kind: FaultKind::StallConn(5),
            },
            FaultPlan {
                trigger: FaultTrigger::OnKeyPrefix("worker:1:round3".into()),
                kind: FaultKind::KillWorker,
            },
            FaultPlan {
                trigger: FaultTrigger::OnKeyPrefix("worker:".into()),
                kind: FaultKind::TornFrame,
            },
        ]);
        assert_eq!(inj.fire("worker:1:round3#a1"), Some(FaultKind::StallConn(5)));
        assert_eq!(
            inj.fire_all("worker:1:round3#a1"),
            vec![
                FaultKind::StallConn(5),
                FaultKind::KillWorker,
                FaultKind::TornFrame
            ],
            "every overlapping plan fires, in insertion order"
        );
        assert_eq!(
            inj.fire_all("worker:1:round2#a1"),
            vec![FaultKind::StallConn(5), FaultKind::TornFrame],
            "non-matching plans are skipped without disturbing the order"
        );
        assert_eq!(inj.fire_all("island:0:g1#a1"), vec![]);
        // 1 (fire) + 3 + 2 injected events so far.
        assert_eq!(inj.injected(), 6);
        assert_eq!(inj.calls(), 4);
    }

    #[test]
    fn injected_panic_unwinds() {
        let inj = FaultInjector::new(vec![FaultPlan {
            trigger: FaultTrigger::OnCall(1),
            kind: FaultKind::Panic,
        }]);
        let inner = |_: &FeatureExpr| Some(0.0);
        let wrapped = inj.wrap(&inner);
        let f = feature("1");
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            wrapped.fitness(&f)
        }));
        assert!(result.is_err());
    }
}
