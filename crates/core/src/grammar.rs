//! Automatic derivation of feature grammars from observed IR.
//!
//! The paper (§VI, *Searching for Features for GCC*): "Once we have exported
//! all loops … we then examine the structure of the data. This allows us the
//! automatic building of grammars that make features that match the
//! structural facts observed in the RTL data. Moreover, this automation means
//! that we have not had to hard code the grammar, making it easy to update in
//! response to changes in the compiler."
//!
//! [`Grammar::derive`] scans a corpus of exported [`IrNode`] trees and
//! records:
//!
//! - the vocabulary of node kinds (for `is-type(t)`),
//! - every attribute name, classified as numeric (with its observed value
//!   range, for `@a OP k` thresholds), boolean, or enumerated (with its
//!   observed values, for `@a == V`),
//! - the maximum child arity (bounding `/[n][p]` child patterns).
//!
//! [`Grammar::gen_feature`] then generates random sentences — candidate
//! features — for the initial GP population, and `gen_num`/`gen_bool`/
//! `gen_seq` regrow subtrees of a given sort for the mutation operator.

use crate::ir::{AttrValue, IrNode, Symbol};
use crate::lang::{ArithOp, BoolExpr, CmpOp, FeatureExpr, SeqExpr};
use rand::Rng;
use std::collections::BTreeSet;
use std::collections::HashMap;

/// Observed statistics for a numeric attribute.
#[derive(Debug, Clone, PartialEq)]
pub struct NumAttr {
    /// Attribute name.
    pub name: Symbol,
    /// Smallest observed value.
    pub min: f64,
    /// Largest observed value.
    pub max: f64,
}

/// Observed values for an enumerated attribute.
#[derive(Debug, Clone, PartialEq)]
pub struct EnumAttr {
    /// Attribute name.
    pub name: Symbol,
    /// Distinct observed values, sorted by name.
    pub values: Vec<Symbol>,
}

/// A feature grammar derived from a corpus of exported IR.
#[derive(Debug, Clone, PartialEq)]
pub struct Grammar {
    kinds: Vec<Symbol>,
    num_attrs: Vec<NumAttr>,
    bool_attrs: Vec<Symbol>,
    enum_attrs: Vec<EnumAttr>,
    max_children: usize,
}

impl Grammar {
    /// Derives a grammar from every node of every tree in `corpus`.
    ///
    /// ```
    /// use fegen_core::{Grammar, ir::IrNode};
    /// let ir = IrNode::build("loop", |l| {
    ///     l.attr_num("num-iter", 8.0);
    ///     l.child("insn", |i| { i.attr_enum("mode", "SI"); });
    /// });
    /// let g = Grammar::derive([&ir]);
    /// assert_eq!(g.kinds().len(), 2);
    /// assert_eq!(g.num_attrs().len(), 1);
    /// assert_eq!(g.enum_attrs().len(), 1);
    /// ```
    pub fn derive<'a>(corpus: impl IntoIterator<Item = &'a IrNode>) -> Grammar {
        let mut kinds = BTreeSet::new();
        let mut num: HashMap<Symbol, (f64, f64)> = HashMap::new();
        let mut bools = BTreeSet::new();
        let mut enums: HashMap<Symbol, BTreeSet<Symbol>> = HashMap::new();
        let mut max_children = 0usize;
        for root in corpus {
            for node in root.iter() {
                kinds.insert(node.kind());
                max_children = max_children.max(node.children().len());
                for (name, value) in node.attrs() {
                    match value {
                        AttrValue::Num(v) => {
                            let entry = num.entry(*name).or_insert((*v, *v));
                            entry.0 = entry.0.min(*v);
                            entry.1 = entry.1.max(*v);
                        }
                        AttrValue::Bool(_) => {
                            bools.insert(*name);
                        }
                        AttrValue::Enum(v) => {
                            enums.entry(*name).or_default().insert(*v);
                        }
                    }
                }
            }
        }
        let sort_key = |s: &Symbol| s.as_str();
        let mut kinds: Vec<Symbol> = kinds.into_iter().collect();
        kinds.sort_by_key(sort_key);
        let mut num_attrs: Vec<NumAttr> = num
            .into_iter()
            .map(|(name, (min, max))| NumAttr { name, min, max })
            .collect();
        num_attrs.sort_by_key(|a| a.name.as_str());
        let mut bool_attrs: Vec<Symbol> = bools.into_iter().collect();
        bool_attrs.sort_by_key(sort_key);
        let mut enum_attrs: Vec<EnumAttr> = enums
            .into_iter()
            .map(|(name, values)| {
                let mut values: Vec<Symbol> = values.into_iter().collect();
                values.sort_by_key(sort_key);
                EnumAttr { name, values }
            })
            .collect();
        enum_attrs.sort_by_key(|a| a.name.as_str());
        Grammar {
            kinds,
            num_attrs,
            bool_attrs,
            enum_attrs,
            max_children,
        }
    }

    /// Observed node kinds, sorted by name.
    pub fn kinds(&self) -> &[Symbol] {
        &self.kinds
    }

    /// Observed numeric attributes with their value ranges.
    pub fn num_attrs(&self) -> &[NumAttr] {
        &self.num_attrs
    }

    /// Observed boolean attributes.
    pub fn bool_attrs(&self) -> &[Symbol] {
        &self.bool_attrs
    }

    /// Observed enumerated attributes with their value sets.
    pub fn enum_attrs(&self) -> &[EnumAttr] {
        &self.enum_attrs
    }

    /// Largest observed child count (bounds `/[n][p]` indices).
    pub fn max_children(&self) -> usize {
        self.max_children
    }

    /// Generates a random feature (a sentence of the grammar) with subtree
    /// depth at most `max_depth`.
    ///
    /// Generation expands the root non-terminal and chooses productions at
    /// random, exactly as described in §IV of the paper; near the depth
    /// limit only terminal productions are chosen, so generation always
    /// terminates.
    pub fn gen_feature<R: Rng + ?Sized>(&self, rng: &mut R, max_depth: usize) -> FeatureExpr {
        self.gen_num(rng, max_depth)
    }

    /// Generates a random numeric expression of depth ≤ `depth`.
    pub fn gen_num<R: Rng + ?Sized>(&self, rng: &mut R, depth: usize) -> FeatureExpr {
        if depth <= 1 {
            return match rng.gen_range(0..10) {
                0..=3 => self.gen_attr_read(rng),
                4..=6 => FeatureExpr::Const(self.gen_const(rng)),
                _ => FeatureExpr::Count(self.gen_leaf_seq(rng)),
            };
        }
        match rng.gen_range(0..100) {
            0..=29 => FeatureExpr::Count(self.gen_seq(rng, depth - 1)),
            30..=41 => FeatureExpr::Sum(
                self.gen_seq(rng, depth - 1),
                Box::new(self.gen_num(rng, depth - 1)),
            ),
            42..=49 => FeatureExpr::Max(
                self.gen_seq(rng, depth - 1),
                Box::new(self.gen_num(rng, depth - 1)),
            ),
            50..=53 => FeatureExpr::Min(
                self.gen_seq(rng, depth - 1),
                Box::new(self.gen_num(rng, depth - 1)),
            ),
            54..=59 => FeatureExpr::Avg(
                self.gen_seq(rng, depth - 1),
                Box::new(self.gen_num(rng, depth - 1)),
            ),
            60..=74 => {
                let op = match rng.gen_range(0..4) {
                    0 => ArithOp::Add,
                    1 => ArithOp::Sub,
                    2 => ArithOp::Mul,
                    _ => ArithOp::Div,
                };
                FeatureExpr::Arith(
                    op,
                    Box::new(self.gen_num(rng, depth - 1)),
                    Box::new(self.gen_num(rng, depth - 1)),
                )
            }
            75..=89 => self.gen_attr_read(rng),
            _ => FeatureExpr::Const(self.gen_const(rng)),
        }
    }

    /// Generates a random sequence expression of depth ≤ `depth`.
    pub fn gen_seq<R: Rng + ?Sized>(&self, rng: &mut R, depth: usize) -> SeqExpr {
        if depth <= 1 {
            return self.gen_leaf_seq(rng);
        }
        match rng.gen_range(0..100) {
            0..=59 => SeqExpr::Filter(
                Box::new(self.gen_seq(rng, depth - 1)),
                Box::new(self.gen_bool(rng, depth - 1)),
            ),
            60..=74 => SeqExpr::Children,
            _ => SeqExpr::Descendants,
        }
    }

    /// Generates a random boolean predicate of depth ≤ `depth`.
    pub fn gen_bool<R: Rng + ?Sized>(&self, rng: &mut R, depth: usize) -> BoolExpr {
        if depth <= 1 {
            return self.gen_leaf_bool(rng);
        }
        match rng.gen_range(0..100) {
            0..=44 => self.gen_leaf_bool(rng),
            45..=54 => BoolExpr::Not(Box::new(self.gen_bool(rng, depth - 1))),
            55..=69 => BoolExpr::And(
                Box::new(self.gen_bool(rng, depth - 1)),
                Box::new(self.gen_bool(rng, depth - 1)),
            ),
            70..=84 => BoolExpr::Or(
                Box::new(self.gen_bool(rng, depth - 1)),
                Box::new(self.gen_bool(rng, depth - 1)),
            ),
            85..=92 if self.max_children > 0 => {
                let idx = rng.gen_range(0..self.max_children.min(8));
                BoolExpr::ChildMatches(idx, Box::new(self.gen_bool(rng, depth - 1)))
            }
            _ => BoolExpr::Cmp(
                self.gen_cmp_op(rng),
                Box::new(self.gen_num(rng, depth - 1)),
                Box::new(self.gen_num(rng, depth - 1)),
            ),
        }
    }

    fn gen_leaf_seq<R: Rng + ?Sized>(&self, rng: &mut R) -> SeqExpr {
        if rng.gen_bool(0.6) {
            SeqExpr::Descendants
        } else {
            SeqExpr::Children
        }
    }

    /// `get-attr(@a)` on a random numeric/boolean attribute; falls back to a
    /// constant when the corpus exposed no such attribute.
    fn gen_attr_read<R: Rng + ?Sized>(&self, rng: &mut R) -> FeatureExpr {
        let n = self.num_attrs.len() + self.bool_attrs.len();
        if n == 0 {
            return FeatureExpr::Const(self.gen_const(rng));
        }
        let i = rng.gen_range(0..n);
        let name = if i < self.num_attrs.len() {
            self.num_attrs[i].name
        } else {
            self.bool_attrs[i - self.num_attrs.len()]
        };
        FeatureExpr::GetAttr(name)
    }

    fn gen_const<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        if !self.num_attrs.is_empty() && rng.gen_bool(0.3) {
            // Sample from an observed attribute range so comparisons against
            // real attribute values have a chance of being discriminative.
            let a = &self.num_attrs[rng.gen_range(0..self.num_attrs.len())];
            let t: f64 = rng.gen();
            let v = a.min + t * (a.max - a.min);
            // Round to keep printed features readable.
            if v.abs() < 1e6 {
                (v * 2.0).round() / 2.0
            } else {
                v
            }
        } else {
            rng.gen_range(0..16) as f64
        }
    }

    fn gen_cmp_op<R: Rng + ?Sized>(&self, rng: &mut R) -> CmpOp {
        match rng.gen_range(0..6) {
            0 => CmpOp::Eq,
            1 => CmpOp::Ne,
            2 => CmpOp::Lt,
            3 => CmpOp::Le,
            4 => CmpOp::Gt,
            _ => CmpOp::Ge,
        }
    }

    fn gen_leaf_bool<R: Rng + ?Sized>(&self, rng: &mut R) -> BoolExpr {
        // Try categories in a random order until one is populated; `is-type`
        // always is (any derived grammar saw at least one node kind).
        for _ in 0..4 {
            match rng.gen_range(0..100) {
                0..=39 => {
                    if !self.kinds.is_empty() {
                        let k = self.kinds[rng.gen_range(0..self.kinds.len())];
                        return BoolExpr::IsType(k);
                    }
                }
                40..=54 => {
                    let total = self.num_attrs.len()
                        + self.bool_attrs.len()
                        + self.enum_attrs.len();
                    if total > 0 {
                        let i = rng.gen_range(0..total);
                        let name = if i < self.num_attrs.len() {
                            self.num_attrs[i].name
                        } else if i < self.num_attrs.len() + self.bool_attrs.len() {
                            self.bool_attrs[i - self.num_attrs.len()]
                        } else {
                            self.enum_attrs[i - self.num_attrs.len() - self.bool_attrs.len()]
                                .name
                        };
                        return BoolExpr::HasAttr(name);
                    }
                }
                55..=74 => {
                    if !self.enum_attrs.is_empty() {
                        let a = &self.enum_attrs[rng.gen_range(0..self.enum_attrs.len())];
                        let v = a.values[rng.gen_range(0..a.values.len())];
                        return BoolExpr::AttrEqEnum(a.name, v);
                    }
                    if !self.bool_attrs.is_empty() {
                        let a = self.bool_attrs[rng.gen_range(0..self.bool_attrs.len())];
                        let v = Symbol::intern(if rng.gen_bool(0.5) { "true" } else { "false" });
                        return BoolExpr::AttrEqEnum(a, v);
                    }
                }
                _ => {
                    if !self.num_attrs.is_empty() {
                        let a = &self.num_attrs[rng.gen_range(0..self.num_attrs.len())];
                        let t: f64 = rng.gen();
                        let v = (a.min + t * (a.max - a.min)).round();
                        return BoolExpr::AttrCmpNum(a.name, self.gen_cmp_op(rng), v);
                    }
                }
            }
        }
        match self.kinds.first() {
            Some(k) => BoolExpr::IsType(*k),
            None => BoolExpr::Cmp(
                CmpOp::Gt,
                Box::new(FeatureExpr::Count(SeqExpr::Children)),
                Box::new(FeatureExpr::Const(0.0)),
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn corpus() -> Vec<IrNode> {
        vec![
            IrNode::build("loop", |l| {
                l.attr_num("num-iter", 40.0);
                l.attr_bool("may-be-hot", true);
                l.child("basic-block", |b| {
                    b.attr_num("loop-depth", 2.0);
                    b.child("insn", |i| {
                        i.attr_enum("mode", "SI");
                    });
                    b.child("insn", |i| {
                        i.attr_enum("mode", "DF");
                    });
                });
            }),
            IrNode::build("loop", |l| {
                l.attr_num("num-iter", 8.0);
                l.child("basic-block", |b| {
                    b.attr_num("loop-depth", 1.0);
                });
            }),
        ]
    }

    #[test]
    fn derive_collects_vocabulary() {
        let c = corpus();
        let g = Grammar::derive(c.iter());
        let kind_names: Vec<&str> = g.kinds().iter().map(|k| k.as_str()).collect();
        assert_eq!(kind_names, vec!["basic-block", "insn", "loop"]);
        assert_eq!(g.bool_attrs().len(), 1);
        assert_eq!(g.enum_attrs().len(), 1);
        assert_eq!(g.enum_attrs()[0].values.len(), 2);
        assert_eq!(g.max_children(), 2);
    }

    #[test]
    fn derive_tracks_numeric_ranges() {
        let c = corpus();
        let g = Grammar::derive(c.iter());
        let ni = g
            .num_attrs()
            .iter()
            .find(|a| a.name.as_str() == "num-iter")
            .unwrap();
        assert_eq!((ni.min, ni.max), (8.0, 40.0));
    }

    #[test]
    fn generated_features_respect_depth_and_evaluate() {
        let c = corpus();
        let g = Grammar::derive(c.iter());
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..200 {
            let f = g.gen_feature(&mut rng, 6);
            assert!(f.depth() <= 13, "runaway depth {} for {f}", f.depth());
            // Every generated feature must evaluate (budget errors aside) on
            // corpus members.
            for ir in &c {
                match f.eval_default(ir) {
                    Ok(v) => assert!(v.is_finite()),
                    Err(e) => panic!("generated feature failed to evaluate: {e} ({f})"),
                }
            }
        }
    }

    #[test]
    fn generated_features_roundtrip_through_text() {
        let c = corpus();
        let g = Grammar::derive(c.iter());
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            let f = g.gen_feature(&mut rng, 5);
            let printed = f.to_string();
            let reparsed = crate::lang::parse_feature(&printed)
                .unwrap_or_else(|e| panic!("reparse `{printed}`: {e}"));
            assert_eq!(f, reparsed, "printed `{printed}`");
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let c = corpus();
        let g = Grammar::derive(c.iter());
        let f1 = g.gen_feature(&mut StdRng::seed_from_u64(99), 6);
        let f2 = g.gen_feature(&mut StdRng::seed_from_u64(99), 6);
        assert_eq!(f1, f2);
    }

    #[test]
    fn empty_attribute_corpus_still_generates() {
        let ir = IrNode::build("bare", |b| {
            b.child("leaf", |_| {});
        });
        let g = Grammar::derive([&ir]);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..50 {
            let f = g.gen_feature(&mut rng, 5);
            assert!(f.eval_default(&ir).is_ok());
        }
    }
}
