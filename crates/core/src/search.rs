//! The outer feature-search loop (the paper's Figures 5 and 6).
//!
//! "The search component finds the best such feature and, once it can no
//! longer improve upon it, adds that feature to the base feature set and
//! repeats. In this way, we build up a gradually improving set of features."
//! (§III)
//!
//! Fitness of a candidate feature (Figure 6): compute its value on every
//! training loop, append it to the base feature columns, train a decision
//! tree on an internal train split, predict unroll factors on an internal
//! validation split, and report the **speedup** those predictions attain.
//! The stopping rules follow §VI: a per-feature GP run stops after 15
//! stagnant generations or 200 generations; the outer loop stops after
//! 2,500 total generations or 5 consecutive failed additions.

use crate::checkpoint::{self, SearchCheckpoint, StepRecord, CHECKPOINT_VERSION};
use crate::error::{CheckpointError, SearchError};
use crate::faults::{CancelToken, FaultInjector};
use crate::gp::engine::{GpSnapshot, GpState, GpStatus};
use crate::gp::island::{
    IslandCoordinator, IslandTopology, IslandsSnapshot, IslandsState, RoundStatus,
};
use crate::gp::worker_proc::{ProcSupervisor, WorkerLauncher, WorkerSpec};
use crate::gp::{FitnessFn, GpConfig, GpEngine, GpRun};
use crate::grammar::Grammar;
use crate::ir::IrNode;
use crate::lang::{EvalEngine, EvalPool, FeatureExpr};
use crate::telemetry::Telemetry;
use fegen_ml::data::Dataset;
use fegen_ml::metrics;
use fegen_ml::tree::{DecisionTree, Presorted, TreeConfig};
use fegen_ml::KFold;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};

/// One training loop: its exported IR and the measured cycle table.
///
/// `cycles[k]` is the cycle count of the function containing the loop when
/// the loop is compiled with heuristic value `k` (unroll factor; `k = 0` is
/// no unrolling).
/// Serializable so it can travel in the [`crate::gp::worker_proc::WorkerSpec`]
/// handed to process-level island workers (the vendored JSON layer
/// round-trips `f64` exactly, so a worker rebuilds bit-identical cycles).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainingExample {
    /// Exported IR of the loop.
    pub ir: IrNode,
    /// Measured cycles per heuristic value.
    pub cycles: Vec<f64>,
}

/// Relative tolerance used when deriving training labels from cycle
/// tables: factors within this fraction of the minimum are ties, broken
/// towards the smallest factor (the measurement-noise floor; see
/// [`metrics::oracle_choice_tolerant`]).
pub const LABEL_TOLERANCE: f64 = 0.01;

impl TrainingExample {
    /// The training label: the smallest heuristic value within
    /// [`LABEL_TOLERANCE`] of the cycle minimum.
    pub fn best_value(&self) -> usize {
        metrics::oracle_choice_tolerant(&self.cycles, LABEL_TOLERANCE)
    }

    /// Speedup of choosing heuristic value `k` over the baseline.
    pub fn speedup(&self, k: usize) -> f64 {
        metrics::speedup(&self.cycles, k)
    }
}

/// Configuration of a full feature search.
///
/// Serializable because process-level island workers receive it in their
/// [`crate::gp::worker_proc::WorkerSpec`]; the checkpoint identity
/// fingerprint still hashes the `Debug` form
/// ([`checkpoint::config_fingerprint`]), so the derive changes no
/// existing checkpoint bytes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SearchConfig {
    /// Per-feature GP settings.
    pub gp: GpConfig,
    /// Total generation budget across all per-feature searches (paper:
    /// 2,500).
    pub max_total_generations: usize,
    /// Stop after this many consecutive additions that failed to improve
    /// (paper: 5).
    pub max_failed_additions: usize,
    /// Hard cap on the number of features collected (the paper reports 30
    /// found in one fold).
    pub max_features: usize,
    /// Step budget for evaluating one feature over one loop — the
    /// deterministic analogue of the paper's two-second timeout.
    pub eval_budget_per_example: u64,
    /// The internal split granularity: 1 part in `internal_k` is held out
    /// for validating candidate features (paper: train on 8 of 9 parts).
    pub internal_k: usize,
    /// Number of rotated internal holdouts averaged per fitness evaluation
    /// (1 = the paper's single 8:1 split; more folds lower the variance of
    /// the fitness signal on noisy data).
    pub internal_folds: usize,
    /// Decision-tree settings for the fitness model.
    pub tree: TreeConfig,
    /// Master RNG seed.
    pub seed: u64,
    /// Island topology of each per-feature GP run. Lives in the config —
    /// and therefore in the checkpoint identity fingerprint — because it
    /// defines the search *trajectory*; the worker thread count is a
    /// [`SearchDriver`] knob precisely because it must not.
    pub topology: IslandTopology,
}

impl SearchConfig {
    /// The paper's §VI settings.
    pub fn paper() -> Self {
        SearchConfig {
            gp: GpConfig::paper(),
            max_total_generations: 2_500,
            max_failed_additions: 5,
            max_features: 30,
            eval_budget_per_example: 200_000,
            internal_k: 9,
            internal_folds: 3,
            tree: TreeConfig::default(),
            seed: 0xfe9e,
            topology: IslandTopology::single(),
        }
    }

    /// Reduced preset for laptop-scale runs: same algorithm, smaller
    /// budgets.
    pub fn quick() -> Self {
        SearchConfig {
            gp: GpConfig::quick(),
            max_total_generations: 400,
            max_failed_additions: 3,
            max_features: 10,
            eval_budget_per_example: 60_000,
            internal_k: 9,
            internal_folds: 3,
            tree: TreeConfig::default(),
            seed: 0xfe9e,
            topology: IslandTopology::single(),
        }
    }
}

impl Default for SearchConfig {
    fn default() -> Self {
        SearchConfig::quick()
    }
}

/// Record of one accepted feature.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchStep {
    /// The feature added at this step.
    pub feature: FeatureExpr,
    /// Mean internal-validation speedup of the model with all features up
    /// to and including this one.
    pub speedup: f64,
    /// GP generations spent finding it.
    pub generations: usize,
}

/// Result of a feature search.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchOutcome {
    /// The final feature list, in the order found.
    pub features: Vec<FeatureExpr>,
    /// Per-feature history (speedup after each addition).
    pub steps: Vec<SearchStep>,
    /// Speedup of the featureless baseline model (majority-class
    /// prediction) on the internal validation split.
    pub baseline_speedup: f64,
    /// Mean oracle speedup on the same internal validation splits — the
    /// maximum a perfect model could attain there (denominator of the
    /// Figure 16 "% of max" column).
    pub oracle_speedup: f64,
    /// Total GP generations used.
    pub total_generations: usize,
}

/// The feature search system: grammar + configuration.
#[derive(Debug, Clone)]
pub struct FeatureSearch {
    grammar: Grammar,
    config: SearchConfig,
    engine: EvalEngine,
}

impl FeatureSearch {
    /// Creates a search over `grammar`, evaluating features with the default
    /// engine (the compiled VM).
    pub fn new(grammar: Grammar, config: SearchConfig) -> Self {
        FeatureSearch {
            grammar,
            config,
            engine: EvalEngine::default(),
        }
    }

    /// Selects the feature-evaluation engine. The engine is an execution
    /// strategy, not a search parameter: both engines produce identical
    /// values, errors and budget decisions, so the search trajectory — and
    /// the checkpoint identity — is the same either way (which is why this
    /// lives outside [`SearchConfig`] and its fingerprint).
    pub fn with_engine(mut self, engine: EvalEngine) -> Self {
        self.engine = engine;
        self
    }

    /// The feature-evaluation engine in use.
    pub fn engine(&self) -> EvalEngine {
        self.engine
    }

    /// Builds an evaluation pool over the examples' IR using this search's
    /// engine (flattens each loop once; compiles each feature once).
    pub fn pool<'e>(&self, examples: &'e [TrainingExample]) -> EvalPool<'e> {
        EvalPool::new(examples.iter().map(|e| &e.ir), self.engine)
    }

    /// Derives the grammar from the examples and creates the search.
    pub fn from_examples(examples: &[TrainingExample], config: SearchConfig) -> Self {
        let grammar = Grammar::derive(examples.iter().map(|e| &e.ir));
        FeatureSearch::new(grammar, config)
    }

    /// The grammar in use.
    pub fn grammar(&self) -> &Grammar {
        &self.grammar
    }

    /// The configuration in use.
    pub fn config(&self) -> &SearchConfig {
        &self.config
    }

    /// Runs the greedy feature-list construction over `examples`.
    ///
    /// Convenience wrapper over [`FeatureSearch::try_run`] for callers that
    /// cannot recover anyway.
    ///
    /// # Panics
    ///
    /// Panics if the search fails (e.g. `examples` is empty or an example
    /// has an empty cycle table). Use [`FeatureSearch::try_run`] or
    /// [`FeatureSearch::driver`] for typed errors.
    pub fn run(&self, examples: &[TrainingExample]) -> SearchOutcome {
        match self.try_run(examples) {
            Ok(outcome) => outcome,
            Err(e) => panic!("feature search failed: {e}"),
        }
    }

    /// Runs the greedy feature-list construction, reporting failures as
    /// typed [`SearchError`]s.
    pub fn try_run(&self, examples: &[TrainingExample]) -> Result<SearchOutcome, SearchError> {
        self.driver().run(examples)
    }

    /// A configurable runner for this search: checkpointing, cooperative
    /// cancellation and fault injection are opt-in per run.
    pub fn driver(&self) -> SearchDriver<'_> {
        SearchDriver {
            search: self,
            checkpoint_dir: None,
            checkpoint_every: 5,
            cancel: None,
            injector: None,
            telemetry: Telemetry::disabled(),
            island_workers: 1,
            heartbeat_deadline_ms: 2_000,
            proc_workers: 1,
            proc_launcher: None,
        }
    }

    /// Evaluates `expr` on every example, producing one column of the
    /// feature matrix. `None` when the feature times out or produces a
    /// non-finite value on any example (the paper's discard rule).
    ///
    /// This always uses the tree-walking interpreter — it is the reference
    /// oracle the compiled engine is validated against. The search itself
    /// evaluates through [`FeatureSearch::pool`].
    pub fn feature_column(
        &self,
        expr: &FeatureExpr,
        examples: &[TrainingExample],
    ) -> Option<Vec<f64>> {
        let mut column = Vec::with_capacity(examples.len());
        for e in examples {
            match expr.eval_with_budget(&e.ir, self.config.eval_budget_per_example) {
                Ok(v) => column.push(v),
                Err(_) => return None,
            }
        }
        Some(column)
    }

    /// Builds the full feature matrix for a fixed feature list (used when
    /// deploying the searched features on unseen loops).
    ///
    /// Features that fail on an example contribute `0.0` there — at
    /// deployment the compiler must produce *some* vector.
    pub fn feature_matrix(
        &self,
        features: &[FeatureExpr],
        examples: &[TrainingExample],
    ) -> Vec<Vec<f64>> {
        let pool = self.pool(examples);
        (0..examples.len())
            .map(|i| {
                features
                    .iter()
                    .map(|f| {
                        pool.eval(f, i, self.config.eval_budget_per_example)
                            .unwrap_or(0.0)
                    })
                    .collect()
            })
            .collect()
    }

    /// Backward elimination over an already-found feature list: repeatedly
    /// drops the feature whose removal costs the least, as long as the
    /// internal-validation speedup does not degrade. The paper's greedy
    /// forward construction can keep features that later additions make
    /// redundant ("a feature … useful on its own but when added to an
    /// existing set does not show any additional improvement", §II-A);
    /// this removes them before deployment.
    ///
    /// Returns the (possibly shorter) feature list, in original order.
    pub fn prune_features(
        &self,
        features: &[FeatureExpr],
        examples: &[TrainingExample],
    ) -> Vec<FeatureExpr> {
        if features.len() <= 1 || examples.is_empty() {
            return features.to_vec();
        }
        let cfg = &self.config;
        let Some(n_classes) = examples.iter().map(|e| e.cycles.len()).max() else {
            return features.to_vec();
        };
        let labels: Vec<usize> = examples.iter().map(|e| e.best_value()).collect();
        let tables: Vec<Vec<f64>> = examples.iter().map(|e| e.cycles.clone()).collect();
        let splits = internal_splits(cfg, examples.len());
        let score = |columns: &[Vec<f64>]| -> f64 {
            let Some((data, presorted)) = fitness_model(columns, None, &labels, n_classes)
            else {
                return 0.0;
            };
            splits
                .iter()
                .map(|(train_idx, valid_idx)| {
                    self.model_speedup(&data, &presorted, &tables, train_idx, valid_idx)
                })
                .sum::<f64>()
                / splits.len() as f64
        };

        let mut kept: Vec<usize> = (0..features.len()).collect();
        let pool = self.pool(examples);
        let columns: Vec<Vec<f64>> = features
            .iter()
            .map(|f| {
                pool.column(f, cfg.eval_budget_per_example)
                    .unwrap_or_else(|| vec![0.0; examples.len()])
            })
            .collect();
        let mut current = score(&columns);
        loop {
            let mut best: Option<(usize, f64)> = None;
            for (slot, _) in kept.iter().enumerate() {
                if kept.len() == 1 {
                    break;
                }
                let trial: Vec<Vec<f64>> = kept
                    .iter()
                    .enumerate()
                    .filter(|(k, _)| *k != slot)
                    .map(|(_, &i)| columns[i].clone())
                    .collect();
                let s = score(&trial);
                if s + 1e-12 >= current && best.is_none_or(|(_, bs)| s > bs) {
                    best = Some((slot, s));
                }
            }
            match best {
                Some((slot, s)) => {
                    kept.remove(slot);
                    current = s;
                }
                None => break,
            }
        }
        kept.into_iter().map(|i| features[i].clone()).collect()
    }

    /// Trains the fitness model on `train_idx` — reusing the candidate's
    /// presorted feature orderings instead of copying and re-sorting the
    /// split — and reports the mean speedup of its predictions on
    /// `valid_idx`.
    fn model_speedup(
        &self,
        data: &Dataset,
        presorted: &Presorted,
        tables: &[Vec<f64>],
        train_idx: &[usize],
        valid_idx: &[usize],
    ) -> f64 {
        model_speedup(data, presorted, tables, train_idx, valid_idx, &self.config.tree)
    }

    /// Builds the candidate-fitness harness over `examples`: pool, labels,
    /// cycle tables, internal splits — everything a fitness evaluation
    /// touches, with no base features yet. Both the in-process driver and
    /// process-level island workers construct their fitness through this
    /// one path, which is what makes the two modes byte-identical.
    pub(crate) fn harness<'e>(
        &self,
        examples: &'e [TrainingExample],
    ) -> Result<FitnessHarness<'e>, SearchError> {
        let cfg = &self.config;
        if examples.is_empty() {
            return Err(SearchError::EmptyTrainingSet);
        }
        let Some(n_classes) = examples.iter().map(|e| e.cycles.len()).max() else {
            return Err(SearchError::EmptyTrainingSet);
        };
        if n_classes == 0 {
            return Err(SearchError::InvalidConfig {
                detail: "training examples must have non-empty cycle tables".into(),
            });
        }
        Ok(FitnessHarness {
            pool: self.pool(examples),
            labels: examples.iter().map(|e| e.best_value()).collect(),
            tables: examples.iter().map(|e| e.cycles.clone()).collect(),
            splits: internal_splits(cfg, examples.len()),
            n_classes,
            tree: cfg.tree.clone(),
            budget: cfg.eval_budget_per_example,
            base_columns: Vec::new(),
        })
    }
}

/// Shared model-quality measure: train the decision tree on `train_idx`
/// and report the mean speedup of its predictions on `valid_idx`.
pub(crate) fn model_speedup(
    data: &Dataset,
    presorted: &Presorted,
    tables: &[Vec<f64>],
    train_idx: &[usize],
    valid_idx: &[usize],
    tree: &TreeConfig,
) -> f64 {
    let tree = DecisionTree::train_on(data, presorted, train_idx, tree);
    mean_speedup_at(tables, valid_idx, |i| tree.predict(data.row(i)))
}

/// Everything one candidate-fitness evaluation needs, prepared once per
/// search: the evaluation pool, derived labels and cycle tables, the fixed
/// internal splits and the accumulated base-feature columns. Fitness of a
/// candidate is a pure deterministic function of this state, so two
/// harnesses built from the same `(examples, config, base features)` —
/// whether in the driver's process or a worker process on the other end of
/// a socket — produce the identical `f64` sequence.
pub(crate) struct FitnessHarness<'e> {
    pool: EvalPool<'e>,
    labels: Vec<usize>,
    tables: Vec<Vec<f64>>,
    splits: Vec<(Vec<usize>, Vec<usize>)>,
    n_classes: usize,
    tree: TreeConfig,
    budget: u64,
    base_columns: Vec<Vec<f64>>,
}

impl<'e> FitnessHarness<'e> {
    /// Candidate fitness: evaluate the column, append it to the base
    /// columns, train/validate on every internal split, average.
    ///
    /// The cancellable column may return a spurious `None` once the
    /// driver's token flips; the GP engine's commit gate then discards the
    /// whole in-flight generation, so the value can never be memoised.
    /// Without a token installed (worker processes) the path is identical
    /// and never cancels.
    pub(crate) fn fitness(&self, expr: &FeatureExpr) -> Option<f64> {
        let column = self.pool.column_cancellable(expr, self.budget)?;
        let Some((data, presorted)) =
            fitness_model(&self.base_columns, Some(&column), &self.labels, self.n_classes)
        else {
            return Some(0.0);
        };
        let total: f64 = self
            .splits
            .iter()
            .map(|(train_idx, valid_idx)| {
                model_speedup(&data, &presorted, &self.tables, train_idx, valid_idx, &self.tree)
            })
            .sum();
        Some(total / self.splits.len() as f64)
    }

    /// Uncancellable column of `expr` over all examples (base-feature
    /// derivation; must not depend on cancellation timing).
    pub(crate) fn column(&self, expr: &FeatureExpr) -> Option<Vec<f64>> {
        self.pool.column(expr, self.budget)
    }

    /// Appends an accepted feature's column to the base set.
    pub(crate) fn push_base_column(&mut self, column: Vec<f64>) {
        self.base_columns.push(column);
    }

    /// Routes the driver's cancel token into the pool (see
    /// [`EvalPool::set_cancel`]).
    pub(crate) fn set_cancel(&mut self, cancel: CancelToken) {
        self.pool.set_cancel(cancel);
    }

    /// The evaluation pool (telemetry, column reuse).
    pub(crate) fn pool(&self) -> &EvalPool<'e> {
        &self.pool
    }

    /// Per-example labels (best heuristic values).
    pub(crate) fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Per-example cycle tables.
    pub(crate) fn tables(&self) -> &[Vec<f64>] {
        &self.tables
    }

    /// The fixed internal train/validation splits.
    pub(crate) fn splits(&self) -> &[(Vec<usize>, Vec<usize>)] {
        &self.splits
    }

    /// Number of heuristic classes.
    pub(crate) fn n_classes(&self) -> usize {
        self.n_classes
    }
}

/// Assembles one candidate's fitness dataset (the base feature columns plus
/// the optional candidate column) and presorts its feature columns, once,
/// for reuse across every internal split that judges the candidate.
///
/// `None` when the dataset is malformed (the candidate then scores 0.0
/// instead of crashing the search); columns are rectangular by construction
/// so this does not happen in practice.
fn fitness_model(
    base_columns: &[Vec<f64>],
    extra: Option<&Vec<f64>>,
    labels: &[usize],
    n_classes: usize,
) -> Option<(Dataset, Presorted)> {
    let n = labels.len();
    let width = base_columns.len() + usize::from(extra.is_some());
    let mut rows: Vec<Vec<f64>> = vec![Vec::with_capacity(width); n];
    for col in base_columns.iter().chain(extra) {
        for (row, &v) in rows.iter_mut().zip(col.iter()) {
            row.push(v);
        }
    }
    let data = Dataset::new(rows, labels.to_vec(), n_classes).ok()?;
    let presorted = Presorted::new(&data);
    Some((data, presorted))
}

/// Fixed internal splits for the whole search, so every candidate is judged
/// on the same validation loops. With `internal_folds == 1` this is the
/// paper's single 8-of-9 train / 1-of-9 validate split; larger values rotate
/// the holdout and average, reducing fitness variance.
fn internal_splits(cfg: &SearchConfig, n: usize) -> Vec<(Vec<usize>, Vec<usize>)> {
    if cfg.internal_folds <= 1 {
        vec![KFold::new(cfg.internal_k, cfg.seed).single_split(n, 1)]
    } else {
        KFold::new(cfg.internal_folds.max(2), cfg.seed)
            .splits(n)
            .into_iter()
            .take(cfg.internal_folds)
            .collect()
    }
}

/// Outer-loop progress at a checkpointable boundary, already in serialized
/// form. Captured at the start of each per-feature GP run (with the RNG
/// state *after* the run's seed draw) so mid-GP checkpoints can describe
/// the enclosing search.
struct OuterProgress {
    fingerprint: u64,
    digest: u64,
    rng: [u64; 4],
    features: Vec<String>,
    steps: Vec<StepRecord>,
    best_speedup: f64,
    failed: usize,
    total_generations: usize,
}

/// Configurable runner for a [`FeatureSearch`]: adds checkpoint/resume,
/// cooperative cancellation and fault injection to the plain greedy loop.
///
/// ```no_run
/// # use fegen_core::search::{FeatureSearch, SearchConfig, TrainingExample};
/// # let examples: Vec<TrainingExample> = vec![];
/// # let search = FeatureSearch::from_examples(&examples, SearchConfig::quick());
/// let outcome = search
///     .driver()
///     .checkpoint("ckpt-dir", 5)
///     .run(&examples);
/// // ... later, after an interruption:
/// let resumed = search.driver().resume("ckpt-dir", &examples);
/// ```
pub struct SearchDriver<'a> {
    search: &'a FeatureSearch,
    checkpoint_dir: Option<PathBuf>,
    checkpoint_every: usize,
    cancel: Option<CancelToken>,
    injector: Option<&'a FaultInjector>,
    telemetry: Telemetry,
    island_workers: usize,
    heartbeat_deadline_ms: u64,
    proc_workers: usize,
    proc_launcher: Option<WorkerLauncher>,
}

impl<'a> SearchDriver<'a> {
    /// Enables checkpointing into `dir`, writing a snapshot every `every`
    /// GP generations (and at every outer-loop boundary). The checkpoint
    /// file is removed when the search completes.
    pub fn checkpoint(mut self, dir: impl Into<PathBuf>, every: usize) -> Self {
        self.checkpoint_dir = Some(dir.into());
        self.checkpoint_every = every.max(1);
        self
    }

    /// Installs a cooperative cancellation token, polled between GP
    /// generations. When it flips, the run stops with
    /// [`SearchError::Interrupted`] — after writing a checkpoint, if
    /// checkpointing is enabled.
    pub fn cancel_token(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Routes every fitness evaluation through `injector`. If no cancel
    /// token was installed yet, the injector's own token is adopted, so
    /// [`crate::faults::FaultKind::Cancel`] plans interrupt the run.
    pub fn fault_injector(mut self, injector: &'a FaultInjector) -> Self {
        if self.cancel.is_none() {
            self.cancel = Some(injector.cancel_token());
        }
        self.injector = Some(injector);
        self
    }

    /// Attaches a telemetry handle. Telemetry is purely observational: it
    /// never draws randomness and never enters checkpoint serialization, so
    /// a run with telemetry is byte-identical to one without.
    pub fn telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Worker threads the island coordinator steps islands with. An
    /// execution knob, not a search parameter: any value produces
    /// byte-identical results and checkpoints for a given
    /// [`SearchConfig::topology`] (which is why it lives on the driver,
    /// outside the config fingerprint). Ignored for single-island
    /// topologies.
    pub fn workers(mut self, workers: usize) -> Self {
        self.island_workers = workers.max(1);
        self
    }

    /// Heartbeat deadline for island workers, in milliseconds (0 disables
    /// the monitor). Observational only: a missed deadline is reported
    /// through telemetry, never acted on.
    pub fn heartbeat_deadline_ms(mut self, ms: u64) -> Self {
        self.heartbeat_deadline_ms = ms;
        self
    }

    /// Steps islands in separate worker processes (or loopback workers)
    /// instead of coordinator threads. Like [`SearchDriver::workers`], this
    /// is an execution knob, not a search parameter: for a given
    /// [`SearchConfig::topology`] any worker count, any launcher — and the
    /// in-process thread coordinator itself — produce byte-identical
    /// results and checkpoints. Ignored for single-island topologies (one
    /// island has no round structure to distribute; it runs in-process).
    pub fn process_workers(mut self, workers: usize, launcher: WorkerLauncher) -> Self {
        self.proc_workers = workers.max(1);
        self.proc_launcher = Some(launcher);
        self
    }

    /// Runs the search from scratch.
    pub fn run(&self, examples: &[TrainingExample]) -> Result<SearchOutcome, SearchError> {
        self.run_inner(examples, None)
    }

    /// Resumes a search from a checkpoint written by an earlier run with
    /// the same configuration and training examples. `path` may be the
    /// checkpoint file or the directory containing it.
    ///
    /// A resumed run continues the exact deterministic trajectory of the
    /// interrupted one: checkpoints are only written at generation
    /// boundaries, and cancellation never perturbs search state, so the
    /// final [`SearchOutcome`] equals an uninterrupted run's.
    pub fn resume(
        &self,
        path: impl AsRef<Path>,
        examples: &[TrainingExample],
    ) -> Result<SearchOutcome, SearchError> {
        let resolved = checkpoint::resolve_path(path.as_ref());
        let ckpt = SearchCheckpoint::load(&resolved)?;
        self.run_inner(examples, Some((resolved, ckpt)))
    }

    fn run_inner(
        &self,
        examples: &[TrainingExample],
        resume: Option<(PathBuf, SearchCheckpoint)>,
    ) -> Result<SearchOutcome, SearchError> {
        let search = self.search;
        let cfg = &search.config;
        if examples.is_empty() {
            return Err(SearchError::EmptyTrainingSet);
        }
        if cfg.gp.population == 0 {
            return Err(SearchError::InvalidConfig {
                detail: "GP population must be positive".into(),
            });
        }
        if cfg.topology.islands == 0 {
            return Err(SearchError::InvalidConfig {
                detail: "island topology must hold at least one island".into(),
            });
        }
        if cfg.topology.migration_every == 0 {
            return Err(SearchError::InvalidConfig {
                detail: "island migration cadence must be at least one round".into(),
            });
        }
        // One harness for the whole run: every loop is arena-flattened once
        // and every candidate feature is compiled once, then executed over
        // all loops; repeated (feature, loop) evaluations replay from the
        // cache. The driver's cancel token reaches into the pool so a
        // shutdown interrupts in-flight fitness columns instead of waiting
        // them out (only the harness's `fitness` consults it; every other
        // column stays timing-independent).
        let mut harness = search.harness(examples)?;
        if let Some(token) = &self.cancel {
            harness.set_cancel(token.clone());
        }

        // Oracle ceiling on the validation loops.
        let oracle_speedup = harness
            .splits()
            .iter()
            .map(|(_, valid_idx)| {
                mean_speedup_at(harness.tables(), valid_idx, |i| {
                    metrics::oracle_choice(&harness.tables()[i])
                })
            })
            .sum::<f64>()
            / harness.splits().len() as f64;

        // Featureless baseline: majority best-factor of each training split.
        let baseline_speedup = harness
            .splits()
            .iter()
            .map(|(train_idx, valid_idx)| {
                let majority =
                    majority_label(train_idx, harness.labels(), harness.n_classes());
                mean_speedup_at(harness.tables(), valid_idx, |_| majority)
            })
            .sum::<f64>()
            / harness.splits().len() as f64;

        let fingerprint = checkpoint::config_fingerprint(cfg);
        let digest = checkpoint::examples_digest(examples);

        let _search_span = self.telemetry.span("search");
        self.telemetry
            .event("search_start")
            .u64("examples", examples.len() as u64)
            .u64("max_features", cfg.max_features as u64)
            .u64("max_total_generations", cfg.max_total_generations as u64)
            .f64("baseline_speedup", baseline_speedup)
            .f64("oracle_speedup", oracle_speedup)
            .bool("resumed", resume.is_some())
            .emit();
        self.telemetry.progress(&format!(
            "search: {} example(s), baseline {:.4}, oracle {:.4}",
            examples.len(),
            baseline_speedup,
            oracle_speedup
        ));
        if cfg.internal_folds > 1 {
            // `KFold::splits` clamps rather than yielding empty test folds;
            // surface the clamp (a quarantine-shrunk suite usually causes it).
            let kf = KFold::new(cfg.internal_folds.max(2), cfg.seed);
            let effective = kf.effective_k(examples.len());
            if effective != kf.k() {
                self.telemetry
                    .event("kfold_clamped")
                    .u64("requested", kf.k() as u64)
                    .u64("effective", effective as u64)
                    .u64("examples", examples.len() as u64)
                    .emit();
                self.telemetry.progress(&format!(
                    "warning: internal cross-validation clamped from {} to {} fold(s) \
                     ({} example(s))",
                    kf.k(),
                    effective,
                    examples.len()
                ));
            }
        }

        // Outer state: fresh, or restored from the checkpoint. Feature
        // columns, splits and the baseline are deterministic functions of
        // the inputs and are recomputed rather than stored.
        let mut rng;
        let mut features: Vec<FeatureExpr> = Vec::new();
        let mut steps: Vec<SearchStep> = Vec::new();
        let mut best_speedup = baseline_speedup;
        let mut failed = 0usize;
        let mut total_generations = 0usize;
        let mut pending_gp: Option<GpState> = None;
        let mut pending_islands: Option<IslandsState> = None;
        let resumed_from: Option<PathBuf> = resume.as_ref().map(|(path, _)| path.clone());

        match resume {
            None => {
                rng = StdRng::seed_from_u64(cfg.seed ^ 0x9e3779b97f4a7c15);
            }
            Some((path, ckpt)) => {
                ckpt.verify_identity(&path, cfg, examples)?;
                rng = StdRng::from_state(ckpt.rng);
                for text in &ckpt.features {
                    let expr = crate::lang::parse_feature(text).map_err(|e| {
                        CheckpointError::Corrupt {
                            path: path.clone(),
                            detail: format!("unparseable feature `{text}`: {e}"),
                        }
                    })?;
                    let Some(column) = harness.column(&expr) else {
                        return Err(CheckpointError::StateMismatch {
                            path: path.clone(),
                            detail: format!(
                                "checkpointed feature `{text}` no longer evaluates \
                                 on the training examples"
                            ),
                        }
                        .into());
                    };
                    harness.push_base_column(column);
                    features.push(expr);
                }
                for record in &ckpt.steps {
                    let feature =
                        crate::lang::parse_feature(&record.feature).map_err(|e| {
                            CheckpointError::Corrupt {
                                path: path.clone(),
                                detail: format!(
                                    "unparseable step feature `{}`: {e}",
                                    record.feature
                                ),
                            }
                        })?;
                    steps.push(SearchStep {
                        feature,
                        speedup: record.speedup,
                        generations: record.generations,
                    });
                }
                best_speedup = ckpt.best_speedup;
                failed = ckpt.failed;
                total_generations = ckpt.total_generations;
                if ckpt.gp.is_some() && ckpt.islands.is_some() {
                    return Err(CheckpointError::Corrupt {
                        path: path.clone(),
                        detail: "checkpoint holds both single-population and island GP state"
                            .into(),
                    }
                    .into());
                }
                pending_gp = match &ckpt.gp {
                    None => None,
                    Some(snapshot) => Some(GpState::from_snapshot(snapshot).map_err(|e| {
                        CheckpointError::Corrupt {
                            path: path.clone(),
                            detail: e,
                        }
                    })?),
                };
                pending_islands = match &ckpt.islands {
                    None => None,
                    Some(snapshot) => {
                        // The fingerprint already binds the topology, but a
                        // hand-edited snapshot can still disagree with its
                        // own fingerprint field — reject it explicitly
                        // rather than indexing out of step with the config.
                        if snapshot.islands.len() != cfg.topology.islands {
                            return Err(CheckpointError::StateMismatch {
                                path: path.clone(),
                                detail: format!(
                                    "checkpoint holds {} island(s), configuration expects {}",
                                    snapshot.islands.len(),
                                    cfg.topology.islands
                                ),
                            }
                            .into());
                        }
                        Some(IslandsState::from_snapshot(snapshot).map_err(|e| {
                            CheckpointError::Corrupt {
                                path: path.clone(),
                                detail: e,
                            }
                        })?)
                    }
                };
            }
        }

        if cfg.topology.islands > 1 {
            self.telemetry
                .event("islands_start")
                .u64("islands", cfg.topology.islands as u64)
                .u64("migration_every", cfg.topology.migration_every as u64)
                .u64("restart_limit", cfg.topology.restart_limit as u64)
                .u64("workers", self.island_workers as u64)
                .bool("resumed_mid_round", pending_islands.is_some())
                .emit();
        }

        while features.len() < cfg.max_features
            && failed < cfg.max_failed_additions
            && total_generations < cfg.max_total_generations
        {
            let fitness = |expr: &FeatureExpr| harness.fitness(expr);

            let mut gp = cfg.gp.clone();
            // Never exceed the outer generation budget.
            gp.max_generations = gp
                .max_generations
                .min(cfg.max_total_generations - total_generations);
            let engine = GpEngine::new(&search.grammar, gp);
            // A restored mid-GP state already consumed its seed draw(s)
            // before the checkpoint was written; drawing again would fork
            // the deterministic trajectory.
            let multi_island = cfg.topology.islands > 1;
            let island_state = if multi_island {
                Some(match pending_islands.take() {
                    Some(state) => state,
                    None => IslandCoordinator::init_state(&engine, &cfg.topology, &mut rng),
                })
            } else {
                None
            };
            let state = if multi_island {
                None
            } else {
                Some(match pending_gp.take() {
                    Some(state) => state,
                    None => engine.init_state(StdRng::seed_from_u64(rng.gen())),
                })
            };
            let progress = OuterProgress {
                fingerprint,
                digest,
                rng: rng.state(),
                features: features.iter().map(|f| f.to_string()).collect(),
                steps: steps
                    .iter()
                    .map(|s| StepRecord {
                        feature: s.feature.to_string(),
                        speedup: s.speedup,
                        generations: s.generations,
                    })
                    .collect(),
                best_speedup,
                failed,
                total_generations,
            };

            // `InjectedFitness` and the plain closure are distinct types, so
            // the two arms instantiate the drivers separately instead of
            // erasing to `dyn` (the blanket closure impl forbids it anyway).
            // The process-worker arm takes no fitness function at all —
            // workers rebuild the identical harness from the wire spec, and
            // the injector is consulted supervisor-side at transport keys.
            let run = match (island_state, state, self.injector) {
                (Some(islands), _, _) if self.proc_launcher.is_some() => {
                    self.drive_islands_proc(&engine, islands, &progress, examples)
                }
                (Some(islands), _, Some(injector)) => {
                    let wrapped = injector.wrap(&fitness);
                    self.drive_islands(&engine, islands, &wrapped, &progress)
                }
                (Some(islands), _, None) => {
                    self.drive_islands(&engine, islands, &fitness, &progress)
                }
                (None, Some(state), Some(injector)) => {
                    let wrapped = injector.wrap(&fitness);
                    self.drive_gp(&engine, state, &wrapped, &progress)
                }
                (None, Some(state), None) => self.drive_gp(&engine, state, &fitness, &progress),
                (None, None, _) => unreachable!("exactly one GP state shape is prepared"),
            };
            let run = match run {
                Ok(run) => run,
                Err(e) => {
                    // Publish what the pool did before surfacing the
                    // interruption, so a killed run's log still carries its
                    // cache statistics.
                    harness.pool().record_telemetry(&self.telemetry);
                    self.telemetry.emit_metrics("eval_pool");
                    return Err(e);
                }
            };
            total_generations += run.generations;
            let step_generations = run.generations;
            let step_quality = run
                .best
                .as_ref()
                .map_or(f64::NAN, |b| b.quality);

            match run.best {
                Some(best) if best.quality > best_speedup + 1e-12 => {
                    // Re-derive the winning column; a feature that stops
                    // evaluating (flaky evaluator) costs this addition,
                    // not the search.
                    match harness.column(&best.expr) {
                        Some(column) => {
                            best_speedup = best.quality;
                            harness.push_base_column(column);
                            steps.push(SearchStep {
                                feature: best.expr.clone(),
                                speedup: best.quality,
                                generations: run.generations,
                            });
                            features.push(best.expr);
                            failed = 0;
                        }
                        None => failed += 1,
                    }
                }
                _ => {
                    failed += 1;
                }
            }

            self.telemetry
                .event("feature_step")
                .u64("features", features.len() as u64)
                .u64("generations", step_generations as u64)
                .u64("total_generations", total_generations as u64)
                .f64("candidate_speedup", step_quality)
                .f64("best_speedup", best_speedup)
                .u64("failed", failed as u64)
                .emit();
            self.telemetry.progress(&format!(
                "search: {} feature(s), best speedup {:.4}, {} generation(s), {} failed addition(s)",
                features.len(),
                best_speedup,
                total_generations,
                failed
            ));

            // Outer-boundary checkpoint: the completed step is durable even
            // if the next GP run never writes one.
            if self.checkpoint_dir.is_some() {
                let progress = OuterProgress {
                    fingerprint,
                    digest,
                    rng: rng.state(),
                    features: features.iter().map(|f| f.to_string()).collect(),
                    steps: steps
                        .iter()
                        .map(|s| StepRecord {
                            feature: s.feature.to_string(),
                            speedup: s.speedup,
                            generations: s.generations,
                        })
                        .collect(),
                    best_speedup,
                    failed,
                    total_generations,
                };
                self.write_checkpoint(&progress, None, None)?;
            }
        }

        // A completed search leaves no checkpoint behind; a crash after
        // this point re-runs the search, it does not resume a stale state.
        // This covers both the driver's own checkpoint directory and the
        // file a resumed run was loaded from.
        if let Some(dir) = &self.checkpoint_dir {
            let _ = std::fs::remove_file(dir.join(checkpoint::CHECKPOINT_FILE));
        }
        if let Some(path) = &resumed_from {
            let _ = std::fs::remove_file(path);
        }

        harness.pool().record_telemetry(&self.telemetry);
        self.telemetry.emit_metrics("eval_pool");
        self.telemetry
            .event("search_done")
            .u64("features", features.len() as u64)
            .u64("total_generations", total_generations as u64)
            .f64("best_speedup", best_speedup)
            .f64("oracle_speedup", oracle_speedup)
            .emit();
        self.telemetry.progress(&format!(
            "search done: {} feature(s), speedup {:.4} of oracle {:.4}",
            features.len(),
            best_speedup,
            oracle_speedup
        ));

        Ok(SearchOutcome {
            features,
            steps,
            baseline_speedup,
            oracle_speedup,
            total_generations,
        })
    }

    /// Drives one GP run generation by generation, polling for cancellation
    /// and writing periodic checkpoints.
    fn drive_gp<F: FitnessFn>(
        &self,
        engine: &GpEngine<'_>,
        mut state: GpState,
        fitness: &F,
        progress: &OuterProgress,
    ) -> Result<GpRun, SearchError> {
        let mut since_checkpoint = 0usize;
        let mut emitted_generation: Option<usize> = None;
        loop {
            // The step itself is cancellable: once the token flips, the
            // in-flight generation is discarded whole (never partially
            // committed) and the state still sits at the last generation
            // boundary. Cancellation only chooses *which* boundary the run
            // stops at; the state content is exactly what an uninterrupted
            // run holds here, which is what makes resume bit-identical.
            let status = match engine.step_cancellable(&mut state, fitness, self.cancel.as_ref())
            {
                Some(status) => status,
                None => {
                    let checkpoint =
                        self.write_checkpoint(progress, Some(state.snapshot()), None)?;
                    return Err(SearchError::Interrupted {
                        checkpoint,
                        total_generations: progress.total_generations + state.generations,
                    });
                }
            };
            // A step that only notices convergence re-reports the previous
            // generation's stats; dedupe by generation number.
            if let Some(g) = state.last_gen {
                if self.telemetry.is_enabled() && emitted_generation != Some(g.generation) {
                    emitted_generation = Some(g.generation);
                    self.telemetry
                        .event("gp_generation")
                        .u64("generation", g.generation as u64)
                        .f64("best", g.best)
                        .f64("gen_best", g.gen_best)
                        .f64("mean", g.mean)
                        .u64("valid", g.valid as u64)
                        .u64("invalid", g.invalid as u64)
                        .u64("stagnant", g.stagnant as u64)
                        .u64("evaluations", g.evaluations as u64)
                        .u64("panics", g.panics as u64)
                        .emit();
                }
            }
            match status {
                GpStatus::Converged => return Ok(state.into_run()),
                GpStatus::Running => {
                    since_checkpoint += 1;
                    if self.checkpoint_dir.is_some() && since_checkpoint >= self.checkpoint_every
                    {
                        self.write_checkpoint(progress, Some(state.snapshot()), None)?;
                        since_checkpoint = 0;
                    }
                }
            }
        }
    }

    /// Drives one multi-island GP run round by round: each round advances
    /// every active island one generation under the coordinator's
    /// supervision (restarts, freezes, migration), then the driver polls
    /// for cancellation and writes periodic checkpoints — always at round
    /// boundaries, so the checkpoint bytes are independent of the worker
    /// count and of where a kill landed inside the round.
    fn drive_islands<F: FitnessFn>(
        &self,
        engine: &GpEngine<'_>,
        mut state: IslandsState,
        fitness: &F,
        progress: &OuterProgress,
    ) -> Result<GpRun, SearchError> {
        let cfg = &self.search.config;
        let mut coordinator = IslandCoordinator::new(engine, cfg.topology.clone())
            .workers(self.island_workers)
            .heartbeat_deadline_ms(self.heartbeat_deadline_ms)
            .cancel(self.cancel.as_ref())
            .injector(self.injector)
            .telemetry(&self.telemetry);
        let mut since_checkpoint = 0usize;
        loop {
            if progress.total_generations + state.generations() >= cfg.max_total_generations {
                // Out of outer budget: merge what the islands found so far.
                return Ok(coordinator.merge(&state));
            }
            match coordinator.round(&mut state, fitness) {
                RoundStatus::Done => return Ok(coordinator.merge(&state)),
                RoundStatus::Interrupted => {
                    // Nothing from the broken round was committed: the
                    // state — and therefore the checkpoint — sits at the
                    // previous round boundary, whatever the worker count
                    // and wherever the interruption landed.
                    let checkpoint =
                        self.write_checkpoint(progress, None, Some(state.snapshot()))?;
                    return Err(SearchError::Interrupted {
                        checkpoint,
                        total_generations: progress.total_generations + state.generations(),
                    });
                }
                RoundStatus::Running => {
                    since_checkpoint += 1;
                    if self.checkpoint_dir.is_some() && since_checkpoint >= self.checkpoint_every
                    {
                        self.write_checkpoint(progress, None, Some(state.snapshot()))?;
                        since_checkpoint = 0;
                    }
                }
            }
        }
    }

    /// Drives one multi-island GP run with islands stepped by worker
    /// processes behind the supervisor's frame transport. Structurally the
    /// twin of [`SearchDriver::drive_islands`]: rounds are barriers,
    /// checkpoints land only at round boundaries, an interrupted round is
    /// discarded whole — so the bytes this path writes are identical to the
    /// thread coordinator's for the same `(seed, topology)`, at any worker
    /// count and under any injected transport fault schedule.
    fn drive_islands_proc(
        &self,
        engine: &GpEngine<'_>,
        mut state: IslandsState,
        progress: &OuterProgress,
        examples: &[TrainingExample],
    ) -> Result<GpRun, SearchError> {
        let search = self.search;
        let cfg = &search.config;
        let launcher = self
            .proc_launcher
            .clone()
            .expect("drive_islands_proc requires a launcher");
        // The spec ships the *effective* GP config — with `max_generations`
        // already clamped to the remaining outer budget — so the worker's
        // convergence decisions match the ones this process would make.
        let mut spec_config = cfg.clone();
        spec_config.gp = engine.config().clone();
        let spec = WorkerSpec::new(
            spec_config,
            search.engine(),
            &search.grammar,
            examples,
            progress.features.clone(),
        );
        let mut supervisor = ProcSupervisor::new(spec, launcher, cfg.topology.clone())
            .workers(self.proc_workers)
            .heartbeat_deadline_ms(self.heartbeat_deadline_ms)
            .cancel(self.cancel.as_ref())
            .injector(self.injector)
            .telemetry(&self.telemetry);
        let mut since_checkpoint = 0usize;
        // Break with a result instead of returning so the supervisor always
        // shuts its workers down on the way out (`?` would leave that to
        // the handles' kill-on-drop backstop).
        let outcome = loop {
            if progress.total_generations + state.generations() >= cfg.max_total_generations {
                break Ok(supervisor.merge(&state));
            }
            match supervisor.round(&mut state) {
                RoundStatus::Done => break Ok(supervisor.merge(&state)),
                RoundStatus::Interrupted => {
                    // Nothing from the broken round was committed: the
                    // state — and therefore the checkpoint — sits at the
                    // previous round boundary, whatever the worker count
                    // and wherever the interruption landed.
                    break self
                        .write_checkpoint(progress, None, Some(state.snapshot()))
                        .and_then(|checkpoint| {
                            Err(SearchError::Interrupted {
                                checkpoint,
                                total_generations: progress.total_generations
                                    + state.generations(),
                            })
                        });
                }
                RoundStatus::Running => {
                    since_checkpoint += 1;
                    if self.checkpoint_dir.is_some() && since_checkpoint >= self.checkpoint_every
                    {
                        if let Err(e) =
                            self.write_checkpoint(progress, None, Some(state.snapshot()))
                        {
                            break Err(e);
                        }
                        since_checkpoint = 0;
                    }
                }
            }
        };
        supervisor.shutdown();
        outcome
    }

    fn write_checkpoint(
        &self,
        progress: &OuterProgress,
        gp: Option<GpSnapshot>,
        islands: Option<IslandsSnapshot>,
    ) -> Result<Option<PathBuf>, SearchError> {
        let Some(dir) = &self.checkpoint_dir else {
            return Ok(None);
        };
        let gp_generations = gp.as_ref().map(|g| g.generations);
        let island_rounds = islands.as_ref().map(|i| i.round);
        let ckpt = SearchCheckpoint {
            version: CHECKPOINT_VERSION,
            config_fingerprint: progress.fingerprint,
            examples_digest: progress.digest,
            rng: progress.rng,
            features: progress.features.clone(),
            steps: progress.steps.clone(),
            best_speedup: progress.best_speedup,
            failed: progress.failed,
            total_generations: progress.total_generations,
            gp,
            islands,
        };
        let started = std::time::Instant::now();
        let path = ckpt.save(dir)?;
        self.telemetry
            .event("checkpoint")
            .u64("dur_us", started.elapsed().as_micros() as u64)
            .u64("features", ckpt.features.len() as u64)
            .u64("total_generations", ckpt.total_generations as u64)
            .u64(
                "gp_generations",
                gp_generations.unwrap_or(0) as u64,
            )
            .bool("mid_gp", gp_generations.is_some())
            .u64("island_rounds", island_rounds.unwrap_or(0) as u64)
            .bool("mid_islands", island_rounds.is_some())
            .emit();
        Ok(Some(path))
    }
}

fn majority_label(indices: &[usize], labels: &[usize], n_classes: usize) -> usize {
    let mut counts = vec![0usize; n_classes];
    for &i in indices {
        counts[labels[i]] += 1;
    }
    counts
        .iter()
        .enumerate()
        .max_by_key(|(i, &c)| (c, usize::MAX - i))
        .map(|(i, _)| i)
        .unwrap_or(0)
}

fn mean_speedup_at(
    tables: &[Vec<f64>],
    indices: &[usize],
    mut choose: impl FnMut(usize) -> usize,
) -> f64 {
    if indices.is_empty() {
        return 1.0;
    }
    indices
        .iter()
        .map(|&i| metrics::speedup(&tables[i], choose(i)))
        .sum::<f64>()
        / indices.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Synthetic task: loops whose best unroll factor is fully determined
    /// by a discoverable IR property (the number of `insn` children),
    /// while a decoy attribute is uninformative.
    fn synthetic_examples(n: usize) -> Vec<TrainingExample> {
        (0..n)
            .map(|i| {
                let insns = 1 + i % 5;
                let best = insns % 4; // best factor in 0..4 determined by insns
                let ir = IrNode::build("loop", |l| {
                    l.attr_num("decoy", (i * 7 % 3) as f64);
                    for _ in 0..insns {
                        l.child("insn", |x| {
                            x.attr_enum("mode", "SI");
                        });
                    }
                    l.child("jump_insn", |_| {});
                });
                // Cycle table: best factor costs 80, others 100 + distance.
                let cycles = (0..4)
                    .map(|k| {
                        if k == best {
                            80.0
                        } else {
                            100.0 + (k as f64 - best as f64).abs()
                        }
                    })
                    .collect();
                TrainingExample { ir, cycles }
            })
            .collect()
    }

    #[test]
    fn training_example_helpers() {
        let e = TrainingExample {
            ir: IrNode::new("loop"),
            cycles: vec![100.0, 90.0, 120.0],
        };
        assert_eq!(e.best_value(), 1);
        assert!((e.speedup(1) - 100.0 / 90.0).abs() < 1e-12);
    }

    #[test]
    fn search_finds_informative_feature_and_improves() {
        let examples = synthetic_examples(60);
        let mut config = SearchConfig::quick();
        config.max_features = 3;
        config.seed = 11;
        let search = FeatureSearch::from_examples(&examples, config);
        let outcome = search.run(&examples);
        assert!(
            !outcome.features.is_empty(),
            "search should find at least one improving feature"
        );
        let final_speedup = outcome.steps.last().unwrap().speedup;
        assert!(
            final_speedup > outcome.baseline_speedup,
            "final {final_speedup} must beat baseline {}",
            outcome.baseline_speedup
        );
    }

    #[test]
    fn speedups_are_monotone_across_steps() {
        let examples = synthetic_examples(50);
        let search = FeatureSearch::from_examples(&examples, SearchConfig::quick());
        let outcome = search.run(&examples);
        let mut prev = outcome.baseline_speedup;
        for step in &outcome.steps {
            assert!(step.speedup > prev, "non-improving step was accepted");
            prev = step.speedup;
        }
    }

    #[test]
    fn respects_total_generation_budget() {
        let examples = synthetic_examples(30);
        let mut config = SearchConfig::quick();
        config.max_total_generations = 10;
        let search = FeatureSearch::from_examples(&examples, config);
        let outcome = search.run(&examples);
        assert!(outcome.total_generations <= 10 + SearchConfig::quick().gp.max_generations);
    }

    #[test]
    fn feature_matrix_defaults_failures_to_zero() {
        let examples = synthetic_examples(5);
        let mut config = SearchConfig::quick();
        config.eval_budget_per_example = 1; // everything times out
        let search = FeatureSearch::from_examples(&examples, config);
        let f = crate::lang::parse_feature("count(//*)").unwrap();
        let m = search.feature_matrix(&[f], &examples);
        assert!(m.iter().all(|row| row == &vec![0.0]));
    }

    #[test]
    fn feature_column_rejects_timeouts() {
        let examples = synthetic_examples(5);
        let mut config = SearchConfig::quick();
        config.eval_budget_per_example = 1;
        let search = FeatureSearch::from_examples(&examples, config);
        let f = crate::lang::parse_feature("count(//*)").unwrap();
        assert_eq!(search.feature_column(&f, &examples), None);
    }

    #[test]
    fn pruning_removes_redundant_features() {
        let examples = synthetic_examples(60);
        let search = FeatureSearch::from_examples(&examples, SearchConfig::quick());
        let informative =
            crate::lang::parse_feature("count(filter(/*, is-type(insn)))").unwrap();
        // A duplicate and a constant: both redundant next to the first.
        let duplicate = informative.clone();
        let constant = crate::lang::parse_feature("7").unwrap();
        let pruned =
            search.prune_features(&[informative.clone(), duplicate, constant], &examples);
        assert!(
            pruned.len() < 3,
            "at least one redundant feature should be dropped, kept {pruned:?}"
        );
        assert!(
            pruned.contains(&informative),
            "the informative feature must survive"
        );
    }

    #[test]
    fn pruning_keeps_singletons_untouched() {
        let examples = synthetic_examples(20);
        let search = FeatureSearch::from_examples(&examples, SearchConfig::quick());
        let f = crate::lang::parse_feature("count(//*)").unwrap();
        assert_eq!(
            search.prune_features(std::slice::from_ref(&f), &examples),
            vec![f]
        );
    }

    #[test]
    fn engines_produce_identical_outcomes() {
        // The compiled VM is an execution strategy, not a semantic change:
        // the whole search — accepted features, speedups, generation counts
        // — must be equal between engines.
        let examples = synthetic_examples(40);
        let mut config = SearchConfig::quick();
        config.max_features = 2;
        config.seed = 7;
        let run = |engine: EvalEngine| {
            FeatureSearch::from_examples(&examples, config.clone())
                .with_engine(engine)
                .run(&examples)
        };
        let compiled = run(EvalEngine::Compiled);
        let interpreted = run(EvalEngine::Interpreter);
        assert_eq!(compiled, interpreted);
        assert!(!compiled.features.is_empty());
    }

    #[test]
    fn deterministic_outcome_for_fixed_seed() {
        let examples = synthetic_examples(40);
        let run = |seed: u64| {
            let mut config = SearchConfig::quick();
            config.seed = seed;
            config.max_features = 2;
            FeatureSearch::from_examples(&examples, config).run(&examples)
        };
        let a = run(5);
        let b = run(5);
        assert_eq!(a.features, b.features);
        assert_eq!(a.total_generations, b.total_generations);
    }
}
